// gammaflow — command-line front door to the library.
//
//   gammaflow compile  <prog.src>             imperative source -> graph text
//   gammaflow run      <prog.src|graph.df>    execute as dataflow, print outputs
//   gammaflow togamma  <prog.src|graph.df>    Algorithm 1 -> Gamma program + M
//   gammaflow rungamma <prog.gamma> --init "<elements>" [--engine seq|idx|par]
//   gammaflow fuse     <prog.gamma> [--init "<elements>"]      SIII-A3 reduction
//   gammaflow expand   <prog.gamma>                            inverse reduction
//   gammaflow optimize <prog.gamma> [--init "<elements>"]      analysis-driven
//                                             auto-reduction (cost-gated)
//   gammaflow reconstruct <prog.gamma> --init "<elements>"     Gamma -> graph
//   gammaflow distrib  <prog.gamma> --init "<elements>" [--nodes N ...]
//                                             simulated cluster (+ faults)
//   gammaflow dot      <prog.src|graph.df|prog.gamma>   Graphviz output
//   gammaflow viz      <any input>            self-contained interactive HTML
//                                             (or DOT via --format dot)
//
// Input kind is decided by extension: .src (imperative), .df (graph text),
// .gamma (DSL). Elements for --init use the DSL tuple syntax:
//   "[1,'A1'] [5,'B1'] [3,'C1',0]"
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gammaflow/common/fault.hpp"
#include "gammaflow/common/logging.hpp"
#include "gammaflow/dataflow/dot.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/obs/report.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/obs/trace_export.hpp"
#include "gammaflow/dataflow/optimize.hpp"
#include "gammaflow/dataflow/serialize.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/expr/simplify.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/runtime/worklist.hpp"
#include "gammaflow/serve/server.hpp"
#include "gammaflow/viz/viz.hpp"
#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/analysis/lint.hpp"
#include "gammaflow/analysis/optimize.hpp"
#include "gammaflow/analysis/verify_df.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"
#include "gammaflow/translate/reduce.hpp"

using namespace gammaflow;

namespace {

void print_usage(std::ostream& out) {
  out <<
      "usage: gammaflow <command> <file> [options]\n"
      "  compile <prog.src>                    source -> dataflow graph text\n"
      "  run <prog.src|graph.df>               execute as dataflow\n"
      "  togamma <prog.src|graph.df>           Algorithm 1\n"
      "  rungamma <prog.gamma> --init \"...\"    execute by rewriting\n"
      "  fuse <prog.gamma> [--init \"...\"]      SIII-A3 reduction\n"
      "  expand <prog.gamma>                   inverse reduction\n"
      "  optimize <prog.gamma> [--init \"...\"]  analysis-driven auto-reduction:\n"
      "                                        fuse feed chains, drop dead\n"
      "                                        reactions, gated by the cost\n"
      "                                        model; prints the rewritten\n"
      "                                        program (see --report/--json)\n"
      "  reconstruct <prog.gamma> --init \"...\" Gamma -> dataflow graph\n"
      "  dot <prog.src|graph.df|prog.gamma>    Graphviz (.gamma renders the\n"
      "                                        interference graph; pick with\n"
      "                                        --graph)\n"
      "  viz <any input> [--out f.html]        self-contained interactive HTML\n"
      "                                        (graph + store scrubber +\n"
      "                                        provenance); runs the input\n"
      "                                        with recording unless --journal\n"
      "  opt <prog.src|graph.df>               optimize (fold/bypass/DCE)\n"
      "  lint <prog.gamma> [--init \"...\"]     static Gamma checks\n"
      "  check <any input> [--init \"...\"]     ALL static passes: lint +\n"
      "                                        interference/confluence on\n"
      "                                        .gamma, graph verifier on\n"
      "                                        .src/.df\n"
      "  distrib <prog.gamma> --init \"...\"     simulated cluster run\n"
      "  serve <prog.gamma> --socket <path>    long-lived daemon: multi-tenant\n"
      "                                        sessions kept at fixpoint by\n"
      "                                        the incremental worklist; line-\n"
      "                                        delimited JSON protocol over a\n"
      "                                        Unix socket (or --stdio)\n"
      "  help                                  print this message (--help, -h)\n"
      "options: --init \"[v,'L'] ...\"  --engine seq|idx|par  --seed N\n"
      "         --workers N            worker threads (par engines)\n"
      "         --deadline S           wall-clock budget in seconds (run,\n"
      "                                rungamma, distrib); prints the\n"
      "                                partial state\n"
      "         --no-compile           run, rungamma, distrib: evaluate\n"
      "                                conditions/actions with the AST walker\n"
      "                                instead of compiled bytecode (results\n"
      "                                are identical; this is the slow path)\n"
      "         --no-batch             run, rungamma, distrib, serve: match\n"
      "                                candidates one at a time with the\n"
      "                                scalar VM instead of the columnar\n"
      "                                batch evaluator (results are\n"
      "                                identical; A/B baseline — ignored\n"
      "                                under --no-compile)\n"
      "         --no-shard             rungamma --engine par: force the\n"
      "                                optimistic single-store path even when\n"
      "                                conflict classes admit a sharded store\n"
      "         --werror               lint/check: warnings also fail (exit 1)\n"
      "         --json                 lint/check/optimize: machine-readable\n"
      "                                output\n"
      "         --classes              rungamma: derive conflict classes from\n"
      "                                interference analysis and hand them to\n"
      "                                the engine (par: no-revalidation\n"
      "                                commits; idx: class scheduling)\n"
      "         --affinity             distrib: place elements by conflict-\n"
      "                                class label affinity\n"
      "optimize: --out <file>          write the rewritten program to a file\n"
      "         --report               optimize: full report on stdout (cost,\n"
      "                                bounds, per-rewrite decisions)\n"
      "         --max-steps N          optimize: cap applied fusion steps\n"
      "                                (0 = run to fixpoint)\n"
      "         --no-cost-model        optimize: apply every safe fusion even\n"
      "                                when the cost model votes no\n"
      "         --optimize             run, rungamma, distrib: run the\n"
      "                                optimizer on the program first (not\n"
      "                                with --resume); run (.src/.df) uses\n"
      "                                the dataflow optimizer instead\n"
      "rungamma: --worklist           run through the incremental worklist\n"
      "                                fixpoint (single-stage programs; the\n"
      "                                whole --init multiset arrives as one\n"
      "                                injection — same fixpoint, stats on\n"
      "                                stderr)\n"
      "serve:   --socket <path>        Unix-domain socket to listen on\n"
      "         --stdio                speak the protocol on stdin/stdout\n"
      "                                (also the default without --socket)\n"
      "         --max-sessions N       concurrent session cap (default 64)\n"
      "         --rescan               worklist/serve: wake EVERY reaction on\n"
      "                                each insert instead of footprint\n"
      "                                wakeups (A/B baseline; identical\n"
      "                                fixpoints, more rematch work)\n"
      "         --deadline S           serve: default per-inject deadline\n"
      "         --max-steps N          serve: default per-session firing\n"
      "                                budget\n"
      "         --record-out <stem>    serve: write each closed session's\n"
      "                                journal to <stem>.<session>.json\n"
      "distrib: --nodes N --placement hash|rr|single --latency N\n"
      "         --fires-per-round N    local matches per node per round\n"
      "  fault injection (deterministic from --seed):\n"
      "         --loss P --dup P --reorder P   per-message probabilities\n"
      "         --crash-rate P --crash-downtime N   random crash-restarts\n"
      "         --crash R:N:D          crash node N at round R for D rounds\n"
      "         --partition S:D:C      rounds [S,S+D): cut {0..C-1}|{C..}\n"
      "         --token-timeout N      Safra token regeneration timeout\n"
      "  elasticity & durability:\n"
      "         --join R:N             spare node N joins the ring at round R\n"
      "         --leave R:N            node N drains and leaves at round R\n"
      "         --churn-rate P         random leave/rejoin per round (capped)\n"
      "         --replication N        checkpoint holders per node (ring\n"
      "                                successors; default 1)\n"
      "         --checkpoint-every N   rounds between replica checkpoints\n"
      "         --wal-dir <dir>        per-node write-ahead logs + manifest\n"
      "                                (durability; enables --resume)\n"
      "         --wal-snapshot-every N rounds between WAL compactions\n"
      "                                (snapshot rewrite; default 64)\n"
      "         --resume               restart the whole cluster from the\n"
      "                                WALs in --wal-dir (no --init needed)\n"
      "viz:     --out <file>           output path (default: <input>.html, or\n"
      "                                stdout for --format dot)\n"
      "         --format html|dot      output kind (default html)\n"
      "         --graph dataflow|interference|classes|shards\n"
      "                                which graph a DOT render shows (also\n"
      "                                honored by `dot` on .gamma input)\n"
      "         --journal <file.json>  embed an existing run journal instead\n"
      "                                of running the input\n"
      "observability (run, rungamma, distrib):\n"
      "  --trace-out <file.json>  Chrome trace-event dump (chrome://tracing)\n"
      "  --metrics                print engine-internal metrics after the run\n"
      "  --record-out <file.json> record the run (per-fire provenance +\n"
      "                           per-round store deltas) to a journal; also\n"
      "                           accepted by viz to keep the journal it\n"
      "                           recorded for the HTML\n"
      "  --log-level <level>      trace|debug|info|warn|error (or GF_LOG_LEVEL)\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads a dataflow graph from source (.src, compiled) or graph text (.df).
dataflow::Graph load_graph(const std::string& path) {
  const std::string text = read_file(path);
  if (ends_with(path, ".df")) return dataflow::parse_text(text);
  if (ends_with(path, ".src")) return frontend::compile_source(text);
  throw Error("expected a .src or .df file, got '" + path + "'");
}

/// Parses "--init" elements: a sequence of [expr, expr, ...] tuples (fields
/// must be literals) or bare literals.
gamma::Multiset parse_elements(const std::string& text) {
  return gamma::dsl::parse_elements(text);
}

struct Options {
  std::optional<std::string> init;
  std::string engine = "idx";
  std::uint64_t seed = 1;
  std::optional<unsigned> workers;
  std::optional<std::string> trace_out;
  std::optional<std::string> record_out;
  bool metrics = false;
  // --- viz ---
  std::string out;         // --out: output path ("" = default)
  std::string format = "html";
  std::string graph_kind;  // --graph: "" = pick by input kind
  std::optional<std::string> journal_path;
  /// Wall-clock budget in seconds for run/rungamma; <= 0 = none. The run
  /// returns its partial state with outcome=deadline_exceeded when it hits.
  double deadline = 0.0;
  // --- static analysis ---
  bool werror = false;    // lint/check: warnings fail the exit code
  bool json = false;      // lint/check/optimize: machine-readable output
  // --- optimizer ---
  bool optimize = false;      // run/rungamma/distrib: optimize first
  bool opt_report = false;    // optimize: full report on stdout
  bool cost_model = true;     // optimize: gate rewrites on the cost model
  std::size_t max_steps = 0;  // optimize: fusion step cap (0 = fixpoint)
  bool classes = false;   // rungamma: feed conflict classes to the engine
  bool affinity = false;  // distrib: label-affinity placement hint
  /// Bytecode escape hatch (--no-compile): evaluate conditions/actions with
  /// the AST walker instead of the register VM. Results are identical.
  bool compile = true;
  /// Batch escape hatch (--no-batch): keep compiled bytecode but match
  /// candidates one at a time with the scalar VM instead of the columnar
  /// batch evaluator. Results are identical; this is the A/B baseline the
  /// benches compare against. Ignored under --no-compile.
  bool batch = true;
  /// Sharding escape hatch (--no-shard): keep the parallel Gamma engine on
  /// the optimistic single-store path even when --classes admits sharding.
  bool shard = true;
  // --- distrib ---
  std::size_t nodes = 4;
  std::string placement = "hash";
  std::size_t latency = 1;
  std::size_t fires_per_round = 4;
  FaultPlan faults;
  std::size_t replication = 1;
  std::size_t checkpoint_every = 1;
  std::string wal_dir;
  std::size_t wal_snapshot_every = 64;
  bool resume = false;
  // --- serve / worklist ---
  std::string socket;             // serve: unix socket path
  bool stdio = false;             // serve: speak the protocol on stdin/stdout
  std::size_t max_sessions = 64;  // serve: concurrent session cap
  bool rescan = false;            // serve/worklist: full-rescan wake policy
  bool worklist = false;          // rungamma: incremental worklist path
};

/// Parses "a:b" / "a:b:c" small-integer tuples (--crash, --partition).
std::vector<std::size_t> parse_tuple(const std::string& text,
                                     const std::string& arg,
                                     std::size_t want) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    const std::string part = text.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos);
    try {
      std::size_t used = 0;
      out.push_back(std::stoull(part, &used));
      if (used != part.size()) throw Error("");
    } catch (const std::exception&) {
      throw Error("expected N:N:N for " + arg + ", got '" + text + "'");
    }
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (out.size() != want) {
    throw Error(arg + " wants " + std::to_string(want) +
                " colon-separated numbers, got '" + text + "'");
  }
  return out;
}

Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    auto next_number = [&]() -> unsigned long long {
      const std::string value = next();
      try {
        std::size_t pos = 0;
        const unsigned long long n = std::stoull(value, &pos);
        if (pos != value.size()) throw Error("");
        return n;
      } catch (const std::exception&) {
        throw Error("expected a number for " + arg + ", got '" + value + "'");
      }
    };
    auto next_real = [&]() -> double {
      const std::string value = next();
      try {
        std::size_t pos = 0;
        const double x = std::stod(value, &pos);
        if (pos != value.size()) throw Error("");
        return x;
      } catch (const std::exception&) {
        throw Error("expected a number for " + arg + ", got '" + value + "'");
      }
    };
    if (arg == "--init") {
      opts.init = next();
    } else if (arg == "--engine") {
      opts.engine = next();
    } else if (arg == "--seed") {
      opts.seed = next_number();
    } else if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(next_number());
    } else if (arg == "--trace-out") {
      opts.trace_out = next();
    } else if (arg == "--record-out") {
      opts.record_out = next();
    } else if (arg == "--out") {
      opts.out = next();
    } else if (arg == "--format") {
      opts.format = next();
    } else if (arg == "--graph") {
      opts.graph_kind = next();
    } else if (arg == "--journal") {
      opts.journal_path = next();
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--deadline") {
      opts.deadline = next_real();
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--optimize") {
      opts.optimize = true;
    } else if (arg == "--report") {
      opts.opt_report = true;
    } else if (arg == "--no-cost-model") {
      opts.cost_model = false;
    } else if (arg == "--max-steps") {
      opts.max_steps = next_number();
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--classes") {
      opts.classes = true;
    } else if (arg == "--affinity") {
      opts.affinity = true;
    } else if (arg == "--no-compile") {
      opts.compile = false;
    } else if (arg == "--no-batch") {
      opts.batch = false;
    } else if (arg == "--no-shard") {
      opts.shard = false;
    } else if (arg == "--nodes") {
      opts.nodes = next_number();
    } else if (arg == "--placement") {
      opts.placement = next();
    } else if (arg == "--latency") {
      opts.latency = next_number();
    } else if (arg == "--fires-per-round") {
      opts.fires_per_round = next_number();
    } else if (arg == "--loss") {
      opts.faults.loss = next_real();
    } else if (arg == "--dup") {
      opts.faults.duplication = next_real();
    } else if (arg == "--reorder") {
      opts.faults.reorder = next_real();
    } else if (arg == "--crash-rate") {
      opts.faults.crash_rate = next_real();
    } else if (arg == "--crash-downtime") {
      opts.faults.crash_downtime = next_number();
    } else if (arg == "--crash") {
      const auto t = parse_tuple(next(), arg, 3);
      opts.faults.crashes.push_back({t[0], t[1], t[2]});
    } else if (arg == "--partition") {
      const auto t = parse_tuple(next(), arg, 3);
      opts.faults.partitions.push_back({t[0], t[1], t[2]});
    } else if (arg == "--token-timeout") {
      opts.faults.token_timeout = next_number();
    } else if (arg == "--join") {
      const auto t = parse_tuple(next(), arg, 2);
      opts.faults.membership.joins.push_back({t[0], t[1]});
    } else if (arg == "--leave") {
      const auto t = parse_tuple(next(), arg, 2);
      opts.faults.membership.leaves.push_back({t[0], t[1]});
    } else if (arg == "--churn-rate") {
      opts.faults.membership.churn_rate = next_real();
    } else if (arg == "--replication") {
      opts.replication = next_number();
    } else if (arg == "--checkpoint-every") {
      opts.checkpoint_every = next_number();
    } else if (arg == "--wal-dir") {
      opts.wal_dir = next();
    } else if (arg == "--wal-snapshot-every") {
      opts.wal_snapshot_every = next_number();
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--socket") {
      opts.socket = next();
    } else if (arg == "--stdio") {
      opts.stdio = true;
    } else if (arg == "--max-sessions") {
      opts.max_sessions = next_number();
    } else if (arg == "--rescan") {
      opts.rescan = true;
    } else if (arg == "--worklist") {
      opts.worklist = true;
    } else if (arg == "--log-level") {
      const std::string name = next();
      const auto level = parse_log_level(name.c_str());
      if (!level) throw Error("unknown log level '" + name + "'");
      set_log_level(*level);
    } else {
      throw Error("unknown option '" + arg + "'");
    }
  }
  return opts;
}

/// Writes the collected trace to `path` and reports where it went (stderr,
/// so stdout stays the program's own output).
void dump_trace(const obs::Telemetry& tel, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace to '" + path + "'");
  obs::write_chrome_trace(out, tel);
  std::cerr << "# trace written to " << path
            << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
}

/// Writes a run journal to `path` (stderr note, like dump_trace).
void dump_journal(const obs::Journal& journal, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write journal to '" + path + "'");
  obs::write_journal(out, journal);
  std::cerr << "# journal written to " << path << " ("
            << journal.fires.size() << " fires, " << journal.rounds.size()
            << " rounds)\n";
}

std::unique_ptr<gamma::Engine> make_engine(const std::string& name) {
  if (name == "seq") return std::make_unique<gamma::SequentialEngine>();
  if (name == "idx") return std::make_unique<gamma::IndexedEngine>();
  if (name == "par") return std::make_unique<gamma::ParallelEngine>();
  throw Error("unknown engine '" + name + "' (want seq|idx|par)");
}

int cmd_compile(const std::string& path) {
  dataflow::write_text(std::cout, load_graph(path));
  return 0;
}

analysis::OptimizeOptions make_optimize_options(const Options& opts,
                                                obs::Telemetry* tel) {
  analysis::OptimizeOptions oopts;
  oopts.seed = opts.seed;
  oopts.max_steps = opts.max_steps;
  oopts.use_cost_model = opts.cost_model;
  if (opts.workers) oopts.cost.workers = *opts.workers;
  oopts.telemetry = tel;
  return oopts;
}

/// `--optimize` pre-pass for rungamma/distrib: rewrites the program, leaves
/// a one-line summary on stderr so stdout stays the run's own output.
gamma::Program optimize_for_run(const gamma::Program& program,
                                const gamma::Multiset& initial,
                                const Options& opts, obs::Telemetry* tel) {
  const auto r = analysis::optimize_program(program, initial,
                                            make_optimize_options(opts, tel));
  std::cerr << "# optimize: " << r.report.fused << " fused, "
            << r.report.dead_removed << " dead removed, cost "
            << r.report.cost_before << " -> " << r.report.cost_after << '\n';
  if (!r.report.class_check_ok) {
    throw Error("optimizer invariant violated: conflict classes coarsened");
  }
  return r.program;
}

int cmd_run(const std::string& path, const Options& opts) {
  dataflow::Graph g = load_graph(path);
  if (opts.optimize) {
    const auto r = dataflow::optimize(std::move(g));
    std::cerr << "# optimize: folded " << r.folded << ", bypassed "
              << r.bypassed << ", removed " << r.removed << '\n';
    g = r.graph;
  }
  obs::Telemetry tel;
  obs::RunRecorder rec;
  dataflow::DfRunOptions ropts;
  ropts.compile = opts.compile;
  ropts.batch = opts.batch;
  if (opts.trace_out || opts.metrics) ropts.telemetry = &tel;
  if (opts.record_out) ropts.record = &rec;
  if (opts.workers) ropts.workers = *opts.workers;
  if (opts.deadline > 0.0) {
    ropts.deadline = opts.deadline;
    ropts.limit_policy = LimitPolicy::Partial;
  }
  const bool parallel = opts.engine == "par";
  const auto result = parallel
                          ? dataflow::ParallelEngine().run(g, ropts, {})
                          : dataflow::Interpreter().run(g, ropts, {});
  if (result.outcome != Outcome::Completed) {
    std::cout << "# stopped early: " << to_string(result.outcome)
              << " (partial outputs below)\n";
  }
  for (const auto& [name, tokens] : result.outputs) {
    std::cout << name << " =";
    for (const Value& v : result.output_values(name)) std::cout << ' ' << v;
    std::cout << '\n';
  }
  std::cout << "# " << result.fires << " firings";
  if (!parallel) std::cout << ", " << result.wavefronts.size() << " wavefronts";
  std::cout << '\n';
  if (!result.leftovers.empty()) {
    std::cout << "# " << result.leftovers.size() << " unmatched operand(s)\n";
  }
  if (opts.trace_out) dump_trace(tel, *opts.trace_out);
  if (opts.record_out) dump_journal(rec.take(), *opts.record_out);
  if (opts.metrics) obs::write_report(std::cout, tel);
  return 0;
}

int cmd_togamma(const std::string& path) {
  const auto conv = translate::dataflow_to_gamma(load_graph(path));
  std::cout << conv.program << "\n\n# initial multiset\n# M = "
            << conv.initial << '\n';
  for (const auto& [output, labels] : conv.output_labels) {
    std::cout << "# output '" << output << "' <- elements labeled";
    for (const std::string& label : labels) std::cout << " '" << label << "'";
    std::cout << '\n';
  }
  // Translation validation: Algorithm 1's output must lint clean of errors.
  const auto report = analysis::lint_program(conv.program, conv.initial);
  if (report.errors() > 0) {
    std::cerr << "# translation validation FAILED (" << report.errors()
              << " error(s)):\n" << report;
    return 1;
  }
  return 0;
}

/// `rungamma --worklist`: the batch A/B face of the incremental fixpoint.
/// The whole initial multiset arrives as ONE injection, so for confluent
/// programs the printed fixpoint is byte-identical to the batch engines' —
/// the equivalence obligation DESIGN §14 states and test_serve checks.
int run_worklist(const gamma::Program& program, const gamma::Multiset& initial,
                 const Options& opts) {
  runtime::WorklistOptions wopts;
  wopts.seed = opts.seed;
  wopts.compile = opts.compile;
  wopts.batch = opts.batch;
  wopts.rescan = opts.rescan;
  obs::RunRecorder rec;
  if (opts.record_out) wopts.record = &rec;
  if (opts.deadline > 0.0) {
    wopts.deadline = opts.deadline;
    wopts.limit_policy = LimitPolicy::Partial;
  }
  runtime::IncrementalFixpoint fix(program, analysis::wakeup_keys(program),
                                   wopts);
  const Outcome outcome = fix.inject(initial);
  std::cout << fix.snapshot() << '\n'
            << "# " << fix.stats().fires << " reactions fired\n";
  if (outcome != Outcome::Completed) {
    std::cout << "# stopped early: " << to_string(outcome)
              << " (partial multiset above)\n";
  }
  const runtime::WorklistStats& stats = fix.stats();
  std::cerr << "# worklist: " << stats.wakeups << " wakeup(s), "
            << stats.rematches << " rematch probe(s)"
            << (opts.rescan ? " [rescan baseline]" : "") << '\n';
  if (opts.record_out) {
    fix.finish_recording();
    dump_journal(rec.take(), *opts.record_out);
  }
  return 0;
}

int cmd_rungamma(const std::string& path, const Options& opts) {
  if (!opts.init) throw Error("rungamma needs --init \"<elements>\"");
  gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial = parse_elements(*opts.init);
  if (opts.worklist) return run_worklist(program, initial, opts);
  obs::Telemetry tel;
  obs::RunRecorder rec;
  if (opts.optimize) {
    program = optimize_for_run(
        program, initial, opts,
        opts.trace_out || opts.metrics ? &tel : nullptr);
  }
  gamma::RunOptions ropts;
  ropts.seed = opts.seed;
  ropts.compile = opts.compile;
  ropts.batch = opts.batch;
  ropts.shard = opts.shard;
  if (opts.workers) ropts.workers = *opts.workers;
  if (opts.trace_out || opts.metrics) ropts.telemetry = &tel;
  if (opts.record_out) ropts.record = &rec;
  if (opts.deadline > 0.0) {
    ropts.deadline = opts.deadline;
    ropts.limit_policy = LimitPolicy::Partial;
  }
  if (opts.classes) {
    analysis::InterferenceOptions iopts;
    iopts.seed = opts.seed;
    const auto report = analysis::analyze_interference(program, initial, iopts);
    ropts.conflict_classes = report.engine_classes();
    std::cerr << "# conflict classes: " << report.class_count << " over "
              << report.reactions.size() << " reaction(s), verdict "
              << analysis::to_string(report.verdict) << '\n';
  }
  const auto result = make_engine(opts.engine)->run(program, initial, ropts);
  std::cout << result.final_multiset << '\n'
            << "# " << result.steps << " reactions fired\n";
  if (result.outcome != Outcome::Completed) {
    std::cout << "# stopped early: " << to_string(result.outcome)
              << " (partial multiset above)\n";
  }
  if (opts.trace_out) dump_trace(tel, *opts.trace_out);
  if (opts.record_out) dump_journal(rec.take(), *opts.record_out);
  if (opts.metrics) obs::write_report(std::cout, tel);
  return 0;
}

int cmd_distrib(const std::string& path, const Options& opts) {
  if (!opts.init && !opts.resume) {
    throw Error("distrib needs --init \"<elements>\" (or --resume)");
  }
  gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial =
      opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
  obs::Telemetry tel;
  obs::RunRecorder rec;
  if (opts.optimize) {
    // A resumed cluster replays WALs written against the original program's
    // reaction names; rewriting here would orphan them.
    if (opts.resume) throw Error("--optimize cannot be combined with --resume");
    program = optimize_for_run(
        program, initial, opts,
        opts.trace_out || opts.metrics ? &tel : nullptr);
  }
  distrib::ClusterOptions copts;
  copts.nodes = opts.nodes;
  copts.seed = opts.seed;
  copts.latency = opts.latency;
  copts.fires_per_round = opts.fires_per_round;
  copts.faults = opts.faults;
  copts.compile = opts.compile;
  copts.batch = opts.batch;
  copts.replication_factor = opts.replication;
  copts.checkpoint_every = opts.checkpoint_every;
  copts.wal_dir = opts.wal_dir;
  copts.wal_snapshot_every = opts.wal_snapshot_every;
  copts.resume = opts.resume;
  if (opts.trace_out || opts.metrics) copts.telemetry = &tel;
  if (opts.record_out) copts.record = &rec;
  if (opts.deadline > 0.0) {
    copts.deadline = opts.deadline;
    copts.limit_policy = LimitPolicy::Partial;
  }
  if (opts.placement == "hash") {
    copts.placement = distrib::Placement::Hash;
  } else if (opts.placement == "rr") {
    copts.placement = distrib::Placement::RoundRobin;
  } else if (opts.placement == "single") {
    copts.placement = distrib::Placement::Single;
  } else {
    throw Error("unknown placement '" + opts.placement +
                "' (want hash|rr|single)");
  }
  if (opts.affinity) {
    analysis::InterferenceOptions iopts;
    iopts.seed = opts.seed;
    const auto report = analysis::analyze_interference(program, initial, iopts);
    copts.label_affinity = report.label_affinity();
    std::cerr << "# affinity placement: " << copts.label_affinity.size()
              << " label(s) over " << report.class_count << " class(es)\n";
  }

  const auto result = distrib::run_distributed(program, initial, copts);
  std::cout << result.final_multiset << '\n'
            << "# " << result.fires << " reactions fired across "
            << copts.nodes << " node(s) in " << result.rounds << " rounds\n"
            << "# " << result.messages << " messages, " << result.migrations
            << " element migrations, " << result.token_laps
            << " Safra laps\n";
  if (copts.faults.any()) {
    std::cout << "# faults: " << result.messages_lost << " lost, "
              << result.messages_duplicated << " duplicated, "
              << result.messages_delayed << " delayed, " << result.crashes
              << " crash(es)\n"
              << "# recovery: " << result.retransmissions
              << " retransmissions, " << result.duplicates_suppressed
              << " duplicates suppressed, " << result.recoveries
              << " restarts, " << result.token_regenerations
              << " token regenerations\n";
  }
  if (copts.faults.membership.any() || result.epochs > 0) {
    std::cout << "# elasticity: " << result.epochs << " epoch change(s), "
              << result.joins << " join(s), " << result.leaves
              << " leave(s), " << result.rebalances << " rebalance(s), "
              << result.labels_moved << " label(s) moved\n";
  }
  if (!copts.wal_dir.empty()) {
    std::cout << "# wal: " << result.wal_bytes << " bytes, "
              << result.wal_records << " records, " << result.wal_compactions
              << " compaction(s), " << result.wal_replays << " replay(s)\n";
  }
  if (opts.trace_out) dump_trace(tel, *opts.trace_out);
  if (opts.record_out) dump_journal(rec.take(), *opts.record_out);
  if (opts.metrics) obs::write_report(std::cout, tel);
  return 0;
}

/// `gammaflow serve`: the long-lived daemon. The .gamma file is the default
/// program new sessions host (a create request may override it). Socket
/// mode accepts clients on a Unix socket; --stdio speaks the same protocol
/// on stdin/stdout (one JSON object per line each way, DESIGN §14).
int cmd_serve(const std::string& path, const Options& opts) {
  serve::ServeOptions sopts;
  sopts.socket_path = opts.socket;
  sopts.max_sessions = opts.max_sessions;
  sopts.deadline = opts.deadline;
  if (opts.max_steps > 0) sopts.max_steps = opts.max_steps;
  sopts.seed = opts.seed;
  sopts.compile = opts.compile;
  sopts.batch = opts.batch;
  sopts.rescan = opts.rescan;
  if (opts.record_out) sopts.record_out = *opts.record_out;
  sopts.default_program = read_file(path);
  // Validate the default program up front: a daemon that rejects every
  // create with bad_program is better caught at startup.
  const gamma::Program program = gamma::dsl::parse_program(sopts.default_program);
  if (program.stage_count() > 1) {
    throw Error("serve hosts single-stage programs; '" + path + "' has " +
                std::to_string(program.stage_count()) + " stages");
  }
  serve::Server server(std::move(sopts));
  if (opts.stdio || opts.socket.empty()) {
    if (!opts.stdio) {
      std::cerr << "# no --socket given; speaking the protocol on stdio\n";
    }
    server.serve_stream(std::cin, std::cout);
    return 0;
  }
  std::cerr << "# serving '" << path << "' on " << opts.socket << '\n';
  return server.serve_socket();
}

int cmd_optimize(const std::string& path, const Options& opts) {
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial =
      opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
  const auto r = analysis::optimize_program(
      program, initial, make_optimize_options(opts, nullptr));

  if (!opts.out.empty()) {
    std::ofstream file(opts.out);
    if (!file) throw Error("cannot write '" + opts.out + "'");
    file << r.program << '\n';
    std::cerr << "# optimized program written to " << opts.out << '\n';
  }
  if (opts.json) {
    analysis::write_json(std::cout, r.report);
    std::cout << '\n';
  } else if (opts.opt_report) {
    std::cout << r.report;
    if (opts.out.empty()) std::cout << "\n" << r.program << '\n';
  } else {
    // Program on stdout, summary on stderr (pipeline-friendly, like fuse).
    if (opts.out.empty()) std::cout << r.program << '\n';
    std::cerr << "# optimize: " << r.report.fused << " fused ("
              << r.report.chains_found << " chain(s) found), "
              << r.report.rejected_by_cost << " rejected by cost, "
              << r.report.dead_removed << " dead removed, cost "
              << r.report.cost_before << " -> " << r.report.cost_after << '\n';
  }
  return r.report.class_check_ok ? 0 : 1;
}

int cmd_fuse(const std::string& path, const Options& opts) {
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial =
      opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
  std::cout << translate::fuse_reactions(program, initial) << '\n';
  return 0;
}

int cmd_expand(const std::string& path) {
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  std::vector<translate::ExpandSkip> skips;
  std::cout << translate::expand_program(program, &skips) << '\n';
  for (const auto& s : skips) {
    std::cerr << "# warning: '" << s.reaction << "' kept as-is: " << s.reason
              << '\n';
  }
  return 0;
}

int cmd_reconstruct(const std::string& path, const Options& opts) {
  if (!opts.init) throw Error("reconstruct needs --init \"<elements>\"");
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const dataflow::Graph g =
      translate::reconstruct_graph(program, parse_elements(*opts.init));
  dataflow::write_text(std::cout, g);
  // Translation validation: Algorithm 2's output must verify clean of
  // errors (structure, tag discipline, token balance).
  const auto report = analysis::verify_graph(g);
  if (report.errors() > 0) {
    std::cerr << "# translation validation FAILED (" << report.errors()
              << " error(s)):\n" << report;
    return 1;
  }
  return 0;
}

int cmd_opt(const std::string& path) {
  const auto r = dataflow::optimize(load_graph(path));
  dataflow::write_text(std::cout, r.graph);
  std::cerr << "# folded " << r.folded << ", bypassed " << r.bypassed
            << ", removed " << r.removed << " over " << r.iterations
            << " iteration(s)\n";
  return 0;
}

/// Shared lint/verify exit policy: errors always fail; --werror promotes
/// warnings.
int report_exit(const analysis::LintReport& report, bool werror) {
  if (report.errors() > 0) return 1;
  if (werror && report.warnings() > 0) return 1;
  return 0;
}

int cmd_lint(const std::string& path, const Options& opts) {
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial =
      opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
  const auto report = analysis::lint_program(program, initial);
  if (opts.json) {
    analysis::write_json(std::cout, report);
    std::cout << '\n';
  } else {
    std::cout << report;
    if (report.clean()) std::cout << "clean: no findings\n";
  }
  return report_exit(report, opts.werror);
}

int cmd_check(const std::string& path, const Options& opts) {
  if (ends_with(path, ".src") || ends_with(path, ".df")) {
    const auto report = analysis::verify_graph(load_graph(path));
    if (opts.json) {
      std::cout << "{\"verify\":";
      analysis::write_json(std::cout, report);
      std::cout << "}\n";
    } else {
      std::cout << report;
      if (report.clean()) std::cout << "clean: no findings\n";
    }
    return report_exit(report, opts.werror);
  }
  // Gamma side: lint + interference/confluence.
  const gamma::Program program = gamma::dsl::parse_program(read_file(path));
  const gamma::Multiset initial =
      opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
  auto lint = analysis::lint_program(program, initial);
  // Optimizer-side lints: boundedness (divergence risk) and dead reactions
  // the label-flow pass cannot see (unsatisfiable conditions, zero-bound
  // labels). Same report, so --werror and --json pick them up unchanged.
  const auto opt_lints = analysis::optimizer_lints(program, initial);
  lint.findings.insert(lint.findings.end(), opt_lints.findings.begin(),
                       opt_lints.findings.end());
  analysis::InterferenceOptions iopts;
  iopts.seed = opts.seed;
  const auto interference =
      analysis::analyze_interference(program, initial, iopts);
  if (opts.json) {
    std::cout << "{\"lint\":";
    analysis::write_json(std::cout, lint);
    std::cout << ",\"interference\":";
    analysis::write_json(std::cout, interference);
    std::cout << "}\n";
  } else {
    std::cout << lint;
    if (lint.clean()) std::cout << "lint clean: no findings\n";
    std::cout << interference;
  }
  if (interference.has_divergence()) return 1;
  return report_exit(lint, opts.werror);
}

/// Renders one Gamma-side DOT graph (`dot` on .gamma, `viz --format dot`).
void write_gamma_dot(std::ostream& os, const std::string& kind,
                     const gamma::Program& program,
                     const analysis::InterferenceReport& report,
                     const std::string& title) {
  if (kind == "interference") {
    viz::write_interference_dot(os, program, report, title);
  } else if (kind == "classes") {
    viz::write_classes_dot(os, program, report, title);
  } else if (kind == "shards") {
    viz::write_shards_dot(os, program, report, title);
  } else {
    throw Error("unknown --graph '" + kind +
                "' for a .gamma input (want interference|classes|shards)");
  }
}

int cmd_dot(const std::string& path, const Options& opts) {
  if (ends_with(path, ".gamma")) {
    const gamma::Program program = gamma::dsl::parse_program(read_file(path));
    const gamma::Multiset initial =
        opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
    analysis::InterferenceOptions iopts;
    iopts.seed = opts.seed;
    const auto report = analysis::analyze_interference(program, initial, iopts);
    const std::string kind =
        opts.graph_kind.empty() ? "interference" : opts.graph_kind;
    write_gamma_dot(std::cout, kind, program, report, path);
    return 0;
  }
  dataflow::write_dot(std::cout, load_graph(path), path);
  return 0;
}

/// `gammaflow viz`: renders the input (plus an optional or freshly recorded
/// run journal) as one self-contained HTML file, or as DOT via --format dot.
int cmd_viz(const std::string& path, const Options& opts) {
  const bool is_gamma = ends_with(path, ".gamma");
  std::optional<dataflow::Graph> graph;
  std::optional<gamma::Program> program;
  std::optional<analysis::InterferenceReport> report;
  if (is_gamma) {
    program = gamma::dsl::parse_program(read_file(path));
    const gamma::Multiset initial =
        opts.init ? parse_elements(*opts.init) : gamma::Multiset{};
    analysis::InterferenceOptions iopts;
    iopts.seed = opts.seed;
    report = analysis::analyze_interference(*program, initial, iopts);
  } else {
    graph = load_graph(path);
  }

  if (opts.format == "dot") {
    const std::string kind = opts.graph_kind.empty()
                                 ? (is_gamma ? "interference" : "dataflow")
                                 : opts.graph_kind;
    std::ofstream file;
    if (!opts.out.empty()) {
      file.open(opts.out);
      if (!file) throw Error("cannot write '" + opts.out + "'");
    }
    std::ostream& os = opts.out.empty() ? std::cout : file;
    if (kind == "dataflow") {
      if (!graph) throw Error("--graph dataflow needs a .src or .df input");
      dataflow::write_dot(os, *graph, path);
    } else {
      if (!program) {
        throw Error("--graph " + kind + " needs a .gamma input");
      }
      write_gamma_dot(os, kind, *program, *report, path);
    }
    return 0;
  }
  if (opts.format != "html") {
    throw Error("unknown --format '" + opts.format + "' (want html|dot)");
  }

  // Journal: load one, or run the input with recording on. A .gamma run
  // needs --init; without it the fixpoint is immediate and the journal is
  // omitted rather than misleading.
  obs::Journal journal;
  bool have_journal = false;
  if (opts.journal_path) {
    std::ifstream in(*opts.journal_path);
    if (!in) throw Error("cannot open journal '" + *opts.journal_path + "'");
    journal = obs::parse_journal(in);
    have_journal = true;
  } else if (is_gamma && opts.init) {
    obs::RunRecorder rec;
    gamma::RunOptions ropts;
    ropts.seed = opts.seed;
    ropts.compile = opts.compile;
    ropts.batch = opts.batch;
    ropts.record = &rec;
    (void)make_engine(opts.engine)->run(*program, parse_elements(*opts.init),
                                        ropts);
    journal = rec.take();
    have_journal = true;
  } else if (!is_gamma) {
    obs::RunRecorder rec;
    dataflow::DfRunOptions ropts;
    ropts.compile = opts.compile;
    ropts.batch = opts.batch;
    ropts.record = &rec;
    if (opts.engine == "par") {
      (void)dataflow::ParallelEngine().run(*graph, ropts, {});
    } else {
      (void)dataflow::Interpreter().run(*graph, ropts, {});
    }
    journal = rec.take();
    have_journal = true;
  }
  if (have_journal && opts.record_out) dump_journal(journal, *opts.record_out);

  viz::HtmlInputs inputs;
  inputs.title = path;
  inputs.graph = graph ? &*graph : nullptr;
  inputs.program = program ? &*program : nullptr;
  inputs.interference = report ? &*report : nullptr;
  inputs.journal = have_journal ? &journal : nullptr;

  std::string out_path = opts.out;
  if (out_path.empty()) {
    const std::size_t dot_pos = path.find_last_of('.');
    const std::size_t slash = path.find_last_of('/');
    out_path = (dot_pos != std::string::npos &&
                (slash == std::string::npos || dot_pos > slash))
                   ? path.substr(0, dot_pos) + ".html"
                   : path + ".html";
  }
  std::ofstream out(out_path);
  if (!out) throw Error("cannot write '" + out_path + "'");
  viz::write_html(out, inputs);
  std::cerr << "# html written to " << out_path
            << (have_journal ? "" : " (no journal embedded)") << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "help" || first == "--help" || first == "-h") {
      print_usage(std::cout);
      return 0;
    }
  }
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string file = argv[2];
  const Options opts = parse_options(argc, argv, 3);

  if (cmd == "compile") return cmd_compile(file);
  if (cmd == "run") return cmd_run(file, opts);
  if (cmd == "togamma") return cmd_togamma(file);
  if (cmd == "rungamma") return cmd_rungamma(file, opts);
  if (cmd == "fuse") return cmd_fuse(file, opts);
  if (cmd == "expand") return cmd_expand(file);
  if (cmd == "optimize") return cmd_optimize(file, opts);
  if (cmd == "reconstruct") return cmd_reconstruct(file, opts);
  if (cmd == "dot") return cmd_dot(file, opts);
  if (cmd == "viz") return cmd_viz(file, opts);
  if (cmd == "opt") return cmd_opt(file);
  if (cmd == "lint") return cmd_lint(file, opts);
  if (cmd == "check") return cmd_check(file, opts);
  if (cmd == "distrib") return cmd_distrib(file, opts);
  if (cmd == "serve") return cmd_serve(file, opts);
  return usage();
} catch (const std::exception& e) {
  std::cerr << "gammaflow: " << e.what() << '\n';
  return 1;
}
