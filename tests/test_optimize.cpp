// Optimizer passes: folding, identity bypass, dead-code elimination —
// observable preservation on paper graphs, compiled programs, and random
// expression graphs.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/dataflow/optimize.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::dataflow {
namespace {

using expr::BinOp;

TEST(Optimize, Fig1FoldsToSingleConstant) {
  // All of Fig. 1 is constant arithmetic: the whole graph folds to one
  // Const feeding the output.
  const auto r = optimize(paper::fig1_graph());
  EXPECT_EQ(r.graph.node_count(), 2u);
  EXPECT_EQ(r.folded, 3u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("m"), Value(0));
}

TEST(Optimize, Fig2LoopIsIrreducible) {
  // Loop nodes depend on circulating tokens: nothing folds, nothing dies.
  const Graph g = paper::fig2_graph(4, 5, 100, true);
  const auto r = optimize(g);
  EXPECT_EQ(r.graph.node_count(), g.node_count());
  EXPECT_EQ(r.folded + r.bypassed + r.removed, 0u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("x_final"), Value(120));
}

TEST(Optimize, ObserverlessFig2IsEntirelyDead) {
  // The paper's literal Fig. 2 discards everything through unconnected
  // FALSE ports — the optimizer proves it by deleting the whole graph.
  const Graph g = paper::fig2_graph(4, 5, 100, false);
  const auto r = optimize(g);
  EXPECT_EQ(r.graph.node_count(), 0u);
  EXPECT_EQ(r.removed, g.node_count());
}

TEST(Optimize, DeadBranchesPruned) {
  GraphBuilder b;
  auto a = b.constant(Value(3), "a");
  auto c = b.constant(Value(4), "c");
  b.output(b.arith(BinOp::Add, a, c), "kept");
  b.arith(BinOp::Mul, a, c);  // result goes nowhere
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_GE(r.removed, 1u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("kept"), Value(7));
}

TEST(Optimize, IdentityImmediatesBypassed) {
  GraphBuilder b;
  auto x = b.constant(Value(9), "x");
  auto id1 = b.arith_imm(BinOp::Add, x, Value(std::int64_t{0}));
  auto id2 = b.arith_imm(BinOp::Mul, id1, Value(std::int64_t{1}));
  auto id3 = b.arith_imm(BinOp::Div, id2, Value(std::int64_t{1}));
  auto id4 = b.arith_imm(BinOp::Sub, id3, Value(std::int64_t{0}));
  b.output(id4, "y");
  const auto r = optimize(std::move(b).build());
  EXPECT_EQ(r.bypassed, 4u);
  EXPECT_EQ(r.graph.node_count(), 2u);  // const + output
  EXPECT_EQ(Interpreter().run(r.graph).single_output("y"), Value(9));
}

TEST(Optimize, NonIdentityImmediatesKept) {
  GraphBuilder b;
  auto x = b.constant(Value(9), "x");
  b.output(b.arith_imm(BinOp::Sub, x, Value(std::int64_t{1})), "y");
  const auto r = optimize(std::move(b).build(),
                          {.fold_constants = false, .bypass_identities = true});
  EXPECT_EQ(r.bypassed, 0u);
}

TEST(Optimize, ThrowingFoldsArePreservedForRuntime) {
  GraphBuilder b;
  auto x = b.constant(Value(1), "x");
  auto z = b.constant(Value(0), "z");
  b.output(b.arith(BinOp::Div, x, z), "boom");
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_EQ(r.folded, 0u);
  EXPECT_EQ(r.graph.node_count(), g.node_count());
  EXPECT_THROW((void)Interpreter().run(r.graph), TypeError);
}

TEST(Optimize, CmpFoldsToIntConstant) {
  GraphBuilder b;
  auto a = b.constant(Value(3), "a");
  b.output(b.cmp_imm(BinOp::Gt, a, Value(std::int64_t{0})), "flag");
  const auto r = optimize(std::move(b).build());
  EXPECT_EQ(r.folded, 1u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("flag"), Value(1));
}

TEST(Optimize, MergedInputsAreNeverFoldedOrBypassed) {
  // A port with two producers is a runtime merge; folding either away would
  // change semantics.
  GraphBuilder b;
  auto c1 = b.constant(Value(1), "c1");
  auto c2 = b.constant(Value(2), "c2");
  const NodeId inc = b.inctag();
  b.connect(c1, inc, 0, "first");
  b.connect(c2, inc, 0, "second");
  const NodeId relay = b.arith_imm(BinOp::Add, Value(std::int64_t{0}));
  b.connect(GraphBuilder::out(inc), relay, 0);
  // relay has ONE producer (bypassable); give it a merge instead:
  b.connect(c1, relay, 0, "extra");
  const NodeId out = b.output("o");
  b.connect(GraphBuilder::out(relay), out, 0);
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_EQ(r.bypassed, 0u);
}

TEST(Optimize, PassesCanBeDisabledIndividually)  {
  const Graph g = paper::fig1_graph();
  const auto no_fold = optimize(g, {.fold_constants = false});
  EXPECT_EQ(no_fold.folded, 0u);
  const auto no_dce = optimize(
      paper::fig2_graph(2, 2, 2, false), {.eliminate_dead = false});
  EXPECT_EQ(no_dce.removed, 0u);
  EXPECT_EQ(no_dce.graph.node_count(), 12u);  // observer-less Fig. 2
}

TEST(Optimize, CompiledProgramsKeepObservables) {
  const char* sources[] = {
      "int a = 6; int b = 7; m = a * b + 0 * a; output m;",
      "int x = 1; int y = 5; int k = 3; int j = 2;"
      "m = (x + y) - (k * j); output m;",
      "int n = 5; int acc = 0; while (n > 0) { acc = acc + n; n = n - 1; }"
      "output acc;",
  };
  for (const char* src : sources) {
    const Graph g = frontend::compile_source(src);
    const auto before = Interpreter().run(g);
    const auto r = optimize(g);
    const auto after = Interpreter().run(r.graph);
    for (const auto& [name, tokens] : before.outputs) {
      EXPECT_EQ(after.output_values(name), before.output_values(name)) << src;
    }
    EXPECT_LE(r.graph.node_count(), g.node_count());
  }
}

TEST(Optimize, RandomExpressionGraphsFoldCompletely) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = paper::random_expression_graph(12, seed);
    const Value expected = Interpreter().run(g).single_output("m");
    const auto r = optimize(g);
    EXPECT_EQ(r.graph.node_count(), 2u) << seed;  // const + output
    EXPECT_EQ(Interpreter().run(r.graph).single_output("m"), expected) << seed;
  }
}

TEST(Optimize, IterationCapRespected) {
  const auto r = optimize(paper::random_expression_graph(64, 3),
                          {.max_iterations = 1});
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_GT(r.graph.node_count(), 2u);  // one round is not enough to finish
}

}  // namespace
}  // namespace gammaflow::dataflow
