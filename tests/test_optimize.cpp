// Optimizer passes: folding, identity bypass, dead-code elimination —
// observable preservation on paper graphs, compiled programs, and random
// expression graphs.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/dataflow/optimize.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::dataflow {
namespace {

using expr::BinOp;

TEST(Optimize, Fig1FoldsToSingleConstant) {
  // All of Fig. 1 is constant arithmetic: the whole graph folds to one
  // Const feeding the output.
  const auto r = optimize(paper::fig1_graph());
  EXPECT_EQ(r.graph.node_count(), 2u);
  EXPECT_EQ(r.folded, 3u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("m"), Value(0));
}

TEST(Optimize, Fig2LoopIsIrreducible) {
  // Loop nodes depend on circulating tokens: nothing folds, nothing dies.
  const Graph g = paper::fig2_graph(4, 5, 100, true);
  const auto r = optimize(g);
  EXPECT_EQ(r.graph.node_count(), g.node_count());
  EXPECT_EQ(r.folded + r.bypassed + r.removed, 0u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("x_final"), Value(120));
}

TEST(Optimize, ObserverlessFig2IsEntirelyDead) {
  // The paper's literal Fig. 2 discards everything through unconnected
  // FALSE ports — the optimizer proves it by deleting the whole graph.
  const Graph g = paper::fig2_graph(4, 5, 100, false);
  const auto r = optimize(g);
  EXPECT_EQ(r.graph.node_count(), 0u);
  EXPECT_EQ(r.removed, g.node_count());
}

TEST(Optimize, DeadBranchesPruned) {
  GraphBuilder b;
  auto a = b.constant(Value(3), "a");
  auto c = b.constant(Value(4), "c");
  b.output(b.arith(BinOp::Add, a, c), "kept");
  b.arith(BinOp::Mul, a, c);  // result goes nowhere
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_GE(r.removed, 1u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("kept"), Value(7));
}

TEST(Optimize, IdentityImmediatesBypassed) {
  GraphBuilder b;
  auto x = b.constant(Value(9), "x");
  auto id1 = b.arith_imm(BinOp::Add, x, Value(std::int64_t{0}));
  auto id2 = b.arith_imm(BinOp::Mul, id1, Value(std::int64_t{1}));
  auto id3 = b.arith_imm(BinOp::Div, id2, Value(std::int64_t{1}));
  auto id4 = b.arith_imm(BinOp::Sub, id3, Value(std::int64_t{0}));
  b.output(id4, "y");
  const auto r = optimize(std::move(b).build());
  EXPECT_EQ(r.bypassed, 4u);
  EXPECT_EQ(r.graph.node_count(), 2u);  // const + output
  EXPECT_EQ(Interpreter().run(r.graph).single_output("y"), Value(9));
}

TEST(Optimize, NonIdentityImmediatesKept) {
  GraphBuilder b;
  auto x = b.constant(Value(9), "x");
  b.output(b.arith_imm(BinOp::Sub, x, Value(std::int64_t{1})), "y");
  const auto r = optimize(std::move(b).build(),
                          {.fold_constants = false, .bypass_identities = true});
  EXPECT_EQ(r.bypassed, 0u);
}

TEST(Optimize, ThrowingFoldsArePreservedForRuntime) {
  GraphBuilder b;
  auto x = b.constant(Value(1), "x");
  auto z = b.constant(Value(0), "z");
  b.output(b.arith(BinOp::Div, x, z), "boom");
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_EQ(r.folded, 0u);
  EXPECT_EQ(r.graph.node_count(), g.node_count());
  EXPECT_THROW((void)Interpreter().run(r.graph), TypeError);
}

TEST(Optimize, CmpFoldsToIntConstant) {
  GraphBuilder b;
  auto a = b.constant(Value(3), "a");
  b.output(b.cmp_imm(BinOp::Gt, a, Value(std::int64_t{0})), "flag");
  const auto r = optimize(std::move(b).build());
  EXPECT_EQ(r.folded, 1u);
  EXPECT_EQ(Interpreter().run(r.graph).single_output("flag"), Value(1));
}

TEST(Optimize, MergedInputsAreNeverFoldedOrBypassed) {
  // A port with two producers is a runtime merge; folding either away would
  // change semantics.
  GraphBuilder b;
  auto c1 = b.constant(Value(1), "c1");
  auto c2 = b.constant(Value(2), "c2");
  const NodeId inc = b.inctag();
  b.connect(c1, inc, 0, "first");
  b.connect(c2, inc, 0, "second");
  const NodeId relay = b.arith_imm(BinOp::Add, Value(std::int64_t{0}));
  b.connect(GraphBuilder::out(inc), relay, 0);
  // relay has ONE producer (bypassable); give it a merge instead:
  b.connect(c1, relay, 0, "extra");
  const NodeId out = b.output("o");
  b.connect(GraphBuilder::out(relay), out, 0);
  const Graph g = std::move(b).build();
  const auto r = optimize(g);
  EXPECT_EQ(r.bypassed, 0u);
}

TEST(Optimize, PassesCanBeDisabledIndividually)  {
  const Graph g = paper::fig1_graph();
  const auto no_fold = optimize(g, {.fold_constants = false});
  EXPECT_EQ(no_fold.folded, 0u);
  const auto no_dce = optimize(
      paper::fig2_graph(2, 2, 2, false), {.eliminate_dead = false});
  EXPECT_EQ(no_dce.removed, 0u);
  EXPECT_EQ(no_dce.graph.node_count(), 12u);  // observer-less Fig. 2
}

TEST(Optimize, CompiledProgramsKeepObservables) {
  const char* sources[] = {
      "int a = 6; int b = 7; m = a * b + 0 * a; output m;",
      "int x = 1; int y = 5; int k = 3; int j = 2;"
      "m = (x + y) - (k * j); output m;",
      "int n = 5; int acc = 0; while (n > 0) { acc = acc + n; n = n - 1; }"
      "output acc;",
  };
  for (const char* src : sources) {
    const Graph g = frontend::compile_source(src);
    const auto before = Interpreter().run(g);
    const auto r = optimize(g);
    const auto after = Interpreter().run(r.graph);
    for (const auto& [name, tokens] : before.outputs) {
      EXPECT_EQ(after.output_values(name), before.output_values(name)) << src;
    }
    EXPECT_LE(r.graph.node_count(), g.node_count());
  }
}

TEST(Optimize, RandomExpressionGraphsFoldCompletely) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = paper::random_expression_graph(12, seed);
    const Value expected = Interpreter().run(g).single_output("m");
    const auto r = optimize(g);
    EXPECT_EQ(r.graph.node_count(), 2u) << seed;  // const + output
    EXPECT_EQ(Interpreter().run(r.graph).single_output("m"), expected) << seed;
  }
}

TEST(Optimize, IterationCapRespected) {
  const auto r = optimize(paper::random_expression_graph(64, 3),
                          {.max_iterations = 1});
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_GT(r.graph.node_count(), 2u);  // one round is not enough to finish
}

}  // namespace
}  // namespace gammaflow::dataflow

// ---- Gamma-side optimizer: fusion planner, cost model, boundedness ------

#include "gammaflow/analysis/optimize.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow {
namespace {

using analysis::Growth;
using analysis::OptimizeOptions;
using gamma::Element;
using gamma::Multiset;
using gamma::Program;

Multiset gamma_fixpoint(const Program& p, const Multiset& m,
                        const std::string& engine, std::uint64_t seed = 7) {
  gamma::RunOptions opts;
  opts.seed = seed;
  opts.workers = 3;
  std::unique_ptr<gamma::Engine> eng;
  if (engine == "seq") eng = std::make_unique<gamma::SequentialEngine>();
  if (engine == "idx") eng = std::make_unique<gamma::IndexedEngine>();
  if (engine == "par") eng = std::make_unique<gamma::ParallelEngine>();
  const auto r = eng->run(p, m, opts);
  EXPECT_EQ(r.outcome, Outcome::Completed);
  return r.final_multiset;
}

Multiset labeled(std::initializer_list<std::pair<std::int64_t, const char*>>
                     elements) {
  Multiset m;
  for (const auto& [v, l] : elements) {
    m.add(Element{Value(v), Value(std::string(l))});
  }
  return m;
}

TEST(GammaOptimize, Fig1AutoFusesToPaperReducedForm) {
  // The planner must find both feed chains (R1 -'B2'-> R3, R2 -'C2'-> R3)
  // and collapse Fig. 1's three reactions into the paper's one-reaction Rd1
  // shape: arity 4, single unconditional branch.
  const auto r = analysis::optimize_program(paper::fig1_gamma(),
                                            paper::fig1_initial());
  EXPECT_EQ(r.report.fused, 2u);
  EXPECT_EQ(r.report.dead_removed, 0u);
  EXPECT_TRUE(r.report.class_check_ok);
  ASSERT_EQ(r.program.all_reactions().size(), 1u);
  EXPECT_EQ(r.program.all_reactions()[0]->arity(), 4u);

  // Identical fixpoint to the original AND to the hand-reduced Rd1.
  const Multiset expected =
      gamma_fixpoint(paper::fig1_gamma(), paper::fig1_initial(), "idx");
  EXPECT_EQ(gamma_fixpoint(r.program, paper::fig1_initial(), "idx"), expected);
  EXPECT_EQ(gamma_fixpoint(paper::fig1_reduced_gamma(), paper::fig1_initial(),
                           "idx"),
            expected);
}

TEST(GammaOptimize, TelemetryCountersRecordDecisions) {
  obs::Telemetry tel;
  OptimizeOptions opts;
  opts.telemetry = &tel;
  (void)analysis::optimize_program(paper::fig1_gamma(), paper::fig1_initial(),
                                   opts);
  EXPECT_EQ(tel.stats().counter("opt.fused"), 2u);
  EXPECT_GE(tel.stats().counter("opt.chains_found"), 2u);
  EXPECT_EQ(tel.stats().counter("opt.rejected_by_cost"), 0u);
}

TEST(GammaOptimize, GuardedProducerFoldsGuardIntoEveryBranch) {
  // A producer with one guard over its own binders still fuses: the guard
  // is conjoined into each consumer branch, and the consumer's else branch
  // becomes an explicit negation. Exercise both guard outcomes.
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'], [y, 'B'] by [x + y, 'Mid'] if x > y\n"
      "C = replace [v, 'Mid'], [z, 'D'] by [v * z, 'Out'] if v > 10"
      " by [v + z, 'Out'] else");
  const Multiset hot = labeled({{9, "A"}, {3, "B"}, {2, "D"}});
  const Multiset cold = labeled({{3, "A"}, {9, "B"}, {2, "D"}});

  for (const Multiset& init : {hot, cold}) {
    const auto r = analysis::optimize_program(p, init);
    EXPECT_EQ(r.report.fused, 1u);
    ASSERT_EQ(r.report.rewrites.size(), 1u);
    EXPECT_TRUE(r.report.rewrites[0].conditional_producer);
    for (const char* engine : {"seq", "idx", "par"}) {
      EXPECT_EQ(gamma_fixpoint(r.program, init, engine),
                gamma_fixpoint(p, init, engine))
          << engine;
    }
  }
}

TEST(GammaOptimize, SharedIntermediateLabelBlocksFusion) {
  // 'Mid' has two consumers: not private (S1), so nothing may fuse.
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'] by [x + 1, 'Mid']\n"
      "C1 = replace [v, 'Mid'] by [v * 2, 'Out']\n"
      "C2 = replace [v, 'Mid'] by [v * 3, 'Out']");
  const auto r =
      analysis::optimize_program(p, labeled({{1, "A"}}));
  EXPECT_EQ(r.report.fused, 0u);
  EXPECT_EQ(r.program.all_reactions().size(), 3u);
}

TEST(GammaOptimize, InitialAndPreservedLabelsBlockFusion) {
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'] by [x + 1, 'Mid']\n"
      "C = replace [v, 'Mid'] by [v * 2, 'Out']");
  // 'Mid' present initially: the fused form would ignore those elements.
  const auto seeded = analysis::optimize_program(
      p, labeled({{1, "A"}, {5, "Mid"}}));
  EXPECT_EQ(seeded.report.fused, 0u);
  // 'Mid' preserved by request: the caller wants to observe it.
  OptimizeOptions opts;
  opts.preserve_labels = {"Mid"};
  const auto preserved =
      analysis::optimize_program(p, labeled({{1, "A"}}), opts);
  EXPECT_EQ(preserved.report.fused, 0u);
}

TEST(GammaOptimize, PartialConsumerBlocksFusion) {
  // C has no else: a 'Mid' element with v <= 10 parks at the fixpoint, a
  // state the fused program cannot represent (S6).
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'] by [x + 1, 'Mid']\n"
      "C = replace [v, 'Mid'] by [v * 2, 'Out'] if v > 10");
  const auto r = analysis::optimize_program(p, labeled({{1, "A"}}));
  EXPECT_EQ(r.report.fused, 0u);
  const Multiset init = labeled({{1, "A"}});
  EXPECT_EQ(gamma_fixpoint(r.program, init, "idx"),
            gamma_fixpoint(p, init, "idx"));
}

TEST(GammaOptimize, MaxStepsCapsAppliedFusions) {
  OptimizeOptions opts;
  opts.max_steps = 1;
  const auto r = analysis::optimize_program(paper::fig1_gamma(),
                                            paper::fig1_initial(), opts);
  EXPECT_EQ(r.report.fused, 1u);
  EXPECT_EQ(r.program.all_reactions().size(), 2u);
}

TEST(GammaOptimize, CostModelRejectsWhenParallelismPays) {
  // With one worker the fused form always wins (less total work). With far
  // more workers than matches, fusing halves the concurrency the engine
  // could have exploited — the cost model must say no.
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'], [y, 'B'] by [x + y, 'Mid']\n"
      "C = replace [v, 'Mid'], [z, 'D'] by [v * z, 'Out']");
  const Multiset init = labeled({{1, "A"}, {2, "B"}, {3, "D"}});

  OptimizeOptions wide;
  wide.cost.workers = 64;
  const auto rejected = analysis::optimize_program(p, init, wide);
  EXPECT_EQ(rejected.report.fused, 0u);
  EXPECT_GE(rejected.report.rejected_by_cost, 1u);

  // Same program, cost model off: the safe rewrite applies regardless.
  wide.use_cost_model = false;
  const auto forced = analysis::optimize_program(p, init, wide);
  EXPECT_EQ(forced.report.fused, 1u);
  EXPECT_EQ(forced.report.rejected_by_cost, 0u);
}

TEST(GammaOptimize, AppliedRewritesNeverRegressTheCostModel) {
  // Invariant of the gate: every applied rewrite improved (or matched) the
  // modeled stage time, and the whole-program estimate did not regress.
  for (unsigned workers : {1u, 2u, 8u}) {
    OptimizeOptions opts;
    opts.cost.workers = workers;
    const auto r = analysis::optimize_program(paper::fig1_gamma(),
                                              paper::fig1_initial(), opts);
    for (const auto& rw : r.report.rewrites) {
      if (rw.status != analysis::RewriteStatus::Applied) continue;
      EXPECT_LE(rw.cost_after, rw.cost_before) << "workers=" << workers;
    }
    EXPECT_LE(r.report.cost_after, r.report.cost_before)
        << "workers=" << workers;
  }
}

TEST(GammaOptimize, CostScalesMonotonicallyWithParams) {
  const Program fig1 = paper::fig1_gamma();
  const auto bounds =
      analysis::analyze_boundedness(fig1, paper::fig1_initial());
  const auto* r1 = fig1.all_reactions()[0];
  analysis::CostParams base;
  const auto c0 = analysis::estimate_reaction_cost(*r1, bounds, base);
  analysis::CostParams pricier = base;
  pricier.c_match *= 2;
  EXPECT_GT(analysis::estimate_reaction_cost(*r1, bounds, pricier).per_fire,
            c0.per_fire);
  pricier = base;
  pricier.c_store *= 2;
  EXPECT_GT(analysis::estimate_reaction_cost(*r1, bounds, pricier).per_fire,
            c0.per_fire);
  // More workers can only shrink a stage's modeled time.
  const auto& stage = fig1.stages()[0];
  analysis::CostParams wide = base;
  wide.workers = 8;
  EXPECT_LE(analysis::estimate_stage_cost(stage, bounds, wide).time,
            analysis::estimate_stage_cost(stage, bounds, base).time);
}

TEST(GammaOptimize, BoundednessFig1IsShrinkingWithAbsoluteBounds) {
  const auto b =
      analysis::analyze_boundedness(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_TRUE(b.initial_known);
  EXPECT_EQ(b.overall, Growth::Shrinking);
  EXPECT_EQ(b.labels.at("A1").growth, Growth::Shrinking);
  EXPECT_EQ(b.labels.at("A1").bound, 1u);
  EXPECT_EQ(b.labels.at("B2").growth, Growth::Bounded);
  EXPECT_EQ(b.labels.at("B2").bound, 1u);
  EXPECT_EQ(b.labels.at("m").bound, 1u);
}

TEST(GammaOptimize, SelfFeedingReactionIsPossiblyUnbounded) {
  // The classic runaway: 'A' keeps its live population at one element while
  // minting a fresh 'B' every firing. The cumulative firing bound must
  // diverge — pinning 'A' at its seed and dividing would unsoundly bound
  // the firings (and 'B') at one.
  const Program p = gamma::dsl::parse_program(
      "R = replace [x, 'A'] by [x + 1, 'A'], [x, 'B']");
  const auto b = analysis::analyze_boundedness(p, labeled({{0, "A"}}));
  EXPECT_EQ(b.labels.at("A").growth, Growth::Shrinking);
  EXPECT_EQ(b.labels.at("A").bound, 1u);
  EXPECT_EQ(b.labels.at("B").growth, Growth::PossiblyUnbounded);
  EXPECT_EQ(b.overall, Growth::PossiblyUnbounded);
}

TEST(GammaOptimize, UnlabeledDuplicatorIsPossiblyUnbounded) {
  const Program p = gamma::dsl::parse_program("R = replace x by x, x");
  Multiset m;
  m.add(Element{Value(1)});
  EXPECT_EQ(analysis::analyze_boundedness(p, m).overall,
            Growth::PossiblyUnbounded);
}

TEST(GammaOptimize, EmptyInitialKeepsBoundsSymbolic) {
  const Program p = gamma::dsl::parse_program(
      "P = replace [x, 'A'] by [x + 1, 'Mid']\n"
      "C = replace [v, 'Mid'] by [v * 2, 'Out']");
  const auto b = analysis::analyze_boundedness(p, Multiset{});
  EXPECT_FALSE(b.initial_known);
  // Growth signs still hold; no label is unbounded here.
  EXPECT_EQ(b.overall, Growth::Bounded);
  // And cardinality-driven dead elimination must not fire from symbolic
  // seeds ('A' would look dead only if we trusted a zero count).
  const auto r = analysis::optimize_program(p, Multiset{});
  EXPECT_EQ(r.report.dead_removed, 0u);
}

TEST(GammaOptimize, DeadReactionsAreRemoved) {
  const Program p = gamma::dsl::parse_program(
      "Live = replace [x, 'A'] by [x + 1, 'Out']\n"
      "Never = replace [x, 'A'] by [x, 'Out'] if 1 > 2\n"
      "Orphan = replace [x, 'Ghost'] by [x, 'Out']");
  const auto r = analysis::optimize_program(p, labeled({{1, "A"}}));
  EXPECT_EQ(r.report.dead_removed, 2u);
  ASSERT_EQ(r.program.all_reactions().size(), 1u);
  EXPECT_EQ(r.program.all_reactions()[0]->name(), "Live");
  const Multiset init = labeled({{1, "A"}});
  EXPECT_EQ(gamma_fixpoint(r.program, init, "idx"),
            gamma_fixpoint(p, init, "idx"));
}

TEST(GammaOptimize, LintsFlagDivergenceAndDeadConditions) {
  const Program p = gamma::dsl::parse_program(
      "Runaway = replace [x, 'A'] by [x + 1, 'A'], [x, 'B']\n"
      "Never = replace [x, 'A'] by [x, 'Out'] if 1 > 2");
  const auto lints = analysis::optimizer_lints(p, labeled({{0, "A"}}));
  EXPECT_FALSE(lints.of("possibly-unbounded-label").empty());
  EXPECT_FALSE(lints.of("unsatisfiable-reaction").empty());
}

TEST(GammaOptimize, DifferentialCorpus500Seeds) {
  // 500 random imperative programs through compile -> Algorithm 1; the
  // optimized Gamma program must reach the exact fixpoint of the original
  // on every engine (the optimizer may fuse, reject, or no-op — identity
  // of the final store is the contract either way). Every 10th seed also
  // crosses the distributed cluster.
  std::size_t total_fused = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto conv = translate::dataflow_to_gamma(
        frontend::compile_source(paper::random_source_program(seed)));
    const auto opt = analysis::optimize_program(conv.program, conv.initial);
    ASSERT_TRUE(opt.report.class_check_ok);
    total_fused += opt.report.fused;

    const Multiset expected =
        gamma_fixpoint(conv.program, conv.initial, "idx", seed);
    for (const char* engine : {"seq", "idx", "par"}) {
      EXPECT_EQ(gamma_fixpoint(opt.program, conv.initial, engine, seed),
                expected)
          << engine;
    }
    if (seed % 10 == 0) {
      distrib::ClusterOptions copts;
      copts.nodes = 3;
      copts.seed = seed;
      const auto cluster =
          distrib::run_distributed(opt.program, conv.initial, copts);
      EXPECT_EQ(cluster.final_multiset, expected);
    }
  }
  // The corpus is not vacuous: translated expression chains do fuse.
  EXPECT_GT(total_fused, 0u);
}

}  // namespace
}  // namespace gammaflow
