// Tests for the common substrate: label interning, RNG determinism, stats,
// thread pool, MPSC queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "gammaflow/common/label.hpp"
#include "gammaflow/common/mpsc_queue.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/common/thread_pool.hpp"

namespace gammaflow {
namespace {

TEST(Label, InterningIsIdempotent) {
  Label a("edge_A1");
  Label b("edge_A1");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "edge_A1");
}

TEST(Label, DistinctNamesDistinctIds) {
  Label a("lbl_one");
  Label b("lbl_two");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(Label, DefaultIsEmpty) {
  Label l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.str(), "");
  EXPECT_EQ(l, Label(""));
}

TEST(Label, OrderingFollowsCreation) {
  Label a("order_first");
  Label b("order_second");
  EXPECT_TRUE(a < b);
}

TEST(Label, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kNames = 50;
  std::vector<std::vector<Label::Id>> seen(kThreads,
                                           std::vector<Label::Id>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            Label("conc_" + std::to_string(i)).id();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  Rng a2(5);
  Rng child2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child(), child2());
  // Parent and child streams should diverge.
  Rng parent(5);
  (void)parent();  // split consumed one draw
  int same = 0;
  Rng c3 = Rng(5).split();
  for (int i = 0; i < 32; ++i) {
    if (parent() == c3()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UsableWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(9);
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Summary, WelfordMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.observe(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesSingleStream) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.observe(x);
    (i % 2 == 0 ? a : b).observe(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.observe(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Summary, MergeDisjointRangesPreservesMoments) {
  // Two summaries over disjoint value ranges: the merge must agree with one
  // stream over the union on every exposed moment.
  Summary low, high, all;
  for (int i = 0; i < 50; ++i) {
    low.observe(i);
    all.observe(i);
  }
  for (int i = 1000; i < 1100; ++i) {
    high.observe(i);
    all.observe(i);
  }
  low.merge(high);
  EXPECT_EQ(low.count(), all.count());
  EXPECT_NEAR(low.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(low.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(low.min(), 0.0);
  EXPECT_DOUBLE_EQ(low.max(), 1099.0);
}

TEST(Summary, MergeTwoEmptiesStaysEmpty) {
  Summary a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatsRegistry, RecordAndQuery) {
  StatsRegistry reg;
  reg.record("latency", 1.0);
  reg.record("latency", 3.0);
  reg.count("fires");
  reg.count("fires", 4);
  EXPECT_EQ(reg.summary("latency").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.summary("latency").mean(), 2.0);
  EXPECT_EQ(reg.counter("fires"), 5u);
  EXPECT_EQ(reg.counter("missing"), 0u);
  EXPECT_EQ(reg.summary("missing").count(), 0u);
  reg.clear();
  EXPECT_EQ(reg.counter("fires"), 0u);
}

TEST(StatsRegistry, ConcurrentRecordAndCount) {
  StatsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kOps; ++i) {
        reg.count("ops");
        reg.record("value", static_cast<double>(i));
        reg.hist("latency").observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  constexpr auto kTotal = static_cast<std::uint64_t>(kThreads) * kOps;
  EXPECT_EQ(reg.counter("ops"), kTotal);
  EXPECT_EQ(reg.summary("value").count(), kTotal);
  EXPECT_DOUBLE_EQ(reg.summary("value").min(), 0.0);
  EXPECT_DOUBLE_EQ(reg.summary("value").max(), kOps - 1);
  EXPECT_EQ(reg.snapshot().histograms.at("latency").count, kTotal);
}

TEST(StatsRegistry, GlobalRegistryIsASingleton) {
  global_stats().count("test_common.global_probe");
  EXPECT_GE(global_stats().counter("test_common.global_probe"), 1u);
}

TEST(Counter, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.get(), 40000u);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(MpscQueue, FifoOrderSingleProducer) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, DrainEmptiesQueue) {
  MpscQueue<int> q;
  q.push(1);
  q.push(2);
  std::vector<int> out;
  EXPECT_EQ(q.drain(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, ConcurrentProducersDeliverAll) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::set<int> received;
  std::size_t count = 0;
  while (count < kProducers * kPerProducer) {
    if (auto v = q.try_pop()) {
      received.insert(*v);
      ++count;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace gammaflow
