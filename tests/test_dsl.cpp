// Gamma DSL (Fig. 3 grammar): parsing the paper's listings, error handling,
// print->parse round trips.
#include <gtest/gtest.h>

#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::gamma::dsl {
namespace {

TEST(Dsl, ParsesEq2MinReaction) {
  const Reaction r = parse_reaction("R = replace x, y by x where x < y");
  EXPECT_EQ(r.name(), "R");
  EXPECT_EQ(r.arity(), 2u);
  ASSERT_EQ(r.branches().size(), 1u);
  EXPECT_NE(r.branches()[0].condition, nullptr);
  EXPECT_EQ(r.branches()[0].outputs.size(), 1u);
}

TEST(Dsl, ParsesPaperR1) {
  const Reaction r = parse_reaction(
      "R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']");
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.patterns()[0], Pattern::labeled("id1", "A1"));
  EXPECT_EQ(r.patterns()[1], Pattern::labeled("id2", "B1"));
  ASSERT_EQ(r.branches().size(), 1u);
  EXPECT_EQ(r.branches()[0].outputs[0][0]->to_string(), "id1 + id2");
  EXPECT_EQ(r.branches()[0].outputs[0][1]->literal(), Value("B2"));
}

TEST(Dsl, ParsesPaperR16WithIfElseAndByZero) {
  const Reaction r = parse_reaction(R"(
    R16 = replace [id1,'B13',v], [id2,'B15',v]
          by [id1,'B17',v]
          if id2 == 1
          by 0
          else
  )");
  ASSERT_EQ(r.branches().size(), 2u);
  EXPECT_NE(r.branches()[0].condition, nullptr);
  EXPECT_EQ(r.branches()[0].outputs.size(), 1u);
  EXPECT_TRUE(r.branches()[1].is_else);
  EXPECT_TRUE(r.branches()[1].outputs.empty());  // by 0
}

TEST(Dsl, ParsesCapitalizedIf) {
  // The paper writes "If id1 > 0".
  const Reaction r = parse_reaction(
      "R = replace [id1,'B12',v] by [1,'B14',v] If id1 > 0 by 0 else");
  ASSERT_EQ(r.branches().size(), 2u);
}

TEST(Dsl, ParsesLabelVariableWithDisjunction) {
  const Reaction r = parse_reaction(R"(
    R11 = replace [id1, x, v]
          by [id1, 'A12', v + 1]
          if (x == 'A1') or (x == 'A11')
  )");
  EXPECT_TRUE(r.patterns()[0].fields()[1].is_binder());
  EXPECT_EQ(r.branches()[0].condition->to_string(),
            "x == 'A1' or x == 'A11'");
}

TEST(Dsl, WhereIsSynonymForIf) {
  const Reaction a = parse_reaction("R = replace x, y by x where x < y");
  const Reaction b = parse_reaction("R = replace x, y by x if x < y");
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Dsl, ByZeroVersusLiteralZeroTuple) {
  const Reaction nothing = parse_reaction("R = replace x by 0 where x > 5");
  EXPECT_TRUE(nothing.branches()[0].outputs.empty());
  const Reaction zero = parse_reaction("R = replace x by [0] where x > 5");
  ASSERT_EQ(zero.branches()[0].outputs.size(), 1u);
  EXPECT_EQ(zero.branches()[0].outputs[0][0]->literal(), Value(0));
}

TEST(Dsl, ProgramJuxtapositionIsParallel) {
  const Program p = parse_program(R"(
    R1 = replace [x,'a'] by [x,'b']
    R2 = replace [x,'b'] by [x,'c']
  )");
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.reaction_count(), 2u);
}

TEST(Dsl, PipeOperatorIsParallel) {
  const Program p = parse_program(
      "R1 = replace [x,'a'] by [x,'b'] | R2 = replace [x,'b'] by [x,'c']");
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.reaction_count(), 2u);
}

TEST(Dsl, SemicolonStartsNewStage) {
  const Program p = parse_program(
      "R1 = replace [x,'a'] by [x,'b'] ; R2 = replace [x,'b'] by [x,'c']");
  EXPECT_EQ(p.stage_count(), 2u);
}

TEST(Dsl, DuplicateReactionNamesRejected) {
  EXPECT_THROW((void)parse_program(R"(
    R = replace x by 0 where x > 0
    R = replace x by 0 where x < 0
  )"),
               ProgramError);
}

TEST(Dsl, EmptyProgramRejected) {
  EXPECT_THROW((void)parse_program(""), Error);
  EXPECT_THROW((void)parse_program("# just a comment"), Error);
}

TEST(Dsl, SyntaxErrorsCarryLocation) {
  try {
    (void)parse_program("R1 = replace [x,, 'a'] by [x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_GT(e.column(), 1);
  }
}

TEST(Dsl, MissingByRejected) {
  EXPECT_THROW((void)parse_reaction("R = replace x, y"), ParseError);
}

TEST(Dsl, MissingAssignRejected) {
  EXPECT_THROW((void)parse_reaction("R replace x by x"), ParseError);
}

TEST(Dsl, TrailingGarbageInReactionRejected) {
  EXPECT_THROW((void)parse_reaction("R = replace x by x ]"), ParseError);
}

TEST(Dsl, NegativeLiteralInPattern) {
  const Reaction r = parse_reaction("R = replace [x, -1] by [x, 0]");
  EXPECT_EQ(r.patterns()[0].fields()[1].value(), Value(-1));
}

TEST(Dsl, ElseCannotPrecedeIf) {
  EXPECT_THROW((void)parse_reaction(R"(
    R = replace x, y
        by x else
        by y if x < y
  )"),
               ProgramError);
}

TEST(Dsl, CommentsInsidePrograms) {
  const Program p = parse_program(R"(
    # the min element program, Eq. (2)
    R = replace x, y
        by x          # keep the smaller
        where x < y
  )");
  EXPECT_EQ(p.reaction_count(), 1u);
}

// Round trip: print(parse(text)) re-parses to an identical print.
class DslRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DslRoundTrip, PrintParsePrintFixpoint) {
  const Program p1 = parse_program(GetParam());
  const std::string s1 = print(p1);
  const Program p2 = parse_program(s1);
  EXPECT_EQ(print(p2), s1) << "printed form:\n" << s1;
  EXPECT_EQ(p2.reaction_count(), p1.reaction_count());
  EXPECT_EQ(p2.stage_count(), p1.stage_count());
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DslRoundTrip,
    ::testing::Values(
        "R = replace x, y by x where x < y",
        "R1 = replace [id1,'A1'], [id2,'B1'] by [id1 + id2, 'B2']",
        "Rd1 = replace [a,'A1'], [b,'B1'], [c,'C1'], [d,'D1'] "
        "by [(a + b) - (c * d), 'm']",
        "S = replace [d,'D',v], [c,'C',v] by [d,'T',v] if c == 1 by 0 else",
        "A = replace [x,'p'] by [x,'q'] ; B = replace [x,'q'] by [x,'r']",
        "I = replace [id1, x, v] by [id1,'A12', v + 1] "
        "if (x == 'A1') or (x == 'A11')"));

TEST(Dsl, PaperListingsRoundTrip) {
  for (const Program& p :
       {paper::fig1_gamma(), paper::fig2_gamma(), paper::fig1_reduced_gamma(),
        paper::fig2_reduced_gamma()}) {
    const std::string s = print(p);
    const Program again = parse_program(s);
    EXPECT_EQ(print(again), s);
    EXPECT_EQ(again.reaction_count(), p.reaction_count());
  }
}

}  // namespace
}  // namespace gammaflow::gamma::dsl
