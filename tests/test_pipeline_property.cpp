// Whole-pipeline property tests: random imperative programs through every
// stage — compile, optimize, both dataflow engines, Algorithm 1, all three
// Gamma engines, the distributed cluster — must agree on every observable.
// Plus trace-replay validation of engine runs.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/dataflow/optimize.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/replay.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/equivalence.hpp"

namespace gammaflow {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, AllStagesAgreeOnObservables) {
  const std::uint64_t seed = GetParam();
  const std::string source = paper::random_source_program(seed);
  SCOPED_TRACE("source:\n" + source);

  const dataflow::Graph g = frontend::compile_source(source);
  const auto reference = dataflow::Interpreter().run(g);

  // Parallel dataflow engine.
  dataflow::DfRunOptions dopts;
  dopts.workers = 3;
  const auto par = dataflow::ParallelEngine().run(g, dopts);
  for (const auto& [name, tokens] : reference.outputs) {
    EXPECT_EQ(par.output_values(name), reference.output_values(name)) << name;
  }

  // Optimizer.
  const auto opt = dataflow::optimize(g);
  const auto opt_run = dataflow::Interpreter().run(opt.graph);
  for (const auto& [name, tokens] : reference.outputs) {
    EXPECT_EQ(opt_run.output_values(name), reference.output_values(name))
        << name;
  }

  // Memoized run.
  dataflow::DfRunOptions mopts;
  mopts.memoize = true;
  const auto memo = dataflow::Interpreter().run(g, mopts);
  for (const auto& [name, tokens] : reference.outputs) {
    EXPECT_EQ(memo.output_values(name), reference.output_values(name)) << name;
  }

  // Algorithm 1 + every Gamma engine.
  const auto rep = translate::check_equivalence_seeds(g, seed, 3);
  EXPECT_TRUE(rep.equivalent) << rep.detail;

  // Distributed cluster on the converted program.
  const auto conv = translate::dataflow_to_gamma(g);
  distrib::ClusterOptions copts;
  copts.nodes = 3;
  copts.seed = seed;
  const auto cluster =
      distrib::run_distributed(conv.program, conv.initial, copts);
  for (const auto& [output, labels] : conv.output_labels) {
    for (const std::string& label : labels) {
      EXPECT_EQ(translate::observed_elements(cluster.final_multiset, label),
                translate::observed_elements(rep.gamma_result.final_multiset,
                                             label))
          << output << '/' << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{25}));

TEST(PipelineProperty, LooplessProgramsSweep) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const std::string source = paper::random_source_program(seed, false);
    const dataflow::Graph g = frontend::compile_source(source);
    const auto rep = translate::check_equivalence_seeds(g, seed, 2);
    EXPECT_TRUE(rep.equivalent) << source << "\n" << rep.detail;
  }
}

// ---- trace replay validation ----

TEST(Replay, SequentialEngineTraceReplays) {
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(5, 3, 10, true));
  gamma::RunOptions opts;
  opts.record_trace = true;
  const auto run =
      gamma::SequentialEngine().run(conv.program, conv.initial, opts);
  EXPECT_TRUE(gamma::validate_run(conv.initial, run));
}

TEST(Replay, IndexedEngineTraceReplays) {
  const auto p = gamma::dsl::parse_program(
      "R = replace x, y by [x - y], [y] where x > y");
  const gamma::Multiset m{gamma::Element{Value(12)}, gamma::Element{Value(18)},
                          gamma::Element{Value(30)}};
  gamma::RunOptions opts;
  opts.record_trace = true;
  const auto run = gamma::IndexedEngine().run(p, m, opts);
  EXPECT_TRUE(gamma::validate_run(m, run));
  EXPECT_EQ(gamma::replay_trace(m, run.trace), run.final_multiset);
}

TEST(Replay, ParallelEngineTraceIsLinearizable) {
  // The recorded commit order must be a valid sequential schedule — the
  // linearizability witness for the optimistic engine.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  gamma::Multiset m;
  for (std::int64_t i = 1; i <= 200; ++i) m.add(gamma::Element{Value(i)});
  gamma::RunOptions opts;
  opts.record_trace = true;
  opts.workers = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    opts.seed = seed;
    const auto run = gamma::ParallelEngine().run(p, m, opts);
    EXPECT_TRUE(gamma::validate_run(m, run)) << "seed " << seed;
  }
}

TEST(Replay, CorruptTraceIsRejected) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m{gamma::Element{Value(1)}, gamma::Element{Value(2)}};
  gamma::RunOptions opts;
  opts.record_trace = true;
  auto run = gamma::IndexedEngine().run(p, m, opts);
  ASSERT_EQ(run.trace.size(), 1u);
  run.trace[0].consumed[0] = gamma::Element{Value(99)};  // never existed
  EXPECT_THROW((void)gamma::replay_trace(m, run.trace), EngineError);
}

TEST(Replay, EmptyTraceIsIdentity) {
  const gamma::Multiset m{gamma::Element{Value(7)}};
  EXPECT_EQ(gamma::replay_trace(m, {}), m);
}

}  // namespace
}  // namespace gammaflow
