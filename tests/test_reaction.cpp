// Reaction semantics: validation, branch selection (if/else/where), firing,
// "by 0", shrink detection.
#include <gtest/gtest.h>

#include "gammaflow/expr/parser.hpp"
#include "gammaflow/gamma/reaction.hpp"

namespace gammaflow::gamma {
namespace {

using expr::parse_expression;

std::vector<expr::ExprPtr> tuple(std::initializer_list<const char*> fields) {
  std::vector<expr::ExprPtr> out;
  for (const char* f : fields) out.push_back(parse_expression(f));
  return out;
}

Reaction min_reaction() {
  // replace x, y by x where x < y  (Eq. (2) of the paper)
  return Reaction("Rmin", {Pattern::var("x"), Pattern::var("y")},
                  {Branch::when(parse_expression("x < y"), {tuple({"x"})})});
}

TEST(Reaction, ValidationRejectsEmptyReplaceList) {
  EXPECT_THROW(Reaction("R", {}, {Branch::unconditional({})}), ProgramError);
}

TEST(Reaction, ValidationRejectsNoBranches) {
  EXPECT_THROW(Reaction("R", {Pattern::var("x")}, {}), ProgramError);
}

TEST(Reaction, ValidationRejectsUnboundOutputVariable) {
  EXPECT_THROW(Reaction("R", {Pattern::var("x")},
                        {Branch::unconditional({tuple({"y"})})}),
               ProgramError);
}

TEST(Reaction, ValidationRejectsUnboundConditionVariable) {
  EXPECT_THROW(Reaction("R", {Pattern::var("x")},
                        {Branch::when(parse_expression("q > 0"), {})}),
               ProgramError);
}

TEST(Reaction, ValidationRejectsElseNotLast) {
  EXPECT_THROW(
      Reaction("R", {Pattern::var("x")},
               {Branch::otherwise({}),
                Branch::when(parse_expression("x > 0"), {tuple({"x"})})}),
      ProgramError);
}

TEST(Reaction, ValidationRejectsUnconditionalAmongOthers) {
  EXPECT_THROW(Reaction("R", {Pattern::var("x")},
                        {Branch::unconditional({tuple({"x"})}),
                         Branch::otherwise({})}),
               ProgramError);
}

TEST(Reaction, ValidationRejectsEmptyOutputTuple) {
  EXPECT_THROW(
      Reaction("R", {Pattern::var("x")}, {Branch::unconditional({{}})}),
      ProgramError);
}

TEST(Reaction, MinFiresWhenConditionHolds) {
  const Reaction r = min_reaction();
  const Element a{Value(2)}, b{Value(9)};
  const std::vector<const Element*> elems{&a, &b};
  const auto produced = r.try_fire(elems);
  ASSERT_TRUE(produced.has_value());
  ASSERT_EQ(produced->size(), 1u);
  EXPECT_EQ((*produced)[0], Element{Value(2)});
}

TEST(Reaction, MinDisabledWhenConditionFails) {
  const Reaction r = min_reaction();
  const Element a{Value(9)}, b{Value(2)};
  const std::vector<const Element*> elems{&a, &b};
  EXPECT_FALSE(r.try_fire(elems).has_value());
}

TEST(Reaction, WrongElementCountNeverFires) {
  const Reaction r = min_reaction();
  const Element a{Value(1)};
  const std::vector<const Element*> one{&a};
  EXPECT_FALSE(r.try_fire(one).has_value());
}

TEST(Reaction, ElseBranchFiresOnConditionFailure) {
  // Steer-style: if ctrl==1 forward, else delete (by 0).
  const Reaction r("St",
                   {Pattern::tagged("id1", "D", "v"), Pattern::tagged("id2", "C", "v")},
                   {Branch::when(parse_expression("id2 == 1"),
                                 {tuple({"id1", "'T'", "v"})}),
                    Branch::otherwise({})});
  const Element data = Element::tagged(Value(42), "D", 3);
  const Element ctrl_true = Element::tagged(Value(1), "C", 3);
  const Element ctrl_false = Element::tagged(Value(0), "C", 3);

  const std::vector<const Element*> taken{&data, &ctrl_true};
  auto fired = r.try_fire(taken);
  ASSERT_TRUE(fired.has_value());
  ASSERT_EQ(fired->size(), 1u);
  EXPECT_EQ((*fired)[0], Element::tagged(Value(42), "T", 3));

  const std::vector<const Element*> dropped{&data, &ctrl_false};
  auto deleted = r.try_fire(dropped);
  ASSERT_TRUE(deleted.has_value());   // fires (consumes)...
  EXPECT_TRUE(deleted->empty());      // ...producing nothing ("by 0")
}

TEST(Reaction, BranchOrderFirstTrueWins) {
  const Reaction r("R", {Pattern::var("x")},
                   {Branch::when(parse_expression("x > 10"), {tuple({"'big'"})}),
                    Branch::when(parse_expression("x > 5"), {tuple({"'mid'"})}),
                    Branch::otherwise({tuple({"'small'"})})});
  const Element e1{Value(20)}, e2{Value(7)}, e3{Value(1)};
  const std::vector<const Element*> v1{&e1}, v2{&e2}, v3{&e3};
  EXPECT_EQ((*r.try_fire(v1))[0], Element{Value("big")});
  EXPECT_EQ((*r.try_fire(v2))[0], Element{Value("mid")});
  EXPECT_EQ((*r.try_fire(v3))[0], Element{Value("small")});
}

TEST(Reaction, MultipleOutputTuples) {
  // R12-style duplication: one input, two outputs.
  const Reaction r("Dup", {Pattern::tagged("id1", "B1", "v")},
                   {Branch::unconditional({tuple({"id1", "'B12'", "v + 1"}),
                                           tuple({"id1", "'B13'", "v + 1"})})});
  const Element e = Element::tagged(Value(4), "B1", 0);
  const std::vector<const Element*> v{&e};
  const auto out = r.try_fire(v);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0], Element::tagged(Value(4), "B12", 1));
  EXPECT_EQ((*out)[1], Element::tagged(Value(4), "B13", 1));
}

TEST(Reaction, IsShrinking) {
  EXPECT_TRUE(min_reaction().is_shrinking());  // 2 in, 1 out
  const Reaction grow("G", {Pattern::var("x")},
                      {Branch::unconditional({tuple({"x"}), tuple({"x"})})});
  EXPECT_FALSE(grow.is_shrinking());
  const Reaction same("S", {Pattern::var("x")},
                      {Branch::unconditional({tuple({"x + 1"})})});
  EXPECT_FALSE(same.is_shrinking());
}

TEST(Reaction, ToStringIsPaperShaped) {
  const std::string s = min_reaction().to_string();
  EXPECT_NE(s.find("Rmin = replace x, y"), std::string::npos);
  EXPECT_NE(s.find("by [x] if x < y"), std::string::npos);
}

TEST(Reaction, MatchBindsWithoutFiring) {
  const Reaction r = min_reaction();
  const Element a{Value(9)}, b{Value(2)};
  const std::vector<const Element*> elems{&a, &b};
  expr::Env env;
  EXPECT_TRUE(r.match(elems, env));          // structural match succeeds
  EXPECT_EQ(env.lookup("x"), Value(9));
  EXPECT_FALSE(r.apply(env).has_value());    // but no branch fires
}

}  // namespace
}  // namespace gammaflow::gamma
