// Program composition: parallel '|', sequential then(), lookup, printing.
#include <gtest/gtest.h>

#include "gammaflow/expr/parser.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::gamma {
namespace {

Reaction make(const std::string& name) {
  return Reaction(name, {Pattern::var("x")},
                  {Branch::when(expr::parse_expression("x > 0"), {})});
}

TEST(Program, SingleReaction) {
  const Program p(make("R1"));
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.reaction_count(), 1u);
  EXPECT_NE(p.find("R1"), nullptr);
  EXPECT_EQ(p.find("R2"), nullptr);
}

TEST(Program, ParallelCompositionMergesStage) {
  const Program p = Program(make("R1")) | Program(make("R2")) | Program(make("R3"));
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.reaction_count(), 3u);
  EXPECT_EQ(p.stages()[0][0].name(), "R1");
  EXPECT_EQ(p.stages()[0][2].name(), "R3");
}

TEST(Program, SequentialComposition) {
  const Program p = Program(make("A")).then(Program(make("B")));
  EXPECT_EQ(p.stage_count(), 2u);
  EXPECT_EQ(p.reaction_count(), 2u);
  EXPECT_EQ(p.stages()[0][0].name(), "A");
  EXPECT_EQ(p.stages()[1][0].name(), "B");
}

TEST(Program, MixedComposition) {
  const Program p =
      (Program(make("A")) | Program(make("B"))).then(Program(make("C")));
  EXPECT_EQ(p.stage_count(), 2u);
  EXPECT_EQ(p.stages()[0].size(), 2u);
  EXPECT_EQ(p.stages()[1].size(), 1u);
}

TEST(Program, ParallelOfMultiStageRejected) {
  const Program seq = Program(make("A")).then(Program(make("B")));
  EXPECT_THROW((void)(seq | Program(make("C"))), ProgramError);
  EXPECT_THROW((void)(Program(make("C")) | seq), ProgramError);
}

TEST(Program, ParallelWithEmptyIsIdentity) {
  const Program p = Program{} | Program(make("A"));
  EXPECT_EQ(p.reaction_count(), 1u);
  const Program q = Program(make("A")) | Program{};
  EXPECT_EQ(q.reaction_count(), 1u);
}

TEST(Program, AllReactionsInOrder) {
  const Program p =
      (Program(make("A")) | Program(make("B"))).then(Program(make("C")));
  const auto all = p.all_reactions();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name(), "A");
  EXPECT_EQ(all[1]->name(), "B");
  EXPECT_EQ(all[2]->name(), "C");
}

TEST(Program, FindSearchesAllStages) {
  const Program p = Program(make("A")).then(Program(make("B")));
  EXPECT_NE(p.find("B"), nullptr);
  EXPECT_EQ(p.find("B")->name(), "B");
}

TEST(Program, PrintSeparatesStagesWithSemicolon) {
  const Program p = Program(make("A")).then(Program(make("B")));
  const std::string s = p.to_string();
  EXPECT_NE(s.find(';'), std::string::npos);
}

TEST(Program, EmptyProgram) {
  const Program p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.reaction_count(), 0u);
  EXPECT_EQ(p.stage_count(), 0u);
}

TEST(Program, VectorConstructor) {
  std::vector<Reaction> rs;
  rs.push_back(make("R1"));
  rs.push_back(make("R2"));
  const Program p(std::move(rs));
  EXPECT_EQ(p.stage_count(), 1u);
  EXPECT_EQ(p.reaction_count(), 2u);
}

}  // namespace
}  // namespace gammaflow::gamma
