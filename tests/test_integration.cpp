// End-to-end scenarios crossing every subsystem: text formats in and out,
// conversion both directions, reductions, all engines, equivalence checks.
#include <gtest/gtest.h>

#include "gammaflow/analysis/analysis.hpp"
#include "gammaflow/dataflow/serialize.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/equivalence.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"
#include "gammaflow/translate/reduce.hpp"

namespace gammaflow {
namespace {

TEST(Integration, SerializedGraphSurvivesFullPipeline) {
  // text -> graph -> gamma -> run -> reconstruct -> run: one value, five
  // representations.
  const std::string text = dataflow::to_text(paper::fig1_graph(8, 2, 4, 3));
  const dataflow::Graph g = dataflow::parse_text(text);
  const auto conv = translate::dataflow_to_gamma(g);
  const auto gamma_run =
      gamma::IndexedEngine().run(conv.program, conv.initial);
  const auto elems = gamma_run.final_multiset.with_label("m");
  ASSERT_EQ(elems.size(), 1u);
  EXPECT_EQ(elems[0].value(), Value((8 + 2) - 4 * 3));

  const dataflow::Graph rebuilt =
      translate::reconstruct_graph(conv.program, conv.initial);
  EXPECT_EQ(dataflow::Interpreter().run(rebuilt).single_output("m"),
            Value(-2));
}

TEST(Integration, DslAuthoredProgramToDataflowAndBack) {
  // A user writes Gamma in the DSL; we reconstruct a graph, run it, convert
  // it back to Gamma, and get an equivalent program.
  const auto program = gamma::dsl::parse_program(R"(
    Scale = replace [x, 'in'] by [x * 3, 'scaled']
    Shift = replace [s, 'scaled'] by [s + 100, 'out']
  )");
  const gamma::Multiset init{gamma::Element::labeled(Value(7), "in")};
  const dataflow::Graph g = translate::reconstruct_graph(program, init);
  EXPECT_EQ(dataflow::Interpreter().run(g).single_output("out"), Value(121));

  const auto back = translate::dataflow_to_gamma(g);
  const auto rerun = gamma::IndexedEngine().run(back.program, back.initial);
  EXPECT_EQ(rerun.final_multiset.with_label("out").at(0).value(), Value(121));
}

TEST(Integration, ReductionPipelinePreservesEquivalenceWithDataflow) {
  // fuse(convert(graph)) still matches the graph's observable.
  const dataflow::Graph g = paper::fig1_graph(9, 1, 2, 3);
  const auto conv = translate::dataflow_to_gamma(g);
  const auto fused = translate::fuse_reactions(conv.program, conv.initial);
  EXPECT_EQ(fused.reaction_count(), 1u);
  const auto run = gamma::IndexedEngine().run(fused, conv.initial);
  EXPECT_EQ(run.final_multiset.with_label("m").at(0).value(),
            dataflow::Interpreter().run(g).single_output("m"));
}

TEST(Integration, ExpandedProgramStillReconstructs) {
  // Rd1 --expand--> R1,R2,R3-shape --reconstruct--> 3-operator graph.
  const auto expanded =
      translate::expand_program(paper::fig1_reduced_gamma());
  const dataflow::Graph g =
      translate::reconstruct_graph(expanded, paper::fig1_initial());
  std::size_t arith = 0;
  for (const auto& n : g.nodes()) arith += n.kind == dataflow::NodeKind::Arith;
  EXPECT_EQ(arith, 3u);
  EXPECT_EQ(dataflow::Interpreter().run(g).single_output("m"), Value(0));
}

TEST(Integration, AllGammaEnginesAgreeOnFig2Observable) {
  const dataflow::Graph g = paper::fig2_graph(7, 3, 2, true);
  const auto conv = translate::dataflow_to_gamma(g);
  const gamma::SequentialEngine se;
  const gamma::IndexedEngine ie;
  const gamma::ParallelEngine pe;
  gamma::RunOptions opts;
  opts.workers = 3;
  const auto a = se.run(conv.program, conv.initial, opts);
  const auto b = ie.run(conv.program, conv.initial, opts);
  const auto c = pe.run(conv.program, conv.initial, opts);
  EXPECT_EQ(a.final_multiset, b.final_multiset);
  EXPECT_EQ(b.final_multiset, c.final_multiset);
  EXPECT_EQ(b.final_multiset.with_label("x_final").at(0).value(), Value(23));
}

TEST(Integration, MappedExecutionAgreesWithEngineOnSharedReaction) {
  // One reaction, two execution strategies: Fig. 4 mapped dataflow rounds
  // vs multiset rewriting.
  const auto sieve = gamma::dsl::parse_reaction(
      "R = replace x, y by [x] where (y % x == 0) and (x > 1)");
  gamma::Multiset m;
  for (std::int64_t i = 2; i <= 20; ++i) m.add(gamma::Element{Value(i)});
  const auto engine_result =
      gamma::IndexedEngine().run(gamma::Program(sieve), m);
  // Mapped execution cannot run this one (logical condition has no node);
  // it reports the limitation instead of silently degrading.
  EXPECT_THROW((void)translate::map_until_fixpoint(sieve, m, 1),
               TranslateError);
  // A node-expressible sieve variant works on both paths.
  const auto mod_only = gamma::dsl::parse_reaction(
      "R = replace x, y by [x] where y % x == 0");
  gamma::Multiset composites;
  for (std::int64_t i : {4, 8, 16, 32, 3}) {
    composites.add(gamma::Element{Value(i)});
  }
  const auto mapped = translate::map_until_fixpoint(mod_only, composites, 5);
  const auto engine2 =
      gamma::IndexedEngine().run(gamma::Program(mod_only), composites);
  EXPECT_EQ(mapped.result, engine2.final_multiset);
}

TEST(Integration, StatsPipelineOverConvertedPrograms) {
  const dataflow::Graph g = paper::fig2_graph(3, 5, 1, true);
  const auto gstats = analysis::graph_stats(g);
  const auto conv = translate::dataflow_to_gamma(g);
  const auto pstats = analysis::program_stats(conv.program);
  // One reaction per interior node: nodes = reactions + consts + outputs.
  EXPECT_EQ(pstats.reaction_count,
            gstats.node_count - gstats.root_count - gstats.output_count);
}

TEST(Integration, CheckEquivalenceReportsCarryBothRuns) {
  const auto rep = translate::check_equivalence_seeds(
      paper::fig1_graph(3, 3, 3, 3), 1, 2);
  ASSERT_TRUE(rep.equivalent) << rep.detail;
  EXPECT_EQ(rep.dataflow_result.single_output("m"), Value(-3));
  EXPECT_GT(rep.gamma_result.steps, 0u);
  EXPECT_TRUE(rep.detail.empty());
}

}  // namespace
}  // namespace gammaflow
