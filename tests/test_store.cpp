// Indexed store: slot lifecycle, candidate buckets, pruning, compaction,
// match finding and enumeration.
#include <gtest/gtest.h>

#include "gammaflow/expr/parser.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::gamma {
namespace {

std::vector<expr::ExprPtr> tuple(std::initializer_list<const char*> fields) {
  std::vector<expr::ExprPtr> out;
  for (const char* f : fields) out.push_back(expr::parse_expression(f));
  return out;
}

TEST(Store, InsertRemoveLifecycle) {
  Store s;
  const auto id = s.insert(Element::tagged(Value(1), "A", 0));
  EXPECT_TRUE(s.alive(id));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.element(id), Element::tagged(Value(1), "A", 0));
  s.remove(id);
  EXPECT_FALSE(s.alive(id));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_THROW(s.remove(id), EngineError);
}

TEST(Store, SlotReuseAfterRemove) {
  Store s;
  const auto id1 = s.insert(Element{Value(1)});
  s.remove(id1);
  const auto id2 = s.insert(Element{Value(2)});
  EXPECT_EQ(id1, id2);  // free-list reuse
  EXPECT_EQ(s.element(id2), Element{Value(2)});
}

TEST(Store, VersionAdvancesOnMutation) {
  Store s;
  const auto v0 = s.version();
  const auto id = s.insert(Element{Value(1)});
  EXPECT_GT(s.version(), v0);
  const auto v1 = s.version();
  s.remove(id);
  EXPECT_GT(s.version(), v1);
}

TEST(Store, CandidatesByLabelBucket) {
  Store s;
  s.insert(Element::tagged(Value(1), "A", 0));
  s.insert(Element::tagged(Value(2), "B", 0));
  s.insert(Element::tagged(Value(3), "A", 1));
  const Pattern pa = Pattern::tagged("x", "A", "v");
  EXPECT_EQ(s.candidates(pa).size(), 2u);
  const Pattern pz = Pattern::tagged("x", "Z", "v");
  EXPECT_TRUE(s.candidates(pz).empty());
}

TEST(Store, CandidatesByArityForUnconstrained) {
  Store s;
  s.insert(Element{Value(1)});
  s.insert(Element{Value(2)});
  s.insert(Element::labeled(Value(3), "A"));
  const Pattern p = Pattern::var("x");  // arity-1, no literal
  EXPECT_EQ(s.candidates(p).size(), 2u);
}

TEST(Store, CandidatesPruneDeadIds) {
  Store s;
  const auto id1 = s.insert(Element::tagged(Value(1), "A", 0));
  s.insert(Element::tagged(Value(2), "A", 0));
  s.remove(id1);
  const Pattern pa = Pattern::tagged("x", "A", "v");
  const auto& bucket = s.candidates(pa);  // prunes in place
  EXPECT_EQ(bucket.size(), 1u);
}

TEST(Store, ConstCandidatesDoNotPrune) {
  Store s;
  const auto id1 = s.insert(Element::tagged(Value(1), "A", 0));
  s.insert(Element::tagged(Value(2), "A", 0));
  s.remove(id1);
  const Store& cs = s;
  const Pattern pa = Pattern::tagged("x", "A", "v");
  EXPECT_EQ(cs.candidates(pa).size(), 2u);  // garbage retained
  s.compact();
  EXPECT_EQ(cs.candidates(pa).size(), 1u);
}

TEST(Store, BucketsStayBoundedUnderSlotReuse) {
  // Regression: slot reuse re-registers the same id in the index; without
  // generation stamps those entries all look alive and the label bucket
  // grows by one per rewrite, degrading matching to O(total firings).
  // (Observed: Fig. 2's reduced program at z=4000 took 54s instead of 0.2s.)
  Store s;
  for (int i = 0; i < 10000; ++i) {
    const auto id = s.insert(Element::tagged(Value(i), "L", 0));
    s.remove(id);
  }
  s.insert(Element::tagged(Value(-1), "L", 0));
  const Pattern p = Pattern::tagged("x", "L", "v");
  EXPECT_LE(s.candidates(p).size(), 2u);  // pruned to the single live entry
  EXPECT_EQ(s.size(), 1u);
}

TEST(Store, ToMultisetRoundTrip) {
  const Multiset m{Element::tagged(Value(1), "A", 0),
                   Element::tagged(Value(1), "A", 0),
                   Element::tagged(Value(2), "B", 1)};
  const Store s(m);
  EXPECT_EQ(s.to_multiset(), m);
}

Reaction adder() {
  // replace [a,'L'], [b,'R'] by [a+b,'S']
  return Reaction("Add",
                  {Pattern::labeled("a", "L"), Pattern::labeled("b", "R")},
                  {Branch::unconditional({tuple({"a + b", "'S'"})})});
}

TEST(FindMatch, FindsEnabledPair) {
  Store s;
  s.insert(Element::labeled(Value(2), "L"));
  s.insert(Element::labeled(Value(3), "R"));
  const Reaction r = adder();
  const auto m = find_match(s, r);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ids.size(), 2u);
  ASSERT_EQ(m->produced.size(), 1u);
  EXPECT_EQ(m->produced[0], Element::labeled(Value(5), "S"));
}

TEST(FindMatch, NoMatchWhenLabelMissing) {
  Store s;
  s.insert(Element::labeled(Value(2), "L"));
  EXPECT_FALSE(find_match(s, adder()).has_value());
}

TEST(FindMatch, ElementsMustBeDistinctInstances) {
  // min-style: replace x, y — one element cannot play both roles.
  Store s;
  s.insert(Element{Value(5)});
  const Reaction r("R", {Pattern::var("x"), Pattern::var("y")},
                   {Branch::unconditional({tuple({"x"})})});
  EXPECT_FALSE(find_match(s, r).has_value());
  s.insert(Element{Value(5)});  // a second equal instance IS allowed
  EXPECT_TRUE(find_match(s, r).has_value());
}

TEST(FindMatch, ConditionGatesMatch) {
  Store s;
  s.insert(Element{Value(9)});
  s.insert(Element{Value(2)});
  const Reaction r("Min", {Pattern::var("x"), Pattern::var("y")},
                   {Branch::when(expr::parse_expression("x < y"),
                                 {tuple({"x"})})});
  // Both orderings exist as candidate tuples; only (2,9) is enabled.
  const auto m = find_match(s, r);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->produced[0], Element{Value(2)});
}

TEST(FindMatch, CommitAppliesRewrite) {
  Store s;
  s.insert(Element::labeled(Value(2), "L"));
  s.insert(Element::labeled(Value(3), "R"));
  const Reaction r = adder();
  const auto m = find_match(s, r);
  ASSERT_TRUE(m.has_value());
  commit(s, *m);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.to_multiset(), (Multiset{Element::labeled(Value(5), "S")}));
  EXPECT_FALSE(find_match(s, r).has_value());
}

TEST(FindMatch, RandomizedIsFairAcrossPairs) {
  // Two independent L/R pairs; randomized probing should pick different
  // first matches across seeds.
  Store s;
  s.insert(Element::labeled(Value(1), "L"));
  s.insert(Element::labeled(Value(2), "L"));
  s.insert(Element::labeled(Value(10), "R"));
  const Reaction r = adder();
  std::set<Value> first_values;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    const auto m = find_match(s, r, &rng);
    ASSERT_TRUE(m.has_value());
    first_values.insert(m->produced[0].value());
  }
  EXPECT_EQ(first_values.size(), 2u);  // both 11 and 12 observed
}

TEST(EnumerateMatches, CountsOrderedTuples) {
  Store s;
  for (int i = 0; i < 4; ++i) s.insert(Element{Value(i)});
  const Reaction any2("R", {Pattern::var("x"), Pattern::var("y")},
                      {Branch::unconditional({tuple({"x"})})});
  std::size_t count =
      enumerate_matches(s, any2, 1000, [](const Match&) { return true; });
  EXPECT_EQ(count, 12u);  // 4 * 3 ordered pairs
}

TEST(EnumerateMatches, HonorsLimitAndEarlyStop) {
  Store s;
  for (int i = 0; i < 10; ++i) s.insert(Element{Value(i)});
  const Reaction any2("R", {Pattern::var("x"), Pattern::var("y")},
                      {Branch::unconditional({tuple({"x"})})});
  EXPECT_EQ(enumerate_matches(s, any2, 7, [](const Match&) { return true; }),
            7u);
  std::size_t seen = 0;
  enumerate_matches(s, any2, 1000, [&](const Match&) {
    return ++seen < 3;  // stop after 3
  });
  EXPECT_EQ(seen, 3u);
}

TEST(Store, DeadRowDebtAccruesOnRemoveAndCompactSettlesIt) {
  Store s;
  std::vector<Store::Id> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(s.insert(Element{Value(i)}));
  for (std::size_t i = 0; i < 4; ++i) s.remove(ids[i]);

  // The debt is exact: one dead row per removal, counted at remove() time.
  EXPECT_EQ(s.dead_rows(), 4u);
  EXPECT_FALSE(s.needs_compact());

  // The read-only lookup leaves stale entries in place for searchers to
  // skip via the generation stamp.
  const Store& cs = s;
  const Store::Bucket* b = cs.bucket(Pattern::var("x"));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->entries.size(), 8u);
  std::uint64_t skips = 0;
  for (const auto& entry : b->entries) {
    if (!cs.live(entry)) ++skips;
  }
  EXPECT_EQ(skips, 4u);

  const auto compactions_before = s.column_compactions();
  s.compact();
  EXPECT_EQ(s.dead_rows(), 0u);
  EXPECT_GT(s.column_compactions(), compactions_before);
  const Store::Bucket* after = cs.bucket(Pattern::var("x"));
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->entries.size(), 4u);
  // Survivors keep their identity and content across the row rewrite.
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(s.alive(ids[i]));
    EXPECT_EQ(s.element(ids[i]), Element{Value(static_cast<int>(i))});
  }
}

TEST(Store, NeedsCompactTripsAtTheDeadRowThreshold) {
  Store s;
  std::vector<Store::Id> ids;
  for (std::uint64_t i = 0; i < Store::kGarbageCompactThreshold; ++i) {
    ids.push_back(s.insert(Element{Value(static_cast<std::int64_t>(i))}));
  }
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) s.remove(ids[i]);
  EXPECT_FALSE(s.needs_compact());
  s.remove(ids.back());
  EXPECT_TRUE(s.needs_compact());

  // The next insert self-triggers collection, so paths that never check
  // needs_compact() (the worklist drain) still stay O(live).
  s.insert(Element{Value(-1)});
  EXPECT_EQ(s.dead_rows(), 0u);
  EXPECT_FALSE(s.needs_compact());
  EXPECT_GT(s.column_compactions(), 0u);
}

TEST(Store, SpillSidecarRoundTripsNonIntFields) {
  // Every non-Int kind goes through the tag/spill sidecar; materialization
  // must reproduce the exact Value (kind and payload), before and after the
  // columns are rewritten.
  Store s;
  const Element mixed{Value(7), Value("label"), Value(2.5), Value(true),
                      Value()};
  const auto id = s.insert(mixed);
  const auto dead = s.insert(Element{Value(1), Value("x"), Value(0.0),
                                     Value(false), Value()});
  EXPECT_EQ(s.element(id), mixed);
  s.remove(dead);
  s.compact();
  EXPECT_TRUE(s.alive(id));
  EXPECT_EQ(s.element(id), mixed);
  EXPECT_EQ(s.to_multiset(), Multiset{mixed});
}

TEST(Store, LivenessBitmapTracksRows) {
  Store s;
  std::vector<Store::Id> ids;
  for (int i = 0; i < 130; ++i) {  // spans three 64-bit bitmap words
    ids.push_back(s.insert(Element::labeled(Value(i), "L")));
  }
  for (int i = 0; i < 130; i += 2) s.remove(ids[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 130; ++i) {
    const Store::RowRef ref = s.row(ids[static_cast<std::size_t>(i)]);
    ASSERT_NE(ref.group, nullptr);
    EXPECT_EQ(ref.group->row_live(ref.row), i % 2 == 1) << i;
  }
  EXPECT_EQ(s.dead_rows(), 65u);
}

TEST(Store, MatchPatternAgreesWithElementMatch) {
  Store s;
  const auto id = s.insert(Element::tagged(Value(41), "A", 3));
  const Pattern hit = Pattern::tagged("x", "A", "v");
  const Pattern missLabel = Pattern::tagged("x", "B", "v");
  const Pattern missArity = Pattern::labeled("x", "A");
  for (const Pattern* p : {&hit, &missLabel, &missArity}) {
    expr::Env direct;
    expr::Env viaColumns;
    EXPECT_EQ(p->match(s.element(id), direct),
              s.match_pattern(*p, id, viaColumns));
  }
  expr::Env env;
  ASSERT_TRUE(s.match_pattern(hit, id, env));
  EXPECT_EQ(*env.find("x"), Value(41));
  EXPECT_EQ(*env.find("v"), Value(3));
}

TEST(EnumerateMatches, OnlyEnabledMatchesVisited) {
  Store s;
  s.insert(Element{Value(5)});
  s.insert(Element{Value(5)});
  const Reaction strict("R", {Pattern::var("x"), Pattern::var("y")},
                        {Branch::when(expr::parse_expression("x < y"), {})});
  EXPECT_EQ(
      enumerate_matches(s, strict, 100, [](const Match&) { return true; }),
      0u);
}

}  // namespace
}  // namespace gammaflow::gamma
