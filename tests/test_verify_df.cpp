// Dataflow-graph verifier: the clean corpus (paper figures, generators, and
// every translator output — the translation-validation regressions) plus one
// deliberately broken graph per reachable check id. Broken graphs are taken
// from GraphBuilder::graph(), the unvalidated view — Graph::validate() would
// throw on them, which is exactly why verify_graph exists.
//
// df-edge-endpoint and df-port-range are untestable here by design: every
// public construction path (GraphBuilder::connect, serialize::parse_text)
// already refuses such edges, so those checks guard future deserializers
// only.
#include <gtest/gtest.h>

#include "gammaflow/analysis/verify_df.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::analysis {
namespace {

using dataflow::GraphBuilder;
using dataflow::Node;
using dataflow::NodeKind;
using expr::BinOp;

// --- clean corpus --------------------------------------------------------

TEST(VerifyDf, Fig1IsClean) {
  const auto report = verify_graph(paper::fig1_graph());
  EXPECT_EQ(report.errors(), 0u) << report;
  EXPECT_EQ(report.warnings(), 0u) << report;
}

TEST(VerifyDf, Fig2IsCleanWithAndWithoutObserver) {
  for (const bool observe : {false, true}) {
    const auto report = verify_graph(paper::fig2_graph(3, 5, 0, observe));
    EXPECT_EQ(report.errors(), 0u) << report;
    EXPECT_EQ(report.warnings(), 0u) << report;
    // The unused steer FALSE ports are surfaced, not flagged as defects.
    EXPECT_FALSE(report.of("df-discarded-port").empty());
  }
}

TEST(VerifyDf, GeneratorGraphsAreClean) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto report = verify_graph(paper::random_expression_graph(9, seed));
    EXPECT_EQ(report.errors(), 0u) << "seed " << seed << "\n" << report;
    EXPECT_EQ(report.warnings(), 0u) << "seed " << seed << "\n" << report;
  }
  const auto loops = verify_graph(paper::multi_loop_graph(3, 4));
  EXPECT_EQ(loops.errors(), 0u) << loops;
  EXPECT_EQ(loops.warnings(), 0u) << loops;
}

TEST(VerifyDf, CompiledSourceProgramsAreClean) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto graph =
        frontend::compile_source(paper::random_source_program(seed));
    const auto report = verify_graph(graph);
    EXPECT_EQ(report.errors(), 0u) << "seed " << seed << "\n" << report;
  }
}

// Translation validation, Algorithm 2 direction: reconstructed graphs of the
// paper programs must verify with zero errors.
TEST(VerifyDf, ReconstructedPaperProgramsVerify) {
  const auto fig1 = verify_graph(translate::reconstruct_graph(
      paper::fig1_gamma(), paper::fig1_initial()));
  EXPECT_EQ(fig1.errors(), 0u) << fig1;
  const auto fig2 = verify_graph(translate::reconstruct_graph(
      paper::fig2_gamma(), paper::fig2_initial(3, 5, 100)));
  EXPECT_EQ(fig2.errors(), 0u) << fig2;
  const auto reduced = verify_graph(translate::reconstruct_graph(
      paper::fig1_reduced_gamma(), paper::fig1_initial()));
  EXPECT_EQ(reduced.errors(), 0u) << reduced;
}

// Translation validation, round trip: Algorithm 1 output converted back to a
// graph still verifies.
TEST(VerifyDf, RoundTrippedGraphsVerify) {
  const auto conv = translate::dataflow_to_gamma(paper::fig1_graph());
  const auto report =
      verify_graph(translate::reconstruct_graph(conv.program, conv.initial));
  EXPECT_EQ(report.errors(), 0u) << report;
}

TEST(VerifyDf, PerReactionGraphsVerify) {
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y,'s'] if x < y");
  const auto rg = translate::per_reaction_graph(*p.all_reactions()[0]);
  const auto report = verify_graph(rg.graph);
  EXPECT_EQ(report.errors(), 0u) << report;
}

// --- broken graphs, one per reachable check ------------------------------

TEST(VerifyDf, UnfedInputIsAnError) {
  GraphBuilder b;
  const auto c = b.constant(Value(1));
  const auto sum = b.arith(BinOp::Add, "sum");
  b.connect(c, sum, 0);  // port 1 never fed
  const auto report = verify_graph(b.graph());
  const auto unfed = report.of("df-input-unfed");
  ASSERT_EQ(unfed.size(), 1u) << report;
  EXPECT_EQ(unfed[0].severity, Severity::Error);
  EXPECT_EQ(unfed[0].reaction, "sum");
}

TEST(VerifyDf, DuplicateLabelIsAnError) {
  GraphBuilder b;
  const auto c1 = b.constant(Value(1));
  const auto c2 = b.constant(Value(2));
  const auto sum = b.arith(BinOp::Add, "sum");
  b.connect(c1, sum, 0, "X");
  b.connect(c2, sum, 1, "X");
  const auto report = verify_graph(b.graph());
  const auto dup = report.of("df-duplicate-label");
  ASSERT_EQ(dup.size(), 1u) << report;
  EXPECT_EQ(dup[0].severity, Severity::Error);
  EXPECT_NE(dup[0].message.find("'X'"), std::string::npos);
}

TEST(VerifyDf, WrongOperatorKindIsAnError) {
  GraphBuilder b;
  b.add_node(Node{NodeKind::Arith, BinOp::Lt, Value(), false, "bad_arith"});
  b.add_node(Node{NodeKind::Cmp, BinOp::Add, Value(), false, "bad_cmp"});
  const auto report = verify_graph(b.graph());
  EXPECT_EQ(report.of("df-operator-kind").size(), 2u) << report;
}

TEST(VerifyDf, StructuralErrorsSuppressSemanticPasses) {
  GraphBuilder b;
  b.arith(BinOp::Add, "floating");  // both inputs unfed, also unreachable
  const auto report = verify_graph(b.graph());
  EXPECT_EQ(report.of("df-input-unfed").size(), 2u) << report;
  EXPECT_TRUE(report.of("df-unreachable").empty()) << report;
}

TEST(VerifyDf, UntaggedCycleIsAnError) {
  GraphBuilder b;
  const auto c = b.constant(Value(1));
  const auto a = b.arith(BinOp::Add, "a");
  const auto dbl = b.arith_imm(BinOp::Mul, Value(2), "dbl");
  b.connect(c, a, 0);
  b.connect(GraphBuilder::out(dbl), a, 1);
  b.connect(GraphBuilder::out(a), dbl, 0);  // a -> dbl -> a, no IncTag
  const auto report = verify_graph(b.graph());
  const auto cyc = report.of("df-untagged-cycle");
  ASSERT_EQ(cyc.size(), 1u) << report;
  EXPECT_EQ(cyc[0].severity, Severity::Error);
}

TEST(VerifyDf, TaggedCycleIsAccepted) {
  GraphBuilder b;
  const auto c = b.constant(Value(1));
  const auto a = b.arith(BinOp::Add, "a");
  const auto dbl = b.arith_imm(BinOp::Mul, Value(2), "dbl");
  const auto inc = b.inctag();
  b.connect(c, a, 0);
  b.connect(GraphBuilder::out(inc), a, 1);
  b.connect(GraphBuilder::out(a), dbl, 0);
  b.connect(GraphBuilder::out(dbl), inc, 0);
  const auto report = verify_graph(b.graph());
  EXPECT_EQ(report.errors(), 0u) << report;
  EXPECT_TRUE(report.of("df-untagged-cycle").empty()) << report;
}

TEST(VerifyDf, SteerControlFedByNonTruthyConstIsAnError) {
  GraphBuilder b;
  const auto data = b.constant(Value(7));
  const auto ctrl = b.constant(Value("not a bool"));
  b.steer(data, ctrl, "st");
  const auto report = verify_graph(b.graph());
  const auto sc = report.of("df-steer-control");
  ASSERT_EQ(sc.size(), 1u) << report;
  EXPECT_EQ(sc[0].severity, Severity::Error);
  EXPECT_EQ(sc[0].reaction, "st");
}

TEST(VerifyDf, SteerControlFedByArithIsAWarning) {
  GraphBuilder b;
  const auto data = b.constant(Value(7));
  const auto sum =
      b.arith(BinOp::Add, b.constant(Value(1)), b.constant(Value(2)));
  b.steer(data, sum, "st");
  const auto report = verify_graph(b.graph());
  const auto sc = report.of("df-steer-control");
  ASSERT_EQ(sc.size(), 1u) << report;
  EXPECT_EQ(sc[0].severity, Severity::Warning);
}

TEST(VerifyDf, SteerControlFedByCmpIsClean) {
  GraphBuilder b;
  const auto data = b.constant(Value(7));
  const auto cond =
      b.cmp(BinOp::Lt, b.constant(Value(1)), b.constant(Value(2)));
  b.steer(data, cond, "st");
  const auto report = verify_graph(b.graph());
  EXPECT_TRUE(report.of("df-steer-control").empty()) << report;
}

TEST(VerifyDf, DisjointTagOffsetsAtAJoinAreAWarning) {
  GraphBuilder b;
  const auto c1 = b.constant(Value(1));
  const auto c2 = b.constant(Value(2));
  const auto tagged = b.inctag(c1);  // offset {1}
  const auto join = b.arith(BinOp::Add, "join");
  b.connect(tagged, join, 0);
  b.connect(c2, join, 1);  // offset {0}: provably never matches port 0
  const auto report = verify_graph(b.graph());
  const auto tm = report.of("df-tag-mismatch");
  ASSERT_EQ(tm.size(), 1u) << report;
  EXPECT_EQ(tm[0].severity, Severity::Warning);
  EXPECT_EQ(tm[0].reaction, "join");
}

TEST(VerifyDf, UnreachableComponentIsAWarning) {
  GraphBuilder b;
  b.constant(Value(1), "root");
  // A tagged two-node cycle with no Const ancestor: structurally fine (all
  // ports fed), but no token ever enters it.
  const auto orphan = b.arith_imm(BinOp::Add, Value(1), "orphan");
  const auto inc = b.inctag();
  b.connect(GraphBuilder::out(orphan), inc, 0);
  b.connect(GraphBuilder::out(inc), orphan, 0);
  const auto report = verify_graph(b.graph());
  EXPECT_EQ(report.errors(), 0u) << report;
  const auto unreachable = report.of("df-unreachable");
  ASSERT_EQ(unreachable.size(), 2u) << report;
  EXPECT_EQ(unreachable[0].severity, Severity::Warning);
}

TEST(VerifyDf, NodeFeedingNoOutputIsAWarning) {
  GraphBuilder b;
  const auto c1 = b.constant(Value(1));
  const auto wasted = b.arith_imm(BinOp::Add, c1, Value(1), "wasted");
  (void)wasted;
  b.output(b.constant(Value(2), "kept"), "m");
  const auto report = verify_graph(b.graph());
  const auto dead = report.of("df-dead-node");
  // The const feeding 'wasted' and 'wasted' itself lead nowhere.
  ASSERT_EQ(dead.size(), 2u) << report;
  EXPECT_EQ(dead[0].severity, Severity::Warning);
}

TEST(VerifyDf, NoOutputNodesSkipsDeadNodeAnalysis) {
  GraphBuilder b;
  b.arith_imm(BinOp::Add, b.constant(Value(1)), Value(1), "sink");
  const auto report = verify_graph(b.graph());
  EXPECT_TRUE(report.of("df-dead-node").empty()) << report;
}

TEST(VerifyDf, JoinStarvedByATagMismatchedProducerIsADeadlock) {
  GraphBuilder b;
  // `mismatch` provably never fires (disjoint tag offsets), so downstream
  // `starved` sees one live port and one dead port.
  const auto c1 = b.constant(Value(1));
  const auto c2 = b.constant(Value(2));
  const auto c3 = b.constant(Value(3));
  const auto mismatch = b.arith(BinOp::Add, "mismatch");
  b.connect(b.inctag(c1), mismatch, 0);
  b.connect(c2, mismatch, 1);
  const auto starved = b.arith(BinOp::Add, "starved");
  b.connect(GraphBuilder::out(mismatch), starved, 0);
  b.connect(c3, starved, 1);
  const auto report = verify_graph(b.graph());
  const auto deadlock = report.of("df-deadlock");
  ASSERT_EQ(deadlock.size(), 1u) << report;
  EXPECT_EQ(deadlock[0].severity, Severity::Error);
  EXPECT_EQ(deadlock[0].reaction, "starved");
}

TEST(VerifyDf, UnequalTokenCountsAreAnInfo) {
  GraphBuilder b;
  // Port 0 receives two tokens (two producers fan IN), port 1 one.
  const auto c1 = b.constant(Value(1));
  const auto c2 = b.constant(Value(2));
  const auto c3 = b.constant(Value(3));
  const auto join = b.arith(BinOp::Add, "join");
  b.connect(c1, join, 0);
  b.connect(c2, join, 0);
  b.connect(c3, join, 1);
  const auto report = verify_graph(b.graph());
  const auto imbalance = report.of("df-token-imbalance");
  ASSERT_EQ(imbalance.size(), 1u) << report;
  EXPECT_EQ(imbalance[0].severity, Severity::Info);
  EXPECT_EQ(imbalance[0].reaction, "join");
}

TEST(VerifyDf, DiscardedOutputPortIsAnInfo) {
  GraphBuilder b;
  const auto data = b.constant(Value(7));
  const auto cond =
      b.cmp(BinOp::Lt, b.constant(Value(1)), b.constant(Value(2)));
  const auto st = b.steer(data, cond, "st");
  b.output(GraphBuilder::true_out(st), "m");  // FALSE port discarded
  const auto report = verify_graph(b.graph());
  EXPECT_EQ(report.errors(), 0u) << report;
  const auto discarded = report.of("df-discarded-port");
  ASSERT_EQ(discarded.size(), 1u) << report;
  EXPECT_EQ(discarded[0].severity, Severity::Info);
  EXPECT_EQ(discarded[0].reaction, "st");
}

TEST(VerifyDf, FindingsNameUnnamedNodesById) {
  GraphBuilder b;
  const auto c = b.constant(Value(1));
  const auto sum = b.arith(BinOp::Add);  // unnamed
  b.connect(c, sum, 0);
  const auto report = verify_graph(b.graph());
  const auto unfed = report.of("df-input-unfed");
  ASSERT_EQ(unfed.size(), 1u) << report;
  EXPECT_EQ(unfed[0].reaction, "#1");
}

}  // namespace
}  // namespace gammaflow::analysis
