// Unit tests for the Value scalar: kinds, promotion, checked arithmetic,
// comparisons, truthiness, printing, hashing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "gammaflow/common/value.hpp"

namespace gammaflow {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_EQ(v.kind(), ValueKind::Nil);
  EXPECT_TRUE(v.is_nil());
  EXPECT_FALSE(v.is_numeric());
}

TEST(Value, KindPredicates) {
  EXPECT_TRUE(Value(std::int64_t{3}).is_int());
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(2.5).is_real());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("hi").is_str());
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_TRUE(Value(2.5).is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
}

TEST(Value, AccessorsReturnPayload) {
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value("abc").as_str(), "abc");
}

TEST(Value, AccessorsThrowOnWrongKind) {
  EXPECT_THROW((void)Value(7).as_real(), TypeError);
  EXPECT_THROW((void)Value(2.5).as_int(), TypeError);
  EXPECT_THROW((void)Value("x").as_bool(), TypeError);
  EXPECT_THROW((void)Value(true).as_str(), TypeError);
  EXPECT_THROW((void)Value().as_int(), TypeError);
}

TEST(Value, ToRealWidensInt) {
  EXPECT_DOUBLE_EQ(Value(7).to_real(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).to_real(), 2.5);
  EXPECT_THROW((void)Value("x").to_real(), TypeError);
}

TEST(Value, Truthy) {
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(1).truthy());
  EXPECT_TRUE(Value(-3).truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_THROW((void)Value(1.5).truthy(), TypeError);
  EXPECT_THROW((void)Value("t").truthy(), TypeError);
}

TEST(Value, AddIntInt) { EXPECT_EQ(add(Value(2), Value(3)), Value(5)); }
TEST(Value, AddPromotesToReal) {
  EXPECT_EQ(add(Value(2), Value(0.5)), Value(2.5));
  EXPECT_EQ(add(Value(0.5), Value(2)), Value(2.5));
}
TEST(Value, AddConcatenatesStrings) {
  EXPECT_EQ(add(Value("ab"), Value("cd")), Value("abcd"));
}
TEST(Value, AddRejectsMixedKinds) {
  EXPECT_THROW((void)add(Value(1), Value("x")), TypeError);
  EXPECT_THROW((void)add(Value(true), Value(true)), TypeError);
}

TEST(Value, SubMulBasics) {
  EXPECT_EQ(sub(Value(7), Value(9)), Value(-2));
  EXPECT_EQ(mul(Value(3), Value(-4)), Value(-12));
  EXPECT_EQ(mul(Value(1.5), Value(2)), Value(3.0));
}

TEST(Value, IntDivisionTruncates) {
  EXPECT_EQ(div(Value(7), Value(2)), Value(3));
  EXPECT_EQ(div(Value(-7), Value(2)), Value(-3));
}
TEST(Value, RealDivision) { EXPECT_EQ(div(Value(7.0), Value(2)), Value(3.5)); }
TEST(Value, DivByZeroThrows) {
  EXPECT_THROW((void)div(Value(1), Value(0)), TypeError);
  EXPECT_THROW((void)div(Value(1.0), Value(0.0)), TypeError);
}

TEST(Value, Mod) {
  EXPECT_EQ(mod(Value(7), Value(3)), Value(1));
  EXPECT_THROW((void)mod(Value(7), Value(0)), TypeError);
  EXPECT_THROW((void)mod(Value(7.0), Value(3)), TypeError);
}

TEST(Value, Neg) {
  EXPECT_EQ(neg(Value(5)), Value(-5));
  EXPECT_EQ(neg(Value(-2.5)), Value(2.5));
  EXPECT_THROW((void)neg(Value("x")), TypeError);
}

TEST(Value, ComparisonsNumeric) {
  EXPECT_EQ(cmp_lt(Value(1), Value(2)), Value(true));
  EXPECT_EQ(cmp_lt(Value(2), Value(2)), Value(false));
  EXPECT_EQ(cmp_le(Value(2), Value(2)), Value(true));
  EXPECT_EQ(cmp_gt(Value(3), Value(2)), Value(true));
  EXPECT_EQ(cmp_ge(Value(2), Value(3)), Value(false));
  EXPECT_EQ(cmp_lt(Value(1), Value(1.5)), Value(true));  // cross-kind numeric
}

TEST(Value, ComparisonsString) {
  EXPECT_EQ(cmp_lt(Value("a"), Value("b")), Value(true));
  EXPECT_EQ(cmp_ge(Value("b"), Value("b")), Value(true));
}

TEST(Value, ComparisonsRejectMixed) {
  EXPECT_THROW((void)cmp_lt(Value(1), Value("a")), TypeError);
  EXPECT_THROW((void)cmp_gt(Value(true), Value(1)), TypeError);
}

TEST(Value, EqualityStructuralForSameKind) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0));  // kinds differ structurally
}

TEST(Value, CmpEqCrossesNumericKinds) {
  // Semantic equality used by reaction conditions treats 1 == 1.0.
  EXPECT_EQ(cmp_eq(Value(1), Value(1.0)), Value(true));
  EXPECT_EQ(cmp_ne(Value(1), Value(1.0)), Value(false));
  EXPECT_EQ(cmp_eq(Value(1), Value("1")), Value(false));
  EXPECT_EQ(cmp_eq(Value("a"), Value("a")), Value(true));
}

TEST(Value, Logic) {
  EXPECT_EQ(logic_and(Value(true), Value(1)), Value(true));
  EXPECT_EQ(logic_and(Value(true), Value(0)), Value(false));
  EXPECT_EQ(logic_or(Value(false), Value(0)), Value(false));
  EXPECT_EQ(logic_or(Value(false), Value(7)), Value(true));
  EXPECT_EQ(logic_not(Value(0)), Value(true));
  EXPECT_THROW((void)logic_and(Value("x"), Value(true)), TypeError);
}

TEST(Value, PrintingIsUnambiguous) {
  EXPECT_EQ(Value(3).to_string(), "3");
  EXPECT_EQ(Value(3.0).to_string(), "3.0");  // real keeps decimal marker
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value("hi").to_string(), "'hi'");
  EXPECT_EQ(Value().to_string(), "nil");
}

TEST(Value, OrderingIsTotalWithinProcess) {
  // kind-major order; payload order within a kind.
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_FALSE(Value(2) < Value(2));
}

TEST(Value, HashDistinguishesKindAndPayload) {
  std::unordered_set<Value> set;
  set.insert(Value(1));
  set.insert(Value(1.0));
  set.insert(Value("1"));
  set.insert(Value(true));
  set.insert(Value());
  EXPECT_EQ(set.size(), 5u);
  EXPECT_TRUE(set.contains(Value(1)));
  EXPECT_FALSE(set.contains(Value(2)));
}

TEST(Value, KindNames) {
  EXPECT_STREQ(to_string(ValueKind::Int), "int");
  EXPECT_STREQ(to_string(ValueKind::Real), "real");
  EXPECT_STREQ(to_string(ValueKind::Bool), "bool");
  EXPECT_STREQ(to_string(ValueKind::Str), "str");
  EXPECT_STREQ(to_string(ValueKind::Nil), "nil");
}

// Parameterized sweep: arithmetic identities hold across a range of ints.
class ValueArithSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ValueArithSweep, AddSubRoundTrip) {
  const std::int64_t n = GetParam();
  EXPECT_EQ(sub(add(Value(n), Value(17)), Value(17)), Value(n));
}

TEST_P(ValueArithSweep, MulDivRoundTripNonZero) {
  const std::int64_t n = GetParam();
  EXPECT_EQ(div(mul(Value(n), Value(13)), Value(13)), Value(n));
}

TEST_P(ValueArithSweep, CompareReflexive) {
  const Value v(GetParam());
  EXPECT_EQ(cmp_le(v, v), Value(true));
  EXPECT_EQ(cmp_ge(v, v), Value(true));
  EXPECT_EQ(cmp_lt(v, v), Value(false));
  EXPECT_EQ(cmp_eq(v, v), Value(true));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueArithSweep,
                         ::testing::Values(-1000000, -17, -1, 0, 1, 2, 42,
                                           999983, 1LL << 40));

}  // namespace
}  // namespace gammaflow
