// Interference & confluence analysis: footprints, conflict classes, the
// probe-based confluence verdict, and the engine integrations the classes
// feed (parallel fast commits, indexed class scheduling, cluster affinity).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/analysis/lint.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::analysis {
namespace {

using gamma::Element;
using gamma::Multiset;
using gamma::Program;
using gamma::Reaction;

Program parse(const char* src) { return gamma::dsl::parse_program(src); }

Footprint footprint_of(const char* src, std::size_t index = 0) {
  const Program p = parse(src);
  return reaction_footprint(*p.all_reactions()[index]);
}

// --- Footprints ----------------------------------------------------------

TEST(Footprint, LiteralLabelsAreExact) {
  const Footprint f =
      footprint_of("R = replace [x,'a'], [y,'b'] by [x + y,'c']");
  EXPECT_EQ(f.consume_labels, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(f.produce_labels, (std::set<std::string>{"c"}));
  EXPECT_FALSE(f.consume_any);
  EXPECT_FALSE(f.produce_any);
  EXPECT_TRUE(f.consume_arities.empty());
}

TEST(Footprint, UnlabeledPatternsUseArities) {
  const Footprint f = footprint_of("R = replace x, y by x + y");
  EXPECT_TRUE(f.consume_labels.empty());
  EXPECT_EQ(f.consume_arities, (std::set<std::size_t>{1}));
  EXPECT_EQ(f.produce_arities, (std::set<std::size_t>{1}));
  EXPECT_FALSE(f.consume_any);
}

TEST(Footprint, ConditionBoundsLabelBinder) {
  // The token-merge disjunction shape Algorithm 1 emits.
  const Footprint f = footprint_of(
      "R = replace [x, l] by [x,'out'] if l == 'a' or l == 'b'");
  EXPECT_EQ(f.consume_labels, (std::set<std::string>{"a", "b"}));
  EXPECT_FALSE(f.consume_any);
}

TEST(Footprint, UnboundedLabelBinderIsWildcard) {
  const Footprint f = footprint_of("R = replace [x, l] by [x,'out'] if x > 0");
  EXPECT_TRUE(f.consume_any);
}

TEST(Footprint, NegatedConditionGivesUpSoundly) {
  // `not (l == 'a')` admits every label BUT 'a'; the only sound label
  // bound we can state is "anything".
  const Footprint f =
      footprint_of("R = replace [x, l] by [x,'out'] if not (l == 'a')");
  EXPECT_TRUE(f.consume_any);
}

TEST(Footprint, ElseBranchOutputsAreCounted) {
  const Footprint f = footprint_of(
      "R = replace [x,'a'] by [x,'pos'] if x > 0 by [x,'neg'] else");
  EXPECT_EQ(f.produce_labels, (std::set<std::string>{"neg", "pos"}));
}

TEST(Footprint, PassedThroughLabelBinderKeepsItsBound) {
  const Footprint f = footprint_of("R = replace [x, l] by [x, l] if l == 'a'");
  // The output label is the bounded consume-side binder: both sides exact.
  EXPECT_FALSE(f.consume_any);
  EXPECT_FALSE(f.produce_any);
  EXPECT_EQ(f.produce_labels, (std::set<std::string>{"a"}));
}

TEST(Footprint, UnboundedOutputLabelIsProduceAny) {
  // `l` is unconstrained, so both the consumption and the production may
  // touch any label.
  const Footprint f = footprint_of("R = replace [x, l] by [x + 1, l]");
  EXPECT_TRUE(f.consume_any);
  EXPECT_TRUE(f.produce_any);
}

TEST(Footprint, ToStringIsReadable) {
  const Footprint f = footprint_of("R = replace [x,'a'] by [x,'b']");
  EXPECT_NE(f.to_string().find("'a'"), std::string::npos);
  EXPECT_NE(f.to_string().find("'b'"), std::string::npos);
}

// --- Relations -----------------------------------------------------------

TEST(Relations, DisjointLabelsDoNotCompete) {
  const Footprint a = footprint_of("A = replace [x,'a'] by [x,'a2']");
  const Footprint b = footprint_of("B = replace [x,'b'] by [x,'b2']");
  EXPECT_FALSE(compete(a, b));
  EXPECT_FALSE(feeds(a, b));
  EXPECT_FALSE(interferes(a, b));
}

TEST(Relations, SharedConsumedLabelCompetes) {
  const Footprint a = footprint_of("A = replace [x,'a'] by [x,'a2']");
  const Footprint b = footprint_of("B = replace [x,'a'] by [x,'b2']");
  EXPECT_TRUE(compete(a, b));
  EXPECT_TRUE(interferes(a, b));
}

TEST(Relations, ProducerFeedsConsumer) {
  const Footprint a = footprint_of("A = replace [x,'a'] by [x,'b']");
  const Footprint b = footprint_of("B = replace [x,'b'] by [x,'c']");
  EXPECT_FALSE(compete(a, b));
  EXPECT_TRUE(feeds(a, b));
  EXPECT_FALSE(feeds(b, a));
  EXPECT_TRUE(interferes(a, b));
}

TEST(Relations, WildcardOverlapsEverything) {
  const Footprint w = footprint_of("W = replace [x, l] by [x,'o'] if x > 0");
  const Footprint a = footprint_of("A = replace [x,'a'] by [x,'a2']");
  EXPECT_TRUE(compete(w, a));
  const Footprint u = footprint_of("U = replace x by 0 where x > 9");
  // Arity-1 wildcard labels vs arity-1 unlabeled: may be the same elements.
  EXPECT_TRUE(compete(w, u));
}

TEST(Relations, DifferentAritiesDoNotCompete) {
  const Footprint one = footprint_of("A = replace x, y by x + y");
  const Footprint two =
      footprint_of("B = replace [x,'p'], [y,'q'] by [x,'p2']");
  // Unlabeled arity-1 patterns cannot match labeled arity-2 elements.
  EXPECT_FALSE(compete(one, two));
}

// --- Conflict classes ----------------------------------------------------

TEST(Classes, DisjointChainsSplitIntoClasses) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x + 1,'b']
    B = replace [x,'b'] by [x,'c']
    P = replace [x,'p'] by [x + 1,'q']
    Q = replace [x,'q'] by [x,'r']
  )");
  const auto report = analyze_interference(p, {});
  EXPECT_EQ(report.class_count, 2u);
  // Feed edges keep each chain together...
  EXPECT_EQ(report.class_of[0], report.class_of[1]);
  EXPECT_EQ(report.class_of[2], report.class_of[3]);
  // ...and the chains apart.
  EXPECT_NE(report.class_of[0], report.class_of[2]);
}

TEST(Classes, WildcardCollapsesToOneClass) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x,'a2']
    B = replace [x,'b'] by [x,'b2']
    Sweep = replace [x, l] by 0 where x > 1000
  )");
  const auto report = analyze_interference(p, {});
  EXPECT_EQ(report.class_count, 1u);
}

TEST(Classes, StagesNeverShareClasses) {
  // Same labels in two sequential stages: not concurrent, so two classes.
  const Program p = parse(R"(
    A = replace [x,'a'] by [x + 1,'a']  if x < 10;
    B = replace [x,'a'] by [x - 1,'a']  if x > 0
  )");
  ASSERT_EQ(p.stages().size(), 2u);
  const auto report = analyze_interference(p, {});
  EXPECT_EQ(report.class_count, 2u);
  EXPECT_NE(report.class_of[0], report.class_of[1]);
}

TEST(Classes, EngineClassesMapsNames) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x,'a2']
    B = replace [x,'b'] by [x,'b2']
  )");
  const auto report = analyze_interference(p, {});
  const auto classes = report.engine_classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_NE(classes.at("A"), classes.at("B"));
}

TEST(Classes, LabelAffinityCoversConsumedAndProducedLabels) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x,'a2']
    B = replace [x,'b'] by [x,'b2']
  )");
  const auto report = analyze_interference(p, {});
  const auto affinity = report.label_affinity();
  EXPECT_EQ(affinity.at("a"), affinity.at("a2"));
  EXPECT_EQ(affinity.at("b"), affinity.at("b2"));
  EXPECT_NE(affinity.at("a"), affinity.at("b"));
}

// --- Verdicts on the paper programs --------------------------------------

TEST(Confluence, Fig1IsNotNonConfluent) {
  const auto report =
      analyze_interference(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_NE(report.verdict, ConfluenceVerdict::NonConfluent)
      << report.to_string();
  EXPECT_FALSE(report.has_divergence());
  // R1 and R2 touch disjoint labels: statically independent, no edge.
  for (const auto& [i, j] : report.edges) {
    EXPECT_FALSE(report.reactions[i] == "R1" && report.reactions[j] == "R2");
  }
}

TEST(Confluence, Fig2IsNotNonConfluent) {
  const auto report = analyze_interference(paper::fig2_gamma(),
                                           paper::fig2_initial(3, 5, 100));
  EXPECT_NE(report.verdict, ConfluenceVerdict::NonConfluent)
      << report.to_string();
}

TEST(Confluence, TranslatedGraphProgramIsNotNonConfluent) {
  // Algorithm 1 output is confluent by construction (deterministic source
  // graph); the analysis must never claim otherwise.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(3, 5, 0, true));
  const auto report = analyze_interference(conv.program, conv.initial);
  EXPECT_NE(report.verdict, ConfluenceVerdict::NonConfluent)
      << report.to_string();
}

TEST(Confluence, TranslatedProgramsLintClean) {
  // Translation validation, Algorithm 1 direction: every converted program
  // passes the Gamma linter with zero errors.
  const dataflow::Graph graphs[] = {
      paper::fig1_graph(), paper::fig2_graph(3, 5, 0, true),
      paper::multi_loop_graph(2, 3), paper::random_expression_graph(7, 42)};
  for (const auto& g : graphs) {
    const auto conv = translate::dataflow_to_gamma(g);
    const auto report = lint_program(conv.program, conv.initial);
    EXPECT_EQ(report.errors(), 0u) << report;
  }
}

TEST(Confluence, IndependentPinnedPairsProveConfluent) {
  // Label-pinned, initial multiplicity 1, labels never produced: the static
  // refinement alone proves determinism, no probes needed.
  const Program p = parse(R"(
    A = replace [x,'a'], [y,'b'] by [x + y,'s']
    B = replace [x,'c'], [y,'d'] by [x * y,'t']
  )");
  const Multiset init{
      Element::labeled(Value(1), "a"), Element::labeled(Value(2), "b"),
      Element::labeled(Value(3), "c"), Element::labeled(Value(4), "d")};
  const auto report = analyze_interference(p, init);
  EXPECT_EQ(report.verdict, ConfluenceVerdict::Confluent) << report.to_string();
  EXPECT_TRUE(report.pairs.empty()) << report.to_string();
}

TEST(Confluence, SubtractionDiverges) {
  const Program p = parse("Rsub = replace x, y by x - y");
  const Multiset init{Element{Value(3)}, Element{Value(5)},
                      Element{Value(11)}};
  const auto report = analyze_interference(p, init);
  EXPECT_EQ(report.verdict, ConfluenceVerdict::NonConfluent)
      << report.to_string();
  EXPECT_TRUE(report.has_divergence());
}

TEST(Confluence, DivergenceWitnessRechecks) {
  // The PairFinding must be a proof: replaying the continuation from both
  // post-firing states with the recorded seed reproduces both fixpoints.
  const Program p = parse("Rsub = replace x, y by x - y");
  const Multiset init{Element{Value(3)}, Element{Value(5)},
                      Element{Value(11)}};
  const auto report = analyze_interference(p, init);
  const PairFinding* diverged = nullptr;
  for (const auto& f : report.pairs) {
    if (f.status == PairStatus::Diverges) diverged = &f;
  }
  ASSERT_NE(diverged, nullptr) << report.to_string();
  EXPECT_NE(diverged->fixpoint1, diverged->fixpoint2);

  gamma::RunOptions ro;
  ro.seed = diverged->witness_seed;
  const auto r1 = gamma::IndexedEngine().run(p, diverged->witness_m1, ro);
  const auto r2 = gamma::IndexedEngine().run(p, diverged->witness_m2, ro);
  EXPECT_EQ(r1.final_multiset, diverged->fixpoint1);
  EXPECT_EQ(r2.final_multiset, diverged->fixpoint2);
  EXPECT_NE(r1.final_multiset, r2.final_multiset);
}

TEST(Confluence, ZeroProbeBudgetLeavesCompetitionUnknown) {
  const Program p = parse("Rsub = replace x, y by x - y");
  const Multiset init{Element{Value(3)}, Element{Value(5)}};
  InterferenceOptions opts;
  opts.probe_states = 0;
  const auto report = analyze_interference(p, init, opts);
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].status, PairStatus::Unknown);
  EXPECT_EQ(report.verdict, ConfluenceVerdict::LikelyConfluent);
}

TEST(Confluence, MaxReductionCommutesUnderProbing) {
  // max is associative-commutative: every probed conflict must rejoin.
  const Program p = parse("Rmax = replace x, y by x where x > y");
  const Multiset init{Element{Value(3)}, Element{Value(9)}, Element{Value(5)},
                      Element{Value(1)}};
  const auto report = analyze_interference(p, init);
  EXPECT_EQ(report.verdict, ConfluenceVerdict::LikelyConfluent)
      << report.to_string();
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].status, PairStatus::Commutes);
}

// --- Reports -------------------------------------------------------------

TEST(Report, TextAndJsonRender) {
  const auto report =
      analyze_interference(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_NE(report.to_string().find("verdict"), std::string::npos);
  std::ostringstream os;
  write_json(os, report);
  const std::string js = os.str();
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  EXPECT_NE(js.find("\"verdict\""), std::string::npos);
  EXPECT_NE(js.find("\"class_count\""), std::string::npos);
}

TEST(Report, TypedEdgesSeparateFeedFromCompetition) {
  // Fig. 1: R1 and R2 compete for nothing and feed R3 ('B2', 'C2'); the
  // typed edge list must carry the direction the DSU-edge list flattens.
  const auto report =
      analyze_interference(paper::fig1_gamma(), paper::fig1_initial());
  ASSERT_EQ(report.typed_edges.size(), report.edges.size());
  bool r1_feeds_r3 = false, any_compete = false;
  for (const auto& e : report.typed_edges) {
    const std::string& a = report.reactions[e.r1];
    const std::string& b = report.reactions[e.r2];
    if (a == "R1" && b == "R3") r1_feeds_r3 = e.feeds_12 && !e.feeds_21;
    if (e.compete) any_compete = true;
  }
  EXPECT_TRUE(r1_feeds_r3);
  EXPECT_FALSE(any_compete);
}

TEST(Report, JsonCarriesFeedAndCompeteEdgeLists) {
  // A program with both relations: P feeds C through 'Mid', and the two
  // consumers C and D compete for it.
  const Program p = parse(
      "P = replace [x, 'A'] by [x, 'Mid']\n"
      "C = replace [v, 'Mid'] by [v, 'Out']\n"
      "D = replace [v, 'Mid'] by [v + 1, 'Out']");
  Multiset m;
  m.add(Element{Value(1), Value(std::string("A"))});
  const auto report = analyze_interference(p, m);
  std::ostringstream os;
  write_json(os, report);
  const std::string js = os.str();
  EXPECT_NE(js.find("\"feed_edges\""), std::string::npos);
  EXPECT_NE(js.find("\"compete_edges\""), std::string::npos);
  EXPECT_NE(js.find("[\"P\",\"C\"]"), std::string::npos);
  EXPECT_NE(js.find("[\"P\",\"D\"]"), std::string::npos);
  EXPECT_NE(js.find("[\"C\",\"D\"]"), std::string::npos);
}

// --- 500-seed commutation property ---------------------------------------

// Statically independent reactions must commute on EVERY state: committing
// two enabled matches in either order reaches the same multiset.
TEST(Property, IndependentPairsCommuteOn500RandomStates) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x + 1,'a2']
    B = replace [x,'b'] by [x * 2,'b2']
  )");
  const auto report = analyze_interference(p, {});
  ASSERT_EQ(report.class_count, 2u);
  ASSERT_TRUE(report.edges.empty());
  const Reaction& ra = *p.all_reactions()[0];
  const Reaction& rb = *p.all_reactions()[1];

  std::size_t exercised = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed * 2654435761u + 1);
    Multiset m;
    const std::size_t n = 2 + rng.bounded(6);
    for (std::size_t k = 0; k < n; ++k) {
      const auto v = static_cast<std::int64_t>(rng.bounded(100));
      m.add(Element::labeled(Value(v), rng.bounded(2) ? "a" : "b"));
    }
    gamma::Store forward{m};
    const auto ma = find_match(forward, ra, &rng);
    const auto mb = find_match(forward, rb, &rng);
    if (!ma || !mb) continue;  // state lacks an 'a' or a 'b'
    ++exercised;

    gamma::Store backward{m};  // same state => same slot ids
    gamma::commit(forward, *ma);
    gamma::commit(forward, *mb);
    gamma::commit(backward, *mb);
    gamma::commit(backward, *ma);
    EXPECT_EQ(forward.to_multiset(), backward.to_multiset())
        << "seed " << seed;
  }
  // The generator must actually exercise the property, not vacuously pass.
  EXPECT_GT(exercised, 200u);
}

// Confirmed-interfering counterexamples must show REAL divergence on every
// seed: distinct replayable fixpoints, not an artifact of one lucky probe.
TEST(Property, SubtractionDivergenceReproducesAcrossSeeds) {
  const Program p = parse("Rsub = replace x, y by x - y");
  std::size_t diverged = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed + 7);
    Multiset init;
    for (std::size_t k = 0; k < 3 + rng.bounded(3); ++k) {
      init.add(Element{Value(static_cast<std::int64_t>(rng.bounded(50)) + 1)});
    }
    InterferenceOptions opts;
    opts.seed = seed;
    const auto report = analyze_interference(p, init, opts);
    for (const auto& f : report.pairs) {
      if (f.status != PairStatus::Diverges) continue;
      ++diverged;
      EXPECT_NE(f.fixpoint1, f.fixpoint2) << "seed " << seed;
      gamma::RunOptions ro;
      ro.seed = f.witness_seed;
      EXPECT_EQ(gamma::IndexedEngine().run(p, f.witness_m1, ro).final_multiset,
                f.fixpoint1)
          << "seed " << seed;
      EXPECT_EQ(gamma::IndexedEngine().run(p, f.witness_m2, ro).final_multiset,
                f.fixpoint2)
          << "seed " << seed;
    }
  }
  // Subtraction over random positive multisets diverges essentially always.
  EXPECT_GT(diverged, 8u);
}

// --- Engine integration --------------------------------------------------

Multiset conflict_free_init(std::size_t per_label) {
  Multiset m;
  for (std::size_t k = 0; k < per_label; ++k) {
    const auto v = static_cast<std::int64_t>(k);
    m.add(Element::labeled(Value(v), "a"));
    m.add(Element::labeled(Value(v), "b"));
    m.add(Element::labeled(Value(v), "c"));
  }
  return m;
}

const char* kChains = R"(
  A = replace [x,'a'] by [x + 1,'a2']
  B = replace [x,'b'] by [x * 2,'b2']
  C = replace [x,'c'] by [x - 1,'c2']
)";

TEST(EngineIntegration, ParallelClassesEliminateConflictsAndMatchOracle) {
  const Program p = parse(kChains);
  const Multiset init = conflict_free_init(40);
  const auto report = analyze_interference(p, init);
  ASSERT_EQ(report.class_count, 3u);

  const Multiset oracle = gamma::IndexedEngine().run(p, init).final_multiset;

  obs::Telemetry telemetry;
  gamma::RunOptions ro;
  ro.workers = 3;
  ro.telemetry = &telemetry;
  ro.conflict_classes = report.engine_classes();
  const auto result = gamma::ParallelEngine().run(p, init, ro);

  EXPECT_EQ(result.final_multiset, oracle);
  EXPECT_EQ(result.metrics.counters.at("gamma.commit_conflicts"), 0u);
  EXPECT_EQ(result.metrics.counters.at("gamma.class_fast_commits"),
            result.steps);
  EXPECT_EQ(result.steps, 120u);
}

TEST(EngineIntegration, ParallelIgnoresPartialClassMaps) {
  // A map that misses a reaction must disable the optimization, not crash
  // or misschedule.
  const Program p = parse(kChains);
  const Multiset init = conflict_free_init(10);
  const Multiset oracle = gamma::IndexedEngine().run(p, init).final_multiset;

  obs::Telemetry telemetry;
  gamma::RunOptions ro;
  ro.workers = 2;
  ro.telemetry = &telemetry;
  ro.conflict_classes = {{"A", 0}, {"B", 1}};  // no entry for C
  const auto result = gamma::ParallelEngine().run(p, init, ro);
  EXPECT_EQ(result.final_multiset, oracle);
  EXPECT_EQ(result.metrics.counters.at("gamma.class_fast_commits"), 0u);
}

TEST(EngineIntegration, IndexedClassSchedulingMatchesOracle) {
  const Program p = parse(kChains);
  const Multiset init = conflict_free_init(25);
  const auto report = analyze_interference(p, init);

  gamma::RunOptions plain;
  plain.seed = 11;
  const auto without = gamma::IndexedEngine().run(p, init, plain);

  gamma::RunOptions with = plain;
  with.conflict_classes = report.engine_classes();
  const auto grouped = gamma::IndexedEngine().run(p, init, with);

  EXPECT_EQ(grouped.final_multiset, without.final_multiset);
  EXPECT_EQ(grouped.steps, without.steps);
}

TEST(EngineIntegration, MultiStageProgramsRunWithClasses) {
  const Program p = parse(R"(
    A = replace [x,'a'] by [x + 1,'m'] ;
    B = replace [x,'m'], [y,'m'] by [x + y,'m']
  )");
  Multiset init;
  for (int k = 1; k <= 6; ++k) init.add(Element::labeled(Value(k), "a"));
  const auto report = analyze_interference(p, init);
  const Multiset oracle = gamma::IndexedEngine().run(p, init).final_multiset;

  gamma::RunOptions ro;
  ro.workers = 2;
  ro.conflict_classes = report.engine_classes();
  EXPECT_EQ(gamma::ParallelEngine().run(p, init, ro).final_multiset, oracle);
  EXPECT_EQ(gamma::IndexedEngine().run(p, init, ro).final_multiset, oracle);
}

TEST(EngineIntegration, ClusterAffinityPreservesResult) {
  const Program p = parse(kChains);
  const Multiset init = conflict_free_init(8);
  const auto report = analyze_interference(p, init);
  const Multiset oracle = gamma::IndexedEngine().run(p, init).final_multiset;

  distrib::ClusterOptions copts;
  copts.nodes = 3;
  copts.seed = 5;
  const auto plain = distrib::run_distributed(p, init, copts);
  EXPECT_EQ(plain.final_multiset, oracle);

  copts.label_affinity = report.label_affinity();
  const auto hinted = distrib::run_distributed(p, init, copts);
  EXPECT_EQ(hinted.final_multiset, oracle);
}

}  // namespace
}  // namespace gammaflow::analysis
