// Elastic durable cluster (membership churn + WAL durability): the
// epoch-stamped rendezvous map's incremental-move contract, membership
// schedule validation, churn x fault sweeps against the centralized oracle,
// replication-factor crash overlap, and the write-ahead-log recovery paths
// (torn tails, kill-all resume, snapshot-vs-pure-log replay equivalence).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/distrib/wal.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/runtime/sharded_store.hpp"

namespace gammaflow::distrib {
namespace {

gamma::Multiset ints(std::int64_t from, std::int64_t to) {
  gamma::Multiset m;
  for (std::int64_t i = from; i <= to; ++i) m.add(gamma::Element{Value(i)});
  return m;
}

ClusterOptions opts(std::size_t nodes, std::uint64_t seed = 7) {
  ClusterOptions o;
  o.nodes = nodes;
  o.seed = seed;
  return o;
}

/// A scratch WAL directory unique to the test, wiped on destruction.
struct WalDir {
  explicit WalDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("gf-elastic-" + name + "-" +
               std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~WalDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// --- EpochShardMap: the incremental-move contract --------------------------

TEST(EpochShardMap, JoinMovesOnlyKeysTheJoinerWins) {
  const runtime::EpochShardMap before({0, 1, 2}, 1);
  const runtime::EpochShardMap after({0, 1, 2, 3}, 2);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 5000; ++key) {
    const std::size_t was = before.owner_of(key);
    const std::size_t now = after.owner_of(key);
    if (was != now) {
      EXPECT_EQ(now, 3u) << "key " << key
                         << " changed owner without the joiner winning it";
      ++moved;
    }
    EXPECT_EQ(was != now, runtime::EpochShardMap::moved(key, before, after));
  }
  // Rendezvous hashing moves ~1/4 of the keyspace to the 4th member.
  EXPECT_GT(moved, 5000u / 8);
  EXPECT_LT(moved, 5000u / 2);
}

TEST(EpochShardMap, LeaveMovesOnlyTheLeaversKeys) {
  const runtime::EpochShardMap before({0, 1, 2, 3}, 4);
  const runtime::EpochShardMap after({0, 1, 3}, 5);
  for (std::uint64_t key = 0; key < 5000; ++key) {
    if (before.owner_of(key) != after.owner_of(key)) {
      EXPECT_EQ(before.owner_of(key), 2u)
          << "key " << key << " moved although its owner stayed a member";
    }
  }
}

TEST(EpochShardMap, SameMembersMoveNothing) {
  const runtime::EpochShardMap a({0, 2, 5}, 1);
  const runtime::EpochShardMap b({0, 2, 5}, 9);  // epoch differs, members not
  for (std::uint64_t key = 0; key < 2000; ++key) {
    EXPECT_FALSE(runtime::EpochShardMap::moved(key, a, b));
  }
}

TEST(EpochShardMap, LabeledElementsOfOneLabelCoRoute) {
  const runtime::EpochShardMap map({0, 1, 2, 3, 4}, 1);
  const auto a1 = gamma::Element::labeled(Value(std::int64_t{1}), "alpha");
  const auto a2 = gamma::Element::labeled(Value(std::int64_t{999}), "alpha");
  const auto b = gamma::Element::labeled(Value(std::int64_t{1}), "beta");
  EXPECT_EQ(runtime::EpochShardMap::key_of(a1),
            runtime::EpochShardMap::key_of(a2));
  EXPECT_EQ(map.owner(a1), map.owner(a2));
  EXPECT_NE(runtime::EpochShardMap::key_of(a1),
            runtime::EpochShardMap::key_of(b));
}

// --- MembershipPlan / ClusterOptions validation ----------------------------

TEST(MembershipPlan, ValidateRejectsMalformedSchedules) {
  {
    MembershipPlan p;
    p.joins.push_back({0, 4});  // round 0 races initial placement
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;
    p.leaves.push_back({3, 0});  // node 0 is the initiator/collector
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;
    p.joins.push_back({2, 1});  // not a spare index
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;
    p.joins.push_back({2, 4});
    p.joins.push_back({7, 4});  // double join
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;
    p.leaves.push_back({5, 6});  // spare that never joins
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;
    p.churn_rate = 1.5;
    EXPECT_THROW(p.validate(4), ProgramError);
  }
  {
    MembershipPlan p;  // a join then a later leave of the same spare is fine
    p.joins.push_back({2, 4});
    p.leaves.push_back({9, 4});
    p.churn_rate = 0.25;
    EXPECT_NO_THROW(p.validate(4));
    EXPECT_TRUE(p.any());
  }
}

TEST(ClusterOptions, ValidateRejectsBadElasticityKnobs) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 8);
  {
    ClusterOptions o = opts(4);
    o.replication_factor = 0;
    EXPECT_THROW(run_distributed(p, m, o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.replication_factor = 4;  // >= nodes: a node would replicate to itself
    EXPECT_THROW(run_distributed(p, m, o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.checkpoint_every = 0;
    EXPECT_THROW(run_distributed(p, m, o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.wal_snapshot_every = 0;
    EXPECT_THROW(run_distributed(p, m, o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.resume = true;  // resume needs a wal_dir to resume FROM
    EXPECT_THROW(run_distributed(p, m, o), ProgramError);
  }
}

// --- churn correctness vs the centralized oracle ---------------------------

TEST(Elastic, ScheduledJoinAndLeaveMatchOracle) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  ClusterOptions o = opts(3, 11);
  o.faults.membership.joins.push_back({2, 3});
  o.faults.membership.joins.push_back({4, 4});
  o.faults.membership.leaves.push_back({6, 1});
  o.faults.membership.leaves.push_back({9, 3});
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, expected);
  EXPECT_EQ(r.joins, 2u);
  EXPECT_EQ(r.leaves, 2u);
  EXPECT_GE(r.epochs, 4u);  // every join and completed leave bumps the epoch
  EXPECT_GE(r.rebalances, r.joins + r.leaves);
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

TEST(Elastic, ChurnIsDeterministicFromSeed) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  ClusterOptions o = opts(4, 23);
  o.faults.membership.churn_rate = 0.1;
  const auto a = run_distributed(p, m, o);
  const auto b = run_distributed(p, m, o);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.labels_moved, b.labels_moved);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.final_multiset, b.final_multiset);
}

TEST(Elastic, ChurnTimesFaultSweepMatchesOracleOn200Seeds) {
  // The acceptance sweep: membership churn (scheduled + random) layered on
  // an actively faulty network, 200 seeds, every final multiset identical
  // to the centralized fixed point. Conservation arguments this verifies:
  // rebalance retries, drain completion, replica restore, and Safra
  // generation bumps across epochs.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 30);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  std::size_t churny_runs = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ClusterOptions o = opts(4, seed);
    o.faults.membership.joins.push_back({3, 4});
    o.faults.membership.leaves.push_back({5, 2});
    o.faults.membership.churn_rate = 0.05;
    o.faults.membership.max_churn = 4;
    o.faults.loss = 0.1;
    o.faults.duplication = 0.05;
    o.faults.crash_rate = 0.01;
    o.faults.max_crashes = 4;
    const auto r = run_distributed(p, m, o);
    ASSERT_EQ(r.final_multiset, expected) << "seed " << seed;
    ASSERT_EQ(r.outcome, Outcome::Completed) << "seed " << seed;
    if (r.epochs > 2) ++churny_runs;
  }
  EXPECT_GT(churny_runs, 0u);  // random churn genuinely triggered
}

TEST(Elastic, RebalanceMovesOnlyLabelsWhoseAssignmentChanged) {
  // Freeze everything except the rebalance itself: a program that never
  // fires, no stirring, and one scheduled join. The elements shipped at the
  // epoch change must be exactly those whose rendezvous owner changed to
  // the joiner AND who were not already sitting on it.
  const auto p = gamma::dsl::parse_program(
      "R = replace x, y by x where x < y - 1000000");
  const gamma::Multiset m = ints(1, 80);
  ClusterOptions o = opts(3, 5);
  o.migrations_per_round = 0;
  o.consolidate_after = 1000000;  // no collector pulls before the join
  o.faults.membership.joins.push_back({2, 3});
  const auto r = run_distributed(p, m, o);

  const runtime::EpochShardMap before({0, 1, 2}, 0);
  const runtime::EpochShardMap after({0, 1, 2, 3}, 1);
  std::uint64_t expected_moves = 0;
  for (const gamma::Element& e : m) {
    const std::size_t placed = e.hash() % 3;  // Placement::Hash
    const std::uint64_t key = runtime::EpochShardMap::key_of(e);
    if (runtime::EpochShardMap::moved(key, before, after) &&
        after.owner_of(key) != placed) {
      ++expected_moves;
    }
  }
  EXPECT_EQ(r.labels_moved, expected_moves);
  EXPECT_EQ(r.fires, 0u);
  EXPECT_EQ(r.joins, 1u);
  EXPECT_EQ(r.epochs, 1u);
}

// --- replication factor ----------------------------------------------------

TEST(Elastic, ReplicationFactorTwoCoversAdjacentCrashOverlap) {
  // Crash a node together with its ring successor (its only R=1 holder).
  // With R=1 the restart must WAIT for the holder; with R=2 the second
  // holder serves the replica immediately.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 50);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;

  ClusterOptions one = opts(4, 9);
  one.faults.crashes.push_back({2, 1, 2});   // node 1 back at round 4
  one.faults.crashes.push_back({2, 2, 12});  // its holder stays down longer
  const auto r1 = run_distributed(p, m, one);
  EXPECT_EQ(r1.final_multiset, expected);
  EXPECT_GT(r1.replica_waits, 0u);

  ClusterOptions two = one;
  two.replication_factor = 2;
  const auto r2 = run_distributed(p, m, two);
  EXPECT_EQ(r2.final_multiset, expected);
  EXPECT_EQ(r2.replica_waits, 0u);
}

// --- WAL: codec, replay, torn tails, resume --------------------------------

TEST(Wal, ElementCodecRoundTripsExactly) {
  using gamma::Element;
  const std::vector<Element> cases = {
      Element{Value(std::int64_t{0})},
      Element{Value(std::int64_t{-42})},
      Element{Value(0.1)},                       // not representable in text
      Element{Value(-1.0e300)},
      Element{Value(true), Value(false)},
      Element{Value()},                          // nil
      Element{Value(std::string{})},             // empty string
      Element{Value(std::string{"with space \n\t and ; tokens ("})},
      Element{Value(std::string{"\xff\x00\x01", 3})},  // non-UTF8 bytes
      Element::labeled(Value(3.14159265358979), "label with spaces"),
      Element::tagged(Value(std::int64_t{7}), "t", 99),
  };
  for (const Element& e : cases) {
    const std::string text = encode_element(e);
    const std::vector<std::string> toks = [&] {
      std::vector<std::string> out;
      std::string cur;
      for (const char c : text) {
        if (c == ' ') {
          if (!cur.empty()) out.push_back(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
      if (!cur.empty()) out.push_back(cur);
      return out;
    }();
    std::size_t pos = 0;
    const auto decoded = decode_elements(toks, pos);
    ASSERT_EQ(decoded.size(), 1u) << text;
    EXPECT_EQ(decoded[0], e) << text;
    EXPECT_EQ(pos, toks.size()) << text;
  }
}

TEST(Wal, CompletedRunsLogsReplayToTheFinalShards) {
  const WalDir dir("replay");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  ClusterOptions o = opts(3, 13);
  o.wal_dir = dir.path;
  const auto r = run_distributed(p, m, o);
  EXPECT_GT(r.wal_bytes, 0u);
  EXPECT_GT(r.wal_records, 0u);

  gamma::Multiset from_logs;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto st = replay_node_wal(wal_node_path(dir.path, i));
    ASSERT_TRUE(st.valid) << "node " << i;
    EXPECT_EQ(st.torn_bytes, 0u) << "node " << i;
    EXPECT_TRUE(st.pending.empty()) << "node " << i;  // all acked at the end
    from_logs.add(st.shard);
  }
  EXPECT_EQ(from_logs, r.final_multiset);
}

TEST(Wal, KillAllResumeReachesTheIdenticalFixedPoint) {
  // Emulate kill -9 of the whole cluster deterministically: stop the run
  // cold at a round budget (Partial policy — the in-memory settlement never
  // reaches the disk), then restart from the WAL directory alone. The
  // resumed run must land on the byte-identical final store of an
  // uninterrupted run.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions base = opts(4, 17);
  base.faults.membership.joins.push_back({2, 4});
  base.faults.membership.leaves.push_back({5, 2});
  const auto uninterrupted = [&] {
    const WalDir dir("uninterrupted");
    ClusterOptions o = base;
    o.wal_dir = dir.path;
    return run_distributed(p, m, o);
  }();
  EXPECT_EQ(uninterrupted.outcome, Outcome::Completed);

  for (const std::size_t kill_at : {3u, 6u, 10u}) {
    const WalDir dir("killall-" + std::to_string(kill_at));
    ClusterOptions killed = base;
    killed.wal_dir = dir.path;
    killed.max_rounds = kill_at;
    killed.limit_policy = LimitPolicy::Partial;
    const auto partial = run_distributed(p, m, killed);
    EXPECT_EQ(partial.outcome, Outcome::BudgetExhausted) << kill_at;

    // The resumed invocation passes the SAME schedule (the manifest checks
    // the cluster shape); events at or before the restored round are
    // pruned, later ones still fire.
    ClusterOptions resumed = base;
    resumed.wal_dir = dir.path;
    resumed.resume = true;
    const auto r = run_distributed(p, m, resumed);
    EXPECT_EQ(r.final_multiset, uninterrupted.final_multiset)
        << "killed at round " << kill_at;
    EXPECT_EQ(r.outcome, Outcome::Completed) << kill_at;
  }
}

TEST(Wal, ResumeOfACompletedRunIsANoOpFixedPoint) {
  const WalDir dir("noop");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 30);
  ClusterOptions o = opts(3, 7);
  o.wal_dir = dir.path;
  const auto first = run_distributed(p, m, o);

  ClusterOptions again = o;
  again.resume = true;
  const auto second = run_distributed(p, m, again);
  EXPECT_EQ(second.final_multiset, first.final_multiset);
  EXPECT_EQ(second.fires, 0u);  // nothing left to do
}

TEST(Wal, TornTailIsTruncatedAndReplayStopsAtTheLastMarker) {
  const WalDir dir("torn");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 30);
  ClusterOptions o = opts(3, 19);
  o.wal_dir = dir.path;
  (void)run_distributed(p, m, o);

  const std::string path = wal_node_path(dir.path, 0);
  const auto intact = replay_node_wal(path);
  ASSERT_TRUE(intact.valid);

  // Tear the tail mid-record: drop the file's last 7 bytes, then append a
  // line whose CRC cannot match.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "garbage that is not a framed record\n";
  }
  const auto torn = replay_node_wal(path);
  ASSERT_TRUE(torn.valid);
  EXPECT_GT(torn.torn_bytes, 0u);
  // The state is whatever the last INTACT round marker pinned; the final
  // marker lived in the torn tail, so replay lands one marker earlier.
  EXPECT_LE(torn.round, intact.round);
  // The tear is also gone from disk: a second replay sees a clean file.
  const auto again = replay_node_wal(path);
  ASSERT_TRUE(again.valid);
  EXPECT_EQ(again.torn_bytes, 0u);
  EXPECT_EQ(again.round, torn.round);
  EXPECT_EQ(again.shard, torn.shard);
}

TEST(Wal, SnapshotPlusTailEqualsPureLogReplay) {
  // Same run, two compaction cadences: aggressive snapshots vs none at all.
  // Replayed node states and the resumed fixed point must be identical —
  // compaction changes the FILE, never the state it replays to.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  const WalDir snappy_dir("snappy");
  const WalDir pure_dir("pure");

  ClusterOptions snappy = opts(3, 29);
  snappy.wal_dir = snappy_dir.path;
  snappy.wal_snapshot_every = 4;
  snappy.max_rounds = 8;
  snappy.limit_policy = LimitPolicy::Partial;
  ClusterOptions pure = snappy;
  pure.wal_dir = pure_dir.path;
  pure.wal_snapshot_every = 1000000;  // never compacts mid-run
  const auto a = run_distributed(p, m, snappy);
  const auto b = run_distributed(p, m, pure);
  EXPECT_GT(a.wal_compactions, b.wal_compactions);

  for (std::size_t i = 0; i < 3; ++i) {
    const auto sa = replay_node_wal(wal_node_path(snappy_dir.path, i));
    const auto sb = replay_node_wal(wal_node_path(pure_dir.path, i));
    ASSERT_TRUE(sa.valid && sb.valid) << i;
    EXPECT_EQ(sa.shard, sb.shard) << i;
    EXPECT_EQ(sa.round, sb.round) << i;
    EXPECT_EQ(sa.next_seq, sb.next_seq) << i;
    EXPECT_EQ(sa.message_count, sb.message_count) << i;
  }

  ClusterOptions ra = opts(3, 29);
  ra.wal_dir = snappy_dir.path;
  ra.resume = true;
  ClusterOptions rb = ra;
  rb.wal_dir = pure_dir.path;
  EXPECT_EQ(run_distributed(p, m, ra).final_multiset,
            run_distributed(p, m, rb).final_multiset);
}

TEST(Wal, SingleNodeRestartPrefersAFresherWalOverTheStaleReplica) {
  // checkpoint_every > 1 makes the ring replica lag; the WAL flushes every
  // round. A crash between checkpoints must restore from the WAL (counted
  // in wal_replays) and still converge to the oracle's fixed point.
  const WalDir dir("fresher");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 50);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  ClusterOptions o = opts(4, 31);
  o.wal_dir = dir.path;
  o.checkpoint_every = 5;
  o.faults.crashes.push_back({3, 2, 2});
  o.faults.crashes.push_back({7, 1, 3});
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, expected);
  EXPECT_GE(r.wal_replays, 1u);
  EXPECT_EQ(r.crashes, 2u);
}

TEST(Wal, ResumeWithoutAManifestThrows) {
  const WalDir dir("empty");
  std::filesystem::create_directories(dir.path);
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  ClusterOptions o = opts(3);
  o.wal_dir = dir.path;
  o.resume = true;
  EXPECT_THROW(run_distributed(p, ints(1, 5), o), ProgramError);
}

TEST(Wal, ResumeRejectsAClusterShapeMismatch) {
  const WalDir dir("shape");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  ClusterOptions o = opts(3, 7);
  o.wal_dir = dir.path;
  (void)run_distributed(p, ints(1, 20), o);

  ClusterOptions other = opts(5, 7);  // different --nodes than the WAL's run
  other.wal_dir = dir.path;
  other.resume = true;
  EXPECT_THROW(run_distributed(p, ints(1, 20), other), ProgramError);
}

}  // namespace
}  // namespace gammaflow::distrib
