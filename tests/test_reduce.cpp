// §III-A3 reductions: fusion to coarser reactions, expansion back to binary
// reactions, and semantic preservation of both.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/reduce.hpp"

namespace gammaflow::translate {
namespace {

using gamma::Element;
using gamma::IndexedEngine;
using gamma::Multiset;
using gamma::Program;

TEST(Fuse, Fig1CollapsesToOneReaction) {
  // R1,R2,R3 -> the paper's Rd1 shape: one 4-ary reaction producing m.
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_EQ(fused.reaction_count(), 1u);
  const auto* rd = fused.all_reactions()[0];
  EXPECT_EQ(rd->arity(), 4u);
  ASSERT_EQ(rd->branches().size(), 1u);
  EXPECT_EQ(rd->branches()[0].outputs.size(), 1u);
  EXPECT_EQ(rd->branches()[0].outputs[0][1]->literal(), Value("m"));
}

TEST(Fuse, Fig1FusedPreservesResult) {
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial());
  const auto r = IndexedEngine().run(fused, paper::fig1_initial());
  EXPECT_EQ(r.final_multiset, (Multiset{Element::labeled(Value(0), "m")}));
}

TEST(Fuse, FusedEqualsPaperRd1Behaviour) {
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial());
  const IndexedEngine eng;
  for (std::int64_t x : {1, -3, 10}) {
    const Multiset init = paper::fig1_initial(x, 5, 3, 2);
    EXPECT_EQ(eng.run(fused, init).final_multiset,
              eng.run(paper::fig1_reduced_gamma(), init).final_multiset);
  }
}

TEST(Fuse, PreserveLabelsBlocksFusion) {
  FuseOptions opts;
  opts.preserve_labels = {"B2"};  // keep R1's intermediate visible
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial(), opts);
  EXPECT_EQ(fused.reaction_count(), 2u);  // only R2 fused into R3
  EXPECT_NE(fused.find("R1"), nullptr);
}

TEST(Fuse, InitialLabelsNeverFused) {
  // A1..D1 appear in the initial multiset: they are roots, not intermediates.
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial());
  const auto* rd = fused.all_reactions()[0];
  std::set<std::string> labels;
  for (const auto& p : rd->patterns()) {
    labels.insert(p.fields()[1].value().as_str());
  }
  EXPECT_EQ(labels, (std::set<std::string>{"A1", "B1", "C1", "D1"}));
}

TEST(Fuse, MaxStepsLimitsFusion) {
  FuseOptions opts;
  opts.max_steps = 1;
  const Program fused =
      fuse_reactions(paper::fig1_gamma(), paper::fig1_initial(), opts);
  EXPECT_EQ(fused.reaction_count(), 2u);
}

TEST(Fuse, ConditionalConsumersStillFuseProducers) {
  // Producer feeds a conditional consumer: substitution into the condition.
  const Program p = gamma::dsl::parse_program(R"(
    P = replace [a,'x'], [b,'y'] by [a + b, 't']
    C = replace [t,'t'] by [t, 'big'] if t > 10 by [t, 'small'] else
  )");
  const Multiset init{Element::labeled(Value(7), "x"),
                      Element::labeled(Value(8), "y")};
  const Program fused = fuse_reactions(p, init);
  EXPECT_EQ(fused.reaction_count(), 1u);
  const auto r = IndexedEngine().run(fused, init);
  EXPECT_EQ(r.final_multiset, (Multiset{Element::labeled(Value(15), "big")}));
}

TEST(Fuse, SharedLabelNotFused) {
  // Two consumers of 't' => not a private intermediate.
  const Program p = gamma::dsl::parse_program(R"(
    P = replace [a,'x'] by [a + 1, 't']
    C1 = replace [t,'t'], [b,'y'] by [t + b, 'o1']
    C2 = replace [t,'t'], [c,'z'] by [t * c, 'o2']
  )");
  const Program fused = fuse_reactions(p, Multiset{});
  EXPECT_EQ(fused.reaction_count(), 3u);
}

TEST(Fuse, TaggedProgramsFuseTagPreservingChains) {
  const Program p = gamma::dsl::parse_program(R"(
    P = replace [a,'x',v] by [a * 2, 't', v]
    C = replace [t,'t',w], [b,'y',w] by [t + b, 'o', w]
  )");
  const Multiset init{Element::tagged(Value(5), "x", 3),
                      Element::tagged(Value(1), "y", 3)};
  const Program fused = fuse_reactions(p, init);
  EXPECT_EQ(fused.reaction_count(), 1u);
  const auto r = IndexedEngine().run(fused, init);
  EXPECT_EQ(r.final_multiset, (Multiset{Element::tagged(Value(11), "o", 3)}));
}

TEST(Fuse, TagChangingProducerNotFused) {
  // Inctag-style producers must not be inlined: the consumed element lives
  // in a different iteration.
  const Program p = gamma::dsl::parse_program(R"(
    P = replace [a,'x',v] by [a, 't', v + 1]
    C = replace [t,'t',w] by [t + 1, 'o', w]
  )");
  const Program fused = fuse_reactions(p, Multiset{});
  EXPECT_EQ(fused.reaction_count(), 2u);
}

TEST(Fuse, Fig2LoopProgramKeepsControlReactions) {
  // Steers/inctags are not fusable; only pure arithmetic chains are. The
  // nine-reaction loop program must keep its control structure.
  const Program fused =
      fuse_reactions(paper::fig2_gamma(), paper::fig2_initial(3, 5, 100));
  EXPECT_GE(fused.reaction_count(), 8u);
  const IndexedEngine eng;
  EXPECT_EQ(eng.run(fused, paper::fig2_initial(3, 5, 100)).final_multiset,
            eng.run(paper::fig2_gamma(), paper::fig2_initial(3, 5, 100))
                .final_multiset);
}

TEST(Fuse, DeepChainsAvoidVariableCapture) {
  // Regression: repeated fusion generates id1_1-style names; a later rename
  // must not collide with one already chosen (random 8..16-leaf expression
  // graphs reliably triggered this).
  const dataflow::Interpreter interp;
  const gamma::IndexedEngine eng;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const dataflow::Graph g = paper::random_expression_graph(10, seed);
    const Value expected = interp.run(g).single_output("m");
    const auto conv = dataflow_to_gamma(g);
    const Program fused = fuse_reactions(conv.program, conv.initial);
    EXPECT_EQ(fused.reaction_count(), 1u) << "seed " << seed;
    const auto run = eng.run(fused, conv.initial);
    const auto m = run.final_multiset.with_label("m");
    ASSERT_EQ(m.size(), 1u) << "seed " << seed;
    EXPECT_EQ(m[0].value(), expected) << "seed " << seed;
  }
}

// ---- expansion (inverse reduction) ----

TEST(Expand, Rd1SplitsIntoBinaryReactions) {
  const auto expanded =
      expand_reaction(*paper::fig1_reduced_gamma().all_reactions()[0]);
  EXPECT_EQ(expanded.size(), 3u);  // +, *, - : exactly the R1,R2,R3 shape
  for (const auto& r : expanded) EXPECT_LE(r.arity(), 2u);
}

TEST(Expand, Rd1ExpandedPreservesResult) {
  const Program expanded = expand_program(paper::fig1_reduced_gamma());
  const IndexedEngine eng;
  for (std::int64_t j : {0, 2, 5}) {
    const Multiset init = paper::fig1_initial(1, 5, 3, j);
    const auto a = eng.run(expanded, init);
    const auto b = eng.run(paper::fig1_reduced_gamma(), init);
    // Compare the observable 'm' element; intermediates differ by design.
    EXPECT_EQ(a.final_multiset.with_label("m"),
              b.final_multiset.with_label("m"));
  }
}

TEST(Expand, BinaryReactionIsUnchanged) {
  const auto r = gamma::dsl::parse_reaction(
      "R = replace [a,'x'], [b,'y'] by [a + b, 's']");
  const auto expanded = expand_reaction(r);
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0].to_string(), r.to_string());
}

TEST(Expand, ConditionalReactionIsUnchanged) {
  const auto r = gamma::dsl::parse_reaction(
      "R = replace x, y by x where x < y");
  EXPECT_EQ(expand_reaction(r).size(), 1u);
}

TEST(Expand, LiteralOperandsStayInline) {
  const auto r = gamma::dsl::parse_reaction(
      "R = replace [a,'x'], [b,'y'] by [(a + 1) * (b - 2), 'o']");
  const auto expanded = expand_reaction(r);
  // (a+1) and (b-2) are unary-input reactions; the product joins them.
  EXPECT_EQ(expanded.size(), 3u);
  const Program p{std::vector<gamma::Reaction>(expanded)};
  const Multiset init{Element::labeled(Value(4), "x"),
                      Element::labeled(Value(10), "y")};
  const auto run = IndexedEngine().run(p, init);
  EXPECT_EQ(run.final_multiset.with_label("o"),
            (std::vector<Element>{Element::labeled(Value(40), "o")}));
}

TEST(Expand, SharedVariableNotExpanded) {
  // a appears twice: splitting would race for one element.
  const auto r = gamma::dsl::parse_reaction(
      "R = replace [a,'x'] by [a * a, 'sq']");
  EXPECT_EQ(expand_reaction(r).size(), 1u);
}

TEST(Expand, FuseInvertsExpand) {
  // expand then fuse returns to a single reaction computing the same thing.
  const Program expanded = expand_program(paper::fig1_reduced_gamma());
  EXPECT_EQ(expanded.reaction_count(), 3u);
  const Program refused = fuse_reactions(expanded, paper::fig1_initial());
  EXPECT_EQ(refused.reaction_count(), 1u);
  const IndexedEngine eng;
  EXPECT_EQ(
      eng.run(refused, paper::fig1_initial()).final_multiset.with_label("m"),
      eng.run(paper::fig1_reduced_gamma(), paper::fig1_initial())
          .final_multiset.with_label("m"));
}

TEST(Expand, SkipReasonsExplainIneligibleReactions) {
  // Each ineligible shape gets a distinct, human-readable reason instead of
  // a silent pass-through.
  auto reason_for = [](const char* text) {
    const Program p = gamma::dsl::parse_program(text);
    std::vector<ExpandSkip> skips;
    (void)expand_program(p, &skips);
    return skips.size() == 1 ? skips[0].reason : std::string{};
  };
  EXPECT_NE(reason_for("R = replace [x, 'A'] by [x * 2, 'Out'] if x > 0")
                .find("single-unconditional-output"),
            std::string::npos);
  EXPECT_NE(reason_for("R = replace x, y by x + y").find("unlabeled"),
            std::string::npos);
  EXPECT_NE(reason_for("R = replace [x, 'A'], [y, 'B'] by [x + x * y, 'Out']")
                .find("occurs"),
            std::string::npos);
  EXPECT_NE(
      reason_for("R = replace [x, 'A'], [y, 'B'] by [x + y, 'Out']")
          .find("single-operator"),
      std::string::npos);
}

TEST(Expand, SkipListNamesEveryUntouchedReaction) {
  // Fig. 1's program is fully binary already: all three reactions skip, and
  // the program text survives unchanged.
  std::vector<ExpandSkip> skips;
  const Program expanded = expand_program(paper::fig1_gamma(), &skips);
  ASSERT_EQ(skips.size(), 3u);
  EXPECT_EQ(skips[0].reaction, "R1");
  EXPECT_EQ(skips[2].reaction, "R3");
  EXPECT_EQ(expanded.to_string(), paper::fig1_gamma().to_string());
  // Rd1 by contrast expands with no skips.
  skips.clear();
  (void)expand_program(paper::fig1_reduced_gamma(), &skips);
  EXPECT_TRUE(skips.empty());
}

TEST(Expand, CustomLabelGenerator) {
  const auto rd1 = *paper::fig1_reduced_gamma().all_reactions()[0];
  const auto expanded = expand_reaction(
      rd1, [](std::size_t k) { return "tmp" + std::to_string(k); });
  bool found = false;
  for (const auto& r : expanded) {
    if (r.to_string().find("tmp") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gammaflow::translate
