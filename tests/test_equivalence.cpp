// The paper's headline claim, executed: dataflow graphs and their converted
// Gamma programs compute the same observables — across engines, seeds, and
// randomly generated graphs.
#include <gtest/gtest.h>

#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/equivalence.hpp"

namespace gammaflow::translate {
namespace {

TEST(Equivalence, Fig1AcrossAllEngineCombinations) {
  const dataflow::Graph g = paper::fig1_graph();
  const dataflow::Interpreter di;
  const dataflow::ParallelEngine dp;
  const gamma::SequentialEngine gs;
  const gamma::IndexedEngine gi;
  const gamma::ParallelEngine gp;
  for (const dataflow::DfEngine* de :
       std::initializer_list<const dataflow::DfEngine*>{&di, &dp}) {
    for (const gamma::Engine* ge :
         std::initializer_list<const gamma::Engine*>{&gs, &gi, &gp}) {
      const auto rep = check_equivalence(g, *de, *ge, 7);
      EXPECT_TRUE(rep.equivalent)
          << de->name() << " vs " << ge->name() << ": " << rep.detail;
    }
  }
}

TEST(Equivalence, Fig2LoopWithObserver) {
  const auto rep =
      check_equivalence_seeds(paper::fig2_graph(5, 3, 10, true), 1, 10);
  EXPECT_TRUE(rep.equivalent) << rep.detail;
  EXPECT_EQ(rep.dataflow_result.single_output("x_final"), Value(25));
}

TEST(Equivalence, Fig2LoopNoObserverBothSidesEmpty) {
  const auto rep =
      check_equivalence_seeds(paper::fig2_graph(3, 5, 100, false), 1, 5);
  EXPECT_TRUE(rep.equivalent) << rep.detail;
  EXPECT_TRUE(rep.gamma_result.final_multiset.empty());
}

TEST(Equivalence, Fig2IterationSweep) {
  for (const std::int64_t z : {0, 1, 2, 8, 25}) {
    const auto rep =
        check_equivalence_seeds(paper::fig2_graph(z, 2, 5, true), 3, 3);
    EXPECT_TRUE(rep.equivalent) << "z=" << z << ": " << rep.detail;
    EXPECT_EQ(rep.dataflow_result.single_output("x_final"), Value(5 + 2 * z));
  }
}

TEST(Equivalence, MultiLoopGraphs) {
  const auto rep =
      check_equivalence_seeds(paper::multi_loop_graph(3, 4, true), 1, 3);
  EXPECT_TRUE(rep.equivalent) << rep.detail;
}

TEST(Equivalence, MismatchIsDetectedAndDescribed) {
  // Sanity-check the checker itself: compare fig1 against a Gamma run of a
  // DIFFERENT program by corrupting the conversion path — here we simply
  // verify a report with differing observables is not silently "equivalent".
  const dataflow::Graph g1 = paper::fig1_graph(1, 5, 3, 2);   // m = 0
  const dataflow::Graph g2 = paper::fig1_graph(2, 5, 3, 2);   // m = 1
  const GammaConversion conv2 = dataflow_to_gamma(g2);
  const auto df = dataflow::Interpreter().run(g1);
  const auto gm = gamma::IndexedEngine().run(conv2.program, conv2.initial);
  const auto df_tokens = df.outputs.at("m");
  const auto gm_tokens = observed_elements(gm.final_multiset, "m");
  EXPECT_NE(df_tokens, gm_tokens);
}

TEST(Equivalence, ObservedElementsSortsByTagThenValue) {
  gamma::Multiset m;
  m.add(gamma::Element::tagged(Value(30), "o", 2));
  m.add(gamma::Element::tagged(Value(10), "o", 1));
  m.add(gamma::Element::tagged(Value(20), "o", 1));
  m.add(gamma::Element::tagged(Value(99), "other", 0));
  m.add(gamma::Element::labeled(Value(5), "o"));  // untagged => tag 0
  const auto v = observed_elements(m, "o");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], (std::pair<dataflow::Tag, Value>{0, Value(5)}));
  EXPECT_EQ(v[1], (std::pair<dataflow::Tag, Value>{1, Value(10)}));
  EXPECT_EQ(v[2], (std::pair<dataflow::Tag, Value>{1, Value(20)}));
  EXPECT_EQ(v[3], (std::pair<dataflow::Tag, Value>{2, Value(30)}));
}

// Property: random expression graphs are equivalent for every seed.
class RandomGraphEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(RandomGraphEquivalence, HoldsForRandomExpressions) {
  const auto [leaves, seed] = GetParam();
  const dataflow::Graph g = paper::random_expression_graph(leaves, seed);
  const auto rep = check_equivalence_seeds(g, seed, 3);
  EXPECT_TRUE(rep.equivalent) << "leaves=" << leaves << " seed=" << seed
                              << ": " << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}, std::size_t{16},
                                         std::size_t{32}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

TEST(Equivalence, IfJoinOutputsObserveEveryProducerLabel) {
  // Regression (found by the pipeline property suite): a copy assignment in
  // an if-branch makes an Output node a multi-producer merge; the converted
  // program's observable must be gathered across ALL producer edge labels,
  // not just the first.
  const dataflow::Graph g = frontend::compile_source(R"(
    int a = 4; int b = -1;
    if (a > b) { b = a + 1; } else { a = b; }
    output a;
    output b;
  )");
  const auto conv = dataflow_to_gamma(g);
  // 'a' joins two branch definitions: two observable labels.
  EXPECT_EQ(conv.output_labels.at("a").size(), 2u);
  const auto rep = check_equivalence_seeds(g, 1, 5);
  EXPECT_TRUE(rep.equivalent) << rep.detail;
  EXPECT_EQ(rep.dataflow_result.single_output("a"), Value(4));
  EXPECT_EQ(rep.dataflow_result.single_output("b"), Value(5));
}

TEST(Equivalence, RandomGraphsAgainstSequentialOracle) {
  // The Eq. (1)-literal engine agrees too (smaller sizes: it is O(matches)).
  const gamma::SequentialEngine oracle;
  const dataflow::Interpreter di;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const dataflow::Graph g = paper::random_expression_graph(6, seed);
    const auto rep = check_equivalence(g, di, oracle, seed);
    EXPECT_TRUE(rep.equivalent) << rep.detail;
  }
}

}  // namespace
}  // namespace gammaflow::translate
