// Tagged-token execution: firing rule, steer routing, inctag isolation,
// loops, leftovers, limits — parameterized over Interpreter and the
// parallel PE engine.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::dataflow {
namespace {

using expr::BinOp;

enum class Kind { Interp, Parallel };

std::unique_ptr<DfEngine> make_engine(Kind k) {
  if (k == Kind::Interp) return std::make_unique<Interpreter>();
  return std::make_unique<ParallelEngine>();
}

class DfEngineSuite : public ::testing::TestWithParam<Kind> {
 protected:
  DfRunResult run(const Graph& g) {
    DfRunOptions opts;
    opts.workers = 3;
    return make_engine(GetParam())->run(g, opts);
  }
};

TEST_P(DfEngineSuite, Fig1ComputesZero) {
  const auto r = run(paper::fig1_graph());
  EXPECT_EQ(r.single_output("m"), Value(0));
  EXPECT_EQ(r.fires, 8u);  // 4 const + 3 arith + 1 output
  EXPECT_TRUE(r.leftovers.empty());
}

TEST_P(DfEngineSuite, Fig1ParameterSweep) {
  for (std::int64_t x : {0, 1, -5, 100}) {
    for (std::int64_t j : {0, 2, 7}) {
      const auto r = run(paper::fig1_graph(x, 5, 3, j));
      EXPECT_EQ(r.single_output("m"), Value((x + 5) - 3 * j));
    }
  }
}

TEST_P(DfEngineSuite, Fig2LoopAccumulates) {
  // for(i=z; i>0; i--) x += y  =>  x + z*y
  const auto r = run(paper::fig2_graph(4, 5, 100, true));
  EXPECT_EQ(r.single_output("x_final"), Value(120));
}

TEST_P(DfEngineSuite, Fig2ZeroIterations) {
  const auto r = run(paper::fig2_graph(0, 5, 100, true));
  EXPECT_EQ(r.single_output("x_final"), Value(100));
}

TEST_P(DfEngineSuite, Fig2WithoutObserverDiscardsEverything) {
  // The paper's literal Fig. 2: all steer FALSE ports dangle; the machine
  // quiesces with no outputs and no parked operands.
  const auto r = run(paper::fig2_graph(3, 5, 100, false));
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_TRUE(r.leftovers.empty());
}

TEST_P(DfEngineSuite, SteerRoutesByControl) {
  for (const bool flag : {true, false}) {
    GraphBuilder b;
    auto data = b.constant(Value(std::int64_t{42}), "d");
    auto ctrl = b.constant(Value(std::int64_t{flag ? 1 : 0}), "c");
    const NodeId st = b.steer(data, ctrl);
    const NodeId t = b.output("true_out");
    const NodeId f = b.output("false_out");
    b.connect(GraphBuilder::true_out(st), t, 0);
    b.connect(GraphBuilder::false_out(st), f, 0);
    const auto r = run(std::move(b).build());
    if (flag) {
      EXPECT_EQ(r.single_output("true_out"), Value(42));
      EXPECT_EQ(r.outputs.count("false_out"), 0u);
    } else {
      EXPECT_EQ(r.single_output("false_out"), Value(42));
      EXPECT_EQ(r.outputs.count("true_out"), 0u);
    }
  }
}

TEST_P(DfEngineSuite, CmpEmitsIntNotBool) {
  GraphBuilder b;
  auto a = b.constant(Value(3), "a");
  auto c = b.constant(Value(7), "c");
  b.output(b.cmp(BinOp::Lt, a, c), "lt");
  const auto r = run(std::move(b).build());
  EXPECT_EQ(r.single_output("lt"), Value(1));  // Int 1, not Bool true
}

TEST_P(DfEngineSuite, ImmediateArithmetic) {
  GraphBuilder b;
  auto c = b.constant(Value(10), "c");
  b.output(b.arith_imm(BinOp::Sub, c, Value(std::int64_t{1})), "dec");
  b.output(b.cmp_imm(BinOp::Gt, c, Value(std::int64_t{0})), "pos");
  const auto r = run(std::move(b).build());
  EXPECT_EQ(r.single_output("dec"), Value(9));
  EXPECT_EQ(r.single_output("pos"), Value(1));
}

TEST_P(DfEngineSuite, FanOutReplicatesTokens) {
  GraphBuilder b;
  auto c = b.constant(Value(5), "c");
  const NodeId o1 = b.output("o1");
  const NodeId o2 = b.output("o2");
  const NodeId o3 = b.output("o3");
  b.connect(c, o1, 0);
  b.connect(c, o2, 0);
  b.connect(c, o3, 0);
  const auto r = run(std::move(b).build());
  EXPECT_EQ(r.single_output("o1"), Value(5));
  EXPECT_EQ(r.single_output("o2"), Value(5));
  EXPECT_EQ(r.single_output("o3"), Value(5));
}

TEST_P(DfEngineSuite, UnmatchedOperandReportedAsLeftover) {
  // Add's second input never receives a token with the same tag: port 1 is
  // fed only via an inctag (tag 1) while port 0 keeps tag 0.
  GraphBuilder b;
  auto a = b.constant(Value(1), "a");
  auto c = b.constant(Value(2), "c");
  const NodeId add = b.arith(BinOp::Add);
  b.connect(a, add, 0);
  b.connect(b.inctag(c), add, 1);  // arrives with tag 1
  const NodeId out = b.output("never");
  b.connect(GraphBuilder::out(add), out, 0);
  const auto r = run(std::move(b).build());
  EXPECT_EQ(r.outputs.count("never"), 0u);
  EXPECT_EQ(r.leftovers.size(), 2u);  // both operands parked under ≠ tags
}

TEST_P(DfEngineSuite, MultiLoopGraphsRunIndependently) {
  const auto r = run(paper::multi_loop_graph(4, 5, true));
  for (std::size_t l = 0; l < 4; ++l) {
    // Loop l accumulates y=l+1 five times from x=0.
    EXPECT_EQ(r.single_output("L" + std::to_string(l) + ".x_final"),
              Value(static_cast<std::int64_t>(5 * (l + 1))));
  }
}

TEST_P(DfEngineSuite, MaxFiresGuardThrows) {
  // Infinite loop: steer always true.
  GraphBuilder b;
  auto start = b.constant(Value(1), "s");
  const NodeId inc = b.inctag();
  b.connect(start, inc, 0, "seed");
  auto always = b.cmp_imm(BinOp::Ge, GraphBuilder::out(inc),
                          Value(std::int64_t{0}));
  const NodeId st = b.steer(GraphBuilder::out(inc), always);
  b.connect(GraphBuilder::true_out(st), inc, 0, "back");
  const Graph g = std::move(b).build();
  DfRunOptions opts;
  opts.max_fires = 1000;
  opts.workers = 3;
  EXPECT_THROW((void)make_engine(GetParam())->run(g, opts), EngineError);
}

TEST_P(DfEngineSuite, ExtraTokenInjection) {
  // A lone arith node fed by injection on both edges.
  GraphBuilder b;
  auto c1 = b.constant(Value(1), "c1");
  auto c2 = b.constant(Value(2), "c2");
  const NodeId add = b.arith(BinOp::Add);
  b.connect(c1, add, 0, "ea");
  b.connect(c2, add, 1, "eb");
  const NodeId out = b.output("sum");
  b.connect(GraphBuilder::out(add), out, 0);
  const Graph g = std::move(b).build();

  // Inject an extra pair with tag 7: two results arrive.
  const std::vector<std::pair<Label, Token>> extra{
      {Label("ea"), Token{Value(10), 7}},
      {Label("eb"), Token{Value(20), 7}},
  };
  const auto r = make_engine(GetParam())->run(g, DfRunOptions{}, extra);
  const auto values = r.output_values("sum");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], Value(3));   // tag 0
  EXPECT_EQ(values[1], Value(30));  // tag 7
}

TEST_P(DfEngineSuite, InjectionOnUnknownEdgeThrows) {
  const Graph g = paper::fig1_graph();
  const std::vector<std::pair<Label, Token>> extra{
      {Label("no_such_edge"), Token{Value(1), 0}}};
  EXPECT_THROW((void)make_engine(GetParam())->run(g, DfRunOptions{}, extra),
               EngineError);
}

TEST_P(DfEngineSuite, FiresByNodeAccounting) {
  const Graph g = paper::fig2_graph(3, 5, 0, true);
  const auto r = run(g);
  std::uint64_t total = std::accumulate(r.fires_by_node.begin(),
                                        r.fires_by_node.end(), std::uint64_t{0});
  EXPECT_EQ(total, r.fires);
  // Every loop node fires z+1 = 4 times (3 iterations + exit round).
  EXPECT_EQ(r.fires_by_node[*g.find("R14")], 4u);
  EXPECT_EQ(r.fires_by_node[*g.find("R18")], 3u);  // only on taken branches
}

// ---------------------------------------------------------------------------
// Cooperative stopping: deadline, cancellation, and budget with
// LimitPolicy::Partial return a valid partial machine state (outputs so
// far, unfired operands as leftovers) with DfRunResult::outcome set.
// ---------------------------------------------------------------------------

namespace {
/// The MaxFiresGuardThrows loop: steer always true, never drains.
Graph infinite_loop_graph() {
  GraphBuilder b;
  auto start = b.constant(Value(1), "s");
  const NodeId inc = b.inctag();
  b.connect(start, inc, 0, "seed");
  auto always = b.cmp_imm(BinOp::Ge, GraphBuilder::out(inc),
                          Value(std::int64_t{0}));
  const NodeId st = b.steer(GraphBuilder::out(inc), always);
  b.connect(GraphBuilder::true_out(st), inc, 0, "back");
  return std::move(b).build();
}
}  // namespace

TEST_P(DfEngineSuite, DeadlineExceededReturnsPartialState) {
  DfRunOptions opts;
  opts.workers = 3;
  opts.max_fires = ~std::uint64_t{0};
  opts.deadline = 0.02;
  const auto r = make_engine(GetParam())->run(infinite_loop_graph(), opts);
  EXPECT_EQ(r.outcome, Outcome::DeadlineExceeded);
  EXPECT_GT(r.fires, 0u);  // it really ran until the clock said stop
}

TEST_P(DfEngineSuite, PreCancelledTokenStopsBeforeFiring) {
  CancelToken token;
  token.cancel();
  DfRunOptions opts;
  opts.workers = 3;
  opts.cancel = &token;
  const auto r = make_engine(GetParam())->run(paper::fig1_graph(), opts);
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_TRUE(r.outputs.empty());
}

TEST_P(DfEngineSuite, CancelFromAnotherThreadStopsTheRun) {
  CancelToken token;
  DfRunOptions opts;
  opts.workers = 3;
  opts.max_fires = ~std::uint64_t{0};
  opts.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.cancel();
  });
  const auto r = make_engine(GetParam())->run(infinite_loop_graph(), opts);
  canceller.join();
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
}

TEST_P(DfEngineSuite, BudgetWithPartialPolicyReturnsInsteadOfThrowing) {
  DfRunOptions opts;
  opts.workers = 3;
  opts.max_fires = 500;
  opts.limit_policy = LimitPolicy::Partial;
  const auto r = make_engine(GetParam())->run(infinite_loop_graph(), opts);
  EXPECT_EQ(r.outcome, Outcome::BudgetExhausted);
  EXPECT_GT(r.fires, 0u);
  // The looping token is still in the machine, surfaced as a leftover, not
  // silently dropped.
  EXPECT_FALSE(r.leftovers.empty());
}

TEST_P(DfEngineSuite, CompletedRunsReportCompletedOutcome) {
  const auto r = run(paper::fig1_graph());
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

INSTANTIATE_TEST_SUITE_P(Engines, DfEngineSuite,
                         ::testing::Values(Kind::Interp, Kind::Parallel),
                         [](const auto& param_info) {
                           return param_info.param == Kind::Interp ? "Interpreter"
                                                             : "Parallel";
                         });

// ---- interpreter-specific ----

TEST(Interpreter, WavefrontsExposeParallelism) {
  const auto r = Interpreter().run(paper::fig1_graph());
  // Wave 1: R1 and R2 fire together; wave 2: R3; wave 3: output.
  ASSERT_EQ(r.wavefronts.size(), 3u);
  EXPECT_EQ(r.wavefronts[0], 2u);
  EXPECT_EQ(r.wavefronts[1], 1u);
  EXPECT_EQ(r.wavefronts[2], 1u);
}

TEST(Interpreter, TraceIsTopologicallyConsistent) {
  DfRunOptions opts;
  opts.record_trace = true;
  const Graph g = paper::fig1_graph();
  const auto r = Interpreter().run(g, opts);
  ASSERT_EQ(r.trace.size(), r.fires);
  // R3 must fire after both R1 and R2.
  auto pos = [&](const char* name) {
    const NodeId id = *g.find(name);
    return std::find(r.trace.begin(), r.trace.end(), id) - r.trace.begin();
  };
  EXPECT_GT(pos("R3"), pos("R1"));
  EXPECT_GT(pos("R3"), pos("R2"));
}

TEST(Interpreter, TraceLimitCapsRecording) {
  DfRunOptions opts;
  opts.record_trace = true;
  opts.trace_limit = 3;
  const auto r = Interpreter().run(paper::fig1_graph(), opts);
  EXPECT_EQ(r.fires, 8u);  // execution unaffected
  EXPECT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace_dropped, 5u);
}

TEST(Interpreter, DuplicateOperandDetected) {
  // Two tag-0 producers into the same port: single-assignment violation.
  GraphBuilder b;
  auto c1 = b.constant(Value(1), "c1");
  auto c2 = b.constant(Value(2), "c2");
  auto c3 = b.constant(Value(3), "c3");
  const NodeId add = b.arith(BinOp::Add);
  b.connect(c1, add, 0);
  b.connect(c2, add, 0);  // same port!
  b.connect(c3, add, 1);
  const NodeId out = b.output("o");
  b.connect(GraphBuilder::out(add), out, 0);
  const Graph g = std::move(b).build();
  EXPECT_THROW((void)Interpreter().run(g), EngineError);
}

TEST(Interpreter, SingleOutputHelperThrowsOnCounts) {
  const auto r = Interpreter().run(paper::fig2_graph(3, 5, 0, false));
  EXPECT_THROW((void)r.single_output("missing"), EngineError);
  EXPECT_THROW((void)r.output_values("missing"), EngineError);
}

TEST(ParallelEngine, MatchesInterpreterOnFig2Sweep) {
  for (std::int64_t z : {0, 1, 2, 10, 50}) {
    const Graph g = paper::fig2_graph(z, 3, 7, true);
    const auto a = Interpreter().run(g);
    DfRunOptions opts;
    opts.workers = 4;
    const auto b = ParallelEngine().run(g, opts);
    EXPECT_EQ(a.single_output("x_final"), b.single_output("x_final")) << z;
    EXPECT_EQ(a.fires, b.fires) << z;
  }
}

}  // namespace
}  // namespace gammaflow::dataflow
