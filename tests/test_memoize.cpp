// DF-DTM trace reuse (the paper's ref [3], listed in §I as a benefit the
// equivalence brings to Gamma programs): memoized firing preserves results
// and reports hit rates.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::dataflow {
namespace {

DfRunOptions memo_opts() {
  DfRunOptions o;
  o.memoize = true;
  return o;
}

TEST(Memoize, ResultsUnchangedOnFig1) {
  const Graph g = paper::fig1_graph(9, -2, 3, 4);
  const auto plain = Interpreter().run(g);
  const auto memo = Interpreter().run(g, memo_opts());
  EXPECT_EQ(plain.single_output("m"), memo.single_output("m"));
  EXPECT_EQ(memo.memo_hits, 0u);  // every operand pair is unique here
  EXPECT_EQ(memo.memo_misses, 3u);
}

TEST(Memoize, ResultsUnchangedOnFig2Loop) {
  for (const std::int64_t z : {0, 1, 7, 30}) {
    const Graph g = paper::fig2_graph(z, 5, 100, true);
    const auto plain = Interpreter().run(g);
    const auto memo = Interpreter().run(g, memo_opts());
    EXPECT_EQ(plain.single_output("x_final"), memo.single_output("x_final"))
        << z;
    EXPECT_EQ(plain.fires, memo.fires) << z;
  }
}

TEST(Memoize, LoopsWithRepeatedOperandsHit) {
  // y stays 0, so the accumulator add sees (x, 0) -> x only once per x; but
  // the comparison i > 0 sees each i once... build a loop where the SAME
  // operands genuinely recur: x = x * 1 repeated (operands (x,1) repeat
  // because x never changes).
  const Graph g = frontend::compile_source(R"(
    int x = 7;
    for (i = 20; i > 0; i--) x = (x * 2) / 2;
    output x;
  )");
  const auto memo = Interpreter().run(g, memo_opts());
  EXPECT_EQ(memo.single_output("x"), Value(7));
  // The multiply/divide see identical operands every iteration after the
  // first: hits dominate.
  EXPECT_GT(memo.memo_hits, 15u);
}

TEST(Memoize, HitsAndMissesPartitionPureFirings) {
  const Graph g = paper::fig2_graph(12, 5, 0, true);
  const auto plain = Interpreter().run(g);
  const auto memo = Interpreter().run(g, memo_opts());
  std::uint64_t pure_fires = 0;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const NodeKind k = g.node(id).kind;
    if (k == NodeKind::Arith || k == NodeKind::Cmp) {
      pure_fires += plain.fires_by_node[id];
    }
  }
  EXPECT_EQ(memo.memo_hits + memo.memo_misses, pure_fires);
}

TEST(Memoize, DistinctNodesNeverShareEntries) {
  // Two nodes with identical operands but different operators: a hash
  // collision must not let one reuse the other's value.
  GraphBuilder b;
  auto x = b.constant(Value(6), "x");
  auto y = b.constant(Value(7), "y");
  b.output(b.arith(expr::BinOp::Add, x, y), "sum");
  b.output(b.arith(expr::BinOp::Mul, x, y), "prod");
  const auto r = Interpreter().run(std::move(b).build(), memo_opts());
  EXPECT_EQ(r.single_output("sum"), Value(13));
  EXPECT_EQ(r.single_output("prod"), Value(42));
}

TEST(Memoize, MappedGammaRoundsBenefitFromReuse) {
  // The §I promise: a Gamma program executed through the dataflow side can
  // reuse instruction traces. Mapped min-rounds re-run the same comparisons
  // on surviving elements repeatedly.
  const auto rmin = gamma::dsl::parse_reaction(
      "Rmin = replace x, y by x where x < y");
  gamma::Multiset m;
  for (std::int64_t v : {9, 9, 9, 9, 2, 9, 9, 9}) {
    m.add(gamma::Element{Value(v)});
  }
  const auto mapped = translate::instantiate_mapping(rmin, m);
  const auto r = Interpreter().run(mapped.graph, memo_opts());
  // Four instances compare mostly (9,9): after the first, reuse kicks in.
  EXPECT_GT(r.memo_hits, 0u);
}

TEST(Memoize, OffByDefault) {
  const auto r = Interpreter().run(paper::fig1_graph());
  EXPECT_EQ(r.memo_hits, 0u);
  EXPECT_EQ(r.memo_misses, 0u);
}

}  // namespace
}  // namespace gammaflow::dataflow
