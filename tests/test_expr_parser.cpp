// Lexer and expression parser: tokens, precedence, locations, errors, and
// the print->parse round-trip property.
#include <gtest/gtest.h>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/lexer.hpp"
#include "gammaflow/expr/parser.hpp"

namespace gammaflow::expr {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = tokenize("replace [id1, 'A1', v] by 3 + 4.5");
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, TokenKind::KwReplace);
  EXPECT_EQ(toks[1].kind, TokenKind::LBracket);
  EXPECT_EQ(toks[2].kind, TokenKind::Ident);
  EXPECT_EQ(toks[2].text, "id1");
  EXPECT_EQ(toks[3].kind, TokenKind::Comma);
  EXPECT_EQ(toks[4].kind, TokenKind::StrLit);
  EXPECT_EQ(toks[4].value, Value("A1"));
  EXPECT_EQ(toks.back().kind, TokenKind::End);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  // The paper's listings write "If id1 > 0".
  auto toks = tokenize("If REPLACE By eLsE Where");
  EXPECT_EQ(toks[0].kind, TokenKind::KwIf);
  EXPECT_EQ(toks[1].kind, TokenKind::KwReplace);
  EXPECT_EQ(toks[2].kind, TokenKind::KwBy);
  EXPECT_EQ(toks[3].kind, TokenKind::KwElse);
  EXPECT_EQ(toks[4].kind, TokenKind::KwWhere);
}

TEST(Lexer, NumbersIntAndReal) {
  auto toks = tokenize("42 3.25 1e3 7");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLit);
  EXPECT_EQ(toks[0].value, Value(42));
  EXPECT_EQ(toks[1].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[1].value, Value(3.25));
  EXPECT_EQ(toks[2].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[2].value, Value(1000.0));
  EXPECT_EQ(toks[3].kind, TokenKind::IntLit);
}

TEST(Lexer, MultiCharOperators) {
  auto toks = tokenize("<= >= == != < >");
  EXPECT_EQ(toks[0].kind, TokenKind::Le);
  EXPECT_EQ(toks[1].kind, TokenKind::Ge);
  EXPECT_EQ(toks[2].kind, TokenKind::EqEq);
  EXPECT_EQ(toks[3].kind, TokenKind::Ne);
  EXPECT_EQ(toks[4].kind, TokenKind::Lt);
  EXPECT_EQ(toks[5].kind, TokenKind::Gt);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = tokenize("1 # the rest is ignored == !=\n2");
  EXPECT_EQ(toks[0].value, Value(1));
  EXPECT_EQ(toks[1].value, Value(2));
  EXPECT_EQ(toks[2].kind, TokenKind::End);
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW((void)tokenize("'abc"), ParseError);
  EXPECT_THROW((void)tokenize("'ab\nc'"), ParseError);
}

TEST(Lexer, UnknownCharacterThrows) {
  try {
    (void)tokenize("a $ b");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(Lexer, BareBangThrows) { EXPECT_THROW((void)tokenize("!x"), ParseError); }

TEST(Lexer, TrueFalseCarryValues) {
  auto toks = tokenize("true false nil");
  EXPECT_EQ(toks[0].value, Value(true));
  EXPECT_EQ(toks[1].value, Value(false));
  EXPECT_EQ(toks[2].kind, TokenKind::KwNil);
}

TEST(Parser, PrecedenceLadder) {
  // or < and < cmp < addsub < muldiv < unary
  auto e = parse_expression("a or b and c == d + e * -f");
  EXPECT_EQ(e->bin_op(), BinOp::Or);
  EXPECT_EQ(e->rhs()->bin_op(), BinOp::And);
  EXPECT_EQ(e->rhs()->rhs()->bin_op(), BinOp::Eq);
  EXPECT_EQ(e->rhs()->rhs()->rhs()->bin_op(), BinOp::Add);
  EXPECT_EQ(e->rhs()->rhs()->rhs()->rhs()->bin_op(), BinOp::Mul);
  EXPECT_EQ(e->rhs()->rhs()->rhs()->rhs()->rhs()->kind(), Expr::Kind::Unary);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto e = parse_expression("(a + b) * c");
  EXPECT_EQ(e->bin_op(), BinOp::Mul);
  EXPECT_EQ(e->lhs()->bin_op(), BinOp::Add);
}

TEST(Parser, LeftAssociative) {
  auto e = parse_expression("10 - 4 - 3");
  // ((10-4)-3)
  EXPECT_EQ(e->bin_op(), BinOp::Sub);
  EXPECT_EQ(e->lhs()->bin_op(), BinOp::Sub);
  EXPECT_EQ(e->rhs()->literal(), Value(3));
}

TEST(Parser, UnaryChains) {
  auto e = parse_expression("--x");
  EXPECT_EQ(e->kind(), Expr::Kind::Unary);
  EXPECT_EQ(e->operand()->kind(), Expr::Kind::Unary);
  auto n = parse_expression("not not p");
  EXPECT_EQ(n->kind(), Expr::Kind::Unary);
}

TEST(Parser, PaperConditions) {
  auto e = parse_expression("(x == 'A1') or (x == 'A11')");
  EXPECT_EQ(e->bin_op(), BinOp::Or);
  EXPECT_EQ(e->lhs()->bin_op(), BinOp::Eq);
  EXPECT_EQ(e->lhs()->rhs()->literal(), Value("A1"));
}

TEST(Parser, TrailingInputRejected) {
  EXPECT_THROW((void)parse_expression("a + b ]"), ParseError);
  EXPECT_THROW((void)parse_expression("a b"), ParseError);
}

TEST(Parser, EmptyInputRejected) {
  EXPECT_THROW((void)parse_expression(""), ParseError);
  EXPECT_THROW((void)parse_expression("()"), ParseError);
}

TEST(Parser, MissingOperandRejected) {
  EXPECT_THROW((void)parse_expression("a +"), ParseError);
  EXPECT_THROW((void)parse_expression("* a"), ParseError);
  EXPECT_THROW((void)parse_expression("(a + b"), ParseError);
}

TEST(Parser, LiteralKinds) {
  EXPECT_EQ(parse_expression("3")->literal(), Value(3));
  EXPECT_EQ(parse_expression("3.5")->literal(), Value(3.5));
  EXPECT_EQ(parse_expression("'s'")->literal(), Value("s"));
  EXPECT_EQ(parse_expression("true")->literal(), Value(true));
  EXPECT_EQ(parse_expression("nil")->literal(), Value());
}

// Property: print -> parse returns a structurally identical tree, for random
// expression trees over several seeds.
class ExprRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ExprPtr random_tree(Rng& rng, int depth) {
    if (depth <= 0 || rng.coin(0.3)) {
      if (rng.coin()) {
        return Expr::var(std::string(1, static_cast<char>('a' + rng.bounded(6))));
      }
      return Expr::lit(Value(static_cast<std::int64_t>(rng.bounded(100))));
    }
    static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                     BinOp::Div, BinOp::Mod, BinOp::Lt,
                                     BinOp::Le, BinOp::Gt, BinOp::Ge,
                                     BinOp::Eq, BinOp::Ne, BinOp::And,
                                     BinOp::Or};
    if (rng.coin(0.15)) {
      return Expr::unary(rng.coin() ? UnOp::Neg : UnOp::Not,
                         random_tree(rng, depth - 1));
    }
    return Expr::binary(kOps[rng.bounded(std::size(kOps))],
                        random_tree(rng, depth - 1),
                        random_tree(rng, depth - 1));
  }
};

TEST_P(ExprRoundTrip, PrintParseIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const ExprPtr tree = random_tree(rng, 5);
    const std::string printed = tree->to_string();
    ExprPtr reparsed;
    ASSERT_NO_THROW(reparsed = parse_expression(printed)) << printed;
    EXPECT_TRUE(equal(tree, reparsed))
        << "original: " << printed
        << "\nreparsed: " << reparsed->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gammaflow::expr
