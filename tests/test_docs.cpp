// Doc-sync tests: the CLI flags documented in README.md / DESIGN.md /
// ARCHITECTURE.md must exist in `gammaflow --help`, and every flag the CLI
// advertises must be documented somewhere. Compiled with GF_CLI_PATH (the
// built binary) and GF_REPO_DIR (the source tree) so the test runs from any
// build directory.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string run_help() {
  const std::string cmd = std::string(GF_CLI_PATH) + " --help";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  std::array<char, 4096> chunk{};
  std::size_t n = 0;
  while ((n = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    out.append(chunk.data(), n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << "--help must exit 0";
  return out;
}

std::set<std::string> extract_flags(const std::string& text) {
  std::set<std::string> flags;
  static const std::regex kFlag("--[a-z][a-z0-9-]*");
  for (std::sregex_iterator it(text.begin(), text.end(), kFlag), end;
       it != end; ++it) {
    flags.insert(it->str());
  }
  return flags;
}

/// Flags that appear in the docs but belong to OTHER tools (cmake, ctest)
/// quoted in build instructions — not gammaflow options.
const std::set<std::string> kForeignFlags = {
    "--build", "--test-dir", "--output-on-failure", "--benchmark-filter",
    "--parallel"};

std::string docs_text() {
  const std::string repo(GF_REPO_DIR);
  return read_file(repo + "/README.md") + read_file(repo + "/DESIGN.md") +
         read_file(repo + "/ARCHITECTURE.md");
}

TEST(DocSync, EveryDocumentedFlagExistsInHelp) {
  const std::string help = run_help();
  ASSERT_FALSE(help.empty());
  for (const std::string& flag : extract_flags(docs_text())) {
    if (kForeignFlags.count(flag) > 0) continue;
    EXPECT_NE(help.find(flag), std::string::npos)
        << "docs mention '" << flag << "' but `gammaflow --help` does not";
  }
}

TEST(DocSync, EveryHelpFlagIsDocumented) {
  const std::string docs = docs_text();
  for (const std::string& flag : extract_flags(run_help())) {
    EXPECT_NE(docs.find(flag), std::string::npos)
        << "`gammaflow --help` advertises '" << flag
        << "' but README/DESIGN/ARCHITECTURE never mention it";
  }
}

TEST(DocSync, EveryDocumentedSubcommandExistsInHelp) {
  const std::string help = run_help();
  // The command list README's CLI section shows; each must be a usage line.
  for (const char* cmd :
       {"compile", "run", "togamma", "rungamma", "fuse", "expand",
        "optimize", "reconstruct", "dot", "viz", "opt", "lint", "check",
        "distrib", "serve", "help"}) {
    EXPECT_NE(help.find(std::string("  ") + cmd + " "), std::string::npos)
        << "subcommand '" << cmd << "' missing from --help";
  }
}

TEST(DocSync, HelpAliasesAgree) {
  // `help`, `--help`, and `-h` must all print the same usage text.
  const std::string base = run_help();
  for (const char* alias : {"help", "-h"}) {
    const std::string cmd = std::string(GF_CLI_PATH) + ' ' + alias;
    FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 4096> chunk{};
    std::size_t n = 0;
    while ((n = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
      out.append(chunk.data(), n);
    }
    EXPECT_EQ(pclose(pipe), 0) << alias;
    EXPECT_EQ(out, base) << alias;
  }
}

TEST(DocSync, ArchitectureDocCoversEveryModule) {
  const std::string arch =
      read_file(std::string(GF_REPO_DIR) + "/ARCHITECTURE.md");
  for (const char* module :
       {"common", "obs", "expr", "runtime", "gamma", "dataflow", "translate",
        "analysis", "frontend", "paper", "distrib", "viz", "serve"}) {
    EXPECT_NE(arch.find(std::string("`") + module), std::string::npos)
        << "ARCHITECTURE.md never mentions module '" << module << "'";
  }
}

}  // namespace
