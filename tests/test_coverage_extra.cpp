// Supplementary coverage: imperative lexing mode, engine option corners,
// result-accessor edge cases, and cross-cutting printing invariants.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/expr/lexer.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow {
namespace {

using expr::LexMode;
using expr::TokenKind;
using expr::tokenize;

TEST(LexerModes, ImperativeTokensOnlyInImperativeMode) {
  // Expression mode: '--x' is two unary minuses (the DSL/printer contract).
  const auto expr_toks = tokenize("--x");
  EXPECT_EQ(expr_toks[0].kind, TokenKind::Minus);
  EXPECT_EQ(expr_toks[1].kind, TokenKind::Minus);
  // Imperative mode: it is the decrement operator.
  const auto imp_toks = tokenize("--x", LexMode::Imperative);
  EXPECT_EQ(imp_toks[0].kind, TokenKind::MinusMinus);
}

TEST(LexerModes, BracesRejectedInExpressionMode) {
  EXPECT_THROW((void)tokenize("{ }"), ParseError);
  EXPECT_EQ(tokenize("{ }", LexMode::Imperative)[0].kind, TokenKind::LBrace);
}

TEST(LexerModes, TypeWordsAreKeywordsOnlyImperatively) {
  // 'int' stays a plain identifier for the Gamma DSL (usable as a variable).
  EXPECT_EQ(tokenize("int")[0].kind, TokenKind::Ident);
  EXPECT_EQ(tokenize("int", LexMode::Imperative)[0].kind, TokenKind::KwVar);
  EXPECT_EQ(tokenize("for")[0].kind, TokenKind::Ident);
  EXPECT_EQ(tokenize("for", LexMode::Imperative)[0].kind, TokenKind::KwFor);
}

TEST(LexerModes, CxxCommentsOnlyImperative) {
  // In expression mode '//' is two divisions (an error downstream, but two
  // Slash tokens here).
  const auto toks = tokenize("1 // 2");
  EXPECT_EQ(toks[1].kind, TokenKind::Slash);
  const auto imp = tokenize("1 // 2", LexMode::Imperative);
  EXPECT_EQ(imp[1].kind, TokenKind::End);  // comment swallowed the rest
}

TEST(LexerModes, CompoundAssignTokens) {
  const auto toks = tokenize("a += 1; b -= 2", LexMode::Imperative);
  EXPECT_EQ(toks[1].kind, TokenKind::PlusEq);
  EXPECT_EQ(toks[5].kind, TokenKind::MinusEq);
}

TEST(EngineOptions, UniformCapStillReachesFixpoint) {
  // A tiny cap degrades fairness, never correctness.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  gamma::Multiset m;
  for (std::int64_t i = 1; i <= 30; ++i) m.add(gamma::Element{Value(i)});
  gamma::RunOptions opts;
  opts.uniform_cap = 2;
  const auto r = gamma::SequentialEngine().run(p, m, opts);
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(465)}}));
}

TEST(EngineOptions, ParallelTraceCoversAllStages) {
  const auto p = gamma::dsl::parse_program(
      "A = replace [x,'p'] by [x + 1,'q'] ; B = replace [x,'q'] by [x * 2,'r']");
  const gamma::Multiset m{gamma::Element::labeled(Value(5), "p")};
  gamma::RunOptions opts;
  opts.record_trace = true;
  opts.workers = 2;
  const auto r = gamma::ParallelEngine().run(p, m, opts);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].stage, 0u);
  EXPECT_EQ(r.trace[1].stage, 1u);
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element::labeled(Value(12), "r")}));
}

TEST(EngineOptions, SeedZeroIsValid) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  gamma::RunOptions opts;
  opts.seed = 0;
  const auto r = gamma::IndexedEngine().run(
      p, gamma::Multiset{gamma::Element{Value(2)}, gamma::Element{Value(1)}},
      opts);
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(1)}}));
}

TEST(DfResults, OutputValuesStableSortPreservesArrivalForEqualTags) {
  dataflow::DfRunResult r;
  r.outputs["o"] = {{3, Value(30)}, {1, Value(11)}, {1, Value(12)}};
  const auto v = r.output_values("o");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], Value(11));  // tag 1, first arrival
  EXPECT_EQ(v[1], Value(12));  // tag 1, second arrival
  EXPECT_EQ(v[2], Value(30));
}

TEST(Printing, GraphStreamFormListsEverything) {
  const auto g = paper::fig1_graph();
  const std::string s = g.to_string();
  EXPECT_NE(s.find("8 nodes, 7 edges"), std::string::npos);
  EXPECT_NE(s.find("arith(+) 'R1'"), std::string::npos);
  EXPECT_NE(s.find("-[B2]->"), std::string::npos);
}

TEST(Printing, ProgramStagePrintReparses) {
  const auto p = gamma::dsl::parse_program(
      "A = replace [x,'p'] by [x,'q'] ; B = replace [x,'q'] by [x,'r']");
  const auto again = gamma::dsl::parse_program(p.to_string());
  EXPECT_EQ(again.stage_count(), 2u);
  EXPECT_EQ(again.to_string(), p.to_string());
}

TEST(PaperBuilders, GeneratedSourcesAlwaysCompile) {
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    const std::string src = paper::random_source_program(seed);
    EXPECT_NO_THROW((void)frontend::compile_source(src)) << src;
  }
}

}  // namespace
}  // namespace gammaflow
