// Algorithm 2: per-reaction graphs, Fig. 4 multiset mapping, and mapped
// execution to fixpoint.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::translate {
namespace {

using dataflow::NodeKind;
using gamma::Element;
using gamma::Multiset;
using gamma::Reaction;

Multiset ints(std::initializer_list<std::int64_t> values) {
  Multiset m;
  for (const auto v : values) m.add(Element{Value(v)});
  return m;
}

TEST(Alg2, UnconditionalReactionBecomesArithTree) {
  // R1 of Fig. 1: two roots + one add node (+ output).
  const Reaction r = gamma::dsl::parse_reaction(
      "R1 = replace [id1,'A1'], [id2,'B1'] by [id1 + id2, 'B2']");
  const ReactionGraph rg = per_reaction_graph(r);
  EXPECT_EQ(rg.roots.size(), 2u);
  EXPECT_EQ(rg.graph.node(rg.roots[0]).kind, NodeKind::Const);
  EXPECT_EQ(rg.graph.node(rg.roots[0]).name, "A1");  // named by pattern label
  std::size_t arith = 0, steer = 0;
  for (const auto& n : rg.graph.nodes()) {
    arith += n.kind == NodeKind::Arith;
    steer += n.kind == NodeKind::Steer;
  }
  EXPECT_EQ(arith, 1u);
  EXPECT_EQ(steer, 0u);
  EXPECT_EQ(rg.produced_outputs.size(), 1u);
  EXPECT_TRUE(rg.unreacted_outputs.empty());
}

TEST(Alg2, ConditionalReactionGetsCmpAndSteers) {
  // Eq. (2) min: condition x < y => one cmp + one steer per element.
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const ReactionGraph rg = per_reaction_graph(r);
  std::size_t cmp = 0, steer = 0;
  for (const auto& n : rg.graph.nodes()) {
    cmp += n.kind == NodeKind::Cmp;
    steer += n.kind == NodeKind::Steer;
  }
  EXPECT_EQ(cmp, 1u);
  EXPECT_EQ(steer, 2u);  // lines 10-11: every consumed element is steered
  EXPECT_EQ(rg.unreacted_outputs.size(), 2u);  // no-else: false = unreacted
}

TEST(Alg2, SeededGraphComputesTheAction) {
  const Reaction r = gamma::dsl::parse_reaction(
      "R = replace [a,'L'], [b,'R'] by [a * b + 1, 'S']");
  const std::vector<Element> seed{Element::labeled(Value(6), "L"),
                                  Element::labeled(Value(7), "R")};
  const ReactionGraph rg = per_reaction_graph(r, &seed);
  const auto res = dataflow::Interpreter().run(rg.graph);
  EXPECT_EQ(res.single_output(rg.produced_outputs[0]), Value(43));
}

TEST(Alg2, SeededConditionalFiresOnlyWhenEnabled) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  {
    const std::vector<Element> seed{Element{Value(2)}, Element{Value(9)}};
    const auto res = dataflow::Interpreter().run(per_reaction_graph(r, &seed).graph);
    EXPECT_EQ(res.single_output("p0"), Value(2));
    EXPECT_EQ(res.outputs.count("u1"), 0u);  // reacted: no unreacted path
  }
  {
    const std::vector<Element> seed{Element{Value(9)}, Element{Value(2)}};
    const auto res = dataflow::Interpreter().run(per_reaction_graph(r, &seed).graph);
    EXPECT_EQ(res.outputs.count("p0"), 0u);
    EXPECT_EQ(res.single_output("u1"), Value(9));  // both pass through
    EXPECT_EQ(res.single_output("u2"), Value(2));
  }
}

TEST(Alg2, IfElseBranchesUseBothSteerPorts) {
  const Reaction r = gamma::dsl::parse_reaction(R"(
    R = replace [x, 'in'] by [x + 1, 'up'] if x > 0 by [x - 1, 'down'] else
  )");
  {
    const std::vector<Element> seed{Element::labeled(Value(5), "in")};
    const auto res = dataflow::Interpreter().run(per_reaction_graph(r, &seed).graph);
    EXPECT_EQ(res.single_output("p0"), Value(6));
  }
  {
    const std::vector<Element> seed{Element::labeled(Value(-5), "in")};
    const auto res = dataflow::Interpreter().run(per_reaction_graph(r, &seed).graph);
    EXPECT_EQ(res.single_output("q0"), Value(-6));
  }
}

TEST(Alg2, RejectsUnsupportedShapes) {
  // Logical condition has no node equivalent in the printed algorithm.
  EXPECT_THROW((void)per_reaction_graph(gamma::dsl::parse_reaction(
                   "R = replace x, y by x where (x < y) and (x > 0)")),
               TranslateError);
  // Three branches are outside the if/else shape.
  EXPECT_THROW((void)per_reaction_graph(gamma::dsl::parse_reaction(R"(
                   R = replace x by [x] if x > 10 by [x + 1] if x > 5 by 0 else
               )")),
               TranslateError);
}

TEST(Alg2, NegationLowersToZeroMinus) {
  const Reaction r =
      gamma::dsl::parse_reaction("R = replace [a,'L'] by [-a, 'N']");
  const std::vector<Element> seed{Element::labeled(Value(4), "L")};
  const auto res = dataflow::Interpreter().run(per_reaction_graph(r, &seed).graph);
  EXPECT_EQ(res.single_output("p0"), Value(-4));
}

// ---- Fig. 4 mapping ----

TEST(Fig4, InstancesCoverMultiset) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const MappingResult mr = instantiate_mapping(r, ints({5, 3, 9, 1, 7, 4}));
  EXPECT_EQ(mr.instances, 3u);  // exactly the paper's 3-way instancing
  EXPECT_EQ(mr.leftover, 0u);
}

TEST(Fig4, LeftoverElementsPassThrough) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const MappingResult mr = instantiate_mapping(r, ints({5, 3, 9, 1, 7}));
  EXPECT_EQ(mr.instances, 2u);
  EXPECT_EQ(mr.leftover, 1u);
  const auto res = dataflow::Interpreter().run(mr.graph);
  EXPECT_EQ(res.single_output("left0"), Value(7));
}

TEST(Fig4, TernaryReactionChunksByThree) {
  const Reaction r = gamma::dsl::parse_reaction(
      "R = replace x, y, z by x + y + z");
  const MappingResult mr = instantiate_mapping(r, ints({1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(mr.instances, 2u);
  EXPECT_EQ(mr.leftover, 1u);
}

TEST(Fig4, OneRoundMatchesManualPairing) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  // Pairs in order: (5,3) disabled -> both survive; (1,7) fires -> 1.
  const MappingResult mr = instantiate_mapping(r, ints({5, 3, 1, 7}));
  const auto res = dataflow::Interpreter().run(mr.graph);
  EXPECT_EQ(res.single_output("i0.u1"), Value(5));
  EXPECT_EQ(res.single_output("i0.u2"), Value(3));
  EXPECT_EQ(res.single_output("i1.p0"), Value(1));
  EXPECT_EQ(res.outputs.count("i1.u1"), 0u);
}

TEST(Fig4, MapUntilFixpointFindsMin) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const MappingRun run = map_until_fixpoint(r, ints({5, 3, 9, 1, 7, 4}), 7);
  EXPECT_EQ(run.result, ints({1}));
  EXPECT_GE(run.rounds, 3u);  // at least ceil(log2(6)) rounds of halving
}

TEST(Fig4, MapUntilFixpointMatchesGammaEngineAcrossSeeds) {
  const Reaction rmax =
      gamma::dsl::parse_reaction("Rmax = replace x, y by x where x > y");
  const Multiset m = ints({12, 7, 3, 25, 18, 9, 31, 2});
  const auto gamma_result =
      gamma::IndexedEngine().run(gamma::Program(rmax), m);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const MappingRun run = map_until_fixpoint(rmax, m, seed);
    EXPECT_EQ(run.result, gamma_result.final_multiset) << "seed " << seed;
  }
}

TEST(Fig4, MapUntilFixpointGcd) {
  const Reaction rgcd = gamma::dsl::parse_reaction(
      "Rgcd = replace x, y by [x - y], [y] where x > y");
  const MappingRun run = map_until_fixpoint(rgcd, ints({12, 18, 30}), 3);
  EXPECT_EQ(run.result, ints({6, 6, 6}));
}

TEST(Fig4, AlreadyDisabledMultisetNeedsZeroRounds) {
  const Reaction r =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const MappingRun run = map_until_fixpoint(r, ints({4, 4, 4}), 1);
  EXPECT_EQ(run.rounds, 0u);
  EXPECT_EQ(run.result, ints({4, 4, 4}));
}

TEST(Fig4, NonLiteralOutputLabelRejectedForMapping) {
  // Output label computed from input => cannot rebuild elements.
  const Reaction r = gamma::dsl::parse_reaction(
      "R = replace [x, l] by [x, l] where x > 0");
  EXPECT_THROW((void)map_until_fixpoint(r, Multiset{Element::labeled(Value(1), "a")}, 1),
               TranslateError);
}

TEST(Fig4, RoundsGuardThrows) {
  // x -> x+1 never reaches a fixpoint.
  const Reaction r = gamma::dsl::parse_reaction("R = replace x by x + 1");
  EXPECT_THROW((void)map_until_fixpoint(r, ints({1}), 1, 50), EngineError);
}

}  // namespace
}  // namespace gammaflow::translate
