// Fault-injection primitives (common/fault.hpp) and cooperative
// cancellation (common/cancel.hpp): plan validation, injector determinism,
// partition geometry, token/governor semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/fault.hpp"

namespace gammaflow {
namespace {

TEST(FaultPlan, DefaultPlanIsFaultFree) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.crashes_possible());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, AnyDetectsEachFaultClass) {
  {
    FaultPlan p;
    p.loss = 0.1;
    EXPECT_TRUE(p.any());
  }
  {
    FaultPlan p;
    p.duplication = 0.1;
    EXPECT_TRUE(p.any());
  }
  {
    FaultPlan p;
    p.reorder = 0.1;
    EXPECT_TRUE(p.any());
  }
  {
    FaultPlan p;
    p.crash_rate = 0.01;
    EXPECT_TRUE(p.any());
    EXPECT_TRUE(p.crashes_possible());
  }
  {
    FaultPlan p;
    p.crashes.push_back({5, 1, 3});
    EXPECT_TRUE(p.any());
    EXPECT_TRUE(p.crashes_possible());
  }
  {
    FaultPlan p;
    p.partitions.push_back({10, 5, 2});
    EXPECT_TRUE(p.any());
    EXPECT_FALSE(p.crashes_possible());
  }
}

TEST(FaultPlan, ValidateRejectsOutOfRangeProbabilities) {
  for (const double bad : {-0.1, 1.5}) {
    {
      FaultPlan p;
      p.loss = bad;
      EXPECT_THROW(p.validate(), ProgramError);
    }
    {
      FaultPlan p;
      p.duplication = bad;
      EXPECT_THROW(p.validate(), ProgramError);
    }
    {
      FaultPlan p;
      p.reorder = bad;
      EXPECT_THROW(p.validate(), ProgramError);
    }
    {
      FaultPlan p;
      p.crash_rate = bad;
      EXPECT_THROW(p.validate(), ProgramError);
    }
  }
}

TEST(FaultPlan, ValidateRejectsDegenerateKnobs) {
  {
    FaultPlan p;
    p.reorder = 0.5;
    p.reorder_jitter = 0;
    EXPECT_THROW(p.validate(), ProgramError);
  }
  {
    FaultPlan p;
    p.crash_rate = 0.01;
    p.crash_downtime = 0;
    EXPECT_THROW(p.validate(), ProgramError);
  }
}

TEST(FaultInjector, SameSeedReplaysTheSameSchedule) {
  FaultPlan plan;
  plan.loss = 0.3;
  plan.duplication = 0.2;
  plan.reorder = 0.4;
  FaultInjector a(plan, 42), b(plan, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.lose(), b.lose());
    EXPECT_EQ(a.duplicate(), b.duplicate());
    EXPECT_EQ(a.jitter(), b.jitter());
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.loss = 0.5;
  FaultInjector a(plan, 1), b(plan, 2);
  int differences = 0;
  for (int i = 0; i < 256; ++i) differences += a.lose() != b.lose();
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, DisabledFaultsDrawNothing) {
  const FaultPlan plan;  // all zero
  FaultInjector inj(plan, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.lose());
    EXPECT_FALSE(inj.duplicate());
    EXPECT_EQ(inj.jitter(), 0u);
    EXPECT_FALSE(inj.spontaneous_crash());
  }
}

TEST(FaultInjector, LossRateIsRoughlyRespected) {
  FaultPlan plan;
  plan.loss = 0.25;
  FaultInjector inj(plan, 7);
  int lost = 0;
  for (int i = 0; i < 10'000; ++i) lost += inj.lose();
  EXPECT_GT(lost, 2'000);
  EXPECT_LT(lost, 3'000);
}

TEST(FaultInjector, JitterStaysWithinBound) {
  FaultPlan plan;
  plan.reorder = 1.0;
  plan.reorder_jitter = 4;
  FaultInjector inj(plan, 3);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t j = inj.jitter();
    EXPECT_GE(j, 1u);
    EXPECT_LE(j, 4u);
  }
}

TEST(FaultInjector, SpontaneousCrashesAreCapped) {
  FaultPlan plan;
  plan.crash_rate = 1.0;  // every roll succeeds...
  plan.max_crashes = 5;   // ...but only this many times
  FaultInjector inj(plan, 11);
  int crashes = 0;
  for (int i = 0; i < 100; ++i) crashes += inj.spontaneous_crash();
  EXPECT_EQ(crashes, 5);
}

TEST(FaultInjector, PartitionSeversExactlyTheCutDuringTheWindow) {
  FaultPlan plan;
  plan.partitions.push_back({10, 5, 2});  // rounds [10,15), groups {0,1}|{2,3}
  const FaultInjector inj(plan, 1);
  // Inside the window, only cross-cut links are cut — both directions.
  EXPECT_TRUE(inj.severed(1, 2, 10));
  EXPECT_TRUE(inj.severed(2, 1, 14));
  EXPECT_TRUE(inj.severed(0, 3, 12));
  EXPECT_FALSE(inj.severed(0, 1, 12));
  EXPECT_FALSE(inj.severed(2, 3, 12));
  // Outside the window, nothing is cut.
  EXPECT_FALSE(inj.severed(1, 2, 9));
  EXPECT_FALSE(inj.severed(1, 2, 15));
}

TEST(Outcome, ToStringNamesEveryValue) {
  EXPECT_STREQ(to_string(Outcome::Completed), "completed");
  EXPECT_STREQ(to_string(Outcome::DeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(Outcome::Cancelled), "cancelled");
  EXPECT_STREQ(to_string(Outcome::BudgetExhausted), "budget_exhausted");
}

TEST(CancelToken, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, VisibleAcrossThreads) {
  CancelToken token;
  std::thread t([&] { token.cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(RunGovernor, UnarmedNeverStops) {
  RunGovernor gov(nullptr, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(gov.should_stop());
  EXPECT_EQ(gov.outcome(), Outcome::Completed);
}

TEST(RunGovernor, PreCancelledTokenStopsImmediately) {
  CancelToken token;
  token.cancel();
  RunGovernor gov(&token, 0.0);
  EXPECT_TRUE(gov.should_stop());
  EXPECT_EQ(gov.outcome(), Outcome::Cancelled);
}

TEST(RunGovernor, CancellationIsSticky) {
  CancelToken token;
  RunGovernor gov(&token, 0.0);
  EXPECT_FALSE(gov.should_stop());
  token.cancel();
  EXPECT_TRUE(gov.should_stop());
  token.reset();  // too late: the governor latched the decision
  EXPECT_TRUE(gov.should_stop());
  EXPECT_EQ(gov.outcome(), Outcome::Cancelled);
}

TEST(RunGovernor, ExpiredDeadlineStopsWithinOneStride) {
  RunGovernor gov(nullptr, std::chrono::steady_clock::now());
  bool stopped = false;
  for (std::uint64_t i = 0; i <= RunGovernor::kStride && !stopped; ++i) {
    stopped = gov.should_stop();
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(gov.outcome(), Outcome::DeadlineExceeded);
}

TEST(RunGovernor, FutureDeadlineDoesNotStop) {
  RunGovernor gov(nullptr, 3600.0);  // an hour out
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(gov.should_stop());
}

TEST(DeadlineFromNow, NonPositiveDisables) {
  EXPECT_EQ(deadline_from_now(0.0),
            std::chrono::steady_clock::time_point::max());
  EXPECT_EQ(deadline_from_now(-1.0),
            std::chrono::steady_clock::time_point::max());
}

}  // namespace
}  // namespace gammaflow
