// Analyses: parallelism profiles, match-opportunity counts (the §III-A3
// granularity argument, quantified), structural stats.
#include <gtest/gtest.h>

#include "gammaflow/analysis/analysis.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/reduce.hpp"

namespace gammaflow::analysis {
namespace {

TEST(Profile, Fig1ExposesWidthTwo) {
  const auto p = parallelism_profile(paper::fig1_graph());
  EXPECT_EQ(p.depth, 3u);        // (R1,R2) ; R3 ; output
  EXPECT_EQ(p.max_width, 2u);
  EXPECT_EQ(p.total_fires, 4u);  // root seeding is not a wavefront
  EXPECT_GT(p.ideal_speedup, 1.0);
}

TEST(Profile, WideExpressionScalesWidth) {
  const auto narrow = parallelism_profile(paper::random_expression_graph(4, 1));
  const auto wide = parallelism_profile(paper::random_expression_graph(64, 1));
  EXPECT_GT(wide.max_width, narrow.max_width);
  EXPECT_GT(wide.ideal_speedup, narrow.ideal_speedup);
}

TEST(Profile, MultiLoopWidthGrowsWithLoops) {
  const auto one = parallelism_profile(paper::multi_loop_graph(1, 6, true));
  const auto four = parallelism_profile(paper::multi_loop_graph(4, 6, true));
  EXPECT_GE(four.max_width, 3 * one.max_width);
  // Depth stays the same: loops run concurrently, not back to back.
  EXPECT_LE(four.depth, one.depth + 2);
}

TEST(Profile, SummaryArithmetic) {
  const auto p = summarize_wavefronts({4, 2, 1, 1});
  EXPECT_EQ(p.depth, 4u);
  EXPECT_EQ(p.max_width, 4u);
  EXPECT_EQ(p.total_fires, 8u);
  EXPECT_DOUBLE_EQ(p.avg_width, 2.0);
}

gamma::Multiset wide_fig1_multiset(int instances) {
  gamma::Multiset wide;
  for (int i = 0; i < instances; ++i) {
    for (const auto& [v, l] :
         {std::pair{i * 10 + 1, "A1"}, {i * 10 + 5, "B1"},
          {i * 10 + 3, "C1"}, {i * 10 + 2, "D1"}}) {
      wide.add(gamma::Element::labeled(Value(std::int64_t{v}), l));
    }
  }
  return wide;
}

TEST(MatchOps, RawTupleCountsPerReaction) {
  const gamma::Multiset wide = wide_fig1_multiset(4);
  const auto fine = match_opportunities(paper::fig1_gamma(), wide);
  const auto coarse = match_opportunities(paper::fig1_reduced_gamma(), wide);
  EXPECT_EQ(fine.per_reaction.at("R1"), 16u);   // 4 A1 x 4 B1
  EXPECT_EQ(fine.per_reaction.at("R3"), 0u);    // no B2/C2 yet
  EXPECT_EQ(coarse.per_reaction.at("Rd1"), 256u);  // 4^4 assemblies
}

TEST(MatchOps, ReductionShrinksConcurrentFirings) {
  // The §III-A3 claim, quantified: on k independent input sets, the
  // fine-grained program fires 2k reactions concurrently (R1+R2 per set),
  // the fused program only k.
  const gamma::Multiset wide = wide_fig1_multiset(4);
  EXPECT_EQ(concurrent_firings(paper::fig1_gamma(), wide), 8u);
  EXPECT_EQ(concurrent_firings(paper::fig1_reduced_gamma(), wide), 4u);
}

TEST(MatchOps, ReductionShrinksMatchProbability) {
  // "The chance of the reaction condition occurring can decrease": a random
  // ordered tuple enables Rd1 far less often than it enables R1.
  const gamma::Multiset wide = wide_fig1_multiset(4);
  const gamma::Program fine = paper::fig1_gamma();
  const gamma::Program coarse = paper::fig1_reduced_gamma();
  const auto* r1 = fine.find("R1");
  const auto* rd1 = coarse.find("Rd1");
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(rd1, nullptr);
  const double p_fine = match_probability(*r1, wide);
  const double p_coarse = match_probability(*rd1, wide);
  EXPECT_GT(p_fine, 0.0);
  EXPECT_GT(p_coarse, 0.0);
  EXPECT_GT(p_fine, 10 * p_coarse);
}

TEST(MatchOps, SingleInstanceCounts) {
  const auto ops =
      match_opportunities(paper::fig1_gamma(), paper::fig1_initial());
  // Only R1 and R2 are enabled initially, one match each.
  EXPECT_EQ(ops.per_reaction.at("R1"), 1u);
  EXPECT_EQ(ops.per_reaction.at("R2"), 1u);
  EXPECT_EQ(ops.per_reaction.at("R3"), 0u);
  EXPECT_EQ(ops.total, 2u);
  EXPECT_FALSE(ops.capped);
}

TEST(MatchOps, CapIsReported) {
  gamma::Multiset big;
  for (int i = 0; i < 40; ++i) big.add(gamma::Element{Value(i)});
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  const auto ops = match_opportunities(p, big, 100);
  EXPECT_TRUE(ops.capped);
  EXPECT_EQ(ops.per_reaction.at("R"), 100u);
}

TEST(GraphStats, Fig2Inventory) {
  const auto s = graph_stats(paper::fig2_graph(3, 5, 0, true));
  EXPECT_EQ(s.node_count, 13u);
  EXPECT_EQ(s.root_count, 3u);
  EXPECT_EQ(s.output_count, 1u);
  EXPECT_EQ(s.nodes_by_kind.at("steer"), 3u);
  EXPECT_EQ(s.nodes_by_kind.at("inctag"), 3u);
  EXPECT_EQ(s.nodes_by_kind.at("cmp"), 1u);
  EXPECT_EQ(s.nodes_by_kind.at("arith"), 2u);
  EXPECT_EQ(s.edge_count, 17u);
}

TEST(ProgramStats, Fig2Listing) {
  const auto s = program_stats(paper::fig2_gamma());
  EXPECT_EQ(s.reaction_count, 9u);
  EXPECT_EQ(s.stage_count, 1u);
  EXPECT_EQ(s.max_arity, 2u);
  EXPECT_GT(s.conditional_reactions, 5u);
  EXPECT_NEAR(s.avg_arity, 13.0 / 9.0, 1e-9);
}

TEST(ProgramStats, EmptyProgram) {
  const auto s = program_stats(gamma::Program{});
  EXPECT_EQ(s.reaction_count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_arity, 0.0);
}

}  // namespace
}  // namespace gammaflow::analysis
