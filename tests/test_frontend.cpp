// Frontend: parsing the paper's source snippets, compiling to dataflow
// (Fig. 2 shapes for loops, steer joins for if/else), tag-context safety,
// and end-to-end equivalence through Algorithm 1.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/frontend/parser.hpp"
#include "gammaflow/translate/equivalence.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::frontend {
namespace {

Value run_output(const std::string& source, const std::string& name) {
  const dataflow::Graph g = compile_source(source);
  return dataflow::Interpreter().run(g).single_output(name);
}

// ---- parser ----

TEST(FrontendParser, PaperExampleOne) {
  const ProgramAst ast = parse_source(R"(
    int x = 1;
    int y = 5;
    int k = 3;
    int j = 2;
    m = (x + y) - (k * j);
    output m;
  )");
  ASSERT_EQ(ast.statements.size(), 6u);
  EXPECT_EQ(ast.statements[0]->kind, Stmt::Kind::Assign);
  EXPECT_EQ(ast.statements[4]->assign.name, "m");
  EXPECT_EQ(ast.statements[4]->assign.value->to_string(), "x + y - k * j");
  EXPECT_EQ(ast.statements[5]->kind, Stmt::Kind::Output);
}

TEST(FrontendParser, ForDesugarsToInitPlusWhile) {
  const ProgramAst ast = parse_source("for (i = z; i > 0; i--) x = x + y;");
  ASSERT_EQ(ast.statements.size(), 2u);
  EXPECT_EQ(ast.statements[0]->kind, Stmt::Kind::Assign);  // i = z
  ASSERT_EQ(ast.statements[1]->kind, Stmt::Kind::While);
  const While& loop = ast.statements[1]->while_stmt;
  EXPECT_EQ(loop.condition->to_string(), "i > 0");
  ASSERT_EQ(loop.body.size(), 2u);  // x = x + y; i = i - 1
  EXPECT_EQ(loop.body[1]->assign.name, "i");
  EXPECT_EQ(loop.body[1]->assign.value->to_string(), "i - 1");
}

TEST(FrontendParser, CompoundAssignments) {
  const ProgramAst ast = parse_source("x += 3; y -= 1; a++; b--;");
  EXPECT_EQ(ast.statements[0]->assign.value->to_string(), "x + 3");
  EXPECT_EQ(ast.statements[1]->assign.value->to_string(), "y - 1");
  EXPECT_EQ(ast.statements[2]->assign.value->to_string(), "a + 1");
  EXPECT_EQ(ast.statements[3]->assign.value->to_string(), "b - 1");
}

TEST(FrontendParser, IfElseWithBlocks) {
  const ProgramAst ast = parse_source(R"(
    if (a > b) { m = a; n = 1; } else m = b;
  )");
  ASSERT_EQ(ast.statements.size(), 1u);
  const If& s = ast.statements[0]->if_stmt;
  EXPECT_EQ(s.then_body.size(), 2u);
  EXPECT_EQ(s.else_body.size(), 1u);
}

TEST(FrontendParser, TypeWordsAreInterchangeable) {
  for (const char* type : {"int", "real", "bool", "var"}) {
    const ProgramAst ast =
        parse_source(std::string(type) + " q = 1; output q;");
    EXPECT_EQ(ast.statements.size(), 2u) << type;
  }
}

TEST(FrontendParser, CxxCommentsSupported) {
  const ProgramAst ast = parse_source(R"(
    // the paper writes examples like this
    int x = 1;  # and hash comments work too
    output x;
  )");
  EXPECT_EQ(ast.statements.size(), 2u);
}

TEST(FrontendParser, SyntaxErrorsCarryLocation) {
  try {
    (void)parse_source("int x = ;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
  }
  EXPECT_THROW((void)parse_source("for (i = 0 i < 3; i++) x = 1;"),
               ParseError);
  EXPECT_THROW((void)parse_source("while (x > 0 { x--; }"), ParseError);
  EXPECT_THROW((void)parse_source("x * 3;"), ParseError);
  EXPECT_THROW((void)parse_source("if (x) { y = 1;"), ParseError);
}

TEST(FrontendParser, AstPrintsBack) {
  const ProgramAst ast = parse_source(
      "int x = 1; while (x < 5) x = x + 1; output x;");
  const std::string printed = to_string(ast);
  EXPECT_NE(printed.find("while (x < 5)"), std::string::npos);
  EXPECT_NE(printed.find("output x;"), std::string::npos);
  // printed form re-parses to the same print
  EXPECT_EQ(to_string(parse_source(printed)), printed);
}

// ---- compiler: straight-line ----

TEST(FrontendCompile, PaperExampleOneComputesZero) {
  EXPECT_EQ(run_output(R"(
    int x = 1; int y = 5; int k = 3; int j = 2;
    m = (x + y) - (k * j);
    output m;
  )",
                       "m"),
            Value(0));
}

TEST(FrontendCompile, ReassignmentUsesLatestDefinition) {
  EXPECT_EQ(run_output("int a = 2; a = a * 10; a = a + 1; output a;", "a"),
            Value(21));
}

TEST(FrontendCompile, MultipleOutputs) {
  const dataflow::Graph g = compile_source(
      "int a = 6; int b = 7; p = a * b; s = a + b; output p; output s;");
  const auto r = dataflow::Interpreter().run(g);
  EXPECT_EQ(r.single_output("p"), Value(42));
  EXPECT_EQ(r.single_output("s"), Value(13));
}

TEST(FrontendCompile, ConstantFoldingCollapsesLiteralTrees) {
  const dataflow::Graph g =
      compile_source("m = (2 + 3) * (10 - 6); output m;");
  // One const node (folded 20) + output.
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(dataflow::Interpreter().run(g).single_output("m"), Value(20));
}

TEST(FrontendCompile, RealArithmetic) {
  EXPECT_EQ(run_output("real h = 7.0; m = h / 2; output m;", "m"),
            Value(3.5));
}

TEST(FrontendCompile, UndefinedVariableRejected) {
  EXPECT_THROW((void)compile_source("m = ghost + 1; output m;"),
               CompileError);
  EXPECT_THROW((void)compile_source("int a = 1; output ghost;"),
               CompileError);
}

TEST(FrontendCompile, ProgramWithoutOutputRejected) {
  EXPECT_THROW((void)compile_source("int a = 1;"), CompileError);
}

TEST(FrontendCompile, LogicalOperatorsRejected) {
  EXPECT_THROW(
      (void)compile_source("int a = 1; if (a > 0 and a < 2) a = 2; output a;"),
      CompileError);
}

// ---- compiler: if/else ----

TEST(FrontendCompile, IfTakenAndNotTaken) {
  const char* src = R"(
    int a = %d; int r = 0;
    if (a > 5) { r = a * 2; } else { r = a + 100; }
    output r;
  )";
  char buf[256];
  std::snprintf(buf, sizeof buf, src, 9);
  EXPECT_EQ(run_output(buf, "r"), Value(18));
  std::snprintf(buf, sizeof buf, src, 3);
  EXPECT_EQ(run_output(buf, "r"), Value(103));
}

TEST(FrontendCompile, IfWithoutElsePreservesValue) {
  EXPECT_EQ(run_output("int v = 10; if (v > 99) v = 0; output v;", "v"),
            Value(10));
  EXPECT_EQ(run_output("int v = 100; if (v > 99) v = 0; output v;", "v"),
            Value(0));
}

TEST(FrontendCompile, NestedIf) {
  const char* src = R"(
    int x = %d; int r = 0;
    if (x > 0) {
      if (x > 10) r = 2; else r = 1;
    } else r = 0 - 1;
    output r;
  )";
  char buf[256];
  std::snprintf(buf, sizeof buf, src, 20);
  EXPECT_EQ(run_output(buf, "r"), Value(2));
  std::snprintf(buf, sizeof buf, src, 5);
  EXPECT_EQ(run_output(buf, "r"), Value(1));
  std::snprintf(buf, sizeof buf, src, -3);
  EXPECT_EQ(run_output(buf, "r"), Value(-1));
}

TEST(FrontendCompile, IfJoinProducesExactlyOneToken) {
  // The join is a multi-producer input; only the taken side fires.
  const dataflow::Graph g = compile_source(
      "int a = 1; if (a > 0) a = 10; else a = 20; b = a + 1; output b;");
  const auto r = dataflow::Interpreter().run(g);
  EXPECT_EQ(r.output_values("b").size(), 1u);
  EXPECT_EQ(r.single_output("b"), Value(11));
  EXPECT_TRUE(r.leftovers.empty());
}

// ---- compiler: loops ----

TEST(FrontendCompile, PaperExampleTwoIsFig2Shaped) {
  const dataflow::Graph g = compile_source(R"(
    int y = 5; int z = 4; int x = 100;
    for (i = z; i > 0; i--) x = x + y;
    output x;
  )");
  // Exactly the Fig. 2 inventory plus the observer output.
  std::map<dataflow::NodeKind, std::size_t> kinds;
  for (const auto& n : g.nodes()) ++kinds[n.kind];
  EXPECT_EQ(g.node_count(), 13u);
  EXPECT_EQ(kinds[dataflow::NodeKind::IncTag], 3u);
  EXPECT_EQ(kinds[dataflow::NodeKind::Steer], 3u);
  EXPECT_EQ(kinds[dataflow::NodeKind::Cmp], 1u);
  EXPECT_EQ(kinds[dataflow::NodeKind::Arith], 2u);
  EXPECT_EQ(dataflow::Interpreter().run(g).single_output("x"), Value(120));
}

TEST(FrontendCompile, WhileLoopAccumulates) {
  EXPECT_EQ(run_output(R"(
    int n = 10; int acc = 0;
    while (n > 0) { acc = acc + n; n = n - 1; }
    output acc;
  )",
                       "acc"),
            Value(55));
}

TEST(FrontendCompile, ZeroIterationLoop) {
  EXPECT_EQ(run_output(
                "int x = 7; for (i = 0; i > 0; i--) x = x + 1; output x;",
                "x"),
            Value(7));
}

TEST(FrontendCompile, LoopConditionOnComputedExpression) {
  // Condition reads two carried variables.
  EXPECT_EQ(run_output(R"(
    int a = 0; int b = 16;
    while (a < b) { a = a + 2; b = b - 2; }
    output a;
  )",
                       "a"),
            Value(8));
}

TEST(FrontendCompile, IfInsideLoop) {
  // Alternating accumulation: odd iterations add, even subtract.
  EXPECT_EQ(run_output(R"(
    int n = 6; int acc = 100;
    while (n > 0) {
      if (n % 2 == 0) acc = acc + n; else acc = acc - n;
      n = n - 1;
    }
    output acc;
  )",
                       "acc"),
            Value(100 + 6 - 5 + 4 - 3 + 2 - 1));
}

TEST(FrontendCompile, TwoSequentialLoopsShareNothing) {
  // Loop 2 consumes only loop-1 exits: contexts match, so this compiles.
  EXPECT_EQ(run_output(R"(
    int a = 0;
    for (i = 3; i > 0; i--) a = a + 10;
    for (j = a; j > 28; j--) a = a + 1;
    output a;
  )",
                       "a"),
            Value(32));
}

TEST(FrontendCompile, CrossLoopContextMixRejected) {
  // Mixing a loop exit with a pre-loop value deadlocks on tags; the
  // compiler rejects it instead.
  EXPECT_THROW((void)compile_source(R"(
    int a = 1; int b = 2;
    for (i = 3; i > 0; i--) a = a + 1;
    m = a + b;
    output m;
  )"),
               CompileError);
}

TEST(FrontendCompile, NestedLoopValueEscapeRejected) {
  EXPECT_THROW((void)compile_source(R"(
    int s = 0;
    while (s < 10) {
      while (s < 5) s = s + 1;
      s = s + 2;
    }
    output s;
  )"),
               CompileError);
}

TEST(FrontendCompile, BareLiteralInsideLoopRejected) {
  EXPECT_THROW((void)compile_source(R"(
    int n = 3;
    while (n > 0) { n = 0; }
    output n;
  )"),
               CompileError);
}

TEST(FrontendCompile, LiteralLeftOperandsNormalize) {
  // 5 - x and 3 < x inside a loop body must become immediates.
  EXPECT_EQ(run_output(R"(
    int x = 1;
    while (3 < x + 2) { x = 5 - x; }
    output x;
  )",
                       "x"),
            Value(1 /* 3 < 3 is false immediately */));
  EXPECT_EQ(run_output(R"(
    int x = 2;
    while (3 < x + 2) { x = x - 2; }
    output x;
  )",
                       "x"),
            Value(0));
}

// ---- end-to-end: source -> dataflow -> Gamma ----

TEST(FrontendIntegration, CompiledProgramsAreGammaEquivalent) {
  const char* programs[] = {
      "int x = 1; int y = 5; int k = 3; int j = 2;"
      "m = (x + y) - (k * j); output m;",
      "int y = 5; int z = 4; int x = 100;"
      "for (i = z; i > 0; i--) x = x + y; output x;",
      "int a = 9; int r = 0;"
      "if (a > 5) r = a * 2; else r = a + 100; output r;",
      "int n = 8; int acc = 0;"
      "while (n > 0) { acc = acc + n * n; n = n - 1; } output acc;",
  };
  for (const char* src : programs) {
    const dataflow::Graph g = compile_source(src);
    const auto rep = translate::check_equivalence_seeds(g, 1, 5);
    EXPECT_TRUE(rep.equivalent) << src << "\n" << rep.detail;
  }
}

TEST(FrontendIntegration, LoopProgramRoundTripsThroughReconstruction) {
  const dataflow::Graph g = compile_source(
      "int y = 5; int z = 4; int x = 100;"
      "for (i = z; i > 0; i--) x = x + y; output x;");
  const auto conv = translate::dataflow_to_gamma(g);
  const dataflow::Graph back =
      translate::reconstruct_graph(conv.program, conv.initial);
  EXPECT_EQ(dataflow::Interpreter().run(back).single_output("x"), Value(120));
}

}  // namespace
}  // namespace gammaflow::frontend
