// Distributed Gamma (§IV future work): sharded multisets, stirring,
// consolidation, and Safra termination detection — determinism, correctness
// against the centralized engines, and protocol edge cases.
#include <gtest/gtest.h>

#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::distrib {
namespace {

gamma::Multiset ints(std::int64_t from, std::int64_t to) {
  gamma::Multiset m;
  for (std::int64_t i = from; i <= to; ++i) m.add(gamma::Element{Value(i)});
  return m;
}

ClusterOptions opts(std::size_t nodes, std::uint64_t seed = 7) {
  ClusterOptions o;
  o.nodes = nodes;
  o.seed = seed;
  return o;
}

TEST(Distrib, SumMatchesCentralizedOnEveryClusterSize) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  for (const std::size_t nodes : {1u, 2u, 3u, 5u, 8u, 16u}) {
    const auto r = run_distributed(p, m, opts(nodes));
    EXPECT_EQ(r.final_multiset, expected) << nodes << " nodes";
    EXPECT_EQ(r.fires, 59u) << nodes << " nodes";
  }
}

TEST(Distrib, MinWithConditionConverges) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  const auto r = run_distributed(p, ints(10, 50), opts(6));
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(10)}}));
}

TEST(Distrib, DeterministicFromSeed) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  const auto a = run_distributed(p, m, opts(4, 11));
  const auto b = run_distributed(p, m, opts(4, 11));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.fires_by_node, b.fires_by_node);
  EXPECT_EQ(a.final_multiset, b.final_multiset);
}

TEST(Distrib, SeedsChangeScheduleNotResult) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  std::set<std::uint64_t> migration_counts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto r = run_distributed(p, m, opts(4, seed));
    EXPECT_EQ(r.final_multiset,
              (gamma::Multiset{gamma::Element{Value(820)}}));
    migration_counts.insert(r.migrations);
  }
  EXPECT_GT(migration_counts.size(), 1u);  // schedules genuinely differ
}

TEST(Distrib, PlacementPoliciesAgreeOnResult) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 30);
  for (const Placement pl :
       {Placement::Hash, Placement::RoundRobin, Placement::Single}) {
    ClusterOptions o = opts(4);
    o.placement = pl;
    EXPECT_EQ(run_distributed(p, m, o).final_multiset,
              (gamma::Multiset{gamma::Element{Value(465)}}));
  }
}

TEST(Distrib, LabeledPartnersSeparatedByShardingStillMeet) {
  // A reaction needing an 'a' and a 'b' element; hash placement scatters
  // them. Stirring/consolidation must co-locate every pair.
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 12; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(100 + i), "b"));
  }
  const auto r = run_distributed(p, m, opts(4));
  EXPECT_EQ(r.final_multiset.size(), 12u);
  EXPECT_EQ(r.final_multiset.with_label("c").size(), 12u);
  EXPECT_EQ(r.final_multiset.with_label("a").size(), 0u);
}

TEST(Distrib, ConvertedFig1ProgramRunsDistributed) {
  const auto conv = translate::dataflow_to_gamma(paper::fig1_graph());
  const auto r = run_distributed(conv.program, conv.initial, opts(3));
  EXPECT_EQ(r.final_multiset,
            (gamma::Multiset{gamma::Element::labeled(Value(0), "m")}));
}

TEST(Distrib, ConvertedFig2LoopRunsDistributed) {
  // The full tagged-token loop as distributed chemistry.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(4, 5, 100, true));
  const auto r = run_distributed(conv.program, conv.initial, opts(3, 5));
  const auto observed = r.final_multiset.with_label("x_final");
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].value(), Value(120));
}

TEST(Distrib, EmptyMultisetTerminatesImmediately) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, gamma::Multiset{}, opts(4));
  EXPECT_TRUE(r.final_multiset.empty());
  EXPECT_EQ(r.fires, 0u);
  EXPECT_GE(r.token_laps, 1u);  // at least one clean Safra lap ran
}

TEST(Distrib, DisabledProgramPreservesMultiset) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  gamma::Multiset m{gamma::Element{Value(4)}, gamma::Element{Value(4)},
                    gamma::Element{Value(4)}};
  const auto r = run_distributed(p, m, opts(3));
  EXPECT_EQ(r.final_multiset, m);
  EXPECT_EQ(r.fires, 0u);
}

TEST(Distrib, SingleNodeDegeneratesToLocalEngine) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, ints(1, 20), opts(1));
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(210)}}));
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Distrib, FiresSpreadAcrossNodes) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, ints(1, 200), opts(4));
  std::size_t nodes_that_fired = 0;
  for (const auto f : r.fires_by_node) nodes_that_fired += f > 0;
  EXPECT_GE(nodes_that_fired, 2u);  // genuinely parallel chemistry
}

TEST(Distrib, MultiStageProgramRejected) {
  const auto p = gamma::dsl::parse_program(
      "A = replace [x,'p'] by [x,'q'] ; B = replace [x,'q'] by [x,'r']");
  EXPECT_THROW((void)run_distributed(p, gamma::Multiset{}, opts(2)),
               ProgramError);
}

TEST(Distrib, ZeroNodesRejected) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  EXPECT_THROW((void)run_distributed(p, gamma::Multiset{}, opts(0)),
               ProgramError);
}

TEST(Distrib, MaxRoundsGuards) {
  // Non-terminating chemistry: the cluster must hit the guard, not spin.
  const auto p = gamma::dsl::parse_program("R = replace x by x + 1");
  ClusterOptions o = opts(3);
  o.max_rounds = 50;
  EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), EngineError);
}

TEST(Distrib, HighLatencyStillTerminates) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  ClusterOptions o = opts(4);
  o.latency = 5;
  const auto r = run_distributed(p, ints(1, 30), o);
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(465)}}));
}

TEST(Distrib, ConsolidationThresholdAffectsSchedule) {
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 8; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(i), "b"));
  }
  ClusterOptions eager = opts(4);
  eager.consolidate_after = 1;
  ClusterOptions lazy = opts(4);
  lazy.consolidate_after = 10;
  const auto re = run_distributed(p, m, eager);
  const auto rl = run_distributed(p, m, lazy);
  // Which 'a' pairs with which 'b' is schedule-dependent (Gamma
  // nondeterminism); the invariants are the count and the total sum.
  auto total = [](const gamma::Multiset& ms) {
    std::int64_t sum = 0;
    for (const auto& e : ms) sum += e.value().as_int();
    return sum;
  };
  EXPECT_EQ(re.final_multiset.with_label("c").size(), 8u);
  EXPECT_EQ(rl.final_multiset.with_label("c").size(), 8u);
  EXPECT_EQ(total(re.final_multiset), total(rl.final_multiset));
  // The knob really changes the protocol: message traffic differs.
  EXPECT_NE(re.messages, rl.messages);
}

// Parameterized sweep: cluster size x seed grid, gcd workload (conditions +
// growth), all must agree with the centralized oracle.
class DistribGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(DistribGrid, GcdMatchesCentralized) {
  const auto [nodes, seed] = GetParam();
  const auto p = gamma::dsl::parse_program(
      "R = replace x, y by [x - y], [y] where x > y");
  gamma::Multiset m{gamma::Element{Value(24)}, gamma::Element{Value(36)},
                    gamma::Element{Value(60)}, gamma::Element{Value(84)}};
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  const auto r = run_distributed(p, m, opts(nodes, seed));
  EXPECT_EQ(r.final_multiset, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistribGrid,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{7}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

}  // namespace
}  // namespace gammaflow::distrib
