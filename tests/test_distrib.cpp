// Distributed Gamma (§IV future work): sharded multisets, stirring,
// consolidation, and Safra termination detection — determinism, correctness
// against the centralized engines, and protocol edge cases.
#include <gtest/gtest.h>

#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::distrib {
namespace {

gamma::Multiset ints(std::int64_t from, std::int64_t to) {
  gamma::Multiset m;
  for (std::int64_t i = from; i <= to; ++i) m.add(gamma::Element{Value(i)});
  return m;
}

ClusterOptions opts(std::size_t nodes, std::uint64_t seed = 7) {
  ClusterOptions o;
  o.nodes = nodes;
  o.seed = seed;
  return o;
}

TEST(Distrib, SumMatchesCentralizedOnEveryClusterSize) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  for (const std::size_t nodes : {1u, 2u, 3u, 5u, 8u, 16u}) {
    const auto r = run_distributed(p, m, opts(nodes));
    EXPECT_EQ(r.final_multiset, expected) << nodes << " nodes";
    EXPECT_EQ(r.fires, 59u) << nodes << " nodes";
  }
}

TEST(Distrib, MinWithConditionConverges) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  const auto r = run_distributed(p, ints(10, 50), opts(6));
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(10)}}));
}

TEST(Distrib, DeterministicFromSeed) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  const auto a = run_distributed(p, m, opts(4, 11));
  const auto b = run_distributed(p, m, opts(4, 11));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.fires_by_node, b.fires_by_node);
  EXPECT_EQ(a.final_multiset, b.final_multiset);
}

TEST(Distrib, SeedsChangeScheduleNotResult) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  std::set<std::uint64_t> migration_counts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto r = run_distributed(p, m, opts(4, seed));
    EXPECT_EQ(r.final_multiset,
              (gamma::Multiset{gamma::Element{Value(820)}}));
    migration_counts.insert(r.migrations);
  }
  EXPECT_GT(migration_counts.size(), 1u);  // schedules genuinely differ
}

TEST(Distrib, PlacementPoliciesAgreeOnResult) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 30);
  for (const Placement pl :
       {Placement::Hash, Placement::RoundRobin, Placement::Single}) {
    ClusterOptions o = opts(4);
    o.placement = pl;
    EXPECT_EQ(run_distributed(p, m, o).final_multiset,
              (gamma::Multiset{gamma::Element{Value(465)}}));
  }
}

TEST(Distrib, LabeledPartnersSeparatedByShardingStillMeet) {
  // A reaction needing an 'a' and a 'b' element; hash placement scatters
  // them. Stirring/consolidation must co-locate every pair.
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 12; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(100 + i), "b"));
  }
  const auto r = run_distributed(p, m, opts(4));
  EXPECT_EQ(r.final_multiset.size(), 12u);
  EXPECT_EQ(r.final_multiset.with_label("c").size(), 12u);
  EXPECT_EQ(r.final_multiset.with_label("a").size(), 0u);
}

TEST(Distrib, ConvertedFig1ProgramRunsDistributed) {
  const auto conv = translate::dataflow_to_gamma(paper::fig1_graph());
  const auto r = run_distributed(conv.program, conv.initial, opts(3));
  EXPECT_EQ(r.final_multiset,
            (gamma::Multiset{gamma::Element::labeled(Value(0), "m")}));
}

TEST(Distrib, ConvertedFig2LoopRunsDistributed) {
  // The full tagged-token loop as distributed chemistry.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(4, 5, 100, true));
  const auto r = run_distributed(conv.program, conv.initial, opts(3, 5));
  const auto observed = r.final_multiset.with_label("x_final");
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].value(), Value(120));
}

TEST(Distrib, EmptyMultisetTerminatesImmediately) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, gamma::Multiset{}, opts(4));
  EXPECT_TRUE(r.final_multiset.empty());
  EXPECT_EQ(r.fires, 0u);
  EXPECT_GE(r.token_laps, 1u);  // at least one clean Safra lap ran
}

TEST(Distrib, DisabledProgramPreservesMultiset) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  gamma::Multiset m{gamma::Element{Value(4)}, gamma::Element{Value(4)},
                    gamma::Element{Value(4)}};
  const auto r = run_distributed(p, m, opts(3));
  EXPECT_EQ(r.final_multiset, m);
  EXPECT_EQ(r.fires, 0u);
}

TEST(Distrib, SingleNodeDegeneratesToLocalEngine) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, ints(1, 20), opts(1));
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(210)}}));
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Distrib, FiresSpreadAcrossNodes) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, ints(1, 200), opts(4));
  std::size_t nodes_that_fired = 0;
  for (const auto f : r.fires_by_node) nodes_that_fired += f > 0;
  EXPECT_GE(nodes_that_fired, 2u);  // genuinely parallel chemistry
}

TEST(Distrib, MultiStageProgramRejected) {
  const auto p = gamma::dsl::parse_program(
      "A = replace [x,'p'] by [x,'q'] ; B = replace [x,'q'] by [x,'r']");
  EXPECT_THROW((void)run_distributed(p, gamma::Multiset{}, opts(2)),
               ProgramError);
}

TEST(Distrib, ZeroNodesRejected) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  EXPECT_THROW((void)run_distributed(p, gamma::Multiset{}, opts(0)),
               ProgramError);
}

TEST(Distrib, MaxRoundsGuards) {
  // Non-terminating chemistry: the cluster must hit the guard, not spin.
  const auto p = gamma::dsl::parse_program("R = replace x by x + 1");
  ClusterOptions o = opts(3);
  o.max_rounds = 50;
  EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), EngineError);
}

TEST(Distrib, HighLatencyStillTerminates) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  ClusterOptions o = opts(4);
  o.latency = 5;
  const auto r = run_distributed(p, ints(1, 30), o);
  EXPECT_EQ(r.final_multiset, (gamma::Multiset{gamma::Element{Value(465)}}));
}

TEST(Distrib, ConsolidationThresholdAffectsSchedule) {
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 8; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(i), "b"));
  }
  ClusterOptions eager = opts(4);
  eager.consolidate_after = 1;
  ClusterOptions lazy = opts(4);
  lazy.consolidate_after = 10;
  const auto re = run_distributed(p, m, eager);
  const auto rl = run_distributed(p, m, lazy);
  // Which 'a' pairs with which 'b' is schedule-dependent (Gamma
  // nondeterminism); the invariants are the count and the total sum.
  auto total = [](const gamma::Multiset& ms) {
    std::int64_t sum = 0;
    for (const auto& e : ms) sum += e.value().as_int();
    return sum;
  };
  EXPECT_EQ(re.final_multiset.with_label("c").size(), 8u);
  EXPECT_EQ(rl.final_multiset.with_label("c").size(), 8u);
  EXPECT_EQ(total(re.final_multiset), total(rl.final_multiset));
  // The knob really changes the protocol: message traffic differs.
  EXPECT_NE(re.messages, rl.messages);
}

// ---------------------------------------------------------------------------
// Fault tolerance: the FaultPlan degrades the network and kills nodes; the
// ack/retry + checkpoint/replica + token-regeneration machinery must still
// converge to the centralized result, and the recovery counters must show
// the machinery actually engaged.
// ---------------------------------------------------------------------------

gamma::Multiset sum_oracle(const gamma::Multiset& m) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  return gamma::IndexedEngine().run(p, m).final_multiset;
}

TEST(DistribFault, LossyNetworkConverges) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions o = opts(4, 3);
  o.faults.loss = 0.15;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_GT(r.messages_lost, 0u);        // the plan actually dropped traffic
  EXPECT_GT(r.retransmissions, 0u);      // ...and the senders re-sent it
  EXPECT_GT(r.acks, 0u);
}

TEST(DistribFault, DuplicatedElementMessagesAreSuppressed) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions o = opts(4, 3);
  o.faults.duplication = 0.4;
  const auto r = run_distributed(p, m, o);
  // Duplicates delivered but deduped: the multiset stays exact (no element
  // counted twice) and the suppression counter proves copies arrived.
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_GT(r.messages_duplicated, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);
}

TEST(DistribFault, ReorderedDeliveryConverges) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions o = opts(4, 3);
  o.faults.reorder = 0.5;
  o.faults.reorder_jitter = 6;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_GT(r.messages_delayed, 0u);
}

TEST(DistribFault, LostTokenIsRegenerated) {
  // Heavy loss eats Safra tokens too; the initiator's watchdog must issue
  // replacements (new generation) or the run would spin to max_rounds.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  ClusterOptions o = opts(4, 5);
  o.faults.loss = 0.4;
  o.faults.token_timeout = 12;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_GE(r.token_regenerations, 1u);
}

TEST(DistribFault, ScheduledCrashRecoversFromReplica) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions o = opts(4, 7);
  o.faults.crashes.push_back({3, 1, 4});  // node 1 dies at round 3
  const auto r = run_distributed(p, m, o);
  // The crash wiped node 1's live shard; the replica restore plus sender
  // retries mean not one element is lost or double-counted.
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.recoveries, 1u);
  EXPECT_GT(r.checkpoints, 0u);
}

TEST(DistribFault, CrashWhileHoldingTheTokenRegeneratesIt) {
  // Node 0 holds the token from the start; killing it at round 2 destroys
  // the token in hand. Only the generation-stamped regeneration path can
  // finish this run.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  ClusterOptions o = opts(4, 7);
  o.faults.crashes.push_back({2, 0, 3});
  o.faults.token_timeout = 10;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GE(r.token_regenerations, 1u);
}

TEST(DistribFault, PartitionHealsAndConverges) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 60);
  ClusterOptions o = opts(4, 9);
  o.faults.partitions.push_back({2, 25, 2});  // {0,1} | {2,3} for 25 rounds
  o.faults.token_timeout = 12;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m));
  EXPECT_GT(r.messages_lost, 0u);  // cross-cut traffic was severed
}

TEST(DistribFault, EverythingAtOnceStillConverges) {
  const auto p = gamma::dsl::parse_program(
      "R = replace x, y by [x - y], [y] where x > y");
  gamma::Multiset m{gamma::Element{Value(24)}, gamma::Element{Value(36)},
                    gamma::Element{Value(60)}, gamma::Element{Value(84)}};
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  ClusterOptions o = opts(5, 13);
  o.faults.loss = 0.1;
  o.faults.duplication = 0.1;
  o.faults.reorder = 0.2;
  o.faults.crash_rate = 0.005;
  o.faults.crash_downtime = 2;
  o.faults.token_timeout = 16;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, expected);
}

TEST(DistribFault, FaultScheduleIsDeterministicFromSeed) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 40);
  ClusterOptions o = opts(4, 21);
  o.faults.loss = 0.2;
  o.faults.duplication = 0.1;
  o.faults.reorder = 0.3;
  o.faults.crash_rate = 0.01;
  o.faults.token_timeout = 16;
  const auto a = run_distributed(p, m, o);
  const auto b = run_distributed(p, m, o);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.token_regenerations, b.token_regenerations);
  EXPECT_EQ(a.final_multiset, b.final_multiset);
}

TEST(DistribFault, FaultFreeRunReportsZeroFaultCounters) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const auto r = run_distributed(p, ints(1, 30), opts(4));
  EXPECT_EQ(r.messages_lost, 0u);
  EXPECT_EQ(r.messages_duplicated, 0u);
  EXPECT_EQ(r.messages_delayed, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.duplicates_suppressed, 0u);
  EXPECT_EQ(r.crashes, 0u);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_EQ(r.token_regenerations, 0u);
}

TEST(DistribFault, ValidationRejectsDegenerateOptions) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  {
    ClusterOptions o = opts(4);
    o.latency = 0;
    EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.fires_per_round = 0;
    EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.faults.loss = 1.5;
    EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), ProgramError);
  }
  {
    ClusterOptions o = opts(4);
    o.faults.crashes.push_back({3, 99, 2});  // node out of range
    EXPECT_THROW((void)run_distributed(p, ints(1, 4), o), ProgramError);
  }
}

// Property sweep: 200 seeds under a mixed fault plan, every faulty run must
// converge to the oracle multiset. This is the paper-level claim — faults
// change the schedule, never the fixed point.
class DistribFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistribFaultSweep, FaultyRunMatchesCentralizedOracle) {
  const std::uint64_t seed = GetParam();
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = ints(1, 36);
  ClusterOptions o = opts(4, seed);
  o.faults.loss = 0.08;
  o.faults.duplication = 0.05;
  o.faults.reorder = 0.15;
  o.faults.crash_rate = 0.002;
  o.faults.crash_downtime = 3;
  o.faults.token_timeout = 24;
  const auto r = run_distributed(p, m, o);
  EXPECT_EQ(r.final_multiset, sum_oracle(m)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistribFaultSweep,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{201}));

// Parameterized sweep: cluster size x seed grid, gcd workload (conditions +
// growth), all must agree with the centralized oracle.
class DistribGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(DistribGrid, GcdMatchesCentralized) {
  const auto [nodes, seed] = GetParam();
  const auto p = gamma::dsl::parse_program(
      "R = replace x, y by [x - y], [y] where x > y");
  gamma::Multiset m{gamma::Element{Value(24)}, gamma::Element{Value(36)},
                    gamma::Element{Value(60)}, gamma::Element{Value(84)}};
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  const auto r = run_distributed(p, m, opts(nodes, seed));
  EXPECT_EQ(r.final_multiset, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistribGrid,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{7}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

}  // namespace
}  // namespace gammaflow::distrib
