// Telemetry subsystem: histograms and snapshots, ring-buffer recorders,
// Chrome trace-event export shape, and end-to-end metrics through the
// engines of both runtimes.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "gammaflow/common/stats.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/report.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/obs/trace_export.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow {
namespace {

// --- Histogram -----------------------------------------------------------

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1u);   // [1,2)
  EXPECT_EQ(Histogram::bucket_of(1.9), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2u);   // [2,4)
  EXPECT_EQ(Histogram::bucket_of(3.0), 2u);
  EXPECT_EQ(Histogram::bucket_of(4.0), 3u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11u);
  EXPECT_EQ(Histogram::bucket_of(1e300), HistogramSnapshot::kBuckets - 1);
}

TEST(Histogram, SnapshotCountsSumMinMax) {
  Histogram h;
  for (const double x : {1.0, 2.0, 3.0, 100.0}) h.observe(x);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 26.5);
  EXPECT_EQ(s.buckets[1], 1u);  // 1.0
  EXPECT_EQ(s.buckets[2], 2u);  // 2.0, 3.0
  EXPECT_EQ(s.buckets[7], 1u);  // 100.0 in [64,128)
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileIsBucketUpperBoundCappedAtMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10.0);  // bucket [8,16)
  h.observe(1000.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 16.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);  // capped at observed max
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(i));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, kPerThread - 1);
}

TEST(HistogramSnapshot, MergeAddsBucketsAndExtremes) {
  Histogram a;
  Histogram b;
  a.observe(1.0);
  a.observe(2.0);
  b.observe(500.0);
  HistogramSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 500.0);
  s.merge(HistogramSnapshot{});  // empty merge is a no-op
  EXPECT_EQ(s.count, 3u);
}

// --- MetricsSnapshot -----------------------------------------------------

TEST(MetricsSnapshot, RegistrySnapshotRoundTrip) {
  StatsRegistry reg;
  reg.count("fires", 41);
  reg.count("fires");
  reg.record("latency", 2.0);
  reg.hist("depth").observe(7.0);
  const MetricsSnapshot m = reg.snapshot();
  EXPECT_EQ(m.counters.at("fires"), 42u);
  EXPECT_EQ(m.summaries.at("latency").count(), 1u);
  EXPECT_EQ(m.histograms.at("depth").count, 1u);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(MetricsSnapshot, MergeCombinesByName) {
  MetricsSnapshot a;
  a.counters["x"] = 1;
  MetricsSnapshot b;
  b.counters["x"] = 2;
  b.counters["y"] = 3;
  a.merge(b);
  EXPECT_EQ(a.counters["x"], 3u);
  EXPECT_EQ(a.counters["y"], 3u);
}

// --- ThreadRecorder / Telemetry ------------------------------------------

TEST(ThreadRecorder, RingKeepsNewestEventsOnOverflow) {
  obs::ThreadRecorder rec(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(obs::TraceEvent{"e", 'i', i, 0, 0, false});
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().ts_us, 6u);  // oldest surviving
  EXPECT_EQ(events.back().ts_us, 9u);   // newest
}

TEST(Telemetry, RegisterInternAndSpans) {
  obs::Telemetry tel;
  obs::ThreadRecorder& rec = tel.register_thread("t0");
  const char* name = tel.intern("my-span");
  EXPECT_STREQ(tel.intern("my-span"), name);  // stable on re-intern
  {
    obs::Span span(&tel, &rec, name);
    span.set_arg(7);
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_STREQ(events[0].name, "my-span");
  EXPECT_EQ(events[0].arg, 7u);
  const auto threads = tel.threads();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].name, "t0");
}

TEST(Telemetry, NullSpanIsANoOp) {
  obs::Span span(nullptr, nullptr, "ignored");  // must not crash in dtor
}

// --- Chrome trace exporter -----------------------------------------------

/// Minimal structural check of the trace-event JSON: one event object per
/// line, each carrying at least name/ph/ts/pid/tid, inside one array.
void check_trace_shape(const std::string& json, std::size_t expected_events) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  std::size_t objects = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('{') == std::string::npos) continue;
    ++objects;
    for (const char* key : {"\"name\":", "\"ph\":", "\"ts\":", "\"pid\":",
                            "\"tid\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "missing " << key << " in: " << line;
    }
  }
  EXPECT_EQ(objects, expected_events);
}

TEST(TraceExport, EmitsMetadataAndEventsWithRequiredKeys) {
  obs::Telemetry tel;
  obs::ThreadRecorder& r0 = tel.register_thread("alpha");
  obs::ThreadRecorder& r1 = tel.register_thread("beta");
  { obs::Span s(&tel, &r0, "work"); }
  r0.instant("mark", tel.now_us());
  r1.counter("depth", tel.now_us(), 5);
  std::ostringstream out;
  obs::write_chrome_trace(out, tel);
  // 2 thread_name metadata + 3 events.
  check_trace_shape(out.str(), 5);
  EXPECT_NE(out.str().find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.str().find("\"dur\":"), std::string::npos);
  EXPECT_NE(out.str().find("\"args\":{\"value\":5}"), std::string::npos);
}

TEST(TraceExport, EscapesNamesWithSpecials) {
  obs::Telemetry tel;
  obs::ThreadRecorder& rec = tel.register_thread("t\"quoted\"");
  rec.instant(tel.intern("a\\b\nc"), 0);
  std::ostringstream out;
  obs::write_chrome_trace(out, tel);
  EXPECT_NE(out.str().find("t\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.str().find("a\\\\b\\nc"), std::string::npos);
}

// --- end-to-end through the Gamma parallel engine ------------------------

TEST(TelemetryEndToEnd, ParallelGammaRunFillsTraceAndMetrics) {
  const gamma::Program p =
      gamma::dsl::parse_program("Rsum = replace x, y by x + y");
  gamma::Multiset m;
  for (int i = 1; i <= 256; ++i) m.add(gamma::Element{Value(i)});

  obs::Telemetry tel;
  gamma::RunOptions opts;
  opts.workers = 4;
  opts.telemetry = &tel;
  const auto result = gamma::ParallelEngine().run(p, m, opts);

  EXPECT_EQ(result.steps, 255u);
  EXPECT_GT(result.metrics.counters.at("gamma.match_attempts"), 0u);
  EXPECT_EQ(result.metrics.counters.at("gamma.fires"), 255u);
  EXPECT_GT(result.metrics.counters.at("gamma.quiescence_rounds"), 0u);
  EXPECT_EQ(result.metrics.histograms.at("gamma.fire_us.Rsum").count, 255u);

  // Spans from at least two distinct worker threads in the exported trace.
  std::ostringstream out;
  obs::write_chrome_trace(out, tel);
  const std::string json = out.str();
  std::set<std::string> span_tids;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    const auto pos = line.find("\"tid\":");
    ASSERT_NE(pos, std::string::npos);
    span_tids.insert(line.substr(pos, line.find_first_of(",}", pos) - pos));
  }
  EXPECT_GE(span_tids.size(), 2u);

  // The report renders without blowing up and mentions the counters.
  std::ostringstream report;
  obs::write_report(report, tel);
  EXPECT_NE(report.str().find("gamma.match_attempts"), std::string::npos);
  EXPECT_NE(report.str().find("threads:"), std::string::npos);
}

TEST(TelemetryEndToEnd, InterpreterCountsFiresByOpcode) {
  obs::Telemetry tel;
  dataflow::DfRunOptions opts;
  opts.telemetry = &tel;
  const auto result =
      dataflow::Interpreter().run(paper::fig2_graph(4, 5, 100, true), opts, {});
  EXPECT_EQ(result.metrics.counters.at("df.fires"), result.fires);
  EXPECT_GT(result.metrics.counters.at("df.fires.steer"), 0u);
  // The loop runs 4 iterations: 4 TRUE steerings per steer gate, then FALSE.
  EXPECT_GT(result.metrics.counters.at("df.steer_true"), 0u);
  EXPECT_GT(result.metrics.counters.at("df.steer_false"), 0u);
  EXPECT_GT(result.metrics.histograms.at("df.inctag_depth").count, 0u);
  EXPECT_GT(result.metrics.histograms.at("df.wavefront_width").count, 0u);
}

TEST(TelemetryEndToEnd, ParallelDataflowCountsAbsorbedTokens) {
  obs::Telemetry tel;
  dataflow::DfRunOptions opts;
  opts.workers = 3;
  opts.telemetry = &tel;
  const auto result = dataflow::ParallelEngine().run(
      paper::fig2_graph(4, 5, 100, true), opts, {});
  EXPECT_EQ(result.metrics.counters.at("df.fires"), result.fires);
  EXPECT_GT(result.metrics.counters.at("df.tokens_absorbed"), 0u);
  EXPECT_GT(result.metrics.counters.at("df.fires.arith"), 0u);
}

TEST(TelemetryEndToEnd, DisabledTelemetryLeavesMetricsEmpty) {
  const gamma::Program p =
      gamma::dsl::parse_program("Rsum = replace x, y by x + y");
  gamma::Multiset m;
  for (int i = 1; i <= 8; ++i) m.add(gamma::Element{Value(i)});
  const auto result = gamma::IndexedEngine().run(p, m);
  EXPECT_TRUE(result.metrics.empty());
}

}  // namespace
}  // namespace gammaflow
