// Differential tests for the bytecode backend: the Vm must be observationally
// identical to the AST walker — same Value on success, same error (type AND
// message) on failure, same short-circuit and lazy-unbound behaviour — on
// hand-picked edge cases, on >=500 randomly generated expressions, and on the
// example-program corpus run through every engine with compile on vs off.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/expr/eval.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow {
namespace {

using expr::Env;
using expr::ExprPtr;

ExprPtr parse(const std::string& text) {
  expr::TokenStream ts(expr::tokenize(text));
  ExprPtr e = expr::parse_expression(ts);
  EXPECT_TRUE(ts.done()) << "trailing input in: " << text;
  return e;
}

/// The slot layout every test compiles against; `u` stays unbound so lazy
/// unbound-variable semantics get exercised.
const std::vector<std::string> kSlots = {"a", "b", "c", "u"};

/// A walker or Vm evaluation collapsed to its observable: the value, or the
/// error text (prefixed with a coarse error class).
struct Observed {
  bool ok = false;
  Value value;
  std::string error;

  friend bool operator==(const Observed& x, const Observed& y) {
    return x.ok == y.ok && (x.ok ? x.value == y.value : x.error == y.error);
  }
  friend std::ostream& operator<<(std::ostream& os, const Observed& o) {
    return o.ok ? (os << "value " << o.value) : (os << "error " << o.error);
  }
};

template <typename Fn>
Observed observe(Fn&& fn) {
  Observed o;
  try {
    o.value = fn();
    o.ok = true;
  } catch (const TypeError& ex) {
    o.error = std::string("TypeError: ") + ex.what();
  } catch (const ProgramError& ex) {
    o.error = std::string("ProgramError: ") + ex.what();
  }
  return o;
}

Observed walker_result(const ExprPtr& e, const Env& env) {
  return observe([&] { return expr::eval(e, env); });
}

Observed vm_result(const ExprPtr& e, const Env& env) {
  const expr::Chunk chunk = expr::compile(e, kSlots);
  std::vector<const Value*> slots(kSlots.size(), nullptr);
  for (std::size_t i = 0; i < kSlots.size(); ++i) {
    slots[i] = env.find(kSlots[i]);
  }
  expr::Vm vm;
  return observe([&] { return vm.run(chunk, slots); });
}

Env abc_env(std::int64_t a, std::int64_t b, std::int64_t c) {
  Env env;
  env.bind("a", Value(a));
  env.bind("b", Value(b));
  env.bind("c", Value(c));
  return env;
}

void expect_identical(const std::string& text, const Env& env) {
  const ExprPtr e = parse(text);
  EXPECT_EQ(walker_result(e, env), vm_result(e, env)) << text;
}

// ---------------------------------------------------------------------------
// Hand-picked equivalence edges.

TEST(Bytecode, ValueAndArithmeticAgree) {
  const Env env = abc_env(7, -3, 0);
  for (const char* text :
       {"a + b", "a - b", "a * b", "a + b * c", "-(a) + -b", "a % 4",
        "(a + b) * (a - b)", "a / 2", "b / a"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, ComparisonsAgree) {
  const Env env = abc_env(5, 5, -2);
  for (const char* text : {"a < b", "a <= b", "a > b", "a >= b", "a == b",
                           "a != b", "a == 5", "c < a and a <= b"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, DivisionByZeroThrowsIdentically) {
  const Env env = abc_env(1, 0, 3);
  expect_identical("a / b", env);
  expect_identical("a % b", env);
  expect_identical("1 / 0", env);      // constant, but never folded away
  expect_identical("1 / 0 + a", env);  // throwing subtree preserved
}

TEST(Bytecode, ShortCircuitSkipsPoisonedRhs) {
  // b == 0, so the division would throw — but neither evaluator reaches it.
  const Env env = abc_env(1, 0, 3);
  expect_identical("b != 0 and 10 / b > 2", env);
  expect_identical("b == 0 or 10 / b > 2", env);
  // And when the guard passes, both throw the same error.
  expect_identical("b == 0 and 10 / b > 2", env);
}

TEST(Bytecode, FoldedShortCircuitMatchesWalker) {
  const Env env = abc_env(1, 2, 3);
  // `false and X` folds to false without evaluating X — like the walker.
  expect_identical("false and 1 / 0 > 1", env);
  expect_identical("true or 1 / 0 > 1", env);
  // But a reachable poisoned branch still throws in both.
  expect_identical("true and 1 / 0 > 1", env);
}

TEST(Bytecode, UnboundSlotIsLazy) {
  const Env env = abc_env(1, 2, 3);  // `u` not bound
  expect_identical("a > 0 or u > 0", env);   // u never touched: fine
  expect_identical("a < 0 or u > 0", env);   // u referenced: same error
  expect_identical("u + 1", env);
}

TEST(Bytecode, TruthinessErrorsAgree) {
  Env env = abc_env(1, 2, 3);
  env.bind("s", Value("text"));
  const std::vector<std::string> slots = {"a", "s"};
  for (const char* text : {"s and a > 0", "a > 0 and s", "not s"}) {
    const ExprPtr e = parse(text);
    const expr::Chunk chunk = expr::compile(e, slots);
    const Value* ptrs[2] = {env.find("a"), env.find("s")};
    expr::Vm vm;
    EXPECT_EQ(walker_result(e, env), observe([&] { return vm.run(chunk, ptrs); }))
        << text;
  }
}

TEST(Bytecode, StringOperationsAgree) {
  Env env;
  env.bind("a", Value("foo"));
  env.bind("b", Value("bar"));
  env.bind("c", Value(std::int64_t{1}));
  for (const char* text :
       {"a + b", "a < b", "a == b", "a != b", "a + b == 'foobar'", "a - b",
        "a + c"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, UnknownVariableFailsAtCompileTime) {
  EXPECT_THROW(expr::compile(parse("nope + 1"), kSlots), ProgramError);
}

TEST(Bytecode, CompileRejectsNull) {
  EXPECT_THROW(expr::compile(nullptr, kSlots), ProgramError);
}

TEST(Bytecode, LiteralFoldingKeepsPoolSmall) {
  // A pure-literal subtree becomes one constant; throwing ones stay as code.
  const expr::Chunk folded = expr::compile(parse("(2 + 3) * 4 + a"), kSlots);
  ASSERT_FALSE(folded.consts.empty());
  EXPECT_EQ(folded.consts[0], Value(std::int64_t{20}));
  const expr::Chunk kept = expr::compile(parse("1 / 0 + a"), kSlots);
  EXPECT_GT(kept.code.size(), folded.code.size());
}

TEST(Bytecode, DisassembleMentionsEveryInstruction) {
  const expr::Chunk chunk = expr::compile(parse("a < b and a + 1 < c"), kSlots);
  const std::string listing = chunk.disassemble();
  EXPECT_NE(listing.find("loadslot"), std::string::npos);
  EXPECT_NE(listing.find("jumpiffalsy"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(listing.begin(), listing.end(), '\n')),
            chunk.code.size());
}

TEST(Bytecode, InstructionCountersAdvance) {
  const expr::Chunk chunk = expr::compile(parse("a + b"), kSlots);
  const Env env = abc_env(1, 2, 3);
  std::vector<const Value*> slots(kSlots.size(), nullptr);
  for (std::size_t i = 0; i < kSlots.size(); ++i) slots[i] = env.find(kSlots[i]);
  expr::Vm vm;
  const std::uint64_t global0 = expr::vm_instrs_executed();
  (void)vm.run(chunk, slots);
  EXPECT_EQ(vm.instrs_executed(), chunk.code.size());  // 2 loads, add, ret
  EXPECT_EQ(expr::vm_instrs_executed() - global0, chunk.code.size());
}

// ---------------------------------------------------------------------------
// Randomized differential property: >=500 generated (expression, env) pairs.

ExprPtr random_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.coin(0.3)) {
    switch (rng.bounded(8)) {
      case 0: return expr::var("a");
      case 1: return expr::var("b");
      case 2: return expr::var("c");
      case 3: return rng.coin(0.25) ? expr::var("u") : expr::var("a");
      case 4:  // small ints, zero included: div/mod-by-zero must be reachable
        return expr::lit(Value(static_cast<std::int64_t>(rng.bounded(7)) - 2));
      case 5: return expr::lit(Value(rng.coin()));
      case 6: return expr::lit(Value(rng.coin() ? "s" : "t"));
      default:
        return expr::lit(Value(static_cast<std::int64_t>(rng.bounded(40)) - 20));
    }
  }
  if (rng.coin(0.15)) {
    return expr::Expr::unary(rng.coin() ? expr::UnOp::Neg : expr::UnOp::Not,
                             random_expr(rng, depth - 1));
  }
  static constexpr expr::BinOp kOps[] = {
      expr::BinOp::Add, expr::BinOp::Sub, expr::BinOp::Mul, expr::BinOp::Div,
      expr::BinOp::Mod, expr::BinOp::Lt,  expr::BinOp::Le,  expr::BinOp::Gt,
      expr::BinOp::Ge,  expr::BinOp::Eq,  expr::BinOp::Ne,  expr::BinOp::And,
      expr::BinOp::Or};
  return expr::Expr::binary(kOps[rng.bounded(13)], random_expr(rng, depth - 1),
                            random_expr(rng, depth - 1));
}

Value random_value(Rng& rng) {
  switch (rng.bounded(4)) {
    case 0: return Value(static_cast<std::int64_t>(rng.bounded(9)) - 4);
    case 1: return Value(static_cast<double>(rng.bounded(8)) / 2.0);
    case 2: return Value(rng.coin());
    default: return Value(rng.coin() ? "s" : "x");
  }
}

class BytecodeDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytecodeDifferential, VmMatchesWalker) {
  // 10 trials per parameterized seed x 50 seeds = 500 distinct cases.
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(GetParam() * 1000 + trial);
    const ExprPtr e = random_expr(rng, 4);
    Env env;
    env.bind("a", random_value(rng));
    env.bind("b", random_value(rng));
    env.bind("c", random_value(rng));  // `u` stays unbound
    EXPECT_EQ(walker_result(e, env), vm_result(e, env))
        << "seed " << GetParam() << " trial " << trial << ": "
        << e->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeDifferential,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{51}));

// ---------------------------------------------------------------------------
// Engine-level state identity on the example corpus, compile on vs off.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string examples_dir() {
  return std::string(GF_REPO_DIR) + "/examples/programs/";
}

gamma::Multiset int_multiset(std::initializer_list<std::int64_t> xs) {
  gamma::Multiset m;
  for (const std::int64_t x : xs) m.add(gamma::Element{Value(x)});
  return m;
}

struct GammaCase {
  const char* file;
  gamma::Multiset initial;
};

std::vector<GammaCase> gamma_corpus() {
  std::vector<GammaCase> cases;
  cases.push_back({"min.gamma", int_multiset({9, 4, 17, 4, 1, 30, 2})});
  cases.push_back({"sieve.gamma", int_multiset({2, 3, 4, 5, 6, 7, 8, 9, 10,
                                                11, 12, 13, 14, 15, 16})});
  gamma::Multiset fig1;
  fig1.add(gamma::Element{Value(1), Value("A1")});
  fig1.add(gamma::Element{Value(5), Value("B1")});
  fig1.add(gamma::Element{Value(3), Value("C1")});
  fig1.add(gamma::Element{Value(2), Value("D1")});
  cases.push_back({"fig1.gamma", std::move(fig1)});
  return cases;
}

TEST(BytecodeCorpus, GammaEnginesStateIdenticalCompileOnOff) {
  const std::vector<std::unique_ptr<gamma::Engine>> engines = [] {
    std::vector<std::unique_ptr<gamma::Engine>> v;
    v.push_back(std::make_unique<gamma::SequentialEngine>());
    v.push_back(std::make_unique<gamma::IndexedEngine>());
    v.push_back(std::make_unique<gamma::ParallelEngine>());
    return v;
  }();
  for (const GammaCase& c : gamma_corpus()) {
    const gamma::Program program =
        gamma::dsl::parse_program(read_file(examples_dir() + c.file));
    for (const auto& engine : engines) {
      for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        gamma::RunOptions vm_opts;
        vm_opts.seed = seed;
        vm_opts.compile = true;
        gamma::RunOptions ast_opts = vm_opts;
        ast_opts.compile = false;
        const auto vm = engine->run(program, c.initial, vm_opts);
        const auto ast = engine->run(program, c.initial, ast_opts);
        EXPECT_EQ(vm.final_multiset, ast.final_multiset)
            << c.file << " engine " << engine->name() << " seed " << seed;
        EXPECT_EQ(vm.steps, ast.steps)
            << c.file << " engine " << engine->name() << " seed " << seed;
      }
    }
  }
}

TEST(BytecodeCorpus, DataflowEnginesOutputsIdenticalCompileOnOff) {
  for (const char* file : {"fig1.src", "fig2_loop.src", "classify.src"}) {
    const dataflow::Graph g =
        frontend::compile_source(read_file(examples_dir() + file));
    dataflow::DfRunOptions vm_opts;
    vm_opts.compile = true;
    dataflow::DfRunOptions ast_opts;
    ast_opts.compile = false;
    const auto vm = dataflow::Interpreter().run(g, vm_opts);
    const auto ast = dataflow::Interpreter().run(g, ast_opts);
    ASSERT_EQ(vm.outputs.size(), ast.outputs.size()) << file;
    for (const auto& [name, tokens] : vm.outputs) {
      EXPECT_EQ(vm.output_values(name), ast.output_values(name))
          << file << " output " << name;
    }
    vm_opts.workers = 3;
    ast_opts.workers = 3;
    const auto pvm = dataflow::ParallelEngine().run(g, vm_opts);
    const auto past = dataflow::ParallelEngine().run(g, ast_opts);
    for (const auto& [name, tokens] : vm.outputs) {
      EXPECT_EQ(pvm.output_values(name), ast.output_values(name))
          << file << " parallel vm output " << name;
      EXPECT_EQ(past.output_values(name), ast.output_values(name))
          << file << " parallel ast output " << name;
    }
  }
}

TEST(BytecodeCorpus, ClusterStateIdenticalCompileOnOff) {
  const gamma::Program program =
      gamma::dsl::parse_program(read_file(examples_dir() + "min.gamma"));
  const gamma::Multiset initial = int_multiset({9, 4, 17, 4, 1, 30, 2, 8});
  distrib::ClusterOptions vm_opts;
  vm_opts.nodes = 3;
  vm_opts.seed = 5;
  vm_opts.compile = true;
  distrib::ClusterOptions ast_opts = vm_opts;
  ast_opts.compile = false;
  const auto vm = distrib::run_distributed(program, initial, vm_opts);
  const auto ast = distrib::run_distributed(program, initial, ast_opts);
  EXPECT_EQ(vm.final_multiset, ast.final_multiset);
  EXPECT_EQ(vm.fires, ast.fires);
}

TEST(BytecodeCorpus, TranslatedProgramsAgreeAcrossModes) {
  // Algorithm 1 output (condition-free reactions plus steer conditions) must
  // also be mode-independent end to end.
  for (const char* file : {"fig1.src", "fig2_loop.src"}) {
    const dataflow::Graph g =
        frontend::compile_source(read_file(examples_dir() + file));
    const auto conv = translate::dataflow_to_gamma(g);
    gamma::RunOptions vm_opts;
    vm_opts.seed = 3;
    vm_opts.compile = true;
    gamma::RunOptions ast_opts = vm_opts;
    ast_opts.compile = false;
    const auto vm = gamma::IndexedEngine().run(conv.program, conv.initial,
                                               vm_opts);
    const auto ast = gamma::IndexedEngine().run(conv.program, conv.initial,
                                                ast_opts);
    EXPECT_EQ(vm.final_multiset, ast.final_multiset) << file;
  }
}

TEST(BytecodeCorpus, CompiledReactionReportsFootprint) {
  const gamma::Reaction r = gamma::dsl::parse_reaction(
      "Rmin = replace x, y by x where x < y");
  const gamma::CompiledReaction& cr = r.compiled();
  EXPECT_EQ(cr.slots(), (std::vector<std::string>{"x", "y"}));
  EXPECT_GT(cr.instr_count(), 0u);
  EXPECT_GE(cr.compile_ms(), 0.0);
}

}  // namespace
}  // namespace gammaflow
