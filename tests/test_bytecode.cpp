// Differential tests for the bytecode backend: the Vm must be observationally
// identical to the AST walker — same Value on success, same error (type AND
// message) on failure, same short-circuit and lazy-unbound behaviour — on
// hand-picked edge cases, on >=500 randomly generated expressions, and on the
// example-program corpus run through every engine with compile on vs off.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <functional>
#include <span>
#include <sstream>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/expr/eval.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow {
namespace {

using expr::Env;
using expr::ExprPtr;

ExprPtr parse(const std::string& text) {
  expr::TokenStream ts(expr::tokenize(text));
  ExprPtr e = expr::parse_expression(ts);
  EXPECT_TRUE(ts.done()) << "trailing input in: " << text;
  return e;
}

/// The slot layout every test compiles against; `u` stays unbound so lazy
/// unbound-variable semantics get exercised.
const std::vector<std::string> kSlots = {"a", "b", "c", "u"};

/// A walker or Vm evaluation collapsed to its observable: the value, or the
/// error text (prefixed with a coarse error class).
struct Observed {
  bool ok = false;
  Value value;
  std::string error;

  friend bool operator==(const Observed& x, const Observed& y) {
    return x.ok == y.ok && (x.ok ? x.value == y.value : x.error == y.error);
  }
  friend std::ostream& operator<<(std::ostream& os, const Observed& o) {
    return o.ok ? (os << "value " << o.value) : (os << "error " << o.error);
  }
};

template <typename Fn>
Observed observe(Fn&& fn) {
  Observed o;
  try {
    o.value = fn();
    o.ok = true;
  } catch (const TypeError& ex) {
    o.error = std::string("TypeError: ") + ex.what();
  } catch (const ProgramError& ex) {
    o.error = std::string("ProgramError: ") + ex.what();
  }
  return o;
}

Observed walker_result(const ExprPtr& e, const Env& env) {
  return observe([&] { return expr::eval(e, env); });
}

Observed vm_result(const ExprPtr& e, const Env& env) {
  const expr::Chunk chunk = expr::compile(e, kSlots);
  std::vector<const Value*> slots(kSlots.size(), nullptr);
  for (std::size_t i = 0; i < kSlots.size(); ++i) {
    slots[i] = env.find(kSlots[i]);
  }
  expr::Vm vm;
  return observe([&] { return vm.run(chunk, slots); });
}

Env abc_env(std::int64_t a, std::int64_t b, std::int64_t c) {
  Env env;
  env.bind("a", Value(a));
  env.bind("b", Value(b));
  env.bind("c", Value(c));
  return env;
}

void expect_identical(const std::string& text, const Env& env) {
  const ExprPtr e = parse(text);
  EXPECT_EQ(walker_result(e, env), vm_result(e, env)) << text;
}

// ---------------------------------------------------------------------------
// Hand-picked equivalence edges.

TEST(Bytecode, ValueAndArithmeticAgree) {
  const Env env = abc_env(7, -3, 0);
  for (const char* text :
       {"a + b", "a - b", "a * b", "a + b * c", "-(a) + -b", "a % 4",
        "(a + b) * (a - b)", "a / 2", "b / a"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, ComparisonsAgree) {
  const Env env = abc_env(5, 5, -2);
  for (const char* text : {"a < b", "a <= b", "a > b", "a >= b", "a == b",
                           "a != b", "a == 5", "c < a and a <= b"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, DivisionByZeroThrowsIdentically) {
  const Env env = abc_env(1, 0, 3);
  expect_identical("a / b", env);
  expect_identical("a % b", env);
  expect_identical("1 / 0", env);      // constant, but never folded away
  expect_identical("1 / 0 + a", env);  // throwing subtree preserved
}

TEST(Bytecode, ShortCircuitSkipsPoisonedRhs) {
  // b == 0, so the division would throw — but neither evaluator reaches it.
  const Env env = abc_env(1, 0, 3);
  expect_identical("b != 0 and 10 / b > 2", env);
  expect_identical("b == 0 or 10 / b > 2", env);
  // And when the guard passes, both throw the same error.
  expect_identical("b == 0 and 10 / b > 2", env);
}

TEST(Bytecode, FoldedShortCircuitMatchesWalker) {
  const Env env = abc_env(1, 2, 3);
  // `false and X` folds to false without evaluating X — like the walker.
  expect_identical("false and 1 / 0 > 1", env);
  expect_identical("true or 1 / 0 > 1", env);
  // But a reachable poisoned branch still throws in both.
  expect_identical("true and 1 / 0 > 1", env);
}

TEST(Bytecode, UnboundSlotIsLazy) {
  const Env env = abc_env(1, 2, 3);  // `u` not bound
  expect_identical("a > 0 or u > 0", env);   // u never touched: fine
  expect_identical("a < 0 or u > 0", env);   // u referenced: same error
  expect_identical("u + 1", env);
}

TEST(Bytecode, TruthinessErrorsAgree) {
  Env env = abc_env(1, 2, 3);
  env.bind("s", Value("text"));
  const std::vector<std::string> slots = {"a", "s"};
  for (const char* text : {"s and a > 0", "a > 0 and s", "not s"}) {
    const ExprPtr e = parse(text);
    const expr::Chunk chunk = expr::compile(e, slots);
    const Value* ptrs[2] = {env.find("a"), env.find("s")};
    expr::Vm vm;
    EXPECT_EQ(walker_result(e, env), observe([&] { return vm.run(chunk, ptrs); }))
        << text;
  }
}

TEST(Bytecode, StringOperationsAgree) {
  Env env;
  env.bind("a", Value("foo"));
  env.bind("b", Value("bar"));
  env.bind("c", Value(std::int64_t{1}));
  for (const char* text :
       {"a + b", "a < b", "a == b", "a != b", "a + b == 'foobar'", "a - b",
        "a + c"}) {
    expect_identical(text, env);
  }
}

TEST(Bytecode, UnknownVariableFailsAtCompileTime) {
  EXPECT_THROW(expr::compile(parse("nope + 1"), kSlots), ProgramError);
}

TEST(Bytecode, CompileRejectsNull) {
  EXPECT_THROW(expr::compile(nullptr, kSlots), ProgramError);
}

TEST(Bytecode, LiteralFoldingKeepsPoolSmall) {
  // A pure-literal subtree becomes one constant; throwing ones stay as code.
  const expr::Chunk folded = expr::compile(parse("(2 + 3) * 4 + a"), kSlots);
  ASSERT_FALSE(folded.consts.empty());
  EXPECT_EQ(folded.consts[0], Value(std::int64_t{20}));
  const expr::Chunk kept = expr::compile(parse("1 / 0 + a"), kSlots);
  EXPECT_GT(kept.code.size(), folded.code.size());
}

TEST(Bytecode, DisassembleMentionsEveryInstruction) {
  const expr::Chunk chunk = expr::compile(parse("a < b and a + 1 < c"), kSlots);
  const std::string listing = chunk.disassemble();
  EXPECT_NE(listing.find("loadslot"), std::string::npos);
  EXPECT_NE(listing.find("jumpiffalsy"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(listing.begin(), listing.end(), '\n')),
            chunk.code.size());
}

TEST(Bytecode, InstructionCountersAdvance) {
  const expr::Chunk chunk = expr::compile(parse("a + b"), kSlots);
  const Env env = abc_env(1, 2, 3);
  std::vector<const Value*> slots(kSlots.size(), nullptr);
  for (std::size_t i = 0; i < kSlots.size(); ++i) slots[i] = env.find(kSlots[i]);
  expr::Vm vm;
  const std::uint64_t global0 = expr::vm_instrs_executed();
  (void)vm.run(chunk, slots);
  EXPECT_EQ(vm.instrs_executed(), chunk.code.size());  // 2 loads, add, ret
  EXPECT_EQ(expr::vm_instrs_executed() - global0, chunk.code.size());
}

// ---------------------------------------------------------------------------
// Randomized differential property: >=500 generated (expression, env) pairs.

ExprPtr random_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.coin(0.3)) {
    switch (rng.bounded(8)) {
      case 0: return expr::var("a");
      case 1: return expr::var("b");
      case 2: return expr::var("c");
      case 3: return rng.coin(0.25) ? expr::var("u") : expr::var("a");
      case 4:  // small ints, zero included: div/mod-by-zero must be reachable
        return expr::lit(Value(static_cast<std::int64_t>(rng.bounded(7)) - 2));
      case 5: return expr::lit(Value(rng.coin()));
      case 6: return expr::lit(Value(rng.coin() ? "s" : "t"));
      default:
        return expr::lit(Value(static_cast<std::int64_t>(rng.bounded(40)) - 20));
    }
  }
  if (rng.coin(0.15)) {
    return expr::Expr::unary(rng.coin() ? expr::UnOp::Neg : expr::UnOp::Not,
                             random_expr(rng, depth - 1));
  }
  static constexpr expr::BinOp kOps[] = {
      expr::BinOp::Add, expr::BinOp::Sub, expr::BinOp::Mul, expr::BinOp::Div,
      expr::BinOp::Mod, expr::BinOp::Lt,  expr::BinOp::Le,  expr::BinOp::Gt,
      expr::BinOp::Ge,  expr::BinOp::Eq,  expr::BinOp::Ne,  expr::BinOp::And,
      expr::BinOp::Or};
  return expr::Expr::binary(kOps[rng.bounded(13)], random_expr(rng, depth - 1),
                            random_expr(rng, depth - 1));
}

Value random_value(Rng& rng) {
  switch (rng.bounded(4)) {
    case 0: return Value(static_cast<std::int64_t>(rng.bounded(9)) - 4);
    case 1: return Value(static_cast<double>(rng.bounded(8)) / 2.0);
    case 2: return Value(rng.coin());
    default: return Value(rng.coin() ? "s" : "x");
  }
}

class BytecodeDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytecodeDifferential, VmMatchesWalker) {
  // 10 trials per parameterized seed x 50 seeds = 500 distinct cases.
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(GetParam() * 1000 + trial);
    const ExprPtr e = random_expr(rng, 4);
    Env env;
    env.bind("a", random_value(rng));
    env.bind("b", random_value(rng));
    env.bind("c", random_value(rng));  // `u` stays unbound
    EXPECT_EQ(walker_result(e, env), vm_result(e, env))
        << "seed " << GetParam() << " trial " << trial << ": "
        << e->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeDifferential,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{51}));

// ---------------------------------------------------------------------------
// Engine-level state identity on the example corpus, compile on vs off.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string examples_dir() {
  return std::string(GF_REPO_DIR) + "/examples/programs/";
}

gamma::Multiset int_multiset(std::initializer_list<std::int64_t> xs) {
  gamma::Multiset m;
  for (const std::int64_t x : xs) m.add(gamma::Element{Value(x)});
  return m;
}

struct GammaCase {
  const char* file;
  gamma::Multiset initial;
};

std::vector<GammaCase> gamma_corpus() {
  std::vector<GammaCase> cases;
  cases.push_back({"min.gamma", int_multiset({9, 4, 17, 4, 1, 30, 2})});
  cases.push_back({"sieve.gamma", int_multiset({2, 3, 4, 5, 6, 7, 8, 9, 10,
                                                11, 12, 13, 14, 15, 16})});
  gamma::Multiset fig1;
  fig1.add(gamma::Element{Value(1), Value("A1")});
  fig1.add(gamma::Element{Value(5), Value("B1")});
  fig1.add(gamma::Element{Value(3), Value("C1")});
  fig1.add(gamma::Element{Value(2), Value("D1")});
  cases.push_back({"fig1.gamma", std::move(fig1)});
  return cases;
}

TEST(BytecodeCorpus, GammaEnginesStateIdenticalCompileOnOff) {
  const std::vector<std::unique_ptr<gamma::Engine>> engines = [] {
    std::vector<std::unique_ptr<gamma::Engine>> v;
    v.push_back(std::make_unique<gamma::SequentialEngine>());
    v.push_back(std::make_unique<gamma::IndexedEngine>());
    v.push_back(std::make_unique<gamma::ParallelEngine>());
    return v;
  }();
  for (const GammaCase& c : gamma_corpus()) {
    const gamma::Program program =
        gamma::dsl::parse_program(read_file(examples_dir() + c.file));
    for (const auto& engine : engines) {
      for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        gamma::RunOptions vm_opts;
        vm_opts.seed = seed;
        vm_opts.compile = true;
        gamma::RunOptions ast_opts = vm_opts;
        ast_opts.compile = false;
        const auto vm = engine->run(program, c.initial, vm_opts);
        const auto ast = engine->run(program, c.initial, ast_opts);
        EXPECT_EQ(vm.final_multiset, ast.final_multiset)
            << c.file << " engine " << engine->name() << " seed " << seed;
        EXPECT_EQ(vm.steps, ast.steps)
            << c.file << " engine " << engine->name() << " seed " << seed;
      }
    }
  }
}

TEST(BytecodeCorpus, DataflowEnginesOutputsIdenticalCompileOnOff) {
  for (const char* file : {"fig1.src", "fig2_loop.src", "classify.src"}) {
    const dataflow::Graph g =
        frontend::compile_source(read_file(examples_dir() + file));
    dataflow::DfRunOptions vm_opts;
    vm_opts.compile = true;
    dataflow::DfRunOptions ast_opts;
    ast_opts.compile = false;
    const auto vm = dataflow::Interpreter().run(g, vm_opts);
    const auto ast = dataflow::Interpreter().run(g, ast_opts);
    ASSERT_EQ(vm.outputs.size(), ast.outputs.size()) << file;
    for (const auto& [name, tokens] : vm.outputs) {
      EXPECT_EQ(vm.output_values(name), ast.output_values(name))
          << file << " output " << name;
    }
    vm_opts.workers = 3;
    ast_opts.workers = 3;
    const auto pvm = dataflow::ParallelEngine().run(g, vm_opts);
    const auto past = dataflow::ParallelEngine().run(g, ast_opts);
    for (const auto& [name, tokens] : vm.outputs) {
      EXPECT_EQ(pvm.output_values(name), ast.output_values(name))
          << file << " parallel vm output " << name;
      EXPECT_EQ(past.output_values(name), ast.output_values(name))
          << file << " parallel ast output " << name;
    }
  }
}

TEST(BytecodeCorpus, ClusterStateIdenticalCompileOnOff) {
  const gamma::Program program =
      gamma::dsl::parse_program(read_file(examples_dir() + "min.gamma"));
  const gamma::Multiset initial = int_multiset({9, 4, 17, 4, 1, 30, 2, 8});
  distrib::ClusterOptions vm_opts;
  vm_opts.nodes = 3;
  vm_opts.seed = 5;
  vm_opts.compile = true;
  distrib::ClusterOptions ast_opts = vm_opts;
  ast_opts.compile = false;
  const auto vm = distrib::run_distributed(program, initial, vm_opts);
  const auto ast = distrib::run_distributed(program, initial, ast_opts);
  EXPECT_EQ(vm.final_multiset, ast.final_multiset);
  EXPECT_EQ(vm.fires, ast.fires);
}

TEST(BytecodeCorpus, TranslatedProgramsAgreeAcrossModes) {
  // Algorithm 1 output (condition-free reactions plus steer conditions) must
  // also be mode-independent end to end.
  for (const char* file : {"fig1.src", "fig2_loop.src"}) {
    const dataflow::Graph g =
        frontend::compile_source(read_file(examples_dir() + file));
    const auto conv = translate::dataflow_to_gamma(g);
    gamma::RunOptions vm_opts;
    vm_opts.seed = 3;
    vm_opts.compile = true;
    gamma::RunOptions ast_opts = vm_opts;
    ast_opts.compile = false;
    const auto vm = gamma::IndexedEngine().run(conv.program, conv.initial,
                                               vm_opts);
    const auto ast = gamma::IndexedEngine().run(conv.program, conv.initial,
                                                ast_opts);
    EXPECT_EQ(vm.final_multiset, ast.final_multiset) << file;
  }
}

// ---------------------------------------------------------------------------
// Batch backend: compile_batch shapes, BatchVm lane semantics, and the
// batch ≡ scalar differential property over generated conditions.

expr::Chunk compile_scalar(const std::string& text) {
  return expr::compile(parse(text), kSlots);
}

/// Slot layout for batch tests: `a` is the vector (per-lane) slot, `b`/`c`
/// are broadcast scalars, `u` unused.
constexpr std::array<std::uint8_t, 4> kVecA = {1, 0, 0, 0};

TEST(BatchCompile, FusesLoadsIntoOperands) {
  // a < b: both loads fold into the comparison's operands, leaving one
  // compare plus the ret — the superinstruction shape bench_bytecode
  // measures as loadslot+op fusion.
  const auto batch = expr::compile_batch(compile_scalar("a < b"), kVecA);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->fused_loads, 2u);
  ASSERT_EQ(batch->code.size(), 2u);
  EXPECT_EQ(batch->code[0].op, expr::BatchOp::Lt);
  EXPECT_TRUE(batch->code[0].a.vec);
  EXPECT_FALSE(batch->code[0].b.vec);
  EXPECT_EQ(batch->code[1].op, expr::BatchOp::Ret);
  ASSERT_GE(batch->slot_used.size(), 3u);
  EXPECT_EQ(batch->slot_used[0], 1);
  EXPECT_EQ(batch->slot_used[1], 1);
  EXPECT_EQ(batch->slot_used[2], 0);
}

TEST(BatchCompile, LowersShortCircuitToEagerJoins) {
  // and/or jumps disappear: both sides evaluate eagerly, joined by the
  // boolean ops. Straight-line code must contain a join and no other
  // control flow (Ret terminates).
  const auto batch =
      expr::compile_batch(compile_scalar("a > 0 and a % 2 == 0"), kVecA);
  ASSERT_TRUE(batch.has_value());
  bool saw_join = false;
  for (const expr::BatchInstr& in : batch->code) {
    saw_join = saw_join || in.op == expr::BatchOp::AndBool;
  }
  EXPECT_TRUE(saw_join);
  EXPECT_EQ(batch->code.back().op, expr::BatchOp::Ret);
}

TEST(BatchCompile, RefusesWhatCouldDivergeFromScalar) {
  // Non-Int constants, literal-zero divisors: lane semantics could diverge
  // from the walker's error behaviour, so translation refuses and the
  // pipeline keeps the scalar probe for the reaction.
  EXPECT_FALSE(expr::compile_batch(compile_scalar("a == 's'"), kVecA));
  EXPECT_FALSE(expr::compile_batch(compile_scalar("a / 0 > 1"), kVecA));
  EXPECT_FALSE(expr::compile_batch(compile_scalar("a % 0 == 1"), kVecA));
  // Nonzero literal divisors and Bool constants stay batchable.
  EXPECT_TRUE(expr::compile_batch(compile_scalar("a % 3 == 0"), kVecA));
  EXPECT_TRUE(expr::compile_batch(compile_scalar("a > 0 and true"), kVecA));
}

/// Runs `text` over a column bound to slot `a` (b, c broadcast) through the
/// batch VM and checks every lane against the scalar Vm's verdict.
void expect_batch_matches_scalar(const std::string& text,
                                 std::span<const std::int64_t> col_a,
                                 std::int64_t b, std::int64_t c) {
  const expr::Chunk chunk = compile_scalar(text);
  const auto batch = expr::compile_batch(chunk, kVecA);
  ASSERT_TRUE(batch.has_value()) << text;
  std::vector<expr::BatchVm::SlotInput> slots(kSlots.size());
  slots[0].column = col_a.data();
  slots[1].scalar = b;
  slots[2].scalar = c;
  expr::BatchVm vm;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(vm.run(*batch, slots, col_a.size(), out)) << text;
  expr::Vm scalar;
  for (std::size_t i = 0; i < col_a.size(); ++i) {
    const Value va(col_a[i]);
    const Value vb(b);
    const Value vc(c);
    const Value* ptrs[4] = {&va, &vb, &vc, nullptr};
    const Value r = scalar.run(chunk, ptrs);
    EXPECT_EQ(out[i] != 0, r.truthy()) << text << " lane " << i;
  }
}

TEST(BatchVmTest, LanesAgreeWithScalarVm) {
  const std::vector<std::int64_t> col = {-3, -1, 0, 1, 2, 5, 8, 1 << 20};
  for (const char* text :
       {"a < b", "a <= b and a > c", "a == b or a == c", "a % 3 == 0",
        "a * 2 + c > b", "-a < b", "not (a > b)", "a / 2 >= c",
        "a > 0 and (a < b or a == c)"}) {
    expect_batch_matches_scalar(text, col, 4, -1);
  }
}

TEST(BatchVmTest, HugeIntsKeepTheDoubleComparisonQuirks) {
  // Comparisons go through double exactly like value.cpp's compare(): above
  // 2^53, adjacent int64s collapse to the same double and compare equal.
  // The batch bitmap must reproduce that bit-for-bit, not fix it.
  const std::int64_t big = (std::int64_t{1} << 60) + 1;
  const std::vector<std::int64_t> col = {big, big - 1, big + 1, 0};
  expect_batch_matches_scalar("a == b", col, big, 0);
  expect_batch_matches_scalar("a < b", col, big, 0);
  expect_batch_matches_scalar("a >= b", col, big, 0);
}

TEST(BatchVmTest, RuntimeZeroDivisorAbortsTheBatch) {
  // b is zero at runtime (not a literal), so translation succeeds — but a
  // faulting lane means the bitmap cannot be trusted, and run() refuses so
  // the caller re-probes the whole batch through the scalar path (which
  // throws exactly where the walker would).
  const auto batch = expr::compile_batch(compile_scalar("a / b > 0"), kVecA);
  ASSERT_TRUE(batch.has_value());
  const std::vector<std::int64_t> col = {1, 2, 3};
  std::vector<expr::BatchVm::SlotInput> slots(kSlots.size());
  slots[0].column = col.data();
  slots[1].scalar = 0;
  expr::BatchVm vm;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(vm.run(*batch, slots, col.size(), out));

  // Per-lane divisors: ANY zero lane aborts, even if others are fine.
  const auto by_a = expr::compile_batch(compile_scalar("b / a > 0"), kVecA);
  ASSERT_TRUE(by_a.has_value());
  const std::vector<std::int64_t> divisors = {1, 0, 3};
  slots[0].column = divisors.data();
  slots[1].scalar = 6;
  EXPECT_FALSE(vm.run(*by_a, slots, divisors.size(), out));
  slots[1].scalar = 6;
  const std::vector<std::int64_t> safe = {1, 2, 3};
  slots[0].column = safe.data();
  EXPECT_TRUE(vm.run(*by_a, slots, safe.size(), out));
}

TEST(BatchVmTest, CountersAdvancePerEvalAndLane) {
  const auto batch = expr::compile_batch(compile_scalar("a > 0"), kVecA);
  ASSERT_TRUE(batch.has_value());
  const std::vector<std::int64_t> col = {1, -2, 3, 4, -5};
  std::vector<expr::BatchVm::SlotInput> slots(kSlots.size());
  slots[0].column = col.data();
  expr::BatchVm vm;
  std::vector<std::uint8_t> out;
  const std::uint64_t evals0 = expr::batch_evals();
  const std::uint64_t lanes0 = expr::batch_lanes();
  const auto width0 = expr::batch_width_counts();
  ASSERT_TRUE(vm.run(*batch, slots, col.size(), out));
  EXPECT_EQ(expr::batch_evals() - evals0, 1u);
  EXPECT_EQ(expr::batch_lanes() - lanes0, col.size());
  // n = 5 lands in bucket bit_width(5) = 3 (widths 4..7).
  const auto width1 = expr::batch_width_counts();
  EXPECT_EQ(width1[3] - width0[3], 1u);
}

/// Random int-only conditions over one vector and two scalar slots; every
/// batchable one must agree with the scalar Vm on every lane. Conditions
/// with runtime division are exercised too: if run() succeeds, no lane
/// faulted and the lanes must agree; if it aborts, the scalar run on some
/// lane must actually throw.
ExprPtr random_batch_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.coin(0.3)) {
    switch (rng.bounded(6)) {
      case 0: return expr::var("a");
      case 1: return expr::var("b");
      case 2: return expr::var("c");
      case 3: return expr::lit(Value(rng.coin()));
      default:
        return expr::lit(Value(static_cast<std::int64_t>(rng.bounded(9)) - 3));
    }
  }
  if (rng.coin(0.15)) {
    return expr::Expr::unary(rng.coin() ? expr::UnOp::Neg : expr::UnOp::Not,
                             random_batch_expr(rng, depth - 1));
  }
  static constexpr expr::BinOp kOps[] = {
      expr::BinOp::Add, expr::BinOp::Sub, expr::BinOp::Mul, expr::BinOp::Div,
      expr::BinOp::Mod, expr::BinOp::Lt,  expr::BinOp::Le,  expr::BinOp::Gt,
      expr::BinOp::Ge,  expr::BinOp::Eq,  expr::BinOp::Ne,  expr::BinOp::And,
      expr::BinOp::Or};
  return expr::Expr::binary(kOps[rng.bounded(13)],
                            random_batch_expr(rng, depth - 1),
                            random_batch_expr(rng, depth - 1));
}

class BatchDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchDifferential, BitmapMatchesScalarVm) {
  // 10 trials per seed x 50 seeds = 500 generated conditions.
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(GetParam() * 1000 + trial);
    const ExprPtr e = random_batch_expr(rng, 4);
    const expr::Chunk chunk = expr::compile(e, kSlots);
    const auto batch = expr::compile_batch(chunk, kVecA);
    if (!batch.has_value()) continue;  // not batchable: scalar path serves it

    std::vector<std::int64_t> col(17);
    for (auto& v : col) v = static_cast<std::int64_t>(rng.bounded(9)) - 3;
    const Value vb(static_cast<std::int64_t>(rng.bounded(9)) - 3);
    const Value vc(static_cast<std::int64_t>(rng.bounded(9)) - 3);
    std::vector<expr::BatchVm::SlotInput> slots(kSlots.size());
    slots[0].column = col.data();
    slots[1].scalar = vb.as_int();
    slots[2].scalar = vc.as_int();

    expr::BatchVm bvm;
    std::vector<std::uint8_t> out;
    const bool ok = bvm.run(*batch, slots, col.size(), out);
    expr::Vm scalar;
    bool any_fault = false;
    for (std::size_t i = 0; i < col.size(); ++i) {
      const Value va(col[i]);
      const Value* ptrs[4] = {&va, &vb, &vc, nullptr};
      const Observed o = observe([&] { return scalar.run(chunk, ptrs); });
      if (!o.ok) {
        any_fault = true;
        continue;
      }
      if (ok) {
        EXPECT_EQ(out[i] != 0, o.value.truthy())
            << "seed " << GetParam() << " trial " << trial << " lane " << i
            << ": " << e->to_string();
      }
    }
    if (!ok) {
      EXPECT_TRUE(any_fault)
          << "seed " << GetParam() << " trial " << trial
          << ": batch aborted but no lane faults: " << e->to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferential,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{51}));

// ---------------------------------------------------------------------------
// Engine-level: batch ≡ scalar ≡ AST on generated programs (the modes share
// one rng schedule, so states AND step counts must be byte-identical).

TEST(BatchCorpus, GammaEnginesStateIdenticalAcrossAllThreeModes) {
  for (const GammaCase& c : gamma_corpus()) {
    const gamma::Program program =
        gamma::dsl::parse_program(read_file(examples_dir() + c.file));
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      gamma::RunOptions batch_opts;
      batch_opts.seed = seed;
      gamma::RunOptions vm_opts = batch_opts;
      vm_opts.batch = false;
      gamma::RunOptions ast_opts = vm_opts;
      ast_opts.compile = false;
      for (const auto make : {+[]() -> std::unique_ptr<gamma::Engine> {
                                return std::make_unique<gamma::SequentialEngine>();
                              },
                              +[]() -> std::unique_ptr<gamma::Engine> {
                                return std::make_unique<gamma::IndexedEngine>();
                              }}) {
        const auto engine = make();
        const auto batch = engine->run(program, c.initial, batch_opts);
        const auto vm = engine->run(program, c.initial, vm_opts);
        const auto ast = engine->run(program, c.initial, ast_opts);
        EXPECT_EQ(batch.final_multiset, vm.final_multiset)
            << c.file << " " << engine->name() << " seed " << seed;
        EXPECT_EQ(batch.steps, vm.steps)
            << c.file << " " << engine->name() << " seed " << seed;
        EXPECT_EQ(vm.final_multiset, ast.final_multiset)
            << c.file << " " << engine->name() << " seed " << seed;
      }
    }
  }
}

/// Random guard over x and y rendered back to DSL text. Division and modulo
/// are included on purpose: a guard that faults must fault identically
/// (same error text) in all three modes.
std::string random_guard(Rng& rng, int depth) {
  if (depth == 0 || rng.coin(0.35)) {
    switch (rng.bounded(5)) {
      case 0: return "x";
      case 1: return "y";
      default:
        return std::to_string(static_cast<std::int64_t>(rng.bounded(9)) - 3);
    }
  }
  static constexpr const char* kOps[] = {"+", "-", "*", "/", "%", "<", "<=",
                                         ">", ">=", "==", "!=", "and", "or"};
  return "(" + random_guard(rng, depth - 1) + " " + kOps[rng.bounded(13)] +
         " " + random_guard(rng, depth - 1) + ")";
}

struct EngineRun {
  bool ok = false;
  gamma::Multiset state;
  std::uint64_t steps = 0;
  std::string error;

  friend bool operator==(const EngineRun& x, const EngineRun& y) {
    return x.ok == y.ok &&
           (x.ok ? (x.state == y.state && x.steps == y.steps)
                 : x.error == y.error);
  }
};

EngineRun run_mode(gamma::Engine& engine, const gamma::Program& p,
                   const gamma::Multiset& init,
                   const gamma::RunOptions& opts) {
  EngineRun r;
  try {
    auto result = engine.run(p, init, opts);
    r.state = std::move(result.final_multiset);
    r.steps = result.steps;
    r.ok = true;
  } catch (const TypeError& ex) {
    r.error = std::string("TypeError: ") + ex.what();
  } catch (const ProgramError& ex) {
    r.error = std::string("ProgramError: ") + ex.what();
  }
  return r;
}

class BatchEngineDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchEngineDifferential, GeneratedProgramsAgreeAcrossModes) {
  // 10 generated (program, multiset) pairs per seed x 50 seeds = 500 cases,
  // each run through the two deterministic engines in all three modes.
  // Templates rotate so literal field checks, label keys, repeated binders
  // (EqField), and outer-bound binders (EqSlot) all get exercised.
  static constexpr const char* kTemplates[] = {
      "R = replace x, y by x + y where %G",
      "R = replace [x,'a'], [y,'a'] by [x + y,'a'] where %G",
      "R = replace [x,'a'], [y,'b'] by [x,'done'] where %G",
      "R = replace [x, x] by x where %G",
  };
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Rng rng(GetParam() * 7919 + trial);
    const std::string guard = random_guard(rng, 3);
    const std::size_t which = rng.bounded(4);
    std::string src(kTemplates[which]);
    src.replace(src.find("%G"), 2, guard);

    gamma::Multiset init;
    const std::size_t n = 6 + rng.bounded(10);
    for (std::size_t i = 0; i < n; ++i) {
      const Value v(static_cast<std::int64_t>(rng.bounded(13)) - 3);
      switch (which) {
        case 0: init.add(gamma::Element{v}); break;
        case 1: init.add(gamma::Element::labeled(v, "a")); break;
        case 2:
          init.add(gamma::Element::labeled(v, rng.coin() ? "a" : "b"));
          break;
        default: {
          const Value w = rng.coin(0.4)
                              ? v
                              : Value(static_cast<std::int64_t>(
                                    rng.bounded(13)) - 3);
          init.add(gamma::Element{v, w});
          break;
        }
      }
    }

    gamma::Program p;
    try {
      p = gamma::dsl::parse_program(src);
    } catch (const Error&) {
      continue;  // a guard the DSL rejects (none expected) — skip
    }
    gamma::RunOptions batch_opts;
    batch_opts.seed = GetParam();
    gamma::RunOptions vm_opts = batch_opts;
    vm_opts.batch = false;
    gamma::RunOptions ast_opts = vm_opts;
    ast_opts.compile = false;

    gamma::SequentialEngine seq;
    gamma::IndexedEngine idx;
    for (gamma::Engine* engine :
         std::initializer_list<gamma::Engine*>{&seq, &idx}) {
      const EngineRun batch = run_mode(*engine, p, init, batch_opts);
      const EngineRun vm = run_mode(*engine, p, init, vm_opts);
      const EngineRun ast = run_mode(*engine, p, init, ast_opts);
      EXPECT_EQ(batch, vm) << engine->name() << " seed " << GetParam()
                           << " trial " << trial << ": " << src;
      EXPECT_EQ(vm, ast) << engine->name() << " seed " << GetParam()
                         << " trial " << trial << ": " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEngineDifferential,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{51}));

TEST(BatchCorpus, CompiledReactionExposesItsBatchPlan) {
  // Innermost-pattern binders become vector slots; outer binders broadcast.
  const gamma::Reaction r = gamma::dsl::parse_reaction(
      "R = replace [x,'a'], [y,'a'] by [x + y,'a'] where x < y");
  const auto* plan = r.compiled().batch_plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->arity, 2u);
  ASSERT_EQ(plan->vector_slots.size(), 1u);  // y varies per lane
  EXPECT_EQ(plan->slot_is_vector,
            (std::vector<std::uint8_t>{0, 1}));  // x broadcast, y vector
  ASSERT_EQ(plan->conditions.size(), 1u);
  EXPECT_TRUE(plan->conditions[0].has_value());

  // A non-batchable guard disables the plan wholesale (all-or-nothing:
  // mixing lane bitmaps with scalar branch probes could reorder which
  // branch fires first) — the matcher falls back to the scalar sweep.
  const gamma::Reaction s = gamma::dsl::parse_reaction(
      "S = replace [x,'a'], [y,'a'] by [x,'a'] where y == 's' or x < y");
  EXPECT_EQ(s.compiled().batch_plan(), nullptr);
}

TEST(BytecodeCorpus, CompiledReactionReportsFootprint) {
  const gamma::Reaction r = gamma::dsl::parse_reaction(
      "Rmin = replace x, y by x where x < y");
  const gamma::CompiledReaction& cr = r.compiled();
  EXPECT_EQ(cr.slots(), (std::vector<std::string>{"x", "y"}));
  EXPECT_GT(cr.instr_count(), 0u);
  EXPECT_GE(cr.compile_ms(), 0.0);
}

}  // namespace
}  // namespace gammaflow
