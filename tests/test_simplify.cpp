// Simplifier: constant folding, algebraic identities, safety (no folding of
// would-throw subtrees), substitution.
#include <gtest/gtest.h>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/expr/eval.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/expr/simplify.hpp"

namespace gammaflow::expr {
namespace {

ExprPtr parse(const char* s) { return parse_expression(s); }

TEST(Simplify, FoldsConstantArithmetic) {
  EXPECT_EQ(simplify(parse("2 + 3 * 4"))->literal(), Value(14));
  EXPECT_EQ(simplify(parse("(1 + 5) - (3 * 2)"))->literal(), Value(0));
}

TEST(Simplify, FoldsComparisonsAndLogic) {
  EXPECT_EQ(simplify(parse("3 < 4"))->literal(), Value(true));
  EXPECT_EQ(simplify(parse("true and false"))->literal(), Value(false));
  EXPECT_EQ(simplify(parse("not false"))->literal(), Value(true));
}

TEST(Simplify, AdditiveIdentity) {
  EXPECT_EQ(simplify(parse("x + 0"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("0 + x"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("x - 0"))->to_string(), "x");
}

TEST(Simplify, MultiplicativeIdentity) {
  EXPECT_EQ(simplify(parse("x * 1"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("1 * x"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("x / 1"))->to_string(), "x");
}

TEST(Simplify, BooleanIdentities) {
  EXPECT_EQ(simplify(parse("true and p"))->to_string(), "p");
  EXPECT_EQ(simplify(parse("p and true"))->to_string(), "p");
  EXPECT_EQ(simplify(parse("false or p"))->to_string(), "p");
  EXPECT_EQ(simplify(parse("false and p"))->literal(), Value(false));
  EXPECT_EQ(simplify(parse("true or p"))->literal(), Value(true));
}

TEST(Simplify, DoubleNegation) {
  EXPECT_EQ(simplify(parse("--x"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("not not p"))->to_string(), "p");
}

TEST(Simplify, DoesNotFoldThrowingSubtrees) {
  // 1/0 must survive so the runtime error is raised in context, not at
  // simplification time.
  const ExprPtr e = simplify(parse("1 / 0"));
  EXPECT_EQ(e->kind(), Expr::Kind::Binary);
  EXPECT_THROW((void)eval(e, Env{}), TypeError);
}

TEST(Simplify, LeavesVariablesIntact) {
  const ExprPtr e = simplify(parse("a + b * c"));
  EXPECT_EQ(e->to_string(), "a + b * c");
}

TEST(Simplify, PartialFolding) {
  EXPECT_EQ(simplify(parse("x + (2 * 3 - 6)"))->to_string(), "x");
  EXPECT_EQ(simplify(parse("(4 - 3) * y"))->to_string(), "y");
}

TEST(Simplify, Idempotent) {
  for (const char* src : {"a + 0 * b", "2 + 3", "x * 1 + 0", "not not q"}) {
    const ExprPtr once = simplify(parse(src));
    const ExprPtr twice = simplify(once);
    EXPECT_TRUE(equal(once, twice)) << src;
  }
}

TEST(Substitute, ReplacesNamedVariables) {
  const ExprPtr body = parse("a + b");
  const ExprPtr replaced =
      substitute(body, {{"a", parse("x * y")}});
  EXPECT_EQ(replaced->to_string(), "x * y + b");
}

TEST(Substitute, MultipleBindingsSimultaneous) {
  const ExprPtr replaced =
      substitute(parse("a + b"), {{"a", parse("b")}, {"b", parse("c")}});
  // simultaneous: the substituted 'b' (for a) is NOT re-substituted.
  EXPECT_EQ(replaced->to_string(), "b + c");
}

TEST(Substitute, UntouchedTreeIsShared) {
  const ExprPtr body = parse("x + y");
  const ExprPtr same = substitute(body, {{"zz", parse("1")}});
  EXPECT_EQ(body.get(), same.get());  // no rewrite => same node
}

// Property: simplify preserves evaluation on random trees and environments.
class SimplifySemantics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifySemantics, EvalUnchanged) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    // Arithmetic-only trees over small positive ints avoid div/0 dominance.
    std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
      if (depth == 0 || rng.coin(0.35)) {
        if (rng.coin(0.4)) {
          return Expr::var(std::string(1, static_cast<char>('a' + rng.bounded(3))));
        }
        return Expr::lit(Value(static_cast<std::int64_t>(rng.bounded(9)) + 1));
      }
      static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul};
      return Expr::binary(kOps[rng.bounded(3)], gen(depth - 1), gen(depth - 1));
    };
    const ExprPtr tree = gen(4);
    Env env;
    env.bind("a", Value(static_cast<std::int64_t>(rng.bounded(20)) - 10));
    env.bind("b", Value(static_cast<std::int64_t>(rng.bounded(20)) - 10));
    env.bind("c", Value(static_cast<std::int64_t>(rng.bounded(20)) - 10));
    EXPECT_EQ(eval(tree, env), eval(simplify(tree), env))
        << tree->to_string() << " vs " << simplify(tree)->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemantics,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace gammaflow::expr
