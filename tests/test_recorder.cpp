// Run-recorder tests: the journal a recorded run produces must replay to the
// engine's own final state (rounds always; fires exactly when nothing was
// dropped), survive a serialize -> parse round trip unchanged, and account
// for every drop under tiny budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow {
namespace {

using obs::Journal;
using obs::RecorderLimits;
using obs::RunRecorder;
using obs::StoreCounts;

gamma::Multiset ints(std::initializer_list<std::int64_t> xs) {
  gamma::Multiset m;
  for (const std::int64_t x : xs) m.add(gamma::Element({Value(x)}));
  return m;
}

std::unique_ptr<gamma::Engine> make_engine(const std::string& name) {
  if (name == "seq") return std::make_unique<gamma::SequentialEngine>();
  if (name == "idx") return std::make_unique<gamma::IndexedEngine>();
  return std::make_unique<gamma::ParallelEngine>();
}

const char* kMin = "Rmin = replace x, y by x where x < y";

// ---------------------------------------------------------------- gamma ---

class GammaRecorderSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(GammaRecorderSuite, JournalReplaysToEngineFinalStore) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  const gamma::Multiset initial = ints({9, 4, 7, 2, 8, 5});
  RunRecorder rec;
  gamma::RunOptions opts;
  opts.seed = 7;
  opts.record = &rec;
  const auto result = make_engine(GetParam())->run(program, initial, opts);
  const Journal j = rec.take();

  EXPECT_EQ(obs::verify_journal(j), "");
  EXPECT_EQ(j.kind, "gamma");
  EXPECT_EQ(j.outcome, "completed");
  EXPECT_EQ(j.initial, runtime::store_counts(initial));

  const StoreCounts final = runtime::store_counts(result.final_multiset);
  EXPECT_EQ(j.final_store, final);
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()), final);
  ASSERT_EQ(j.fires_dropped, 0u);
  EXPECT_EQ(obs::replay_fires(j, j.fires.size()), final);
  EXPECT_EQ(j.fires_total, result.steps);
  for (const obs::FireRecord& f : j.fires) {
    EXPECT_EQ(f.reaction, "Rmin");
    EXPECT_EQ(f.consumed.size(), 2u);
    EXPECT_EQ(f.produced.size(), 1u);
  }
}

TEST_P(GammaRecorderSuite, SerializeParseRoundTrip) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  RunRecorder rec;
  gamma::RunOptions opts;
  opts.record = &rec;
  (void)make_engine(GetParam())->run(program, ints({3, 1, 4, 1, 5}), opts);
  const Journal j = rec.take();

  const std::string text = obs::journal_to_string(j);
  const Journal parsed = obs::parse_journal_string(text);
  EXPECT_EQ(parsed.version, obs::kJournalVersion);
  EXPECT_EQ(parsed.engine, j.engine);
  EXPECT_EQ(parsed.kind, j.kind);
  EXPECT_EQ(parsed.outcome, j.outcome);
  EXPECT_EQ(parsed.initial, j.initial);
  EXPECT_EQ(parsed.final_store, j.final_store);
  EXPECT_EQ(parsed.fires_total, j.fires_total);
  EXPECT_EQ(parsed.rounds_total, j.rounds_total);
  ASSERT_EQ(parsed.fires.size(), j.fires.size());
  for (std::size_t i = 0; i < j.fires.size(); ++i) {
    EXPECT_EQ(parsed.fires[i].reaction, j.fires[i].reaction);
    EXPECT_EQ(parsed.fires[i].round, j.fires[i].round);
    EXPECT_EQ(parsed.fires[i].consumed, j.fires[i].consumed);
    EXPECT_EQ(parsed.fires[i].produced, j.fires[i].produced);
  }
  // Serializing the parsed journal reproduces the text byte-for-byte.
  EXPECT_EQ(obs::journal_to_string(parsed), text);
  EXPECT_EQ(obs::verify_journal(parsed), "");
}

INSTANTIATE_TEST_SUITE_P(Engines, GammaRecorderSuite,
                         ::testing::Values("seq", "idx", "par"));

TEST(Recorder, TinyBudgetCountsDropsAndStillConverges) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  gamma::Multiset initial;
  for (std::int64_t i = 0; i < 40; ++i) {
    initial.add(gamma::Element({Value(100 - i)}));
  }
  RecorderLimits limits;
  limits.max_fires = 3;
  limits.max_rounds = 1;
  limits.max_round_bytes = 128;
  RunRecorder rec(limits);
  gamma::RunOptions opts;
  opts.record = &rec;
  const auto result = gamma::SequentialEngine().run(program, initial, opts);
  const Journal j = rec.take();

  EXPECT_EQ(j.fires_total, result.steps);
  EXPECT_GT(j.fires_dropped, 0u);
  EXPECT_LE(j.fires.size(), 3u);
  EXPECT_GT(j.rounds_dropped, 0u);
  // The closing round is budget-exempt: rounds-replay still reaches the
  // engine's final store even though intermediate rounds were dropped.
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()),
            runtime::store_counts(result.final_multiset));
  EXPECT_EQ(obs::verify_journal(j), "");
}

TEST(Recorder, EscapedStringsSurviveRoundTrip) {
  RunRecorder rec;
  rec.begin("test", "gamma", {{"[1, 'a\"b\\c']", 2}, {"tab\there", 1}});
  obs::FireRecord f;
  f.reaction = "R\"quoted\"\nnewline";
  f.consumed = {"[1, 'a\"b\\c']"};
  f.produced = {"ctrl\x01char"};
  rec.fire(std::move(f));
  rec.round({{"[1, 'a\"b\\c']", 1}, {"tab\there", 1}, {"ctrl\x01char", 1}});
  rec.finish("completed",
             {{"[1, 'a\"b\\c']", 1}, {"tab\there", 1}, {"ctrl\x01char", 1}});
  const Journal j = rec.take();
  const Journal parsed = obs::parse_journal_string(obs::journal_to_string(j));
  EXPECT_EQ(parsed.fires.at(0).reaction, "R\"quoted\"\nnewline");
  EXPECT_EQ(parsed.final_store, j.final_store);
  EXPECT_EQ(obs::verify_journal(parsed), "");
}

TEST(Recorder, SessionTagRoundTripsAndIsOmittedWhenEmpty) {
  RunRecorder rec;
  rec.begin("worklist", "gamma", {{"[1]", 1}});
  rec.round({{"[1]", 1}});
  rec.finish("completed", {{"[1]", 1}});
  Journal j = rec.take();

  // Pre-serve journals carry no session; the serialized form must not grow
  // a "session" key so old journals stay byte-identical.
  EXPECT_EQ(j.session, "");
  const std::string untagged = obs::journal_to_string(j);
  EXPECT_EQ(untagged.find("\"session\""), std::string::npos);
  EXPECT_EQ(obs::parse_journal_string(untagged).session, "");

  j.session = "s42";
  const std::string tagged = obs::journal_to_string(j);
  EXPECT_NE(tagged.find("\"session\":\"s42\""), std::string::npos);
  const Journal parsed = obs::parse_journal_string(tagged);
  EXPECT_EQ(parsed.session, "s42");
  EXPECT_EQ(obs::journal_to_string(parsed), tagged);
  EXPECT_EQ(obs::verify_journal(parsed), "");
}

TEST(Recorder, WorklistJournalReplaysAcrossInjections) {
  // A serve session's journal spans many injections: one round per
  // quiescent state. Replaying the rounds must land on the live store.
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  RunRecorder rec;
  runtime::WorklistOptions wopts;
  wopts.seed = 11;
  wopts.record = &rec;
  runtime::IncrementalFixpoint fix(program, analysis::wakeup_keys(program),
                                   wopts);
  rec.set_session("s1");
  ASSERT_EQ(fix.inject(ints({9, 4, 7})), Outcome::Completed);
  ASSERT_EQ(fix.inject(ints({2, 8})), Outcome::Completed);
  ASSERT_EQ(fix.inject(ints({5})), Outcome::Completed);
  fix.finish_recording();
  const Journal j = rec.take();

  EXPECT_EQ(j.session, "s1");
  EXPECT_EQ(j.engine, "worklist");
  EXPECT_EQ(j.outcome, "completed");
  EXPECT_EQ(obs::verify_journal(j), "");
  EXPECT_EQ(j.rounds_total, 3u);
  const StoreCounts final = runtime::store_counts(fix.snapshot());
  EXPECT_EQ(j.final_store, final);
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()), final);
  ASSERT_EQ(j.fires_dropped, 0u);
  EXPECT_EQ(obs::replay_fires(j, j.fires.size()), final);

  const Journal parsed = obs::parse_journal_string(obs::journal_to_string(j));
  EXPECT_EQ(parsed.session, "s1");
  EXPECT_EQ(parsed.final_store, final);
}

TEST(Recorder, VersionMismatchThrows) {
  EXPECT_THROW(
      (void)obs::parse_journal_string(
          R"({"gf_journal":99,"engine":"x","kind":"gamma","outcome":"completed","initial":{},"rounds":[],"fires":[],"final":{},"fires_total":0,"fires_dropped":0,"rounds_total":0,"rounds_dropped":0})"),
      std::runtime_error);
  EXPECT_THROW((void)obs::parse_journal_string("not json"),
               std::runtime_error);
}

// ------------------------------------------------------------- dataflow ---

TEST(DataflowRecorder, InterpreterJournalReplaysToOutputs) {
  const dataflow::Graph g = paper::fig1_graph();
  RunRecorder rec;
  dataflow::DfRunOptions opts;
  opts.record = &rec;
  const auto result = dataflow::Interpreter().run(g, opts, {});
  const Journal j = rec.take();

  EXPECT_EQ(j.engine, "interpreter");
  EXPECT_EQ(j.kind, "dataflow");
  EXPECT_EQ(obs::verify_journal(j), "");
  EXPECT_TRUE(j.initial.empty());
  EXPECT_EQ(j.fires_total, result.fires);
  ASSERT_EQ(j.fires_dropped, 0u);

  // The final "store" = captured outputs + parked leftovers, in the shared
  // canonical renderings.
  StoreCounts expected;
  for (const auto& [name, tokens] : result.outputs) {
    for (const auto& [tag, value] : tokens) {
      ++expected[dataflow::journal_output_str(name, tag, value)];
    }
  }
  for (const dataflow::PendingOperand& p : result.leftovers) {
    ++expected[dataflow::journal_token_str(g, p.node, p.port, p.tag, p.value)];
  }
  EXPECT_EQ(j.final_store, expected);
  EXPECT_EQ(obs::replay_fires(j, j.fires.size()), expected);
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()), expected);
}

TEST(DataflowRecorder, ParallelEngineJournalReplays) {
  const dataflow::Graph g = paper::fig2_graph(4, 5, 100, true);
  RunRecorder rec;
  dataflow::DfRunOptions opts;
  opts.workers = 3;
  opts.record = &rec;
  const auto result = dataflow::ParallelEngine().run(g, opts, {});
  const Journal j = rec.take();

  EXPECT_EQ(j.engine, "parallel");
  EXPECT_EQ(j.kind, "dataflow");
  EXPECT_EQ(j.fires_total, result.fires);
  ASSERT_EQ(j.fires_dropped, 0u);
  EXPECT_EQ(obs::verify_journal(j), "");
  EXPECT_EQ(obs::replay_fires(j, j.fires.size()), j.final_store);
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()), j.final_store);
}

// -------------------------------------------------------------- distrib ---

TEST(DistribRecorder, FaultFreeClusterJournalReplays) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  const gamma::Multiset initial = ints({9, 4, 7, 2, 8, 5, 11, 3});
  RunRecorder rec;
  distrib::ClusterOptions opts;
  opts.nodes = 3;
  opts.seed = 5;
  opts.record = &rec;
  const auto result = distrib::run_distributed(program, initial, opts);
  const Journal j = rec.take();

  EXPECT_EQ(j.engine, "cluster");
  EXPECT_EQ(j.kind, "distrib");
  EXPECT_EQ(obs::verify_journal(j), "");
  EXPECT_EQ(j.fires_total, result.fires);
  const StoreCounts final = runtime::store_counts(result.final_multiset);
  EXPECT_EQ(j.final_store, final);
  EXPECT_EQ(obs::replay_rounds(j, j.rounds.size()), final);
  ASSERT_EQ(j.fires_dropped, 0u);
  // Fault-free: no fire is ever rolled back, so fire-replay is exact and
  // every fire names the node that ran it.
  EXPECT_EQ(obs::replay_fires(j, j.fires.size()), final);
  for (const obs::FireRecord& f : j.fires) {
    EXPECT_GE(f.node, 0);
    EXPECT_LT(f.node, 3);
  }
}

TEST(Recorder, OffByDefaultLeavesResultsIdentical) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  const gamma::Multiset initial = ints({6, 2, 9});
  gamma::RunOptions plain;
  plain.seed = 3;
  RunRecorder rec;
  gamma::RunOptions recorded;
  recorded.seed = 3;
  recorded.record = &rec;
  const auto a = gamma::IndexedEngine().run(program, initial, plain);
  const auto b = gamma::IndexedEngine().run(program, initial, recorded);
  EXPECT_EQ(a.final_multiset.canonical(), b.final_multiset.canonical());
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace gammaflow
