// Algorithm 1: structure of converted programs — the paper's listings are
// pinned (reaction shapes, labels, initial multisets, conditions).
#include <gtest/gtest.h>

#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::translate {
namespace {

using gamma::Element;
using gamma::Multiset;
using gamma::Pattern;
using gamma::Reaction;

TEST(Alg1, Fig1ProducesThePaperListing) {
  const GammaConversion conv = dataflow_to_gamma(paper::fig1_graph());
  EXPECT_FALSE(conv.tagged);  // no inctag => pair elements, like the paper
  EXPECT_EQ(conv.program.reaction_count(), 3u);

  const Reaction* r1 = conv.program.find("R1");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->patterns()[0], Pattern::labeled("id1", "A1"));
  EXPECT_EQ(r1->patterns()[1], Pattern::labeled("id2", "B1"));
  ASSERT_EQ(r1->branches().size(), 1u);
  EXPECT_EQ(r1->branches()[0].outputs[0][0]->to_string(), "id1 + id2");
  EXPECT_EQ(r1->branches()[0].outputs[0][1]->literal(), Value("B2"));

  const Reaction* r3 = conv.program.find("R3");
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->branches()[0].outputs[0][0]->to_string(), "id1 - id2");
  EXPECT_EQ(r3->branches()[0].outputs[0][1]->literal(), Value("m"));
}

TEST(Alg1, Fig1InitialMultisetMatchesPaper) {
  const GammaConversion conv = dataflow_to_gamma(paper::fig1_graph());
  EXPECT_EQ(conv.initial, paper::fig1_initial());
}

TEST(Alg1, Fig1OutputLabelMapsToM) {
  const GammaConversion conv = dataflow_to_gamma(paper::fig1_graph());
  ASSERT_EQ(conv.output_labels.size(), 1u);
  EXPECT_EQ(conv.output_labels.at("m"), std::vector<std::string>{"m"});
}

TEST(Alg1, Fig1ConvertedEqualsPaperListingBehaviour) {
  const GammaConversion conv = dataflow_to_gamma(paper::fig1_graph());
  const gamma::IndexedEngine eng;
  const auto converted = eng.run(conv.program, conv.initial);
  const auto paper_listing = eng.run(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_EQ(converted.final_multiset, paper_listing.final_multiset);
  EXPECT_EQ(converted.final_multiset,
            (Multiset{Element::labeled(Value(0), "m")}));
}

TEST(Alg1, Fig2ProducesNineReactions) {
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  EXPECT_TRUE(conv.tagged);  // inctag present => triples
  EXPECT_EQ(conv.program.reaction_count(), 9u);
  for (const char* name :
       {"R11", "R12", "R13", "R14", "R15", "R16", "R17", "R18", "R19"}) {
    EXPECT_NE(conv.program.find(name), nullptr) << name;
  }
}

TEST(Alg1, Fig2InctagReactionShape) {
  // R11 = replace [id1,x,v] by [id1,'A12',v+1] if (x=='A1') or (x=='A11')
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  const Reaction* r11 = conv.program.find("R11");
  ASSERT_NE(r11, nullptr);
  EXPECT_EQ(r11->arity(), 1u);
  EXPECT_TRUE(r11->patterns()[0].fields()[1].is_binder());  // label var x
  ASSERT_EQ(r11->branches().size(), 1u);
  EXPECT_EQ(r11->branches()[0].condition->to_string(),
            "x == 'A1' or x == 'A11'");
  const auto& out = r11->branches()[0].outputs[0];
  EXPECT_EQ(out[0]->to_string(), "id1");
  EXPECT_EQ(out[1]->literal(), Value("A12"));
  EXPECT_EQ(out[2]->to_string(), "v + 1");
}

TEST(Alg1, Fig2ComparisonReactionShape) {
  // R14 = replace [id1,'B12',v] by [1,'B14',v],[1,'B15',v],[1,'B16',v]
  //       if id1 > 0  by [0,...],[0,...],[0,...] else
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  const Reaction* r14 = conv.program.find("R14");
  ASSERT_NE(r14, nullptr);
  EXPECT_EQ(r14->arity(), 1u);
  ASSERT_EQ(r14->branches().size(), 2u);
  EXPECT_EQ(r14->branches()[0].condition->to_string(), "id1 > 0");
  EXPECT_EQ(r14->branches()[0].outputs.size(), 3u);
  EXPECT_EQ(r14->branches()[0].outputs[0][0]->literal(), Value(1));
  EXPECT_TRUE(r14->branches()[1].is_else);
  EXPECT_EQ(r14->branches()[1].outputs[0][0]->literal(), Value(0));
}

TEST(Alg1, Fig2SteerReactionShape) {
  // R16 = replace [id1,'B13',v],[id2,'B15',v] by [id1,'B17',v]
  //       if id2 == 1  by 0 else
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  const Reaction* r16 = conv.program.find("R16");
  ASSERT_NE(r16, nullptr);
  EXPECT_EQ(r16->arity(), 2u);
  EXPECT_EQ(r16->patterns()[0], Pattern::tagged("id1", "B13", "v"));
  EXPECT_EQ(r16->patterns()[1], Pattern::tagged("id2", "B15", "v"));
  ASSERT_EQ(r16->branches().size(), 2u);
  EXPECT_EQ(r16->branches()[0].condition->to_string(), "id2 == 1");
  EXPECT_EQ(r16->branches()[0].outputs.size(), 1u);
  EXPECT_TRUE(r16->branches()[1].is_else);
  EXPECT_TRUE(r16->branches()[1].outputs.empty());  // by 0
}

TEST(Alg1, Fig2DecrementReactionShape) {
  // R18 = replace [id1,'B17',v] by [id1 - 1,'B11',v]
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  const Reaction* r18 = conv.program.find("R18");
  ASSERT_NE(r18, nullptr);
  ASSERT_EQ(r18->branches().size(), 1u);
  EXPECT_EQ(r18->branches()[0].condition, nullptr);
  EXPECT_EQ(r18->branches()[0].outputs[0][0]->to_string(), "id1 - 1");
  EXPECT_EQ(r18->branches()[0].outputs[0][2]->to_string(), "v");
}

TEST(Alg1, Fig2InitialMultisetMatchesPaper) {
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  EXPECT_EQ(conv.initial, paper::fig2_initial(3, 5, 100));
}

TEST(Alg1, Fig2ConvertedMatchesPaperListingBehaviour) {
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 100, false));
  const gamma::IndexedEngine eng;
  const auto converted = eng.run(conv.program, conv.initial);
  const auto listing = eng.run(paper::fig2_gamma(), paper::fig2_initial(3, 5, 100));
  EXPECT_EQ(converted.final_multiset, listing.final_multiset);
  EXPECT_TRUE(converted.final_multiset.empty());  // everything reacts away
}

TEST(Alg1, ShapeOptionsControlElementArity) {
  const auto pairs = dataflow_to_gamma(
      paper::fig1_graph(), {DfToGammaOptions::Shape::Pairs});
  EXPECT_EQ(pairs.initial.elements()[0].arity(), 2u);

  const auto triples = dataflow_to_gamma(
      paper::fig1_graph(), {DfToGammaOptions::Shape::Triples});
  EXPECT_EQ(triples.initial.elements()[0].arity(), 3u);

  EXPECT_THROW((void)dataflow_to_gamma(paper::fig2_graph(1, 1, 1, false),
                                       {DfToGammaOptions::Shape::Pairs}),
               TranslateError);
}

TEST(Alg1, TriplesShapeStillComputesFig1) {
  const auto conv = dataflow_to_gamma(paper::fig1_graph(),
                                      {DfToGammaOptions::Shape::Triples});
  const auto r = gamma::IndexedEngine().run(conv.program, conv.initial);
  EXPECT_EQ(r.final_multiset, (Multiset{Element::tagged(Value(0), "m", 0)}));
}

TEST(Alg1, ObservedFig2ResultMatchesDataflow) {
  // With the observer output, the surviving x_final element equals the
  // dataflow token, tag included.
  const dataflow::Graph g = paper::fig2_graph(4, 5, 100, true);
  const GammaConversion conv = dataflow_to_gamma(g);
  const auto r = gamma::IndexedEngine().run(conv.program, conv.initial);
  const auto observed = r.final_multiset.with_label("x_final");
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].value(), Value(120));
  EXPECT_EQ(observed[0].tag(), 5);  // exits at iteration z+1
}

TEST(Alg1, UnnamedNodesGetGeneratedNames) {
  dataflow::GraphBuilder b;
  auto c1 = b.constant(Value(1));
  auto c2 = b.constant(Value(2));
  b.output(b.arith(expr::BinOp::Add, c1, c2), "o");
  const auto conv = dataflow_to_gamma(std::move(b).build());
  EXPECT_EQ(conv.program.reaction_count(), 1u);
  EXPECT_EQ(conv.program.all_reactions()[0]->name()[0], 'R');
}

TEST(Alg1, DuplicateNodeNamesDisambiguated) {
  dataflow::GraphBuilder b;
  auto c1 = b.constant(Value(1));
  auto c2 = b.constant(Value(2));
  auto s1 = b.arith(expr::BinOp::Add, c1, c2, "same");
  auto s2 = b.arith(expr::BinOp::Mul, c1, c2, "same");
  b.output(s1, "o1");
  b.output(s2, "o2");
  const auto conv = dataflow_to_gamma(std::move(b).build());
  std::set<std::string> names;
  for (const auto* r : conv.program.all_reactions()) names.insert(r->name());
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace gammaflow::translate
