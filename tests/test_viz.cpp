// Viz tests: the DOT writers against golden files (one per graph kind, all
// inputs deterministic), and the HTML renderer's contract — stable DOM
// anchors, embedded JSON payload, and zero external fetches.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/runtime/step_loop.hpp"
#include "gammaflow/viz/viz.hpp"

namespace gammaflow {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string golden(const std::string& name) {
  return read_file(std::string(GF_REPO_DIR) + "/tests/golden/" + name);
}

/// The paper's Fig. 1 listing (examples/programs/fig1.gamma): three
/// reactions, two independent conflict classes merged by R3's feeds.
gamma::Program fig1_program() {
  return gamma::dsl::parse_program(
      read_file(std::string(GF_REPO_DIR) + "/examples/programs/fig1.gamma"));
}

gamma::Multiset fig1_initial() {
  gamma::Multiset m;
  m.add(gamma::Element({Value(1), Value("A1")}));
  m.add(gamma::Element({Value(5), Value("B1")}));
  m.add(gamma::Element({Value(3), Value("C1")}));
  m.add(gamma::Element({Value(2), Value("D1")}));
  return m;
}

analysis::InterferenceReport fig1_report(const gamma::Program& program) {
  analysis::InterferenceOptions opts;
  opts.seed = 1;
  return analysis::analyze_interference(program, fig1_initial(), opts);
}

// ------------------------------------------------------------------ DOT ---

TEST(VizDot, InterferenceMatchesGolden) {
  const gamma::Program program = fig1_program();
  std::ostringstream os;
  viz::write_interference_dot(os, program, fig1_report(program), "fig1");
  EXPECT_EQ(os.str(), golden("fig1_interference.dot"));
}

TEST(VizDot, ClassesMatchesGolden) {
  const gamma::Program program = fig1_program();
  std::ostringstream os;
  viz::write_classes_dot(os, program, fig1_report(program), "fig1");
  EXPECT_EQ(os.str(), golden("fig1_classes.dot"));
}

TEST(VizDot, ShardsMatchesGolden) {
  const gamma::Program program = fig1_program();
  std::ostringstream os;
  viz::write_shards_dot(os, program, fig1_report(program), "fig1");
  EXPECT_EQ(os.str(), golden("fig1_shards.dot"));
}

TEST(VizDot, TwoClassProgramShowsDisjointClusters) {
  // Two reactions on provably disjoint labels: two clusters, no edges.
  const gamma::Program program = gamma::dsl::parse_program(
      "Ra = replace [x, 'a'], [y, 'a'] by [x + y, 'a']\n"
      "Rb = replace [x, 'b'], [y, 'b'] by [x * y, 'b']");
  analysis::InterferenceOptions opts;
  opts.seed = 1;
  const auto report =
      analysis::analyze_interference(program, gamma::Multiset{}, opts);
  ASSERT_EQ(report.class_count, 2u);
  std::ostringstream os;
  viz::write_interference_dot(os, program, report, "two");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("cluster_class0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_class1"), std::string::npos);
  EXPECT_EQ(dot.find("compete"), std::string::npos);
  EXPECT_EQ(dot.find("feed"), std::string::npos);
}

TEST(VizDot, DeterministicAcrossWrites) {
  const gamma::Program program = fig1_program();
  const auto report = fig1_report(program);
  std::ostringstream a, b;
  viz::write_shards_dot(a, program, report, "t");
  viz::write_shards_dot(b, program, report, "t");
  EXPECT_EQ(a.str(), b.str());
}

// ----------------------------------------------------------------- HTML ---

/// Every anchor the embedded JS (and this smoke test) relies on.
void expect_anchors(const std::string& html) {
  for (const char* anchor :
       {"id=\"gf-graph\"", "id=\"gf-scrubber\"", "id=\"gf-store\"",
        "id=\"gf-provenance\"",
        "<script id=\"gf-data\" type=\"application/json\">"}) {
    EXPECT_NE(html.find(anchor), std::string::npos) << anchor;
  }
}

/// Self-contained means self-contained: no resource may leave the file.
void expect_no_external_fetches(const std::string& html) {
  for (const char* pattern : {"src=\"http", "href=\"http", "fetch(", "<link",
                              "@import", "XMLHttpRequest"}) {
    EXPECT_EQ(html.find(pattern), std::string::npos) << pattern;
  }
}

TEST(VizHtml, DataflowViewEmbedsReplayableJournal) {
  const dataflow::Graph g = paper::fig1_graph();
  obs::RunRecorder rec;
  dataflow::DfRunOptions opts;
  opts.record = &rec;
  (void)dataflow::Interpreter().run(g, opts, {});
  const obs::Journal journal = rec.take();

  viz::HtmlInputs inputs;
  inputs.title = "fig1";
  inputs.graph = &g;
  inputs.journal = &journal;
  std::ostringstream os;
  viz::write_html(os, inputs);
  const std::string html = os.str();

  expect_anchors(html);
  expect_no_external_fetches(html);
  EXPECT_NE(html.find("\"kind\":\"dataflow\""), std::string::npos);
  // The journal rides along verbatim (and was verified consistent above the
  // embedding, so the scrubber's round-replay reaches the final store).
  EXPECT_EQ(obs::verify_journal(journal), "");
  EXPECT_NE(html.find("\"journal\":{\"gf_journal\":1"), std::string::npos);
  // One SVG-able node entry per graph node.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_NE(html.find("\"key\":"), std::string::npos);
  }
}

TEST(VizHtml, GammaViewCarriesClassesAndJournal) {
  const gamma::Program program = fig1_program();
  const auto report = fig1_report(program);
  obs::RunRecorder rec;
  gamma::RunOptions opts;
  opts.record = &rec;
  const auto result =
      gamma::IndexedEngine().run(program, fig1_initial(), opts);
  const obs::Journal journal = rec.take();
  ASSERT_EQ(obs::replay_rounds(journal, journal.rounds.size()),
            runtime::store_counts(result.final_multiset));

  viz::HtmlInputs inputs;
  inputs.title = "fig1.gamma";
  inputs.program = &program;
  inputs.interference = &report;
  inputs.journal = &journal;
  std::ostringstream os;
  viz::write_html(os, inputs);
  const std::string html = os.str();

  expect_anchors(html);
  expect_no_external_fetches(html);
  EXPECT_NE(html.find("\"kind\":\"gamma\""), std::string::npos);
  EXPECT_NE(html.find("\"key\":\"R1\""), std::string::npos);
  EXPECT_NE(html.find("\"key\":\"R3\""), std::string::npos);
  EXPECT_NE(html.find("\"verdict\":"), std::string::npos);
}

TEST(VizHtml, NoJournalStillRendersAllAnchors) {
  const gamma::Program program = fig1_program();
  const auto report = fig1_report(program);
  viz::HtmlInputs inputs;
  inputs.title = "static only";
  inputs.program = &program;
  inputs.interference = &report;
  std::ostringstream os;
  viz::write_html(os, inputs);
  expect_anchors(os.str());
  expect_no_external_fetches(os.str());
  EXPECT_NE(os.str().find("\"journal\":null"), std::string::npos);
}

TEST(VizHtml, ScriptCloseSequenceIsDefused) {
  // An element string containing "</script>" must not terminate the data
  // block: the writer escapes the solidus ("<\/") inside the payload.
  obs::RunRecorder rec;
  rec.begin("test", "gamma", {{"[1, '</script><b>']", 1}});
  rec.finish("completed", {{"[1, '</script><b>']", 1}});
  const obs::Journal journal = rec.take();
  viz::HtmlInputs inputs;
  inputs.title = "evil";
  inputs.journal = &journal;
  std::ostringstream os;
  viz::write_html(os, inputs);
  const std::string html = os.str();
  const std::size_t data = html.find("<script id=\"gf-data\"");
  ASSERT_NE(data, std::string::npos);
  const std::size_t close = html.find("</script>", data);
  ASSERT_NE(close, std::string::npos);
  // The first real close tag arrives after the payload — the embedded
  // "</script>" text was rewritten to "<\/script>".
  EXPECT_NE(html.find("<\\/script>", data), std::string::npos);
  EXPECT_LT(html.find("<\\/script>", data), close);
}

}  // namespace
}  // namespace gammaflow
