// Graph structure: builder, validation, lookup, DOT export, text
// serialization round trip.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/dot.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/dataflow/serialize.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::dataflow {
namespace {

using expr::BinOp;

TEST(GraphBuilder, Fig1Structure) {
  const Graph g = paper::fig1_graph();
  EXPECT_EQ(g.node_count(), 8u);  // 4 const + 3 arith + 1 output
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_EQ(g.roots().size(), 4u);
  EXPECT_EQ(g.outputs().size(), 1u);
  ASSERT_TRUE(g.find("R3").has_value());
  EXPECT_EQ(g.node(*g.find("R3")).op, BinOp::Sub);
  ASSERT_TRUE(g.find_edge(Label("B2")).has_value());
  const Edge& b2 = g.edge(*g.find_edge(Label("B2")));
  EXPECT_EQ(b2.src, *g.find("R1"));
  EXPECT_EQ(b2.dst, *g.find("R3"));
}

TEST(GraphBuilder, AutoLabelsAreUnique) {
  GraphBuilder b;
  auto c1 = b.constant(Value(1));
  auto c2 = b.constant(Value(2));
  auto sum = b.arith(BinOp::Add, c1, c2);
  b.output(sum, "out");
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.edge_count(), 3u);
  std::set<std::string> labels;
  for (const Edge& e : g.edges()) labels.insert(e.label.str());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(GraphBuilder, RejectsWrongOperatorClass) {
  GraphBuilder b;
  EXPECT_THROW((void)b.arith(BinOp::Lt), GraphError);
  EXPECT_THROW((void)b.cmp(BinOp::Add), GraphError);
}

TEST(GraphBuilder, OutputRequiresName) {
  GraphBuilder b;
  EXPECT_THROW((void)b.output(std::string{}), GraphError);
}

TEST(GraphBuilder, ConnectValidatesEndpoints) {
  GraphBuilder b;
  auto c = b.constant(Value(1));
  const NodeId out = b.output("o");
  EXPECT_THROW((void)b.connect(c, 99, 0), GraphError);         // missing node
  EXPECT_THROW((void)b.connect(c, out, 5), GraphError);        // bad port
  EXPECT_THROW((void)b.connect({99, 0}, out, 0), GraphError);  // missing src
}

TEST(GraphValidate, UnconnectedInputPortFails) {
  GraphBuilder b;
  auto c = b.constant(Value(1));
  const NodeId add = b.arith(BinOp::Add);
  b.connect(c, add, 0);  // port 1 left dangling
  EXPECT_THROW((void)std::move(b).build(), GraphError);
}

TEST(GraphValidate, DuplicateEdgeLabelFails) {
  GraphBuilder b;
  auto c1 = b.constant(Value(1));
  auto c2 = b.constant(Value(2));
  const NodeId add = b.arith(BinOp::Add);
  b.connect(c1, add, 0, "dup");
  b.connect(c2, add, 1, "dup");
  const NodeId out = b.output("o");
  b.connect(GraphBuilder::out(add), out, 0);
  EXPECT_THROW((void)std::move(b).build(), GraphError);
}

TEST(GraphValidate, MergedInputPortIsLegal) {
  // Fig. 2 pattern: two producers feed one inctag input (A1 + loopback).
  GraphBuilder b;
  auto c1 = b.constant(Value(1));
  auto c2 = b.constant(Value(2));
  const NodeId inc = b.inctag();
  b.connect(c1, inc, 0, "A1");
  b.connect(c2, inc, 0, "A11");
  EXPECT_NO_THROW((void)std::move(b).build());
}

TEST(GraphBuilder, ImmediateNodesHaveArityOne) {
  GraphBuilder b;
  auto c = b.constant(Value(5));
  auto dec = b.arith_imm(BinOp::Sub, c, Value(std::int64_t{1}), "R18");
  b.output(dec, "o");
  const Graph g = std::move(b).build();
  const NodeId n = *g.find("R18");
  EXPECT_TRUE(g.node(n).has_immediate);
  EXPECT_EQ(input_arity(g.node(n)), 1u);
  EXPECT_EQ(input_arity(g.node(n).kind), 2u);  // kind default unchanged
}

TEST(GraphQueries, OutEdgesPerPort) {
  const Graph g = paper::fig2_graph(3, 5, 0, true);
  const NodeId r14 = *g.find("R14");
  EXPECT_EQ(g.out_edges(r14, 0).size(), 3u);  // B14, B15, B16
  const NodeId r17 = *g.find("R17");
  EXPECT_EQ(g.out_edges(r17, kSteerTrue).size(), 1u);
  EXPECT_EQ(g.out_edges(r17, kSteerFalse).size(), 1u);  // x_final
  const NodeId r15 = *g.find("R15");
  EXPECT_EQ(g.out_edges(r15, kSteerFalse).size(), 0u);  // discard
  EXPECT_TRUE(g.out_edges(999, 0).empty());
}

TEST(GraphQueries, FindIsAmbiguityAware) {
  GraphBuilder b;
  b.constant(Value(1), "dup");
  b.constant(Value(2), "dup");
  b.constant(Value(2), "unique");
  const Graph g = std::move(b).build();
  EXPECT_FALSE(g.find("dup").has_value());
  EXPECT_TRUE(g.find("unique").has_value());
  EXPECT_FALSE(g.find("missing").has_value());
}

TEST(Dot, ContainsShapesAndLabels) {
  const std::string dot = to_dot(paper::fig2_graph(3, 5, 0, true), "fig2");
  EXPECT_NE(dot.find("digraph \"fig2\""), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);  // steer
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);   // inctag
  EXPECT_NE(dot.find("shape=square"), std::string::npos);    // const
  EXPECT_NE(dot.find("taillabel=\"T\""), std::string::npos);
  EXPECT_NE(dot.find("taillabel=\"F\""), std::string::npos);
  EXPECT_NE(dot.find("B12"), std::string::npos);
}

TEST(Serialize, Fig1RoundTrip) {
  const Graph g = paper::fig1_graph();
  const std::string text = to_text(g);
  const Graph h = parse_text(text);
  EXPECT_EQ(to_text(h), text);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
}

TEST(Serialize, Fig2RoundTripPreservesImmediates) {
  const Graph g = paper::fig2_graph(4, 5, 100, true);
  const Graph h = parse_text(to_text(g));
  EXPECT_EQ(to_text(h), to_text(g));
  const NodeId r14 = *h.find("R14");
  EXPECT_TRUE(h.node(r14).has_immediate);
  EXPECT_EQ(h.node(r14).constant, Value(0));
}

TEST(Serialize, PreservesValueKinds) {
  GraphBuilder b;
  b.output(b.constant(Value(3.5), "r"), "o1");
  b.output(b.constant(Value("5"), "s"), "o2");
  b.output(b.constant(Value(5), "i"), "o3");
  b.output(b.constant(Value(true), "t"), "o4");
  const Graph g = std::move(b).build();
  const Graph h = parse_text(to_text(g));
  EXPECT_EQ(h.node(*h.find("r")).constant, Value(3.5));
  EXPECT_EQ(h.node(*h.find("s")).constant, Value("5"));  // quoted string
  EXPECT_EQ(h.node(*h.find("i")).constant, Value(5));    // bare int
  EXPECT_EQ(h.node(*h.find("t")).constant, Value(true));
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_text(""), ParseError);
  EXPECT_THROW((void)parse_text("bogus v1\n"), ParseError);
  EXPECT_THROW((void)parse_text("dataflow v1\nnode\n"), ParseError);
  EXPECT_THROW((void)parse_text("dataflow v1\nnode kind=marble\n"), ParseError);
  EXPECT_THROW((void)parse_text("dataflow v1\nwidget kind=const\n"), ParseError);
  EXPECT_THROW(
      (void)parse_text("dataflow v1\nnode kind=const value=1\nedge src=0\n"),
      ParseError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Graph g = parse_text(R"(
dataflow v1
# a constant flowing to an output
node kind=const value=7 name='c'

node kind=output name='o'
edge src=0 sport=0 dst=1 dport=0 label='e'
)");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
}

}  // namespace
}  // namespace gammaflow::dataflow
