// The runtime core (PR 5): the StepLoop/StopFlag/TraceSink primitives every
// engine is now a thin policy over, the shard planner's soundness rules, the
// sharded store, and — the point of sharing one scaffolding — cross-engine
// contracts: the same corpus is state-identical across all engines (cluster
// included), and the same stop condition classifies to the same Outcome
// everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/common/cancel.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/runtime/step_loop.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::runtime {
namespace {

using gamma::Element;
using gamma::Multiset;
using gamma::Program;

Program parse(const char* src) { return gamma::dsl::parse_program(src); }

Multiset ints(std::int64_t from, std::int64_t to) {
  Multiset m;
  for (std::int64_t i = from; i <= to; ++i) m.add(Element{Value(i)});
  return m;
}

// --- StepLoop / StopFlag / QuiescenceVote / InFlight / TraceSink ----------

TEST(StepLoopTest, BudgetPartialRecordsBudgetExhausted) {
  RunOptions o;
  o.limit_policy = LimitPolicy::Partial;
  StepLoop loop(o, 3, "test engine", "max_steps");
  EXPECT_TRUE(loop.admit(0));
  EXPECT_TRUE(loop.admit(2));
  EXPECT_FALSE(loop.admit(3));
  EXPECT_FALSE(loop.running());
  EXPECT_EQ(loop.outcome(), Outcome::BudgetExhausted);
  EXPECT_TRUE(loop.should_stop());
}

TEST(StepLoopTest, BudgetThrowKeepsTheHistoricalErrorText) {
  RunOptions o;
  StepLoop loop(o, 2, "test engine", "max_steps");
  try {
    (void)loop.admit(2);
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_STREQ(e.what(), "EngineError: test engine exceeded max_steps=2");
  }
}

TEST(StepLoopTest, CancelWinsAndIsSticky) {
  CancelToken token;
  token.cancel();
  RunOptions o;
  o.cancel = &token;
  StepLoop loop(o, 100, "test engine", "max_steps");
  EXPECT_TRUE(loop.should_stop());
  EXPECT_EQ(loop.outcome(), Outcome::Cancelled);
  token.reset();
  EXPECT_TRUE(loop.should_stop());  // sticky: the run already stopped
  loop.stop(Outcome::BudgetExhausted);  // first writer won
  EXPECT_EQ(loop.outcome(), Outcome::Cancelled);
}

TEST(StopFlagTest, FirstPublisherWins) {
  StopFlag flag;
  EXPECT_FALSE(flag.stopped());
  EXPECT_EQ(flag.outcome(), Outcome::Completed);
  flag.publish(Outcome::Completed);  // no-op: not a stop reason
  EXPECT_FALSE(flag.stopped());
  flag.publish(Outcome::DeadlineExceeded);
  flag.publish(Outcome::Cancelled);
  EXPECT_TRUE(flag.stopped());
  EXPECT_EQ(flag.outcome(), Outcome::DeadlineExceeded);
}

TEST(QuiescenceVoteTest, AllVotersAtOneVersionIsQuiet) {
  QuiescenceVote vote;
  std::uint64_t a = QuiescenceVote::kNone;
  std::uint64_t b = QuiescenceVote::kNone;
  EXPECT_FALSE(vote.quiet(7, a, 2));
  EXPECT_FALSE(vote.quiet(7, a, 2));  // double vote ignored
  EXPECT_TRUE(vote.quiet(7, b, 2));
}

TEST(QuiescenceVoteTest, VersionMoveRestartsTheVote) {
  QuiescenceVote vote;
  std::uint64_t a = QuiescenceVote::kNone;
  std::uint64_t b = QuiescenceVote::kNone;
  EXPECT_FALSE(vote.quiet(1, a, 2));
  EXPECT_FALSE(vote.quiet(2, b, 2));  // commit happened: vote restarts
  EXPECT_FALSE(vote.quiet(2, b, 2));
  EXPECT_TRUE(vote.quiet(2, a, 2));
}

TEST(InFlightTest, IdleOnlyAtZero) {
  InFlight in_flight;
  EXPECT_TRUE(in_flight.idle());
  in_flight.add(3);
  in_flight.sub();
  EXPECT_FALSE(in_flight.idle());
  in_flight.sub(2);
  EXPECT_TRUE(in_flight.idle());
}

TEST(TraceSinkTest, CapCountsDropsAndMergePreservesTheCap) {
  TraceSink<int> sink(true, 3);
  for (int i = 0; i < 5; ++i) {
    if (sink.admit()) sink.push(i);
  }
  EXPECT_EQ(sink.dropped(), 2u);

  TraceSink<int> worker(true, 3);
  for (int i = 10; i < 14; ++i) {
    if (worker.admit()) worker.push(i);
  }
  sink.merge(std::move(worker));
  const auto events = sink.take();
  EXPECT_EQ(events, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sink.dropped(), 6u);  // 2 local + 3 refused in merge + 1 theirs
}

TEST(TraceSinkTest, DisabledAdmitsNothingAndCountsNothing) {
  TraceSink<int> sink(false, 100);
  EXPECT_FALSE(sink.admit());
  EXPECT_EQ(sink.dropped(), 0u);
}

// --- plan_shards soundness rules ------------------------------------------

const char* kChains = R"(
  A = replace [x,'a'] by [x + 1,'a2']
  B = replace [x,'b'] by [x * 2,'b2']
  C = replace [x,'c'] by [x - 1,'c2']
)";

TEST(PlanShards, DisjointLabelledClassesShard) {
  const Program p = parse(kChains);
  const auto plan = plan_shards(
      p.stages()[0], {{"A", 0}, {"B", 1}, {"C", 2}});
  ASSERT_TRUE(plan.sharded);
  EXPECT_EQ(plan.shard_count, 3u);
  ASSERT_EQ(plan.reaction_shard.size(), 3u);
  // Each consumed label lands on its consumer's shard; 'a2' is produced but
  // never consumed — inert, so it stays unmapped and hash-routes anywhere.
  EXPECT_EQ(plan.label_shard.at("a"), plan.reaction_shard[0]);
  EXPECT_EQ(plan.label_shard.at("b"), plan.reaction_shard[1]);
  EXPECT_EQ(plan.label_shard.count("a2"), 0u);
  EXPECT_NE(plan.reaction_shard[0], plan.reaction_shard[1]);
}

TEST(PlanShards, RefusesPartialClassMaps) {
  const Program p = parse(kChains);
  EXPECT_FALSE(plan_shards(p.stages()[0], {{"A", 0}, {"B", 1}}).sharded);
  EXPECT_FALSE(plan_shards(p.stages()[0], {}).sharded);
}

TEST(PlanShards, RefusesASingleClass) {
  const Program p = parse(kChains);
  EXPECT_FALSE(
      plan_shards(p.stages()[0], {{"A", 0}, {"B", 0}, {"C", 0}}).sharded);
}

TEST(PlanShards, RefusesUnlabelledPatterns) {
  // Plain variables carry no label at field 1: routing would not be total.
  const Program p = parse("R1 = replace x, y by x + y\nR2 = replace x by x");
  EXPECT_FALSE(plan_shards(p.stages()[0], {{"R1", 0}, {"R2", 1}}).sharded);
}

TEST(PlanShards, RefusesALabelConsumedByTwoClasses) {
  // Both classes consume 'a' — contradicts class disjointness, so the
  // planner must refuse the hand-written map rather than misroute.
  const Program p = parse(R"(
    A = replace [x,'a'] by [x,'a2']
    B = replace [x,'a'] by [x,'b2']
  )");
  EXPECT_FALSE(plan_shards(p.stages()[0], {{"A", 0}, {"B", 1}}).sharded);
}

TEST(PlanShards, RefusesComputedOutputLabelsThatFeedBack) {
  // The produced label is not a literal: the planner cannot prove the feed
  // edge stays in-class.
  const Program p = parse(R"(
    A = replace [x,'a'], [y,'pick'] by [x,y]
    B = replace [x,'b'] by [x,'b2']
  )");
  EXPECT_FALSE(plan_shards(p.stages()[0], {{"A", 0}, {"B", 1}}).sharded);
}

TEST(PlanShards, AnalysisClassesShardKChains) {
  const Program p = parse(kChains);
  Multiset init;
  for (int v = 0; v < 4; ++v) {
    init.add(Element::labeled(Value(v), "a"));
    init.add(Element::labeled(Value(v), "b"));
    init.add(Element::labeled(Value(v), "c"));
  }
  const auto report = analysis::analyze_interference(p, init);
  const auto plan = plan_shards(p.stages()[0], report.engine_classes());
  EXPECT_TRUE(plan.sharded);
  EXPECT_EQ(plan.shard_count, 3u);
}

// --- ShardMap / ShardedStore ----------------------------------------------

TEST(ShardMapTest, HomeIsAHintRouteIsTotal) {
  const ShardMap map({{"a", 0}, {"b", 1}}, 2);
  const Element labelled = Element::labeled(Value(7), "b");
  const Element inert = Element{Value(7)};
  ASSERT_TRUE(map.home(labelled).has_value());
  EXPECT_EQ(*map.home(labelled), 1u);
  EXPECT_FALSE(map.home(inert).has_value());
  EXPECT_LT(map.route(inert), 2u);  // hash fallback still routes
}

TEST(ShardedStoreTest, PartitionRoundTripsAndVersionIsMonotone) {
  Multiset init;
  for (int v = 0; v < 5; ++v) {
    init.add(Element::labeled(Value(v), "a"));
    init.add(Element::labeled(Value(v), "b"));
  }
  init.add(Element{Value(99)});  // inert: hash-routed, must survive

  ShardedStore sharded(init, ShardMap({{"a", 0}, {"b", 1}}, 2));
  EXPECT_EQ(sharded.shard_count(), 2u);
  EXPECT_EQ(sharded.size(), 11u);
  EXPECT_EQ(sharded.to_multiset(), init);
  // Every 'a' element lives on shard 0, every 'b' on shard 1.
  EXPECT_GE(sharded.shard(0).store.size(), 5u);
  EXPECT_GE(sharded.shard(1).store.size(), 5u);

  const std::uint64_t v0 = sharded.version();
  sharded.shard(0).store.insert(Element::labeled(Value(50), "a"));
  EXPECT_GT(sharded.version(), v0);
}

// --- MatchPipeline ---------------------------------------------------------

TEST(MatchPipelineTest, ConstFindValidateCommitRoundTrip) {
  const Program p = parse("R = replace x, y by x + y where x <= y");
  gamma::Store store(ints(1, 3));
  const gamma::Reaction& r = p.stages()[0][0];

  const gamma::Store& cstore = store;
  auto match = MatchPipeline::find(cstore, r);
  ASSERT_TRUE(match.has_value());
  EXPECT_TRUE(MatchPipeline::validate(store, *match, expr::EvalMode::Ast));
  MatchPipeline::commit(store, *match);
  EXPECT_EQ(store.size(), 2u);

  // The committed ids are dead: the stale proposal must now fail validation.
  auto stale = *match;
  EXPECT_FALSE(MatchPipeline::validate(store, stale, expr::EvalMode::Ast));
}

TEST(MatchPipelineTest, ExhaustedSearchIsAFixedPointProof) {
  const Program p = parse("R = replace x, y by x where x < y");
  gamma::Store store(ints(4, 4));  // one element: arity-2 pattern cannot bind
  EXPECT_FALSE(MatchPipeline::find(store, p.stages()[0][0]).has_value());
}

// --- Cross-engine equivalence: one corpus, every engine --------------------

struct CorpusCase {
  const char* name;
  const char* src;
  Multiset initial;
};

std::vector<CorpusCase> corpus() {
  std::vector<CorpusCase> cases;
  cases.push_back({"sum", "R = replace x, y by x + y", ints(1, 40)});
  cases.push_back({"max", "R = replace x, y by x where x > y", ints(3, 30)});
  cases.push_back(
      {"sieve",
       "R = replace x, y by x where (y % x == 0) and (x > 1)", ints(2, 40)});
  Multiset chains;
  for (int v = 0; v < 20; ++v) {
    chains.add(Element::labeled(Value(v), "a"));
    chains.add(Element::labeled(Value(v), "b"));
    chains.add(Element::labeled(Value(v), "c"));
  }
  cases.push_back({"chains", kChains, std::move(chains)});
  return cases;
}

TEST(CrossEngine, CorpusIsStateIdenticalAcrossEveryEngine) {
  for (const CorpusCase& c : corpus()) {
    const Program p = parse(c.src);
    const auto report = analysis::analyze_interference(p, c.initial);

    const Multiset oracle =
        gamma::SequentialEngine().run(p, c.initial).final_multiset;

    gamma::RunOptions par;
    par.workers = 3;
    par.conflict_classes = report.engine_classes();
    gamma::RunOptions unsharded = par;
    unsharded.shard = false;

    EXPECT_EQ(gamma::IndexedEngine().run(p, c.initial).final_multiset, oracle)
        << c.name << ": indexed";
    EXPECT_EQ(gamma::ParallelEngine().run(p, c.initial, par).final_multiset,
              oracle)
        << c.name << ": parallel (sharded path eligible)";
    EXPECT_EQ(
        gamma::ParallelEngine().run(p, c.initial, unsharded).final_multiset,
        oracle)
        << c.name << ": parallel --no-shard";

    distrib::ClusterOptions copts;
    copts.nodes = 4;
    copts.label_affinity = report.label_affinity();
    const auto cluster = distrib::run_distributed(p, c.initial, copts);
    EXPECT_EQ(cluster.outcome, Outcome::Completed) << c.name;
    EXPECT_EQ(cluster.final_multiset, oracle) << c.name << ": cluster";
  }
}

TEST(CrossEngine, BatchMatchingIsUnobservableAcrossEveryEngine) {
  // The batch escape hatch must change nothing an engine returns: the same
  // corpus under columnar batch matching, `--no-batch` (scalar VM), and
  // `--no-compile` (AST walker) on every Gamma engine and the cluster.
  struct Mode {
    const char* name;
    bool compile;
    bool batch;
  };
  for (const CorpusCase& c : corpus()) {
    const Program p = parse(c.src);
    const auto report = analysis::analyze_interference(p, c.initial);
    const Multiset oracle =
        gamma::SequentialEngine().run(p, c.initial).final_multiset;

    for (const Mode m : {Mode{"batch", true, true},
                         Mode{"no-batch", true, false},
                         Mode{"ast", false, false}}) {
      gamma::RunOptions go;
      go.compile = m.compile;
      go.batch = m.batch;
      EXPECT_EQ(gamma::SequentialEngine().run(p, c.initial, go).final_multiset,
                oracle)
          << c.name << ": sequential " << m.name;
      EXPECT_EQ(gamma::IndexedEngine().run(p, c.initial, go).final_multiset,
                oracle)
          << c.name << ": indexed " << m.name;
      gamma::RunOptions par = go;
      par.workers = 3;
      par.conflict_classes = report.engine_classes();
      EXPECT_EQ(gamma::ParallelEngine().run(p, c.initial, par).final_multiset,
                oracle)
          << c.name << ": parallel " << m.name;
      distrib::ClusterOptions copts;
      copts.nodes = 4;
      copts.compile = m.compile;
      copts.batch = m.batch;
      copts.label_affinity = report.label_affinity();
      EXPECT_EQ(distrib::run_distributed(p, c.initial, copts).final_multiset,
                oracle)
          << c.name << ": cluster " << m.name;
    }
  }

  // The dataflow engines take the same knobs through DfRunOptions; Fig. 1's
  // converted firing rules are the cross-model workload.
  const dataflow::Graph g = paper::fig1_graph();
  const auto want = dataflow::Interpreter().run(g).outputs;
  for (const bool batch : {true, false}) {
    dataflow::DfRunOptions dfo;
    dfo.batch = batch;
    EXPECT_EQ(dataflow::Interpreter().run(g, dfo).outputs, want)
        << "interpreter batch=" << batch;
    dataflow::DfRunOptions par = dfo;
    par.workers = 3;
    EXPECT_EQ(dataflow::ParallelEngine().run(g, par).outputs, want)
        << "parallel batch=" << batch;
  }
}

TEST(CrossEngine, ConvertedDataflowGraphAgreesEverywhere) {
  // Fig. 1 through BOTH dataflow engines and, converted, through every Gamma
  // engine and the cluster: one program, six executions, one answer.
  const dataflow::Graph g = paper::fig1_graph();
  const auto df_a = dataflow::Interpreter().run(g);
  const auto df_b = dataflow::ParallelEngine().run(g);
  EXPECT_EQ(df_a.outputs, df_b.outputs);

  const auto conv = translate::dataflow_to_gamma(g);
  const Multiset oracle =
      gamma::SequentialEngine().run(conv.program, conv.initial).final_multiset;
  EXPECT_EQ(gamma::IndexedEngine().run(conv.program, conv.initial)
                .final_multiset,
            oracle);
  gamma::RunOptions par;
  par.workers = 3;
  EXPECT_EQ(gamma::ParallelEngine().run(conv.program, conv.initial, par)
                .final_multiset,
            oracle);
  distrib::ClusterOptions copts;
  copts.nodes = 3;
  EXPECT_EQ(distrib::run_distributed(conv.program, conv.initial, copts)
                .final_multiset,
            oracle);
}

// --- Cross-engine Outcome classification -----------------------------------
// The same stop condition must classify identically no matter which engine
// hits it — that is what sharing StepLoop/StopFlag buys.

std::vector<Outcome> gamma_outcomes_under(const gamma::RunOptions& base) {
  const Program p = parse("R = replace x by x + 1");  // non-terminating
  const Multiset m = ints(0, 0);
  std::vector<Outcome> outcomes;
  gamma::RunOptions opts = base;
  outcomes.push_back(gamma::SequentialEngine().run(p, m, opts).outcome);
  outcomes.push_back(gamma::IndexedEngine().run(p, m, opts).outcome);
  opts.workers = 3;
  outcomes.push_back(gamma::ParallelEngine().run(p, m, opts).outcome);
  return outcomes;
}

std::vector<Outcome> dataflow_outcomes_under(const dataflow::DfRunOptions& o) {
  // A long-running loop graph (counts far past any test deadline/budget).
  const dataflow::Graph g = paper::fig2_graph(10'000'000, 1, 20'000'000, false);
  std::vector<Outcome> outcomes;
  outcomes.push_back(dataflow::Interpreter().run(g, o).outcome);
  dataflow::DfRunOptions par = o;
  par.workers = 3;
  outcomes.push_back(dataflow::ParallelEngine().run(g, par).outcome);
  return outcomes;
}

Outcome cluster_outcome_under(const distrib::ClusterOptions& base) {
  const Program p = parse("R = replace x by x + 1");
  distrib::ClusterOptions opts = base;
  opts.nodes = 3;
  return distrib::run_distributed(p, ints(1, 6), opts).outcome;
}

TEST(CrossEngine, PreCancelledTokenClassifiesAsCancelledEverywhere) {
  CancelToken token;
  token.cancel();
  gamma::RunOptions go;
  go.cancel = &token;
  for (const Outcome o : gamma_outcomes_under(go)) {
    EXPECT_EQ(o, Outcome::Cancelled);
  }
  dataflow::DfRunOptions dfo;
  dfo.cancel = &token;
  for (const Outcome o : dataflow_outcomes_under(dfo)) {
    EXPECT_EQ(o, Outcome::Cancelled);
  }
  distrib::ClusterOptions co;
  co.cancel = &token;
  EXPECT_EQ(cluster_outcome_under(co), Outcome::Cancelled);
}

TEST(CrossEngine, DeadlineClassifiesAsDeadlineExceededEverywhere) {
  gamma::RunOptions go;
  go.deadline = 0.02;
  go.max_steps = ~std::uint64_t{0};
  for (const Outcome o : gamma_outcomes_under(go)) {
    EXPECT_EQ(o, Outcome::DeadlineExceeded);
  }
  dataflow::DfRunOptions dfo;
  dfo.deadline = 0.02;
  dfo.max_fires = ~std::uint64_t{0};
  for (const Outcome o : dataflow_outcomes_under(dfo)) {
    EXPECT_EQ(o, Outcome::DeadlineExceeded);
  }
  distrib::ClusterOptions co;
  co.deadline = 0.02;
  EXPECT_EQ(cluster_outcome_under(co), Outcome::DeadlineExceeded);
}

TEST(CrossEngine, BudgetPartialClassifiesAsBudgetExhaustedEverywhere) {
  gamma::RunOptions go;
  go.limit_policy = LimitPolicy::Partial;
  go.max_steps = 5;
  for (const Outcome o : gamma_outcomes_under(go)) {
    EXPECT_EQ(o, Outcome::BudgetExhausted);
  }
  dataflow::DfRunOptions dfo;
  dfo.limit_policy = LimitPolicy::Partial;
  dfo.max_fires = 5;
  for (const Outcome o : dataflow_outcomes_under(dfo)) {
    EXPECT_EQ(o, Outcome::BudgetExhausted);
  }
  distrib::ClusterOptions co;
  co.limit_policy = LimitPolicy::Partial;
  co.max_rounds = 2;
  EXPECT_EQ(cluster_outcome_under(co), Outcome::BudgetExhausted);
}

// --- Early-stop settlement under faults ------------------------------------

TEST(CrossEngine, ClusterSettlesInFlightTransfersOnEarlyStop) {
  // Sum chemistry conserves the total; stop mid-run (deadline) with an
  // actively faulty network and the settled partial state must still hold
  // the exact total — nothing lost on the wire, nothing double-counted.
  const Program p = parse("R = replace x, y by x + y");
  const Multiset init = ints(1, 120);
  std::int64_t expected = 0;
  for (const Element& e : init) expected += e.value().as_int();

  for (const std::uint64_t seed : {3u, 11u, 42u}) {
    distrib::ClusterOptions opts;
    opts.nodes = 5;
    opts.seed = seed;
    opts.fires_per_round = 1;  // converge slowly: the deadline wins
    opts.deadline = 0.005;
    opts.faults.loss = 0.2;
    opts.faults.duplication = 0.1;
    opts.faults.crash_rate = 0.05;
    const auto r = distrib::run_distributed(p, init, opts);
    std::int64_t total = 0;
    for (const Element& e : r.final_multiset) total += e.value().as_int();
    EXPECT_EQ(total, expected) << "seed " << seed << " outcome "
                               << to_string(r.outcome);
  }
}

TEST(CrossEngine, FaultySeedsStillClassifyOutcomesIdentically) {
  // Faults shake the schedule, never the classification: a completed faulty
  // run is Completed; a cancelled faulty run is Cancelled.
  const Program p = parse("R = replace x, y by x + y");
  const Multiset init = ints(1, 30);
  for (const std::uint64_t seed : {1u, 9u}) {
    distrib::ClusterOptions opts;
    opts.nodes = 4;
    opts.seed = seed;
    opts.faults.loss = 0.15;
    opts.faults.duplication = 0.1;
    const auto done = distrib::run_distributed(p, init, opts);
    EXPECT_EQ(done.outcome, Outcome::Completed) << seed;
    EXPECT_EQ(done.final_multiset, ints(465, 465)) << seed;

    CancelToken token;
    token.cancel();
    opts.cancel = &token;
    const auto stopped = distrib::run_distributed(p, init, opts);
    EXPECT_EQ(stopped.outcome, Outcome::Cancelled) << seed;
  }
}

}  // namespace
}  // namespace gammaflow::runtime
