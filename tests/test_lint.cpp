// Static Gamma checking (Structured Gamma's compile-time-checking spirit):
// label-flow findings on good and defective programs.
#include <gtest/gtest.h>

#include <sstream>

#include "gammaflow/analysis/lint.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::analysis {
namespace {

LintReport lint(const char* program, const gamma::Multiset& m = {}) {
  return lint_program(gamma::dsl::parse_program(program), m);
}

TEST(Lint, PaperFig1ProgramIsCleanExceptResultLabel) {
  const auto report =
      lint_program(paper::fig1_gamma(), paper::fig1_initial());
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 0u);
  // 'm' is produced and never consumed — exactly the program's output.
  const auto leaks = report.of("leaked-label");
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_NE(leaks[0].message.find("'m'"), std::string::npos);
  EXPECT_EQ(leaks[0].severity, Severity::Info);
}

TEST(Lint, PaperFig2ProgramIsClean) {
  const auto report =
      lint_program(paper::fig2_gamma(), paper::fig2_initial(3, 5, 100));
  EXPECT_EQ(report.errors(), 0u) << report;
  EXPECT_EQ(report.warnings(), 0u) << report;
}

TEST(Lint, ConvertedGraphsAreClean) {
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(3, 5, 0, true));
  const auto report = lint_program(conv.program, conv.initial);
  EXPECT_EQ(report.errors(), 0u) << report;
}

TEST(Lint, DeadReactionDetected) {
  const auto report = lint(
      "R = replace [x,'ghost'] by [x,'out']",
      gamma::Multiset{gamma::Element::labeled(Value(1), "seed")});
  const auto dead = report.of("dead-reaction");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].severity, Severity::Error);
  EXPECT_EQ(dead[0].reaction, "R");
  EXPECT_NE(dead[0].message.find("'ghost'"), std::string::npos);
}

TEST(Lint, SelfProducingLabelIsNotDead) {
  // 'a' -> 'a' chains keep themselves alive.
  const auto report = lint("R = replace [x,'a'] by [x - 1,'a'] if x > 0");
  EXPECT_TRUE(report.of("dead-reaction").empty()) << report;
}

TEST(Lint, GuaranteedDivergenceDetected) {
  const auto report =
      lint("R = replace x by [x + 1], [x + 1]",
           gamma::Multiset{gamma::Element{Value(0)}});
  const auto div = report.of("guaranteed-divergence");
  ASSERT_EQ(div.size(), 1u);
  EXPECT_EQ(div[0].severity, Severity::Error);
}

TEST(Lint, GuardedGrowthIsNotFlagged) {
  // Growth behind a condition can reach a fixed point (tested elsewhere).
  const auto report =
      lint("R = replace x by [x - 1], [x - 1] where x > 0");
  EXPECT_TRUE(report.of("guaranteed-divergence").empty()) << report;
}

TEST(Lint, ShrinkingUnconditionalIsNotFlagged) {
  const auto report = lint("R = replace x, y by x + y");
  EXPECT_TRUE(report.of("guaranteed-divergence").empty()) << report;
}

TEST(Lint, ConstantConditionDetected) {
  const auto report = lint(R"(
    R = replace [x,'a'] by [x,'b'] if 1 < 2
  )");
  const auto cc = report.of("constant-condition");
  ASSERT_EQ(cc.size(), 1u);
  EXPECT_NE(cc[0].message.find("always true"), std::string::npos);
}

TEST(Lint, UnusedBinderDetected) {
  // 'y' is consumed for synchronization only.
  const auto report = lint("R = replace [x,'a'], [y,'b'] by [x,'c']");
  const auto ub = report.of("unused-binder");
  ASSERT_EQ(ub.size(), 1u);
  EXPECT_NE(ub[0].message.find("'y'"), std::string::npos);
  EXPECT_EQ(ub[0].severity, Severity::Info);
}

TEST(Lint, RepeatedBinderCountsAsUsed) {
  // `replace x, x by [x]` — the repeat IS the point (equality constraint).
  const auto report = lint("R = replace x, x by [x]");
  EXPECT_TRUE(report.of("unused-binder").empty()) << report;
}

TEST(Lint, SteerByZeroElseHasNoUnusedFindings) {
  // The converter's steer shape: id2 is read by the condition.
  const auto report = lint(R"(
    R = replace [id1,'D',v], [id2,'C',v]
        by [id1,'T',v] if id2 == 1
        by 0 else
  )");
  EXPECT_TRUE(report.of("unused-binder").empty()) << report;
}

TEST(Lint, WildcardConsumersSuppressLeakFindings) {
  // An unconstrained label-variable consumer might take anything, so no
  // label can be declared leaked.
  const auto report = lint(R"(
    P = replace [x, 'in'] by [x, 'sink']
    Sweep = replace [x, l] by 0 where x > 1000
  )");
  EXPECT_TRUE(report.of("leaked-label").empty()) << report;
}

TEST(Lint, ConstrainedLabelVariableIsNotWildcard) {
  // A label variable constrained to 'a' admits only 'a': 'sink' leaks.
  const auto report = lint(R"(
    R = replace [x, l, v] by [x, 'sink', v + 1] if l == 'a'
  )",
                           gamma::Multiset{gamma::Element::tagged(Value(1), "a", 0)});
  const auto leaks = report.of("leaked-label");
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_NE(leaks[0].message.find("'sink'"), std::string::npos);
}

TEST(Lint, CleanReportHelpers) {
  const auto report = lint("R = replace x, y by x + y");
  EXPECT_EQ(report.errors(), 0u);
  // min-style reduction over unlabeled elements: nothing to say.
  EXPECT_TRUE(report.of("dead-reaction").empty());
}

TEST(Lint, ReportPrintsReadably) {
  const auto report = lint(
      "R = replace [x,'ghost'] by [x,'out']");
  std::ostringstream os;
  os << report;
  EXPECT_NE(os.str().find("error [dead-reaction] R:"), std::string::npos);
}

}  // namespace
}  // namespace gammaflow::analysis
