// Engine semantics, parameterized over all three implementations: classic
// Gamma programs (min, max, gcd, sum, sieve, sort), termination, fairness,
// step limits, traces, sequential stages.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"

namespace gammaflow::gamma {
namespace {

enum class Kind { Sequential, Indexed, Parallel };

std::unique_ptr<Engine> make_engine(Kind k) {
  switch (k) {
    case Kind::Sequential: return std::make_unique<SequentialEngine>();
    case Kind::Indexed: return std::make_unique<IndexedEngine>();
    case Kind::Parallel: return std::make_unique<ParallelEngine>();
  }
  return nullptr;
}

class EngineSuite : public ::testing::TestWithParam<Kind> {
 protected:
  RunResult run(const Program& p, const Multiset& m, std::uint64_t seed = 1) {
    RunOptions opts;
    opts.seed = seed;
    opts.workers = 3;
    return make_engine(GetParam())->run(p, m, opts);
  }
};

Multiset ints(std::initializer_list<std::int64_t> values) {
  Multiset m;
  for (const auto v : values) m.add(Element{Value(v)});
  return m;
}

TEST_P(EngineSuite, TraceLimitCapsRecordingWithoutChangingTheRun) {
  // 31 elements => 30 firings; a limit of 5 keeps the first 5 events and
  // counts the rest as dropped, while execution itself is unaffected.
  const Program p = dsl::parse_program("Rsum = replace x, y by x + y");
  Multiset m;
  std::int64_t total = 0;
  for (std::int64_t i = 1; i <= 31; ++i) {
    m.add(Element{Value(i)});
    total += i;
  }
  RunOptions opts;
  opts.workers = 3;
  opts.record_trace = true;
  opts.trace_limit = 5;
  const auto r = make_engine(GetParam())->run(p, m, opts);
  EXPECT_EQ(r.final_multiset, ints({total}));
  EXPECT_EQ(r.steps, 30u);
  EXPECT_EQ(r.trace.size(), 5u);
  EXPECT_EQ(r.trace_dropped, 25u);
}

TEST_P(EngineSuite, DefaultTraceLimitRecordsEverything) {
  const Program p = dsl::parse_program("Rsum = replace x, y by x + y");
  RunOptions opts;
  opts.workers = 3;
  opts.record_trace = true;
  const auto r = make_engine(GetParam())->run(p, ints({1, 2, 3, 4, 5}), opts);
  EXPECT_EQ(r.trace.size(), 4u);
  EXPECT_EQ(r.trace_dropped, 0u);
}

TEST_P(EngineSuite, MinElement) {
  // Eq. (2): replace x, y by x where x < y.
  const Program p = dsl::parse_program("Rmin = replace x, y by x where x < y");
  const auto r = run(p, ints({5, 3, 9, 1, 7, 4, 8}));
  EXPECT_EQ(r.final_multiset, ints({1}));
  EXPECT_EQ(r.steps, 6u);  // each firing removes exactly one element
}

TEST_P(EngineSuite, MaxElement) {
  const Program p = dsl::parse_program("Rmax = replace x, y by x where x > y");
  const auto r = run(p, ints({5, 3, 9, 1, 7}));
  EXPECT_EQ(r.final_multiset, ints({9}));
}

TEST_P(EngineSuite, SumReduction) {
  const Program p = dsl::parse_program("Rsum = replace x, y by x + y");
  const auto r = run(p, ints({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(r.final_multiset, ints({55}));
}

TEST_P(EngineSuite, GcdOfMultiset) {
  // Classic Gamma gcd: replace unequal pair by (difference, smaller).
  const Program p = dsl::parse_program(
      "Rgcd = replace x, y by [x - y], [y] where x > y");
  const auto r = run(p, ints({12, 18, 30}));
  // Fixed point: all elements equal gcd = 6 (three of them).
  EXPECT_EQ(r.final_multiset, ints({6, 6, 6}));
}

TEST_P(EngineSuite, SieveRemovesMultiples) {
  // Primes: replace x, y by y where y % x == 0 and x > 1 keeps... classic
  // form: delete y when x divides y.
  const Program p = dsl::parse_program(
      "Rsieve = replace x, y by [x] where (y % x == 0) and (x > 1)");
  Multiset m;
  for (std::int64_t i = 2; i <= 30; ++i) m.add(Element{Value(i)});
  const auto r = run(p, m);
  EXPECT_EQ(r.final_multiset, ints({2, 3, 5, 7, 11, 13, 17, 19, 23, 29}));
}

TEST_P(EngineSuite, EmptyMultisetIsImmediateFixpoint) {
  const Program p = dsl::parse_program("R = replace x, y by x where x < y");
  const auto r = run(p, Multiset{});
  EXPECT_TRUE(r.final_multiset.empty());
  EXPECT_EQ(r.steps, 0u);
}

TEST_P(EngineSuite, DisabledReactionLeavesMultisetUntouched) {
  // Γ(...)(M) = M when no condition holds (Eq. (1) base case).
  const Program p = dsl::parse_program("R = replace x, y by x where x < y");
  const auto r = run(p, ints({4, 4, 4}));
  EXPECT_EQ(r.final_multiset, ints({4, 4, 4}));
  EXPECT_EQ(r.steps, 0u);
}

TEST_P(EngineSuite, ParallelReactionsBothContribute) {
  // Two reactions over disjoint labels run in the same stage.
  const Program p = dsl::parse_program(R"(
    Ra = replace [x, 'a'], [y, 'a'] by [x + y, 'a']
    Rb = replace [x, 'b'], [y, 'b'] by [x * y, 'b']
  )");
  Multiset m;
  for (int i = 1; i <= 4; ++i) {
    m.add(Element::labeled(Value(i), "a"));
    m.add(Element::labeled(Value(i), "b"));
  }
  const auto r = run(p, m);
  const Multiset expected{Element::labeled(Value(10), "a"),
                          Element::labeled(Value(24), "b")};
  EXPECT_EQ(r.final_multiset, expected);
  EXPECT_EQ(r.fires_by_reaction.at("Ra"), 3u);
  EXPECT_EQ(r.fires_by_reaction.at("Rb"), 3u);
}

TEST_P(EngineSuite, SequentialStagesRunInOrder) {
  // Stage 1 squares singles into pairs; stage 2 sums pairs. With '|' instead
  // of ';' the result would differ — this pins the staged fixpoint order.
  const Program p = dsl::parse_program(R"(
    Rsq = replace [x, 'in'] by [x * x, 'mid'] ;
    Rsum = replace [x, 'mid'], [y, 'mid'] by [x + y, 'mid']
  )");
  Multiset m{Element::labeled(Value(1), "in"), Element::labeled(Value(2), "in"),
             Element::labeled(Value(3), "in")};
  const auto r = run(p, m);
  EXPECT_EQ(r.final_multiset, (Multiset{Element::labeled(Value(14), "mid")}));
}

TEST_P(EngineSuite, MaxStepsGuardThrows) {
  // Non-terminating: x -> x+1 forever.
  const Program p = dsl::parse_program("R = replace x by x + 1");
  RunOptions opts;
  opts.max_steps = 100;
  opts.workers = 3;
  EXPECT_THROW((void)make_engine(GetParam())->run(p, ints({0}), opts),
               EngineError);
}

TEST_P(EngineSuite, GrowingProgramReachesFixpointViaGuard) {
  // x -> x-1 twice while x > 0: grows then terminates.
  const Program p = dsl::parse_program(
      "R = replace x by [x - 1], [x - 1] where x > 0");
  const auto r = run(p, ints({3}));
  // 1 -> 2 -> 4 -> 8 leaves of value 0.
  EXPECT_EQ(r.final_multiset, ints({0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST_P(EngineSuite, DeterministicResultAcrossSeeds) {
  // Sum is confluent: any firing order converges to the same multiset.
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  const Multiset m = ints({3, 1, 4, 1, 5, 9, 2, 6});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(run(p, m, seed).final_multiset, ints({31}));
  }
}

TEST_P(EngineSuite, FireCountsSumToSteps) {
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  const auto r = run(p, ints({1, 2, 3, 4, 5}));
  std::uint64_t total = 0;
  for (const auto& [name, n] : r.fires_by_reaction) total += n;
  EXPECT_EQ(total, r.steps);
  EXPECT_EQ(r.steps, 4u);
}

// ---------------------------------------------------------------------------
// Cooperative stopping: deadline, cancellation, and budget with
// LimitPolicy::Partial must all return a VALID partial multiset with
// RunResult::outcome saying why — never throw, never hang a worker.
// ---------------------------------------------------------------------------

TEST_P(EngineSuite, DeadlineExceededReturnsPartialState) {
  // Non-terminating chemistry: only the deadline can end this run.
  const Program p = dsl::parse_program("R = replace x by x + 1");
  RunOptions opts;
  opts.workers = 3;
  opts.max_steps = ~std::uint64_t{0};  // budget out of the picture
  opts.deadline = 0.02;
  const auto r = make_engine(GetParam())->run(p, ints({0}), opts);
  EXPECT_EQ(r.outcome, Outcome::DeadlineExceeded);
  // The partial state is real: one element, rewritten some number of times.
  ASSERT_EQ(r.final_multiset.size(), 1u);
  EXPECT_GE(r.final_multiset.elements()[0].value().as_int(), 0);
}

TEST_P(EngineSuite, PreCancelledTokenReturnsInitialState) {
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  CancelToken token;
  token.cancel();
  RunOptions opts;
  opts.workers = 3;
  opts.cancel = &token;
  const Multiset m = ints({1, 2, 3, 4});
  const auto r = make_engine(GetParam())->run(p, m, opts);
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.final_multiset, m);
}

TEST_P(EngineSuite, CancelFromAnotherThreadStopsTheRun) {
  const Program p = dsl::parse_program("R = replace x by x + 1");
  CancelToken token;
  RunOptions opts;
  opts.workers = 3;
  opts.max_steps = ~std::uint64_t{0};
  opts.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.cancel();
  });
  const auto r = make_engine(GetParam())->run(p, ints({0}), opts);
  canceller.join();
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_EQ(r.final_multiset.size(), 1u);
}

TEST_P(EngineSuite, BudgetWithPartialPolicyReturnsInsteadOfThrowing) {
  const Program p = dsl::parse_program("R = replace x by x + 1");
  RunOptions opts;
  opts.workers = 3;
  opts.max_steps = 25;
  opts.limit_policy = LimitPolicy::Partial;
  const auto r = make_engine(GetParam())->run(p, ints({0}), opts);
  EXPECT_EQ(r.outcome, Outcome::BudgetExhausted);
  EXPECT_LE(r.steps, 25u);
  ASSERT_EQ(r.final_multiset.size(), 1u);
  EXPECT_EQ(r.final_multiset.elements()[0].value(),
            Value(static_cast<std::int64_t>(r.steps)));
}

TEST_P(EngineSuite, CompletedRunsReportCompletedOutcome) {
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  const auto r = run(p, ints({1, 2, 3}));
  EXPECT_EQ(r.outcome, Outcome::Completed);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineSuite,
                         ::testing::Values(Kind::Sequential, Kind::Indexed,
                                           Kind::Parallel),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case Kind::Sequential: return "Sequential";
                             case Kind::Indexed: return "Indexed";
                             case Kind::Parallel: return "Parallel";
                           }
                           return "Unknown";
                         });

// ---- engine-specific behaviours ----

TEST(SequentialEngine, TraceRecordsEveryFiring) {
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  RunOptions opts;
  opts.record_trace = true;
  const auto r = SequentialEngine().run(p, Multiset{Element{Value(1)},
                                                    Element{Value(2)},
                                                    Element{Value(3)}},
                                        opts);
  ASSERT_EQ(r.trace.size(), 2u);
  for (const FireEvent& ev : r.trace) {
    EXPECT_EQ(ev.reaction, "R");
    EXPECT_EQ(ev.consumed.size(), 2u);
    EXPECT_EQ(ev.produced.size(), 1u);
  }
  // Trace replays to the final multiset.
  EXPECT_EQ(r.trace.back().produced[0], Element{Value(6)});
}

TEST(SequentialEngine, UniformChoiceVariesWithSeed) {
  // First firing of the min program differs across seeds (several enabled
  // matches exist) — evidence the Eq. (1) "let x1..xn" choice is random.
  const Program p = dsl::parse_program("R = replace x, y by x where x < y");
  const Multiset m{Element{Value(1)}, Element{Value(2)}, Element{Value(3)},
                   Element{Value(4)}};
  std::set<std::string> first_consumed;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    RunOptions opts;
    opts.seed = seed;
    opts.record_trace = true;
    const auto r = SequentialEngine().run(p, m, opts);
    ASSERT_FALSE(r.trace.empty());
    first_consumed.insert(r.trace[0].consumed[0].to_string() +
                          r.trace[0].consumed[1].to_string());
  }
  EXPECT_GT(first_consumed.size(), 2u);
}

TEST(IndexedEngine, TraceStagesAreMonotone) {
  const Program p = dsl::parse_program(R"(
    A = replace [x,'p'] by [x,'q'] ;
    B = replace [x,'q'] by [x,'r']
  )");
  RunOptions opts;
  opts.record_trace = true;
  const auto r = IndexedEngine().run(
      p, Multiset{Element::labeled(Value(1), "p")}, opts);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].stage, 0u);
  EXPECT_EQ(r.trace[1].stage, 1u);
  EXPECT_EQ(r.final_multiset, (Multiset{Element::labeled(Value(1), "r")}));
}

TEST(ParallelEngine, ManyWorkersConvergeOnLargeMultiset) {
  const Program p = dsl::parse_program("R = replace x, y by x + y");
  Multiset m;
  std::int64_t expected = 0;
  for (std::int64_t i = 1; i <= 500; ++i) {
    m.add(Element{Value(i)});
    expected += i;
  }
  RunOptions opts;
  opts.workers = 4;
  const auto r = ParallelEngine().run(p, m, opts);
  EXPECT_EQ(r.final_multiset, (Multiset{Element{Value(expected)}}));
  EXPECT_EQ(r.steps, 499u);
}

TEST(ParallelEngine, SingleWorkerDegeneratesGracefully) {
  const Program p = dsl::parse_program("R = replace x, y by x where x < y");
  RunOptions opts;
  opts.workers = 1;
  const auto r = ParallelEngine().run(
      p, Multiset{Element{Value(2)}, Element{Value(1)}}, opts);
  EXPECT_EQ(r.final_multiset, (Multiset{Element{Value(1)}}));
}

}  // namespace
}  // namespace gammaflow::gamma
