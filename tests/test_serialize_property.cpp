// Serialization properties over generated graphs: text round-trips are
// exact, parsed graphs execute identically, DOT output is well-formed.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/dot.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/dataflow/serialize.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/paper/figures.hpp"

namespace gammaflow::dataflow {
namespace {

class SerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperty, RandomExpressionGraphsRoundTripExactly) {
  const Graph g = paper::random_expression_graph(16, GetParam());
  const std::string text = to_text(g);
  const Graph h = parse_text(text);
  EXPECT_EQ(to_text(h), text);
  EXPECT_EQ(Interpreter().run(h).single_output("m"),
            Interpreter().run(g).single_output("m"));
}

TEST_P(SerializeProperty, CompiledProgramsRoundTripExactly) {
  const std::string source = paper::random_source_program(GetParam());
  const Graph g = frontend::compile_source(source);
  const Graph h = parse_text(to_text(g));
  EXPECT_EQ(to_text(h), to_text(g)) << source;
  const auto a = Interpreter().run(g);
  const auto b = Interpreter().run(h);
  for (const auto& [name, tokens] : a.outputs) {
    EXPECT_EQ(b.output_values(name), a.output_values(name)) << name;
  }
}

TEST_P(SerializeProperty, DotOutputIsBalancedAndComplete) {
  const Graph g = paper::random_expression_graph(8, GetParam());
  const std::string dot = to_dot(g);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  // one node line per node, one edge line per edge
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(dot.begin(), dot.end(), '[')),
            g.node_count() + g.edge_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty,
                         ::testing::Values(3, 7, 21, 77, 301));

TEST(SerializeEdgeCases, EmptyGraphRoundTrips) {
  GraphBuilder b;
  const Graph g = std::move(b).build();
  const Graph h = parse_text(to_text(g));
  EXPECT_EQ(h.node_count(), 0u);
  EXPECT_EQ(h.edge_count(), 0u);
}

TEST(SerializeEdgeCases, NamesWithSpacesSurvive) {
  GraphBuilder b;
  b.output(b.constant(Value("hello world"), "the input"), "an output");
  const Graph h = parse_text(to_text(std::move(b).build()));
  EXPECT_TRUE(h.find("the input").has_value());
  EXPECT_EQ(h.node(*h.find("the input")).constant, Value("hello world"));
}

TEST(SerializeEdgeCases, NegativeAndRealConstants) {
  GraphBuilder b;
  b.output(b.constant(Value(-42), "ni"), "o1");
  b.output(b.constant(Value(-2.5), "nr"), "o2");
  const Graph h = parse_text(to_text(std::move(b).build()));
  EXPECT_EQ(h.node(*h.find("ni")).constant, Value(-42));
  EXPECT_EQ(h.node(*h.find("nr")).constant, Value(-2.5));
}

}  // namespace
}  // namespace gammaflow::dataflow
