// Expression IR: construction, printing, equality, free variables,
// evaluation (incl. short-circuit semantics), environments.
#include <gtest/gtest.h>

#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/expr/eval.hpp"

namespace gammaflow::expr {
namespace {

TEST(ExprAst, LiteralNode) {
  auto e = Expr::lit(Value(5));
  EXPECT_EQ(e->kind(), Expr::Kind::Literal);
  EXPECT_EQ(e->literal(), Value(5));
  EXPECT_EQ(e->size(), 1u);
  EXPECT_TRUE(e->free_vars().empty());
}

TEST(ExprAst, VarNode) {
  auto e = Expr::var("id1");
  EXPECT_EQ(e->kind(), Expr::Kind::Var);
  EXPECT_EQ(e->var(), "id1");
  EXPECT_EQ(e->free_vars(), std::set<std::string>{"id1"});
}

TEST(ExprAst, BinaryTreeStructure) {
  auto e = Expr::binary(BinOp::Sub,
                        Expr::binary(BinOp::Add, Expr::var("x"), Expr::var("y")),
                        Expr::binary(BinOp::Mul, Expr::var("k"), Expr::var("j")));
  EXPECT_EQ(e->kind(), Expr::Kind::Binary);
  EXPECT_EQ(e->bin_op(), BinOp::Sub);
  EXPECT_EQ(e->size(), 7u);
  EXPECT_EQ(e->free_vars(), (std::set<std::string>{"j", "k", "x", "y"}));
}

TEST(ExprAst, OperatorSugar) {
  auto e = (var("a") + var("b")) * lit(Value(2));
  EXPECT_EQ(e->to_string(), "(a + b) * 2");
}

TEST(ExprAst, PrintingMinimizesParens) {
  // Precedence-aware: multiplication binds tighter than addition.
  auto e1 = Expr::binary(BinOp::Add, Expr::var("a"),
                         Expr::binary(BinOp::Mul, Expr::var("b"), Expr::var("c")));
  EXPECT_EQ(e1->to_string(), "a + b * c");
  auto e2 = Expr::binary(BinOp::Mul,
                         Expr::binary(BinOp::Add, Expr::var("a"), Expr::var("b")),
                         Expr::var("c"));
  EXPECT_EQ(e2->to_string(), "(a + b) * c");
}

TEST(ExprAst, PrintingRespectsLeftAssociativity) {
  // (a - b) - c prints without parens; a - (b - c) needs them.
  auto left = Expr::binary(BinOp::Sub,
                           Expr::binary(BinOp::Sub, Expr::var("a"), Expr::var("b")),
                           Expr::var("c"));
  EXPECT_EQ(left->to_string(), "a - b - c");
  auto right = Expr::binary(BinOp::Sub, Expr::var("a"),
                            Expr::binary(BinOp::Sub, Expr::var("b"), Expr::var("c")));
  EXPECT_EQ(right->to_string(), "a - (b - c)");
}

TEST(ExprAst, PrintingLogicalAndUnary) {
  auto e = Expr::binary(
      BinOp::Or,
      Expr::binary(BinOp::Eq, Expr::var("x"), Expr::lit(Value("A1"))),
      Expr::binary(BinOp::Eq, Expr::var("x"), Expr::lit(Value("A11"))));
  EXPECT_EQ(e->to_string(), "x == 'A1' or x == 'A11'");
  auto n = Expr::unary(UnOp::Not, Expr::var("p"));
  EXPECT_EQ(n->to_string(), "not p");
  auto m = Expr::unary(UnOp::Neg, Expr::var("p"));
  EXPECT_EQ(m->to_string(), "-p");
}

TEST(ExprAst, StructuralEquality) {
  auto a = Expr::binary(BinOp::Add, Expr::var("x"), Expr::lit(Value(1)));
  auto b = Expr::binary(BinOp::Add, Expr::var("x"), Expr::lit(Value(1)));
  auto c = Expr::binary(BinOp::Add, Expr::var("y"), Expr::lit(Value(1)));
  auto d = Expr::binary(BinOp::Sub, Expr::var("x"), Expr::lit(Value(1)));
  EXPECT_TRUE(equal(a, b));
  EXPECT_FALSE(equal(a, c));
  EXPECT_FALSE(equal(a, d));
  EXPECT_TRUE(equal(a, a));
  EXPECT_FALSE(equal(a, nullptr));
}

TEST(ExprAst, OpClassification) {
  EXPECT_TRUE(is_arithmetic(BinOp::Add));
  EXPECT_TRUE(is_arithmetic(BinOp::Mod));
  EXPECT_FALSE(is_arithmetic(BinOp::Lt));
  EXPECT_TRUE(is_comparison(BinOp::Eq));
  EXPECT_FALSE(is_comparison(BinOp::And));
  EXPECT_TRUE(is_logical(BinOp::Or));
  EXPECT_FALSE(is_logical(BinOp::Ne));
}

TEST(Env, BindAndLookup) {
  Env env;
  env.bind("x", Value(3));
  env.bind("y", Value("s"));
  EXPECT_EQ(env.lookup("x"), Value(3));
  EXPECT_EQ(env.lookup("y"), Value("s"));
  EXPECT_TRUE(env.contains("x"));
  EXPECT_FALSE(env.contains("z"));
  EXPECT_THROW((void)env.lookup("z"), ProgramError);
}

TEST(Env, RebindOverwrites) {
  Env env;
  env.bind("x", Value(1));
  env.bind("x", Value(2));
  EXPECT_EQ(env.lookup("x"), Value(2));
  EXPECT_EQ(env.size(), 1u);
}

TEST(Eval, Fig1Expression) {
  // m = (x + y) - (k * j) with the paper's values: (1+5)-(3*2) = 0.
  auto e = Expr::binary(BinOp::Sub,
                        Expr::binary(BinOp::Add, Expr::var("x"), Expr::var("y")),
                        Expr::binary(BinOp::Mul, Expr::var("k"), Expr::var("j")));
  Env env;
  env.bind("x", Value(1));
  env.bind("y", Value(5));
  env.bind("k", Value(3));
  env.bind("j", Value(2));
  EXPECT_EQ(eval(e, env), Value(0));
}

TEST(Eval, UnboundVariableThrows) {
  Env env;
  EXPECT_THROW((void)eval(Expr::var("nope"), env), ProgramError);
}

TEST(Eval, ComparisonProducesBool) {
  Env env;
  env.bind("a", Value(3));
  EXPECT_EQ(eval(Expr::binary(BinOp::Gt, Expr::var("a"), Expr::lit(Value(0))), env),
            Value(true));
}

TEST(Eval, ShortCircuitAnd) {
  // rhs would throw (unbound), but lhs false short-circuits.
  Env env;
  env.bind("p", Value(false));
  auto e = Expr::binary(BinOp::And, Expr::var("p"), Expr::var("unbound"));
  EXPECT_EQ(eval(e, env), Value(false));
}

TEST(Eval, ShortCircuitOr) {
  Env env;
  env.bind("p", Value(true));
  auto e = Expr::binary(BinOp::Or, Expr::var("p"), Expr::var("unbound"));
  EXPECT_EQ(eval(e, env), Value(true));
}

TEST(Eval, UnaryOperators) {
  Env env;
  env.bind("x", Value(4));
  EXPECT_EQ(eval(Expr::unary(UnOp::Neg, Expr::var("x")), env), Value(-4));
  EXPECT_EQ(eval(Expr::unary(UnOp::Not, Expr::lit(Value(false))), env),
            Value(true));
}

TEST(Eval, ApplyMatchesValueOps) {
  EXPECT_EQ(apply(BinOp::Add, Value(2), Value(3)), Value(5));
  EXPECT_EQ(apply(BinOp::Mod, Value(7), Value(3)), Value(1));
  EXPECT_EQ(apply(BinOp::Le, Value(2), Value(2)), Value(true));
  EXPECT_EQ(apply(UnOp::Neg, Value(2)), Value(-2));
}

// Parameterized: every binary operator evaluates consistently with apply().
class EvalOpSweep : public ::testing::TestWithParam<BinOp> {};

TEST_P(EvalOpSweep, TreeEvalEqualsDirectApply) {
  const BinOp op = GetParam();
  const Value a(12), b(5);
  Env env;
  env.bind("a", a);
  env.bind("b", b);
  const Value direct = is_logical(op)
                           ? Value(op == BinOp::And ? (a.truthy() && b.truthy())
                                                    : (a.truthy() || b.truthy()))
                           : apply(op, a, b);
  EXPECT_EQ(eval(Expr::binary(op, Expr::var("a"), Expr::var("b")), env), direct)
      << to_string(op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, EvalOpSweep,
                         ::testing::Values(BinOp::Add, BinOp::Sub, BinOp::Mul,
                                           BinOp::Div, BinOp::Mod, BinOp::Lt,
                                           BinOp::Le, BinOp::Gt, BinOp::Ge,
                                           BinOp::Eq, BinOp::Ne, BinOp::And,
                                           BinOp::Or));

}  // namespace
}  // namespace gammaflow::expr
