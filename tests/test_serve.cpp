// Streaming-mode tests (DESIGN §14): the worklist-driven incremental
// fixpoint must be byte-identical to a batch run over the union of its
// injections — checked on a 200-seed randomized injection corpus against
// all three in-process engines and the full-rescan worklist baseline —
// and the serve protocol's verbs and error replies must match the spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/common/error.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/runtime/step_loop.hpp"
#include "gammaflow/runtime/worklist.hpp"
#include "gammaflow/serve/server.hpp"
#include "gammaflow/serve/session.hpp"
#include "gammaflow/serve/wire.hpp"

namespace gammaflow {
namespace {

using runtime::IncrementalFixpoint;
using runtime::WorklistOptions;

// Confluent programs: a unique fixpoint is what turns "incremental reaches
// SOME fixpoint" into "incremental reaches THE batch fixpoint".
const char* kMin = "Rmin = replace x, y by x where x < y";
const char* kLabeled =
    "Rsum = replace [a, 'A'], [b, 'A'] by [a + b, 'A']\n"
    "Rmax = replace [x, 'B'], [y, 'B'] by [x, 'B'] where x >= y";

std::string render(const gamma::Multiset& m) {
  std::ostringstream os;
  os << m;
  return os.str();
}

gamma::Element bare(std::int64_t v) { return gamma::Element({Value(v)}); }

gamma::Element labeled(std::int64_t v, const char* label) {
  return gamma::Element({Value(v), Value(label)});
}

/// A randomized injection schedule: 3..18 elements split into 1..5 batches
/// (some possibly empty — an empty inject must be a no-op).
std::vector<std::vector<gamma::Element>> random_schedule(std::mt19937_64& rng,
                                                         bool with_labels) {
  const std::size_t total = 3 + rng() % 16;
  const std::size_t batches = 1 + rng() % 5;
  std::vector<std::vector<gamma::Element>> schedule(batches);
  for (std::size_t i = 0; i < total; ++i) {
    const auto v = static_cast<std::int64_t>(rng() % 50);
    gamma::Element e =
        with_labels ? labeled(v, (rng() % 2 == 0) ? "A" : "B") : bare(v);
    schedule[rng() % batches].push_back(std::move(e));
  }
  return schedule;
}

/// One corpus entry: run the schedule through the footprint worklist and
/// the rescan baseline, then the union through every batch engine; all
/// five final stores must render byte-identically.
void check_differential(const gamma::Program& program, std::uint64_t seed,
                        bool with_labels) {
  std::mt19937_64 rng(seed);
  const auto schedule = random_schedule(rng, with_labels);

  WorklistOptions wopts;
  wopts.seed = seed;
  IncrementalFixpoint fix(program, analysis::wakeup_keys(program), wopts);
  WorklistOptions ropts = wopts;
  ropts.rescan = true;
  IncrementalFixpoint rescan(program, analysis::wakeup_keys(program), ropts);

  gamma::Multiset all;
  for (const auto& batch : schedule) {
    ASSERT_EQ(fix.inject(batch), Outcome::Completed) << "seed " << seed;
    ASSERT_EQ(rescan.inject(batch), Outcome::Completed) << "seed " << seed;
    for (const gamma::Element& e : batch) all.add(e);
  }

  const std::string incremental = render(fix.snapshot());
  EXPECT_EQ(render(rescan.snapshot()), incremental) << "seed " << seed;

  gamma::RunOptions bopts;
  bopts.seed = seed;
  const gamma::SequentialEngine seq;
  const gamma::IndexedEngine idx;
  const gamma::ParallelEngine par;
  for (const gamma::Engine* engine :
       {static_cast<const gamma::Engine*>(&seq),
        static_cast<const gamma::Engine*>(&idx),
        static_cast<const gamma::Engine*>(&par)}) {
    const auto batch = engine->run(program, all, bopts);
    EXPECT_EQ(render(batch.final_multiset), incremental)
        << "seed " << seed << " engine " << engine->name();
  }
}

// --------------------------------------------- differential corpus (200) ---

TEST(ServeDifferential, MinCorpusMatchesBatchOn100Seeds) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    check_differential(program, seed, /*with_labels=*/false);
  }
}

TEST(ServeDifferential, LabeledCorpusMatchesBatchOn100Seeds) {
  const gamma::Program program = gamma::dsl::parse_program(kLabeled);
  for (std::uint64_t seed = 101; seed <= 200; ++seed) {
    check_differential(program, seed, /*with_labels=*/true);
  }
}

// ------------------------------------------------------ worklist internals ---

TEST(Worklist, WakeupKeysMirrorInterferenceFootprints) {
  const auto keys =
      analysis::wakeup_keys(gamma::dsl::parse_program(kLabeled));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_FALSE(keys[0].any);
  EXPECT_EQ(keys[0].labels, (std::set<std::string>{"A"}));
  EXPECT_FALSE(keys[1].any);
  EXPECT_EQ(keys[1].labels, (std::set<std::string>{"B"}));

  // Single-field patterns key on arity: Rmin consumes bare scalars, so
  // only arity-1 insertions can enable it.
  const auto min_keys = analysis::wakeup_keys(gamma::dsl::parse_program(kMin));
  ASSERT_EQ(min_keys.size(), 1u);
  EXPECT_FALSE(min_keys[0].any);
  EXPECT_EQ(min_keys[0].arities, (std::set<std::size_t>{1}));

  // An unbounded binder in the label slot must fall back to wake-always —
  // anything less would break the "enabled => dirty" invariant.
  const auto any_keys = analysis::wakeup_keys(gamma::dsl::parse_program(
      "Rany = replace [v, t], [w, t] by [v + w, t]"));
  ASSERT_EQ(any_keys.size(), 1u);
  EXPECT_TRUE(any_keys[0].any);
}

TEST(Worklist, FootprintWakeupsAreSparserThanRescan) {
  const gamma::Program program = gamma::dsl::parse_program(kLabeled);
  WorklistOptions wopts;
  IncrementalFixpoint fix(program, analysis::wakeup_keys(program), wopts);
  WorklistOptions ropts;
  ropts.rescan = true;
  IncrementalFixpoint rescan(program, analysis::wakeup_keys(program), ropts);

  // Seed both populations, then stream 'B'-only traffic: the footprint
  // index must never re-probe Rsum while rescan probes both every time.
  const std::vector<gamma::Element> seed_batch = {
      labeled(1, "A"), labeled(2, "A"), labeled(5, "B"), labeled(3, "B")};
  ASSERT_EQ(fix.inject(seed_batch), Outcome::Completed);
  ASSERT_EQ(rescan.inject(seed_batch), Outcome::Completed);
  for (std::int64_t v = 0; v < 20; ++v) {
    const std::vector<gamma::Element> one = {labeled(v, "B")};
    ASSERT_EQ(fix.inject(one), Outcome::Completed);
    ASSERT_EQ(rescan.inject(one), Outcome::Completed);
  }

  EXPECT_EQ(render(fix.snapshot()), render(rescan.snapshot()));
  EXPECT_LT(fix.stats().wakeups, rescan.stats().wakeups);
  EXPECT_LT(fix.stats().rematches, rescan.stats().rematches);
}

TEST(Worklist, EmptyInjectIsANoOpAtFixpoint) {
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  WorklistOptions wopts;
  IncrementalFixpoint fix(program, analysis::wakeup_keys(program), wopts);
  const std::vector<gamma::Element> three = {bare(4), bare(2), bare(9)};
  ASSERT_EQ(fix.inject(three), Outcome::Completed);
  const std::uint64_t fires = fix.stats().fires;
  EXPECT_EQ(fix.inject(std::vector<gamma::Element>{}), Outcome::Completed);
  EXPECT_EQ(fix.stats().fires, fires);
  EXPECT_EQ(fix.last_fires(), 0u);
  EXPECT_EQ(render(fix.snapshot()), "{[2]}");
}

TEST(Worklist, MultiStageProgramIsRejected) {
  const gamma::Program two = gamma::dsl::parse_program(
      "R1 = replace x, y by x where x < y ;\n"
      "R2 = replace x, y by x where x > y");
  ASSERT_EQ(two.stage_count(), 2u);
  WorklistOptions wopts;
  EXPECT_THROW(IncrementalFixpoint(two, analysis::wakeup_keys(two), wopts),
               EngineError);
}

TEST(Worklist, BudgetExhaustionResumesToTheSameFixpoint) {
  // A budget-starved drain must stop in a valid intermediate state and,
  // once the budget allows, resume to the exact batch fixpoint.
  const gamma::Program program = gamma::dsl::parse_program(kMin);
  WorklistOptions tight;
  tight.max_steps = 2;
  tight.limit_policy = LimitPolicy::Partial;
  IncrementalFixpoint fix(program, analysis::wakeup_keys(program), tight);
  const std::vector<gamma::Element> batch = {bare(9), bare(4), bare(7),
                                             bare(2), bare(8), bare(5)};
  EXPECT_EQ(fix.inject(batch), Outcome::BudgetExhausted);
  EXPECT_EQ(fix.stats().fires, 2u);

  WorklistOptions roomy;
  IncrementalFixpoint fresh(program, analysis::wakeup_keys(program), roomy);
  ASSERT_EQ(fresh.inject(batch), Outcome::Completed);
  EXPECT_EQ(render(fresh.snapshot()), "{[2]}");
}

// ------------------------------------------------------------- protocol ---

serve::Json call(serve::Server& server, const std::string& line) {
  return serve::parse_json(server.handle_line(line));
}

serve::ServeOptions min_daemon() {
  serve::ServeOptions opts;
  opts.default_program = kMin;
  return opts;
}

std::string error_code(const serve::Json& reply) {
  EXPECT_FALSE(reply.bool_or("ok", true));
  return reply.str_or("error", "");
}

TEST(ServeProtocol, PingAndVerbValidation) {
  serve::Server server(min_daemon());
  const serve::Json pong = call(server, R"({"verb":"ping"})");
  EXPECT_TRUE(pong.bool_or("ok", false));
  EXPECT_TRUE(pong.bool_or("pong", false));

  EXPECT_EQ(error_code(call(server, R"({"verb":"bogus"})")), "unknown_verb");
  EXPECT_EQ(error_code(call(server, R"({"no_verb":1})")), "bad_request");
  EXPECT_EQ(error_code(call(server, R"({"verb":7})")), "bad_request");
  EXPECT_EQ(error_code(call(server, "not json at all")), "bad_request");
  EXPECT_EQ(error_code(call(server, R"({"verb":"ping")")), "bad_request");
  EXPECT_EQ(error_code(call(server, R"([1,2,3])")), "bad_request");
}

TEST(ServeProtocol, CreateInjectQuerySnapshotCloseLifecycle) {
  serve::Server server(min_daemon());
  const serve::Json created =
      call(server, R"({"verb":"create","init":"5 3 9"})");
  ASSERT_TRUE(created.bool_or("ok", false));
  const std::string id = created.str_or("session", "");
  EXPECT_EQ(id, "s1");
  EXPECT_EQ(created.str_or("outcome", ""), "completed");
  EXPECT_EQ(created.int_or("fires", -1), 2);
  EXPECT_EQ(created.int_or("store_size", -1), 1);
  EXPECT_EQ(server.session_count(), 1u);

  const serve::Json injected = call(
      server, R"({"verb":"inject","session":"s1","elements":"1 7"})");
  ASSERT_TRUE(injected.bool_or("ok", false));
  EXPECT_EQ(injected.int_or("fires", -1), 2);
  EXPECT_EQ(injected.int_or("fires_total", -1), 4);
  EXPECT_EQ(injected.int_or("store_size", -1), 1);

  const serve::Json by_element = call(
      server, R"({"verb":"query","session":"s1","element":"[1]"})");
  EXPECT_EQ(by_element.int_or("count", -1), 1);
  const serve::Json by_size = call(server, R"({"verb":"query","session":"s1"})");
  EXPECT_EQ(by_size.int_or("store_size", -1), 1);

  const serve::Json snap = call(server, R"({"verb":"snapshot","session":"s1"})");
  ASSERT_TRUE(snap.bool_or("ok", false));
  const serve::Json* store = snap.get("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->int_or("[1]", -1), 1);
  EXPECT_EQ(snap.int_or("store_size", -1), 1);

  const serve::Json stats = call(server, R"({"verb":"stats","session":"s1"})");
  EXPECT_EQ(stats.int_or("injected", -1), 5);
  EXPECT_EQ(stats.int_or("injects", -1), 2);
  EXPECT_EQ(stats.int_or("fires", -1), 4);
  EXPECT_GE(stats.int_or("wakeups", -1), 1);
  EXPECT_GE(stats.num_or("quiesce_p99_us", -1.0), 0.0);

  const serve::Json closed = call(server, R"({"verb":"close","session":"s1"})");
  ASSERT_TRUE(closed.bool_or("ok", false));
  EXPECT_EQ(closed.int_or("fires_total", -1), 4);
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(error_code(call(
                server, R"({"verb":"inject","session":"s1","elements":"1"})")),
            "unknown_session");
}

TEST(ServeProtocol, LabelQueriesCountStringField1) {
  serve::ServeOptions opts;
  opts.default_program = kLabeled;
  serve::Server server(opts);
  ASSERT_TRUE(
      call(server,
           R"({"verb":"create","session":"lab","init":"[1,'A'] [2,'A'] [9,'B']"})")
          .bool_or("ok", false));
  EXPECT_EQ(call(server, R"({"verb":"query","session":"lab","label":"A"})")
                .int_or("count", -1),
            1);  // Rsum folded both A's into [3,'A']
  EXPECT_EQ(call(server, R"({"verb":"query","session":"lab","label":"B"})")
                .int_or("count", -1),
            1);
  EXPECT_EQ(call(server, R"({"verb":"query","session":"lab","label":"Z"})")
                .int_or("count", -1),
            0);
  EXPECT_EQ(call(server,
                 R"({"verb":"query","session":"lab","element":"[3,'A']"})")
                .int_or("count", -1),
            1);
}

TEST(ServeProtocol, SessionErrorsMatchTheSpec) {
  serve::Server server(min_daemon());
  ASSERT_TRUE(call(server, R"({"verb":"create","session":"dup"})")
                  .bool_or("ok", false));
  EXPECT_EQ(error_code(call(server, R"({"verb":"create","session":"dup"})")),
            "duplicate_session");
  for (const char* verb : {"inject", "query", "snapshot", "stats", "close"}) {
    const std::string line = std::string(R"({"verb":")") + verb +
                             R"(","session":"ghost","elements":"1"})";
    EXPECT_EQ(error_code(call(server, line)), "unknown_session") << verb;
  }
}

TEST(ServeProtocol, BadProgramAndBadElements) {
  serve::Server server(min_daemon());
  EXPECT_EQ(error_code(call(
                server, R"({"verb":"create","program":"this is not gamma"})")),
            "bad_program");
  EXPECT_EQ(
      error_code(call(
          server,
          R"({"verb":"create","program":"R1 = replace x, y by x where x < y ; R2 = replace x, y by x where x > y"})")),
      "multi_stage_unsupported");
  EXPECT_EQ(error_code(call(server, R"({"verb":"create","init":"[[["})")),
            "bad_elements");

  ASSERT_TRUE(call(server, R"({"verb":"create","session":"ok"})")
                  .bool_or("ok", false));
  EXPECT_EQ(error_code(call(
                server,
                R"({"verb":"inject","session":"ok","elements":"[x]"})")),
            "bad_elements");
  EXPECT_EQ(error_code(call(
                server,
                R"({"verb":"query","session":"ok","element":"1 2"})")),
            "bad_elements");

  serve::ServeOptions no_default;
  serve::Server bare_server(no_default);
  EXPECT_EQ(error_code(call(bare_server, R"({"verb":"create"})")),
            "bad_program");
}

TEST(ServeProtocol, SessionLimitIsEnforced) {
  serve::ServeOptions opts = min_daemon();
  opts.max_sessions = 2;
  serve::Server server(opts);
  ASSERT_TRUE(call(server, R"({"verb":"create"})").bool_or("ok", false));
  ASSERT_TRUE(call(server, R"({"verb":"create"})").bool_or("ok", false));
  EXPECT_EQ(error_code(call(server, R"({"verb":"create"})")), "session_limit");
  ASSERT_TRUE(call(server, R"({"verb":"close","session":"s1"})")
                  .bool_or("ok", false));
  EXPECT_TRUE(call(server, R"({"verb":"create"})").bool_or("ok", false));
}

TEST(ServeProtocol, BudgetExhaustionIsAnErrorReplyWithPartialState) {
  serve::Server server(min_daemon());
  const serve::Json created = call(
      server, R"({"verb":"create","session":"b","max_steps":1,"init":"9"})");
  ASSERT_TRUE(created.bool_or("ok", false));
  const serve::Json stopped = call(
      server,
      R"({"verb":"inject","session":"b","elements":"4 7 2 8 5"})");
  EXPECT_EQ(error_code(stopped), "budget_exhausted");
  EXPECT_TRUE(stopped.bool_or("partial", false));
  EXPECT_EQ(stopped.str_or("outcome", ""), "budget_exhausted");
  // The session survives with a valid intermediate store.
  const serve::Json snap = call(server, R"({"verb":"snapshot","session":"b"})");
  EXPECT_TRUE(snap.bool_or("ok", false));
  EXPECT_GE(snap.int_or("store_size", -1), 1);
}

TEST(ServeProtocol, DeadlineExceededIsAnErrorReplyWithPartialState) {
  serve::Server server(min_daemon());
  ASSERT_TRUE(
      call(server, R"({"verb":"create","session":"d","deadline":1e-9})")
          .bool_or("ok", false));
  std::string elements;
  for (int v = 0; v < 400; ++v) elements += std::to_string(v) + " ";
  const serve::Json stopped =
      call(server, R"({"verb":"inject","session":"d","elements":")" +
                       elements + R"("})");
  EXPECT_EQ(error_code(stopped), "deadline_exceeded");
  EXPECT_TRUE(stopped.bool_or("partial", false));
}

TEST(ServeProtocol, CloseReturnsSessionTaggedJournalInline) {
  serve::Server server(min_daemon());
  ASSERT_TRUE(
      call(server,
           R"({"verb":"create","session":"rec","record":true,"init":"3 1 2"})")
          .bool_or("ok", false));
  ASSERT_TRUE(
      call(server, R"({"verb":"inject","session":"rec","elements":"0 5"})")
          .bool_or("ok", false));
  const serve::Json closed =
      call(server, R"({"verb":"close","session":"rec"})");
  ASSERT_TRUE(closed.bool_or("ok", false));
  const serve::Json* journal = closed.get("journal");
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->str_or("session", ""), "rec");
  EXPECT_EQ(journal->str_or("engine", ""), "worklist");
  EXPECT_EQ(journal->str_or("outcome", ""), "completed");

  // The inline journal is a real journal: it reparses and replays to the
  // session's final store ({[0]} — the global minimum).
  const obs::Journal parsed =
      obs::parse_journal_string(journal->to_string());
  EXPECT_EQ(obs::verify_journal(parsed), "");
  EXPECT_EQ(parsed.session, "rec");
  ASSERT_EQ(parsed.rounds_total, 2u);
  const obs::StoreCounts final =
      obs::replay_rounds(parsed, parsed.rounds.size());
  EXPECT_EQ(final, (obs::StoreCounts{{"[0]", 1}}));
}

TEST(ServeProtocol, StreamFrontPumpsLinesAndShutdownClosesSessions) {
  serve::Server server(min_daemon());
  std::istringstream in(
      "{\"verb\":\"create\",\"init\":\"5 3\"}\n"
      "\n"
      "{\"verb\":\"stats\"}\n"
      "{\"verb\":\"shutdown\"}\n"
      "{\"verb\":\"ping\"}\n");
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream replies(out.str());
  std::string line;
  std::vector<serve::Json> parsed;
  while (std::getline(replies, line)) parsed.push_back(serve::parse_json(line));
  // create, stats, shutdown — the post-shutdown ping is never served.
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].str_or("session", ""), "s1");
  EXPECT_EQ(parsed[1].int_or("sessions", -1), 1);
  EXPECT_TRUE(parsed[2].bool_or("shutdown", false));
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(ServeProtocol, SessionJournalPathInsertsSessionBeforeExtension) {
  EXPECT_EQ(serve::session_journal_path("runs/serve.json", "s1"),
            "runs/serve.s1.json");
  EXPECT_EQ(serve::session_journal_path("journal", "s2"), "journal.s2");
  EXPECT_EQ(serve::session_journal_path("a.b/journal", "s3"),
            "a.b/journal.s3");
}

}  // namespace
}  // namespace gammaflow
