// Element and Multiset: tuple accessors, multiset semantics (duplicates,
// canonical equality), label filtering, printing.
#include <gtest/gtest.h>

#include "gammaflow/gamma/multiset.hpp"

namespace gammaflow::gamma {
namespace {

TEST(Element, TaggedTripleAccessors) {
  const Element e = Element::tagged(Value(5), "B1", 2);
  EXPECT_EQ(e.arity(), 3u);
  EXPECT_EQ(e.value(), Value(5));
  EXPECT_EQ(e.label(), "B1");
  EXPECT_EQ(e.tag(), 2);
}

TEST(Element, LabeledPairAccessors) {
  const Element e = Element::labeled(Value(1), "A1");
  EXPECT_EQ(e.arity(), 2u);
  EXPECT_EQ(e.value(), Value(1));
  EXPECT_EQ(e.label(), "A1");
  EXPECT_THROW((void)e.tag(), TypeError);
}

TEST(Element, BareValueElement) {
  const Element e{Value(7)};
  EXPECT_EQ(e.arity(), 1u);
  EXPECT_EQ(e.value(), Value(7));
  EXPECT_THROW((void)e.label(), TypeError);
}

TEST(Element, EmptyElementAccessorsThrow) {
  const Element e;
  EXPECT_EQ(e.arity(), 0u);
  EXPECT_THROW((void)e.value(), TypeError);
}

TEST(Element, EqualityAndOrdering) {
  EXPECT_EQ(Element::tagged(Value(1), "A", 0), Element::tagged(Value(1), "A", 0));
  EXPECT_NE(Element::tagged(Value(1), "A", 0), Element::tagged(Value(1), "A", 1));
  EXPECT_NE(Element::tagged(Value(1), "A", 0), Element::labeled(Value(1), "A"));
  EXPECT_TRUE(Element{Value(1)} < Element{Value(2)});
}

TEST(Element, FieldOutOfRangeThrows) {
  const Element e{Value(1)};
  EXPECT_THROW((void)e.field(1), std::out_of_range);
}

TEST(Element, Printing) {
  EXPECT_EQ(Element::tagged(Value(3), "B2", 1).to_string(), "[3, 'B2', 1]");
  EXPECT_EQ(Element{Value(7)}.to_string(), "[7]");
}

TEST(Multiset, DuplicatesAreFirstClass) {
  Multiset m;
  m.add(Element{Value(1)});
  m.add(Element{Value(1)});
  m.add(Element{Value(2)});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.count(Element{Value(1)}), 2u);
  EXPECT_EQ(m.count(Element{Value(3)}), 0u);
}

TEST(Multiset, EqualityIgnoresOrder) {
  const Multiset a{Element{Value(1)}, Element{Value(2)}, Element{Value(2)}};
  const Multiset b{Element{Value(2)}, Element{Value(1)}, Element{Value(2)}};
  const Multiset c{Element{Value(1)}, Element{Value(2)}};
  const Multiset d{Element{Value(1)}, Element{Value(1)}, Element{Value(2)}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different size
  EXPECT_NE(a, d);  // different multiplicities
}

TEST(Multiset, RemoveOneRemovesSingleInstance) {
  Multiset m{Element{Value(1)}, Element{Value(1)}};
  EXPECT_TRUE(m.remove_one(Element{Value(1)}));
  EXPECT_EQ(m.count(Element{Value(1)}), 1u);
  EXPECT_TRUE(m.remove_one(Element{Value(1)}));
  EXPECT_FALSE(m.remove_one(Element{Value(1)}));
  EXPECT_TRUE(m.empty());
}

TEST(Multiset, AddMergesMultisets) {
  Multiset a{Element{Value(1)}};
  const Multiset b{Element{Value(2)}, Element{Value(1)}};
  a.add(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.count(Element{Value(1)}), 2u);
}

TEST(Multiset, CanonicalIsSorted) {
  const Multiset m{Element{Value(3)}, Element{Value(1)}, Element{Value(2)}};
  const auto canon = m.canonical();
  ASSERT_EQ(canon.size(), 3u);
  EXPECT_EQ(canon[0], Element{Value(1)});
  EXPECT_EQ(canon[2], Element{Value(3)});
}

TEST(Multiset, WithLabelFilters) {
  const Multiset m{
      Element::tagged(Value(1), "A1", 0),
      Element::tagged(Value(2), "B1", 0),
      Element::tagged(Value(3), "A1", 1),
      Element{Value(9)},  // unlabeled, never matches
  };
  const auto a1 = m.with_label("A1");
  EXPECT_EQ(a1.size(), 2u);
  EXPECT_TRUE(m.with_label("Z").empty());
}

TEST(Multiset, PrintingIsCanonical) {
  const Multiset a{Element{Value(2)}, Element{Value(1)}};
  const Multiset b{Element{Value(1)}, Element{Value(2)}};
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.to_string(), "{[1], [2]}");
}

TEST(Multiset, MixedArityElementsCoexist) {
  Multiset m;
  m.add(Element{Value(1)});
  m.add(Element::labeled(Value(1), "A"));
  m.add(Element::tagged(Value(1), "A", 0));
  EXPECT_EQ(m.size(), 3u);
  // All three are distinct as multiset members.
  EXPECT_EQ(m.count(Element{Value(1)}), 1u);
}

}  // namespace
}  // namespace gammaflow::gamma
