// Pattern matching: binders, literal constraints, repeated binders as
// equality constraints (the paper's shared tag variable v), key constraints.
#include <gtest/gtest.h>

#include "gammaflow/gamma/pattern.hpp"

namespace gammaflow::gamma {
namespace {

TEST(PatternField, BinderBindsFirstOccurrence) {
  expr::Env env;
  const auto f = PatternField::bind("x");
  EXPECT_TRUE(f.match(Value(5), env));
  EXPECT_EQ(env.lookup("x"), Value(5));
}

TEST(PatternField, BinderChecksSecondOccurrence) {
  expr::Env env;
  env.bind("x", Value(5));
  const auto f = PatternField::bind("x");
  EXPECT_TRUE(f.match(Value(5), env));
  EXPECT_FALSE(f.match(Value(6), env));
}

TEST(PatternField, LiteralConstrains) {
  expr::Env env;
  const auto f = PatternField::literal(Value("A1"));
  EXPECT_TRUE(f.match(Value("A1"), env));
  EXPECT_FALSE(f.match(Value("A2"), env));
  EXPECT_FALSE(f.match(Value(1), env));
  EXPECT_EQ(env.size(), 0u);  // literals never bind
}

TEST(Pattern, TaggedConventionMatches) {
  const Pattern p = Pattern::tagged("id1", "B12", "v");
  expr::Env env;
  EXPECT_TRUE(p.match(Element::tagged(Value(3), "B12", 7), env));
  EXPECT_EQ(env.lookup("id1"), Value(3));
  EXPECT_EQ(env.lookup("v"), Value(std::int64_t{7}));
}

TEST(Pattern, TaggedConventionRejectsWrongLabel) {
  const Pattern p = Pattern::tagged("id1", "B12", "v");
  expr::Env env;
  EXPECT_FALSE(p.match(Element::tagged(Value(3), "B13", 7), env));
}

TEST(Pattern, ArityMismatchRejects) {
  const Pattern p = Pattern::tagged("id1", "B12", "v");
  expr::Env env;
  EXPECT_FALSE(p.match(Element::labeled(Value(3), "B12"), env));
  EXPECT_FALSE(p.match(Element{Value(3)}, env));
}

TEST(Pattern, SharedTagVariableForcesSameIteration) {
  // The paper's R16: [id1,'B13',v], [id2,'B15',v] — both tags must agree.
  const Pattern p1 = Pattern::tagged("id1", "B13", "v");
  const Pattern p2 = Pattern::tagged("id2", "B15", "v");
  expr::Env env;
  ASSERT_TRUE(p1.match(Element::tagged(Value(9), "B13", 4), env));
  EXPECT_TRUE(p2.match(Element::tagged(Value(1), "B15", 4), env));

  expr::Env env2;
  ASSERT_TRUE(p1.match(Element::tagged(Value(9), "B13", 4), env2));
  EXPECT_FALSE(p2.match(Element::tagged(Value(1), "B15", 5), env2));
}

TEST(Pattern, RepeatedValueBinderIsEqualityConstraint) {
  // replace [x, 'L'], [x, 'R'] — both values must be equal.
  const Pattern p1 = Pattern::labeled("x", "L");
  const Pattern p2 = Pattern::labeled("x", "R");
  expr::Env env;
  ASSERT_TRUE(p1.match(Element::labeled(Value(5), "L"), env));
  EXPECT_TRUE(p2.match(Element::labeled(Value(5), "R"), env));
  expr::Env env2;
  ASSERT_TRUE(p1.match(Element::labeled(Value(5), "L"), env2));
  EXPECT_FALSE(p2.match(Element::labeled(Value(6), "R"), env2));
}

TEST(Pattern, BareVarMatchesAnySingleField) {
  const Pattern p = Pattern::var("x");
  expr::Env env;
  EXPECT_TRUE(p.match(Element{Value(42)}, env));
  EXPECT_EQ(env.lookup("x"), Value(42));
  expr::Env env2;
  EXPECT_FALSE(p.match(Element::labeled(Value(1), "A"), env2));  // arity 2
}

TEST(Pattern, LabelVariableBindsLabel) {
  // The paper's R11: [id1, x, v] — x captures the label for the condition.
  const Pattern p({PatternField::bind("id1"), PatternField::bind("x"),
                   PatternField::bind("v")});
  expr::Env env;
  ASSERT_TRUE(p.match(Element::tagged(Value(5), "A11", 2), env));
  EXPECT_EQ(env.lookup("x"), Value("A11"));
}

TEST(Pattern, KeyConstraintFindsFirstLiteral) {
  const Pattern p = Pattern::tagged("id1", "B12", "v");
  const auto key = p.key_constraint();
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->first, 1u);
  EXPECT_EQ(key->second, Value("B12"));
}

TEST(Pattern, KeyConstraintAbsentForAllBinders) {
  const Pattern p({PatternField::bind("a"), PatternField::bind("b")});
  EXPECT_FALSE(p.key_constraint().has_value());
}

TEST(Pattern, BindersDeduplicated) {
  const Pattern p({PatternField::bind("x"), PatternField::bind("y"),
                   PatternField::bind("x")});
  EXPECT_EQ(p.binders(), (std::vector<std::string>{"x", "y"}));
}

TEST(Pattern, PrintingConventions) {
  EXPECT_EQ(Pattern::var("x").to_string(), "x");
  EXPECT_EQ(Pattern::tagged("id1", "A1", "v").to_string(), "[id1, 'A1', v]");
  EXPECT_EQ(Pattern::labeled("id2", "B2").to_string(), "[id2, 'B2']");
}

TEST(Pattern, NumericLiteralConstraint) {
  const Pattern p({PatternField::bind("x"), PatternField::literal(Value(0))});
  expr::Env env;
  EXPECT_TRUE(p.match(Element{Value(9), Value(0)}, env));
  EXPECT_FALSE(p.match(Element{Value(9), Value(1)}, env));
  // Structural equality: int 0 != real 0.0 in pattern fields.
  EXPECT_FALSE(p.match(Element{Value(9), Value(0.0)}, env));
}

}  // namespace
}  // namespace gammaflow::gamma
