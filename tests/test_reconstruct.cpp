// Whole-program reconstruction (the paper's future-work §IV): Gamma program
// + initial multiset -> dataflow graph, with node-kind recognition.
#include <gtest/gtest.h>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::translate {
namespace {

using dataflow::Graph;
using dataflow::Interpreter;
using dataflow::NodeKind;

std::map<std::string, std::size_t> kinds(const Graph& g) {
  std::map<std::string, std::size_t> out;
  for (const auto& n : g.nodes()) ++out[dataflow::to_string(n.kind)];
  return out;
}

TEST(Reconstruct, Fig1ListingReproducesFig1Graph) {
  // §III-A2: "we can reproduce the same dataflow graph of the Figure 1 from
  // the three reactions mentioned".
  const Graph g =
      reconstruct_graph(paper::fig1_gamma(), paper::fig1_initial());
  const auto k = kinds(g);
  EXPECT_EQ(k.at("const"), 4u);
  EXPECT_EQ(k.at("arith"), 3u);
  EXPECT_EQ(k.at("output"), 1u);
  EXPECT_EQ(g.edge_count(), 7u);
  EXPECT_EQ(Interpreter().run(g).single_output("m"), Value(0));
}

TEST(Reconstruct, Fig1RoundTripThroughAlgorithm1) {
  const Graph original = paper::fig1_graph();
  const GammaConversion conv = dataflow_to_gamma(original);
  const Graph rebuilt = reconstruct_graph(conv.program, conv.initial);
  EXPECT_EQ(kinds(rebuilt), kinds(original));
  EXPECT_EQ(rebuilt.edge_count(), original.edge_count());
  EXPECT_EQ(Interpreter().run(rebuilt).single_output("m"),
            Interpreter().run(original).single_output("m"));
}

TEST(Reconstruct, Fig2RoundTripPreservesLoopBehaviour) {
  const Graph original = paper::fig2_graph(6, 4, 10, true);
  const GammaConversion conv = dataflow_to_gamma(original);
  const Graph rebuilt = reconstruct_graph(conv.program, conv.initial);
  const auto k = kinds(rebuilt);
  EXPECT_EQ(k.at("inctag"), 3u);  // R11, R12, R13 recognized as lozenges
  EXPECT_EQ(k.at("steer"), 3u);   // R15, R16, R17 recognized as triangles
  EXPECT_EQ(k.at("cmp"), 1u);     // R14
  EXPECT_EQ(k.at("arith"), 2u);   // R18, R19
  EXPECT_EQ(Interpreter().run(rebuilt).single_output("x_final"), Value(34));
}

TEST(Reconstruct, Fig2ImmediateNodesRecognized) {
  const GammaConversion conv =
      dataflow_to_gamma(paper::fig2_graph(3, 5, 0, true));
  const Graph rebuilt = reconstruct_graph(conv.program, conv.initial);
  const auto r14 = rebuilt.find("R14");
  ASSERT_TRUE(r14.has_value());
  EXPECT_TRUE(rebuilt.node(*r14).has_immediate);
  EXPECT_EQ(rebuilt.node(*r14).constant, Value(0));
  const auto r18 = rebuilt.find("R18");
  ASSERT_TRUE(r18.has_value());
  EXPECT_TRUE(rebuilt.node(*r18).has_immediate);
  EXPECT_EQ(rebuilt.node(*r18).constant, Value(1));
}

TEST(Reconstruct, ReducedRd1BuildsExpressionTree) {
  // Rd1's single reaction has the full expression — reconstruction builds
  // the 3-node arithmetic tree.
  const Graph g = reconstruct_graph(paper::fig1_reduced_gamma(),
                                    paper::fig1_initial());
  const auto k = kinds(g);
  EXPECT_EQ(k.at("arith"), 3u);
  EXPECT_EQ(k.at("const"), 4u);
  EXPECT_EQ(Interpreter().run(g).single_output("m"), Value(0));
}

TEST(Reconstruct, UntaggedPairProgramsWork) {
  const Graph g = reconstruct_graph(
      gamma::dsl::parse_program(
          "R = replace [a,'x'], [b,'y'] by [a % b, 'r']"),
      gamma::Multiset{gamma::Element::labeled(Value(17), "x"),
                      gamma::Element::labeled(Value(5), "y")});
  EXPECT_EQ(Interpreter().run(g).single_output("r"), Value(2));
}

TEST(Reconstruct, MultiStageProgramRejected) {
  const auto p = gamma::dsl::parse_program(
      "A = replace [x,'p'] by [x,'q'] ; B = replace [x,'q'] by [x,'r']");
  EXPECT_THROW((void)reconstruct_graph(p, {}), TranslateError);
}

TEST(Reconstruct, UnlabeledElementsRejected) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x where x < y");
  EXPECT_THROW(
      (void)reconstruct_graph(p, gamma::Multiset{gamma::Element{Value(1)}}),
      TranslateError);
}

TEST(Reconstruct, ConsumedButNeverProducedLabelRejected) {
  const auto p = gamma::dsl::parse_program(
      "R = replace [a,'ghost'] by [a,'out']");
  EXPECT_THROW((void)reconstruct_graph(p, {}), TranslateError);
}

TEST(Reconstruct, CopyReactionRejected) {
  // Pure copies have no dataflow node; fan-out lives on producer edges.
  const auto p = gamma::dsl::parse_program(
      "R = replace [a,'in'] by [a,'out1'], [a,'out2']");
  EXPECT_THROW(
      (void)reconstruct_graph(
          p, gamma::Multiset{gamma::Element::labeled(Value(1), "in")}),
      TranslateError);
}

TEST(Reconstruct, NonzeroInitialTagRejected) {
  const auto p = gamma::dsl::parse_program(
      "R = replace [a,'in',v] by [a,'out',v]");
  EXPECT_THROW(
      (void)reconstruct_graph(
          p, gamma::Multiset{gamma::Element::tagged(Value(1), "in", 3)}),
      TranslateError);
}

TEST(Reconstruct, ProducedButUnconsumedLabelBecomesOutput) {
  const Graph g = reconstruct_graph(
      gamma::dsl::parse_program("R = replace [a,'x'], [b,'y'] by [a + b, 'sum']"),
      gamma::Multiset{gamma::Element::labeled(Value(1), "x"),
                      gamma::Element::labeled(Value(2), "y")});
  EXPECT_EQ(kinds(g).at("output"), 1u);
  EXPECT_EQ(Interpreter().run(g).single_output("sum"), Value(3));
}

TEST(Reconstruct, SteerRecognitionRequiresDataForwarding) {
  // Shaped like a steer but transforms the data => not a steer; and not a
  // cmp/expression either => rejected with a clear error.
  const auto p = gamma::dsl::parse_program(R"(
    R = replace [id1,'D',v], [id2,'C',v]
        by [id1 + 1, 'T', v] if id2 == 1
        by 0 else
  )");
  EXPECT_THROW((void)reconstruct_graph(
                   p, gamma::Multiset{gamma::Element::tagged(Value(1), "D", 0),
                                      gamma::Element::tagged(Value(1), "C", 0)}),
               TranslateError);
}

TEST(Reconstruct, RebuiltFig2MatchesGammaExecutionResults) {
  // Full circle: graph -> gamma -> graph' and gamma-engine vs dataflow
  // agree on the observable.
  const Graph original = paper::fig2_graph(5, 2, 1, true);
  const GammaConversion conv = dataflow_to_gamma(original);
  const auto gamma_run =
      gamma::IndexedEngine().run(conv.program, conv.initial);
  const auto observed = gamma_run.final_multiset.with_label("x_final");
  ASSERT_EQ(observed.size(), 1u);
  const Graph rebuilt = reconstruct_graph(conv.program, conv.initial);
  EXPECT_EQ(Interpreter().run(rebuilt).single_output("x_final"),
            observed[0].value());
}

}  // namespace
}  // namespace gammaflow::translate
