file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_grammar.dir/bench_fig3_grammar.cpp.o"
  "CMakeFiles/bench_fig3_grammar.dir/bench_fig3_grammar.cpp.o.d"
  "bench_fig3_grammar"
  "bench_fig3_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
