# Empty dependencies file for bench_fig3_grammar.
# This may be replaced when dependencies are built.
