file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mapping.dir/bench_fig4_mapping.cpp.o"
  "CMakeFiles/bench_fig4_mapping.dir/bench_fig4_mapping.cpp.o.d"
  "bench_fig4_mapping"
  "bench_fig4_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
