# Empty dependencies file for bench_fig4_mapping.
# This may be replaced when dependencies are built.
