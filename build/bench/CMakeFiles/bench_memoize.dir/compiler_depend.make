# Empty compiler generated dependencies file for bench_memoize.
# This may be replaced when dependencies are built.
