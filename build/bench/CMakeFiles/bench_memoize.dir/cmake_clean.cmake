file(REMOVE_RECURSE
  "CMakeFiles/bench_memoize.dir/bench_memoize.cpp.o"
  "CMakeFiles/bench_memoize.dir/bench_memoize.cpp.o.d"
  "bench_memoize"
  "bench_memoize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memoize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
