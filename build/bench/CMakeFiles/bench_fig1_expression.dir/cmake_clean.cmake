file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_expression.dir/bench_fig1_expression.cpp.o"
  "CMakeFiles/bench_fig1_expression.dir/bench_fig1_expression.cpp.o.d"
  "bench_fig1_expression"
  "bench_fig1_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
