# Empty dependencies file for bench_fig1_expression.
# This may be replaced when dependencies are built.
