file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_loop.dir/bench_fig2_loop.cpp.o"
  "CMakeFiles/bench_fig2_loop.dir/bench_fig2_loop.cpp.o.d"
  "bench_fig2_loop"
  "bench_fig2_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
