# Empty dependencies file for bench_alg2_convert.
# This may be replaced when dependencies are built.
