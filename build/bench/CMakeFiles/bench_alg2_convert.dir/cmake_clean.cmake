file(REMOVE_RECURSE
  "CMakeFiles/bench_alg2_convert.dir/bench_alg2_convert.cpp.o"
  "CMakeFiles/bench_alg2_convert.dir/bench_alg2_convert.cpp.o.d"
  "bench_alg2_convert"
  "bench_alg2_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg2_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
