# Empty compiler generated dependencies file for bench_distrib.
# This may be replaced when dependencies are built.
