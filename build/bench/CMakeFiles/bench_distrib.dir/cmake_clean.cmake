file(REMOVE_RECURSE
  "CMakeFiles/bench_distrib.dir/bench_distrib.cpp.o"
  "CMakeFiles/bench_distrib.dir/bench_distrib.cpp.o.d"
  "bench_distrib"
  "bench_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
