
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_alg1_convert.cpp" "bench/CMakeFiles/bench_alg1_convert.dir/bench_alg1_convert.cpp.o" "gcc" "bench/CMakeFiles/bench_alg1_convert.dir/bench_alg1_convert.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/distrib/CMakeFiles/gf_distrib.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/paper/CMakeFiles/gf_paper.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/analysis/CMakeFiles/gf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/translate/CMakeFiles/gf_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/expr/CMakeFiles/gf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/common/CMakeFiles/gf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
