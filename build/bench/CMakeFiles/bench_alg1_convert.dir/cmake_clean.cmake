file(REMOVE_RECURSE
  "CMakeFiles/bench_alg1_convert.dir/bench_alg1_convert.cpp.o"
  "CMakeFiles/bench_alg1_convert.dir/bench_alg1_convert.cpp.o.d"
  "bench_alg1_convert"
  "bench_alg1_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg1_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
