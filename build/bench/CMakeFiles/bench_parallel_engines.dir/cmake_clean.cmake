file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_engines.dir/bench_parallel_engines.cpp.o"
  "CMakeFiles/bench_parallel_engines.dir/bench_parallel_engines.cpp.o.d"
  "bench_parallel_engines"
  "bench_parallel_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
