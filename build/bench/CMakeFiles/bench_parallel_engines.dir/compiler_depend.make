# Empty compiler generated dependencies file for bench_parallel_engines.
# This may be replaced when dependencies are built.
