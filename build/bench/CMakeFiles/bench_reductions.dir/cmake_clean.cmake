file(REMOVE_RECURSE
  "CMakeFiles/bench_reductions.dir/bench_reductions.cpp.o"
  "CMakeFiles/bench_reductions.dir/bench_reductions.cpp.o.d"
  "bench_reductions"
  "bench_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
