file(REMOVE_RECURSE
  "CMakeFiles/gammaflow_cli.dir/gammaflow_cli.cpp.o"
  "CMakeFiles/gammaflow_cli.dir/gammaflow_cli.cpp.o.d"
  "gammaflow"
  "gammaflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gammaflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
