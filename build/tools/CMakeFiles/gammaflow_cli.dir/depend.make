# Empty dependencies file for gammaflow_cli.
# This may be replaced when dependencies are built.
