file(REMOVE_RECURSE
  "CMakeFiles/test_multiset.dir/test_multiset.cpp.o"
  "CMakeFiles/test_multiset.dir/test_multiset.cpp.o.d"
  "test_multiset"
  "test_multiset.pdb"
  "test_multiset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
