# Empty compiler generated dependencies file for test_multiset.
# This may be replaced when dependencies are built.
