# Empty compiler generated dependencies file for test_dataflow_graph.
# This may be replaced when dependencies are built.
