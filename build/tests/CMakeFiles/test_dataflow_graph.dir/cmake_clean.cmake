file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow_graph.dir/test_dataflow_graph.cpp.o"
  "CMakeFiles/test_dataflow_graph.dir/test_dataflow_graph.cpp.o.d"
  "test_dataflow_graph"
  "test_dataflow_graph.pdb"
  "test_dataflow_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
