# Empty dependencies file for test_program.
# This may be replaced when dependencies are built.
