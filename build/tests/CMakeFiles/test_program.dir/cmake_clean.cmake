file(REMOVE_RECURSE
  "CMakeFiles/test_program.dir/test_program.cpp.o"
  "CMakeFiles/test_program.dir/test_program.cpp.o.d"
  "test_program"
  "test_program.pdb"
  "test_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
