file(REMOVE_RECURSE
  "CMakeFiles/test_optimize.dir/test_optimize.cpp.o"
  "CMakeFiles/test_optimize.dir/test_optimize.cpp.o.d"
  "test_optimize"
  "test_optimize.pdb"
  "test_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
