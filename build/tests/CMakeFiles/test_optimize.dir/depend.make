# Empty dependencies file for test_optimize.
# This may be replaced when dependencies are built.
