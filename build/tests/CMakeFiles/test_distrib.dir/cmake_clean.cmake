file(REMOVE_RECURSE
  "CMakeFiles/test_distrib.dir/test_distrib.cpp.o"
  "CMakeFiles/test_distrib.dir/test_distrib.cpp.o.d"
  "test_distrib"
  "test_distrib.pdb"
  "test_distrib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
