# Empty compiler generated dependencies file for test_distrib.
# This may be replaced when dependencies are built.
