file(REMOVE_RECURSE
  "CMakeFiles/test_reconstruct.dir/test_reconstruct.cpp.o"
  "CMakeFiles/test_reconstruct.dir/test_reconstruct.cpp.o.d"
  "test_reconstruct"
  "test_reconstruct.pdb"
  "test_reconstruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
