# Empty dependencies file for test_reconstruct.
# This may be replaced when dependencies are built.
