file(REMOVE_RECURSE
  "CMakeFiles/test_serialize_property.dir/test_serialize_property.cpp.o"
  "CMakeFiles/test_serialize_property.dir/test_serialize_property.cpp.o.d"
  "test_serialize_property"
  "test_serialize_property.pdb"
  "test_serialize_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
