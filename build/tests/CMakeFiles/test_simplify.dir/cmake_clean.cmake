file(REMOVE_RECURSE
  "CMakeFiles/test_simplify.dir/test_simplify.cpp.o"
  "CMakeFiles/test_simplify.dir/test_simplify.cpp.o.d"
  "test_simplify"
  "test_simplify.pdb"
  "test_simplify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
