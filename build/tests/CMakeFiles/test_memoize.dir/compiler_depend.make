# Empty compiler generated dependencies file for test_memoize.
# This may be replaced when dependencies are built.
