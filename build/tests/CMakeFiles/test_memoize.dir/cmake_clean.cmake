file(REMOVE_RECURSE
  "CMakeFiles/test_memoize.dir/test_memoize.cpp.o"
  "CMakeFiles/test_memoize.dir/test_memoize.cpp.o.d"
  "test_memoize"
  "test_memoize.pdb"
  "test_memoize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memoize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
