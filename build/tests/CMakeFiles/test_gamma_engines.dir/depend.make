# Empty dependencies file for test_gamma_engines.
# This may be replaced when dependencies are built.
