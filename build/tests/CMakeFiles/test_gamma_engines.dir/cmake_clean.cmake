file(REMOVE_RECURSE
  "CMakeFiles/test_gamma_engines.dir/test_gamma_engines.cpp.o"
  "CMakeFiles/test_gamma_engines.dir/test_gamma_engines.cpp.o.d"
  "test_gamma_engines"
  "test_gamma_engines.pdb"
  "test_gamma_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamma_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
