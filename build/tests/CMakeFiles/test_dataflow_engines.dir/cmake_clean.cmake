file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow_engines.dir/test_dataflow_engines.cpp.o"
  "CMakeFiles/test_dataflow_engines.dir/test_dataflow_engines.cpp.o.d"
  "test_dataflow_engines"
  "test_dataflow_engines.pdb"
  "test_dataflow_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
