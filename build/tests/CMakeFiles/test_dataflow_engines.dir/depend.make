# Empty dependencies file for test_dataflow_engines.
# This may be replaced when dependencies are built.
