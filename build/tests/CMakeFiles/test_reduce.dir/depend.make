# Empty dependencies file for test_reduce.
# This may be replaced when dependencies are built.
