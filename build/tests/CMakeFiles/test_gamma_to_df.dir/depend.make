# Empty dependencies file for test_gamma_to_df.
# This may be replaced when dependencies are built.
