file(REMOVE_RECURSE
  "CMakeFiles/test_gamma_to_df.dir/test_gamma_to_df.cpp.o"
  "CMakeFiles/test_gamma_to_df.dir/test_gamma_to_df.cpp.o.d"
  "test_gamma_to_df"
  "test_gamma_to_df.pdb"
  "test_gamma_to_df[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamma_to_df.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
