# Empty dependencies file for test_expr_parser.
# This may be replaced when dependencies are built.
