file(REMOVE_RECURSE
  "CMakeFiles/test_expr_parser.dir/test_expr_parser.cpp.o"
  "CMakeFiles/test_expr_parser.dir/test_expr_parser.cpp.o.d"
  "test_expr_parser"
  "test_expr_parser.pdb"
  "test_expr_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
