file(REMOVE_RECURSE
  "CMakeFiles/test_lint.dir/test_lint.cpp.o"
  "CMakeFiles/test_lint.dir/test_lint.cpp.o.d"
  "test_lint"
  "test_lint.pdb"
  "test_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
