# Empty compiler generated dependencies file for test_lint.
# This may be replaced when dependencies are built.
