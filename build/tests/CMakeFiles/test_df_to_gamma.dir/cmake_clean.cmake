file(REMOVE_RECURSE
  "CMakeFiles/test_df_to_gamma.dir/test_df_to_gamma.cpp.o"
  "CMakeFiles/test_df_to_gamma.dir/test_df_to_gamma.cpp.o.d"
  "test_df_to_gamma"
  "test_df_to_gamma.pdb"
  "test_df_to_gamma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_df_to_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
