# Empty dependencies file for test_df_to_gamma.
# This may be replaced when dependencies are built.
