file(REMOVE_RECURSE
  "CMakeFiles/test_reaction.dir/test_reaction.cpp.o"
  "CMakeFiles/test_reaction.dir/test_reaction.cpp.o.d"
  "test_reaction"
  "test_reaction.pdb"
  "test_reaction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
