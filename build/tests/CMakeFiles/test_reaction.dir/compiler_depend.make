# Empty compiler generated dependencies file for test_reaction.
# This may be replaced when dependencies are built.
