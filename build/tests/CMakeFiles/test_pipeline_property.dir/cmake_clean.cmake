file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_property.dir/test_pipeline_property.cpp.o"
  "CMakeFiles/test_pipeline_property.dir/test_pipeline_property.cpp.o.d"
  "test_pipeline_property"
  "test_pipeline_property.pdb"
  "test_pipeline_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
