file(REMOVE_RECURSE
  "CMakeFiles/test_coverage_extra.dir/test_coverage_extra.cpp.o"
  "CMakeFiles/test_coverage_extra.dir/test_coverage_extra.cpp.o.d"
  "test_coverage_extra"
  "test_coverage_extra.pdb"
  "test_coverage_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
