# Empty dependencies file for test_coverage_extra.
# This may be replaced when dependencies are built.
