file(REMOVE_RECURSE
  "CMakeFiles/test_equivalence.dir/test_equivalence.cpp.o"
  "CMakeFiles/test_equivalence.dir/test_equivalence.cpp.o.d"
  "test_equivalence"
  "test_equivalence.pdb"
  "test_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
