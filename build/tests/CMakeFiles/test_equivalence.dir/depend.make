# Empty dependencies file for test_equivalence.
# This may be replaced when dependencies are built.
