# Empty dependencies file for test_pattern.
# This may be replaced when dependencies are built.
