# Empty dependencies file for iot_fusion.
# This may be replaced when dependencies are built.
