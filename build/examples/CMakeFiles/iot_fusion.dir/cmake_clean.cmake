file(REMOVE_RECURSE
  "CMakeFiles/iot_fusion.dir/iot_fusion.cpp.o"
  "CMakeFiles/iot_fusion.dir/iot_fusion.cpp.o.d"
  "iot_fusion"
  "iot_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
