# Empty dependencies file for roundtrip_explorer.
# This may be replaced when dependencies are built.
