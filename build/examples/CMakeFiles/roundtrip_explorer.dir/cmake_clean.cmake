file(REMOVE_RECURSE
  "CMakeFiles/roundtrip_explorer.dir/roundtrip_explorer.cpp.o"
  "CMakeFiles/roundtrip_explorer.dir/roundtrip_explorer.cpp.o.d"
  "roundtrip_explorer"
  "roundtrip_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundtrip_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
