file(REMOVE_RECURSE
  "CMakeFiles/gamma_primes.dir/gamma_primes.cpp.o"
  "CMakeFiles/gamma_primes.dir/gamma_primes.cpp.o.d"
  "gamma_primes"
  "gamma_primes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_primes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
