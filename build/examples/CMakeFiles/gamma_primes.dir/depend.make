# Empty dependencies file for gamma_primes.
# This may be replaced when dependencies are built.
