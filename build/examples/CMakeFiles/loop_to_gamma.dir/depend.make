# Empty dependencies file for loop_to_gamma.
# This may be replaced when dependencies are built.
