file(REMOVE_RECURSE
  "CMakeFiles/loop_to_gamma.dir/loop_to_gamma.cpp.o"
  "CMakeFiles/loop_to_gamma.dir/loop_to_gamma.cpp.o.d"
  "loop_to_gamma"
  "loop_to_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_to_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
