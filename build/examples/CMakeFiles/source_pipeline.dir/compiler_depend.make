# Empty compiler generated dependencies file for source_pipeline.
# This may be replaced when dependencies are built.
