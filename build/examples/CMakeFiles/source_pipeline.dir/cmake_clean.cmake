file(REMOVE_RECURSE
  "CMakeFiles/source_pipeline.dir/source_pipeline.cpp.o"
  "CMakeFiles/source_pipeline.dir/source_pipeline.cpp.o.d"
  "source_pipeline"
  "source_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
