# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_run_fig1_src "/root/repo/build/tools/gammaflow" "run" "/root/repo/examples/programs/fig1.src")
set_tests_properties(cli_run_fig1_src PROPERTIES  PASS_REGULAR_EXPRESSION "m = 0" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_run_fig2_loop "/root/repo/build/tools/gammaflow" "run" "/root/repo/examples/programs/fig2_loop.src")
set_tests_properties(cli_run_fig2_loop PROPERTIES  PASS_REGULAR_EXPRESSION "x = 120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_togamma_fig1 "/root/repo/build/tools/gammaflow" "togamma" "/root/repo/examples/programs/fig1.src")
set_tests_properties(cli_togamma_fig1 PROPERTIES  PASS_REGULAR_EXPRESSION "by \\[id1 \\+ id2" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_rungamma_min "/root/repo/build/tools/gammaflow" "rungamma" "/root/repo/examples/programs/min.gamma" "--init" "[5] [3] [9] [1]" "--engine" "par")
set_tests_properties(cli_rungamma_min PROPERTIES  PASS_REGULAR_EXPRESSION "{\\[1\\]}" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_fuse_fig1 "/root/repo/build/tools/gammaflow" "fuse" "/root/repo/examples/programs/fig1.gamma" "--init" "[1,'A1'] [5,'B1'] [3,'C1'] [2,'D1']")
set_tests_properties(cli_fuse_fig1 PROPERTIES  PASS_REGULAR_EXPRESSION "'m'" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_reconstruct_fig1 "/root/repo/build/tools/gammaflow" "reconstruct" "/root/repo/examples/programs/fig1.gamma" "--init" "[1,'A1'] [5,'B1'] [3,'C1'] [2,'D1']")
set_tests_properties(cli_reconstruct_fig1 PROPERTIES  PASS_REGULAR_EXPRESSION "dataflow v1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_lint_fig1 "/root/repo/build/tools/gammaflow" "lint" "/root/repo/examples/programs/fig1.gamma" "--init" "[1,'A1'] [5,'B1'] [3,'C1'] [2,'D1']")
set_tests_properties(cli_lint_fig1 PROPERTIES  PASS_REGULAR_EXPRESSION "leaked-label" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;45;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_opt_classify "/root/repo/build/tools/gammaflow" "opt" "/root/repo/examples/programs/classify.src")
set_tests_properties(cli_opt_classify PROPERTIES  PASS_REGULAR_EXPRESSION "dataflow v1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;50;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_dot_fig2 "/root/repo/build/tools/gammaflow" "dot" "/root/repo/examples/programs/fig2_loop.src")
set_tests_properties(cli_dot_fig2 PROPERTIES  PASS_REGULAR_EXPRESSION "shape=triangle" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;54;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/gammaflow")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;58;add_test;/root/repo/examples/CMakeLists.txt;0;")
