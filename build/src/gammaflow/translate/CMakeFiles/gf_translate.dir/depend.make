# Empty dependencies file for gf_translate.
# This may be replaced when dependencies are built.
