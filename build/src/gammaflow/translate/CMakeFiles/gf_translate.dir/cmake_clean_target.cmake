file(REMOVE_RECURSE
  "libgf_translate.a"
)
