file(REMOVE_RECURSE
  "CMakeFiles/gf_translate.dir/algorithm2.cpp.o"
  "CMakeFiles/gf_translate.dir/algorithm2.cpp.o.d"
  "CMakeFiles/gf_translate.dir/df_to_gamma.cpp.o"
  "CMakeFiles/gf_translate.dir/df_to_gamma.cpp.o.d"
  "CMakeFiles/gf_translate.dir/equivalence.cpp.o"
  "CMakeFiles/gf_translate.dir/equivalence.cpp.o.d"
  "CMakeFiles/gf_translate.dir/reconstruct.cpp.o"
  "CMakeFiles/gf_translate.dir/reconstruct.cpp.o.d"
  "CMakeFiles/gf_translate.dir/reduce.cpp.o"
  "CMakeFiles/gf_translate.dir/reduce.cpp.o.d"
  "libgf_translate.a"
  "libgf_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
