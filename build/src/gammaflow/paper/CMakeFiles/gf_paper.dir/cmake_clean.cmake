file(REMOVE_RECURSE
  "CMakeFiles/gf_paper.dir/figures.cpp.o"
  "CMakeFiles/gf_paper.dir/figures.cpp.o.d"
  "libgf_paper.a"
  "libgf_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
