file(REMOVE_RECURSE
  "libgf_paper.a"
)
