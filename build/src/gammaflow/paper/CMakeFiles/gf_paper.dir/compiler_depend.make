# Empty compiler generated dependencies file for gf_paper.
# This may be replaced when dependencies are built.
