# Empty compiler generated dependencies file for gf_dataflow.
# This may be replaced when dependencies are built.
