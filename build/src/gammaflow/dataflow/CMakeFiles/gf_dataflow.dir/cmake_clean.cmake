file(REMOVE_RECURSE
  "CMakeFiles/gf_dataflow.dir/dot.cpp.o"
  "CMakeFiles/gf_dataflow.dir/dot.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/engine.cpp.o"
  "CMakeFiles/gf_dataflow.dir/engine.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/graph.cpp.o"
  "CMakeFiles/gf_dataflow.dir/graph.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/interpreter.cpp.o"
  "CMakeFiles/gf_dataflow.dir/interpreter.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/node.cpp.o"
  "CMakeFiles/gf_dataflow.dir/node.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/optimize.cpp.o"
  "CMakeFiles/gf_dataflow.dir/optimize.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/parallel_engine.cpp.o"
  "CMakeFiles/gf_dataflow.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/gf_dataflow.dir/serialize.cpp.o"
  "CMakeFiles/gf_dataflow.dir/serialize.cpp.o.d"
  "libgf_dataflow.a"
  "libgf_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
