file(REMOVE_RECURSE
  "libgf_dataflow.a"
)
