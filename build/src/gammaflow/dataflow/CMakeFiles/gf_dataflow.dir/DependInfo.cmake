
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gammaflow/dataflow/dot.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/dot.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/dot.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/engine.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/engine.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/engine.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/graph.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/graph.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/graph.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/interpreter.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/interpreter.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/interpreter.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/node.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/node.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/node.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/optimize.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/optimize.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/optimize.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/parallel_engine.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/parallel_engine.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/parallel_engine.cpp.o.d"
  "/root/repo/src/gammaflow/dataflow/serialize.cpp" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/serialize.cpp.o" "gcc" "src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gammaflow/expr/CMakeFiles/gf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/common/CMakeFiles/gf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
