file(REMOVE_RECURSE
  "CMakeFiles/gf_gamma.dir/dsl/parser.cpp.o"
  "CMakeFiles/gf_gamma.dir/dsl/parser.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/element.cpp.o"
  "CMakeFiles/gf_gamma.dir/element.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/indexed_engine.cpp.o"
  "CMakeFiles/gf_gamma.dir/indexed_engine.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/multiset.cpp.o"
  "CMakeFiles/gf_gamma.dir/multiset.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/parallel_engine.cpp.o"
  "CMakeFiles/gf_gamma.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/pattern.cpp.o"
  "CMakeFiles/gf_gamma.dir/pattern.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/program.cpp.o"
  "CMakeFiles/gf_gamma.dir/program.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/reaction.cpp.o"
  "CMakeFiles/gf_gamma.dir/reaction.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/replay.cpp.o"
  "CMakeFiles/gf_gamma.dir/replay.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/seq_engine.cpp.o"
  "CMakeFiles/gf_gamma.dir/seq_engine.cpp.o.d"
  "CMakeFiles/gf_gamma.dir/store.cpp.o"
  "CMakeFiles/gf_gamma.dir/store.cpp.o.d"
  "libgf_gamma.a"
  "libgf_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
