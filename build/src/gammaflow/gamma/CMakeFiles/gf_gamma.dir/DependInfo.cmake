
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gammaflow/gamma/dsl/parser.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/dsl/parser.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/dsl/parser.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/element.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/element.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/element.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/indexed_engine.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/indexed_engine.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/indexed_engine.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/multiset.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/multiset.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/multiset.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/parallel_engine.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/parallel_engine.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/parallel_engine.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/pattern.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/pattern.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/pattern.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/program.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/program.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/program.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/reaction.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/reaction.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/reaction.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/replay.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/replay.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/replay.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/seq_engine.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/seq_engine.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/seq_engine.cpp.o.d"
  "/root/repo/src/gammaflow/gamma/store.cpp" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/store.cpp.o" "gcc" "src/gammaflow/gamma/CMakeFiles/gf_gamma.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gammaflow/expr/CMakeFiles/gf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/common/CMakeFiles/gf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
