file(REMOVE_RECURSE
  "libgf_gamma.a"
)
