# Empty dependencies file for gf_gamma.
# This may be replaced when dependencies are built.
