file(REMOVE_RECURSE
  "libgf_distrib.a"
)
