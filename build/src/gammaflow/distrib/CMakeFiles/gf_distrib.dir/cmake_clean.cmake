file(REMOVE_RECURSE
  "CMakeFiles/gf_distrib.dir/cluster.cpp.o"
  "CMakeFiles/gf_distrib.dir/cluster.cpp.o.d"
  "libgf_distrib.a"
  "libgf_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
