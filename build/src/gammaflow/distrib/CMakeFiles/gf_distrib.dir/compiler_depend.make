# Empty compiler generated dependencies file for gf_distrib.
# This may be replaced when dependencies are built.
