# Empty compiler generated dependencies file for gf_frontend.
# This may be replaced when dependencies are built.
