file(REMOVE_RECURSE
  "libgf_frontend.a"
)
