
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gammaflow/frontend/ast.cpp" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/ast.cpp.o" "gcc" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/ast.cpp.o.d"
  "/root/repo/src/gammaflow/frontend/compile.cpp" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/compile.cpp.o" "gcc" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/compile.cpp.o.d"
  "/root/repo/src/gammaflow/frontend/parser.cpp" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/parser.cpp.o" "gcc" "src/gammaflow/frontend/CMakeFiles/gf_frontend.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gammaflow/dataflow/CMakeFiles/gf_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/expr/CMakeFiles/gf_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/gammaflow/common/CMakeFiles/gf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
