file(REMOVE_RECURSE
  "CMakeFiles/gf_frontend.dir/ast.cpp.o"
  "CMakeFiles/gf_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/gf_frontend.dir/compile.cpp.o"
  "CMakeFiles/gf_frontend.dir/compile.cpp.o.d"
  "CMakeFiles/gf_frontend.dir/parser.cpp.o"
  "CMakeFiles/gf_frontend.dir/parser.cpp.o.d"
  "libgf_frontend.a"
  "libgf_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
