file(REMOVE_RECURSE
  "CMakeFiles/gf_common.dir/label.cpp.o"
  "CMakeFiles/gf_common.dir/label.cpp.o.d"
  "CMakeFiles/gf_common.dir/logging.cpp.o"
  "CMakeFiles/gf_common.dir/logging.cpp.o.d"
  "CMakeFiles/gf_common.dir/stats.cpp.o"
  "CMakeFiles/gf_common.dir/stats.cpp.o.d"
  "CMakeFiles/gf_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gf_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/gf_common.dir/value.cpp.o"
  "CMakeFiles/gf_common.dir/value.cpp.o.d"
  "libgf_common.a"
  "libgf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
