# Empty compiler generated dependencies file for gf_common.
# This may be replaced when dependencies are built.
