
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gammaflow/common/label.cpp" "src/gammaflow/common/CMakeFiles/gf_common.dir/label.cpp.o" "gcc" "src/gammaflow/common/CMakeFiles/gf_common.dir/label.cpp.o.d"
  "/root/repo/src/gammaflow/common/logging.cpp" "src/gammaflow/common/CMakeFiles/gf_common.dir/logging.cpp.o" "gcc" "src/gammaflow/common/CMakeFiles/gf_common.dir/logging.cpp.o.d"
  "/root/repo/src/gammaflow/common/stats.cpp" "src/gammaflow/common/CMakeFiles/gf_common.dir/stats.cpp.o" "gcc" "src/gammaflow/common/CMakeFiles/gf_common.dir/stats.cpp.o.d"
  "/root/repo/src/gammaflow/common/thread_pool.cpp" "src/gammaflow/common/CMakeFiles/gf_common.dir/thread_pool.cpp.o" "gcc" "src/gammaflow/common/CMakeFiles/gf_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/gammaflow/common/value.cpp" "src/gammaflow/common/CMakeFiles/gf_common.dir/value.cpp.o" "gcc" "src/gammaflow/common/CMakeFiles/gf_common.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
