file(REMOVE_RECURSE
  "libgf_common.a"
)
