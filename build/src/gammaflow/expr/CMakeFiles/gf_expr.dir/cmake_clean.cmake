file(REMOVE_RECURSE
  "CMakeFiles/gf_expr.dir/ast.cpp.o"
  "CMakeFiles/gf_expr.dir/ast.cpp.o.d"
  "CMakeFiles/gf_expr.dir/eval.cpp.o"
  "CMakeFiles/gf_expr.dir/eval.cpp.o.d"
  "CMakeFiles/gf_expr.dir/lexer.cpp.o"
  "CMakeFiles/gf_expr.dir/lexer.cpp.o.d"
  "CMakeFiles/gf_expr.dir/parser.cpp.o"
  "CMakeFiles/gf_expr.dir/parser.cpp.o.d"
  "CMakeFiles/gf_expr.dir/simplify.cpp.o"
  "CMakeFiles/gf_expr.dir/simplify.cpp.o.d"
  "libgf_expr.a"
  "libgf_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
