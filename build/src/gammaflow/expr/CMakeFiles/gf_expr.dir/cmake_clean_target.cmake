file(REMOVE_RECURSE
  "libgf_expr.a"
)
