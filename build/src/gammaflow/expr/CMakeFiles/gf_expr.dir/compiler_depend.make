# Empty compiler generated dependencies file for gf_expr.
# This may be replaced when dependencies are built.
