
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gammaflow/expr/ast.cpp" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/ast.cpp.o" "gcc" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/ast.cpp.o.d"
  "/root/repo/src/gammaflow/expr/eval.cpp" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/eval.cpp.o" "gcc" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/eval.cpp.o.d"
  "/root/repo/src/gammaflow/expr/lexer.cpp" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/lexer.cpp.o" "gcc" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/lexer.cpp.o.d"
  "/root/repo/src/gammaflow/expr/parser.cpp" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/parser.cpp.o" "gcc" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/parser.cpp.o.d"
  "/root/repo/src/gammaflow/expr/simplify.cpp" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/simplify.cpp.o" "gcc" "src/gammaflow/expr/CMakeFiles/gf_expr.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gammaflow/common/CMakeFiles/gf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
