file(REMOVE_RECURSE
  "libgf_analysis.a"
)
