file(REMOVE_RECURSE
  "CMakeFiles/gf_analysis.dir/analysis.cpp.o"
  "CMakeFiles/gf_analysis.dir/analysis.cpp.o.d"
  "CMakeFiles/gf_analysis.dir/lint.cpp.o"
  "CMakeFiles/gf_analysis.dir/lint.cpp.o.d"
  "libgf_analysis.a"
  "libgf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
