# Empty dependencies file for gf_analysis.
# This may be replaced when dependencies are built.
