// E1 (Fig. 1): the expression graph m = (x+y) - (k*j), its Gamma conversion,
// and width-scaled random expression graphs on both runtimes.
//
// Reproduced claim: the converted Gamma program computes the identical
// result, on every engine, for every parameterization; execution cost of
// multiset rewriting vs tagged-token firing is measured across expression
// widths.
#include "bench_util.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

void verify() {
  bench::header("E1 / Fig. 1 — expression graph m = (x + y) - (k * j)",
                "claim: dataflow result == Gamma result for all inputs/engines");
  bench::Table table({"x", "y", "k", "j", "dataflow", "gamma", "agree"});
  const dataflow::Interpreter interp;
  const gamma::IndexedEngine engine;
  for (const auto& [x, y, k, j] :
       {std::tuple{1, 5, 3, 2}, {0, 0, 0, 0}, {-7, 2, 9, 4}, {100, -50, 25, 3}}) {
    const dataflow::Graph g = paper::fig1_graph(x, y, k, j);
    const Value df = interp.run(g).single_output("m");
    const auto conv = translate::dataflow_to_gamma(g);
    const auto gm = engine.run(conv.program, conv.initial)
                        .final_multiset.with_label("m");
    table.row(x, y, k, j, df.to_string(),
              gm.size() == 1 ? gm[0].value().to_string() : "<none>",
              (gm.size() == 1 && gm[0].value() == df) ? "yes" : "NO");
  }
}

void BM_Fig1_Dataflow(benchmark::State& state) {
  const dataflow::Graph g = paper::fig1_graph();
  const dataflow::Interpreter interp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(g));
  }
}
BENCHMARK(BM_Fig1_Dataflow)->Unit(benchmark::kMicrosecond);

void BM_Fig1_GammaIndexed(benchmark::State& state) {
  const auto conv = translate::dataflow_to_gamma(paper::fig1_graph());
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(conv.program, conv.initial));
  }
}
BENCHMARK(BM_Fig1_GammaIndexed)->Unit(benchmark::kMicrosecond);

void BM_Fig1_GammaSequentialOracle(benchmark::State& state) {
  const auto conv = translate::dataflow_to_gamma(paper::fig1_graph());
  const gamma::SequentialEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(conv.program, conv.initial));
  }
}
BENCHMARK(BM_Fig1_GammaSequentialOracle)->Unit(benchmark::kMicrosecond);

// Width sweep: leaves = 4..4096, dataflow vs Gamma (conversion pre-done).
void BM_Expression_Dataflow(benchmark::State& state) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const dataflow::Graph g = paper::random_expression_graph(leaves, 42);
  const dataflow::Interpreter interp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(g));
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Expression_Dataflow)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_Expression_GammaIndexed(benchmark::State& state) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto conv = translate::dataflow_to_gamma(
      paper::random_expression_graph(leaves, 42));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(conv.program, conv.initial));
  }
  state.counters["reactions"] =
      static_cast<double>(conv.program.reaction_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Expression_GammaIndexed)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

}  // namespace

GF_BENCH_MAIN(verify)
