// E17 — serving latency: the worklist-driven incremental fixpoint behind
// `gammaflow serve`. First a scripted-session differential (the daemon's
// final store must equal a batch run over the union of every injection —
// exit 1 on mismatch, the CI smoke gate), then the sparse-touch ablation
// (footprint wakeups vs full rescan across K standing label populations)
// and closed-/open-loop load generation measuring p50/p99
// injection-to-quiescence latency over a real Unix socket.
//
// GF_SERVE_SOCKET=<path> drives an externally started daemon instead of
// the in-process one (CI starts `gammaflow serve --socket` first);
// GF_SERVE_SHUTDOWN=1 additionally sends the shutdown verb when done.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/step_loop.hpp"
#include "gammaflow/serve/server.hpp"
#include "gammaflow/serve/wire.hpp"

using namespace gammaflow;

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Exact percentile from raw samples (sorted copy); the tables report
/// client-observed latency, not histogram-bucket approximations.
double pct(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

const char* kMin = "Rmin = replace x, y by x where x < y";

/// K independent per-label accumulators: an injection tagged 'L<i>' can
/// only ever enable reaction i, so footprint wakeups probe one reaction
/// while the rescan baseline probes all K.
std::string k_label_program(std::size_t k) {
  std::string text;
  for (std::size_t i = 0; i < k; ++i) {
    const std::string label = "L" + std::to_string(i);
    text += "R" + std::to_string(i) + " = replace [a,'" + label + "'], [b,'" +
            label + "'] by [a + b, '" + label + "']\n";
  }
  return text;
}

std::string create_line(const std::string& session, const std::string& program,
                        const std::string& init, bool rescan) {
  std::string line = R"({"verb":"create","session":)" +
                     serve::json_quote(session) +
                     R"(,"program":)" + serve::json_quote(program);
  if (!init.empty()) line += R"(,"init":)" + serve::json_quote(init);
  if (rescan) line += R"(,"rescan":true)";
  return line + "}";
}

std::string inject_line(const std::string& session,
                        const std::string& elements) {
  return R"({"verb":"inject","session":)" + serve::json_quote(session) +
         R"(,"elements":)" + serve::json_quote(elements) + "}";
}

std::string simple_line(const char* verb, const std::string& session) {
  return std::string(R"({"verb":")") + verb + R"(","session":)" +
         serve::json_quote(session) + "}";
}

serve::Json expect_ok(const std::string& reply_line, const char* what) {
  const serve::Json reply = serve::parse_json(reply_line);
  if (!reply.bool_or("ok", false)) {
    std::cout << "FATAL: " << what << " failed: " << reply_line << '\n';
    std::exit(1);
  }
  return reply;
}

// ------------------------------------------------------------- the daemon

/// The daemon under test: an externally started one when GF_SERVE_SOCKET
/// is set (CI mode), otherwise an in-process Server on a scratch socket.
struct Daemon {
  std::string socket_path;
  bool external = false;
  std::unique_ptr<serve::Server> server;
  std::thread thread;

  static Daemon start() {
    Daemon d;
    if (const char* ext = std::getenv("GF_SERVE_SOCKET");
        ext != nullptr && *ext != '\0') {
      d.socket_path = ext;
      d.external = true;
      return d;
    }
    d.socket_path =
        "/tmp/gf_bench_serve_" + std::to_string(::getpid()) + ".sock";
    serve::ServeOptions opts;
    opts.socket_path = d.socket_path;
    opts.default_program = kMin;
    d.server = std::make_unique<serve::Server>(std::move(opts));
    d.thread = std::thread([srv = d.server.get()] { (void)srv->serve_socket(); });
    return d;
  }

  /// Connect with retries: the accept loop may still be binding.
  [[nodiscard]] std::unique_ptr<serve::Client> connect() const {
    for (int attempt = 0;; ++attempt) {
      try {
        return std::make_unique<serve::Client>(socket_path);
      } catch (const Error&) {
        if (attempt > 200) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  void stop() {
    const bool want_shutdown =
        !external || [] {
          const char* s = std::getenv("GF_SERVE_SHUTDOWN");
          return s != nullptr && std::string(s) == "1";
        }();
    if (want_shutdown) {
      (void)connect()->call(R"({"verb":"shutdown"})");
    }
    if (thread.joinable()) thread.join();
  }
};

// ------------------------------------------------- scripted differential

/// The CI gate: replay a seeded injection schedule through the daemon,
/// then diff its final store against a batch IndexedEngine run over the
/// union of every injected element. Byte-identical or exit 1.
void scripted_differential(Daemon& daemon) {
  const std::string program =
      "Rsum = replace [a,'acc'], [b,'acc'] by [a + b, 'acc']\n"
      "Rmin = replace x, y by x where x < y";
  const auto client = daemon.connect();
  expect_ok(client->call(create_line("diff", program, "", false)), "create");

  Rng rng(17);
  gamma::Multiset all;
  std::size_t injected = 0;
  for (int batch = 0; batch < 12; ++batch) {
    std::string elements;
    const std::size_t n = 1 + rng.bounded(6);
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<std::int64_t>(rng.bounded(1000));
      if (rng.bounded(2) == 0) {
        all.add(gamma::Element{Value(v)});
        elements += std::to_string(v) + " ";
      } else {
        all.add(gamma::Element::labeled(Value(v), "acc"));
        elements += "[" + std::to_string(v) + ",'acc'] ";
      }
      ++injected;
    }
    expect_ok(client->call(inject_line("diff", elements)), "inject");
  }

  const serve::Json snap =
      expect_ok(client->call(simple_line("snapshot", "diff")), "snapshot");
  obs::StoreCounts served;
  for (const auto& [elem, count] : snap.get("store")->as_obj()) {
    served[elem] = count.as_int();
  }
  expect_ok(client->call(simple_line("close", "diff")), "close");

  const obs::StoreCounts oracle = runtime::store_counts(
      gamma::IndexedEngine()
          .run(gamma::dsl::parse_program(program), all)
          .final_multiset);
  bench::Table table({"injections", "injected", "store", "matches_batch"});
  table.row(12, injected, served.size(), served == oracle ? "yes" : "NO");
  if (served != oracle) {
    std::cout << "DIFFERENTIAL MISMATCH: served store != batch fixpoint over "
                 "the union of injections\n";
    std::exit(1);
  }
}

// ------------------------------------------- sparse-touch: worklist A/B

/// K standing populations, traffic touching one label per inject: the
/// footprint index probes O(1) reactions per injection while the rescan
/// baseline probes all K. Identical fixpoints, diverging rematch counts.
void sparse_touch_sweep(Daemon& daemon, obs::Telemetry& tel) {
  std::cout << '\n';
  bench::Table table({"labels", "mode", "p50_us", "p99_us", "wakeups",
                      "rematches"});
  const auto client = daemon.connect();
  for (const std::size_t k : {2u, 8u, 32u}) {
    const std::string program = k_label_program(k);
    std::string init;
    for (std::size_t i = 0; i < k; ++i) {
      for (int v = 0; v < 8; ++v) {
        init += "[" + std::to_string(v) + ",'L" + std::to_string(i) + "'] ";
      }
    }
    for (const bool rescan : {false, true}) {
      const std::string mode = rescan ? "rescan" : "worklist";
      const std::string session = mode + std::to_string(k);
      expect_ok(client->call(create_line(session, program, init, rescan)),
                "create");
      std::vector<double> quiesce;
      Rng rng(23);
      for (int j = 0; j < 200; ++j) {
        const std::string label =
            "L" + std::to_string(static_cast<std::size_t>(j) % k);
        const serve::Json reply = expect_ok(
            client->call(inject_line(
                session, "[" + std::to_string(rng.bounded(100)) + ",'" +
                             label + "']")),
            "inject");
        quiesce.push_back(reply.num_or("quiesce_us", 0.0));
      }
      const serve::Json stats =
          expect_ok(client->call(simple_line("stats", session)), "stats");
      const std::int64_t wakeups = stats.int_or("wakeups", 0);
      const std::int64_t rematches = stats.int_or("rematches", 0);
      table.row(k, mode, pct(quiesce, 0.50), pct(quiesce, 0.99), wakeups,
                rematches);
      const std::string key = "serve.k" + std::to_string(k) + "." + mode;
      tel.stats().count(key + ".rematches",
                        static_cast<std::uint64_t>(rematches));
      auto& hist = tel.stats().hist(key + ".quiesce_us");
      for (const double q : quiesce) hist.observe(q);
      expect_ok(client->call(simple_line("close", session)), "close");
    }
  }
}

// --------------------------------------- batch matching A/B (E18 serve)

/// The serve-side batch ablation: identical sparse-touch traffic against
/// two in-process servers, columnar batch matching on vs off (what
/// `--no-batch` flips). The worklist drains are element-for-element
/// identical — only the per-drain candidate probing changes — so the final
/// snapshots must agree exactly; the table reports quiescence latency.
void batch_sparse_touch_sweep(obs::Telemetry& tel) {
  std::cout << '\n';
  bench::Table table({"labels", "matching", "p50_us", "p99_us", "snapshot"});
  constexpr std::size_t k = 32;
  std::string init;
  for (std::size_t i = 0; i < k; ++i) {
    for (int v = 0; v < 8; ++v) {
      init += "[" + std::to_string(v) + ",'L" + std::to_string(i) + "'] ";
    }
  }
  obs::StoreCounts snaps[2];
  for (const bool batch : {true, false}) {
    serve::ServeOptions opts;
    opts.batch = batch;
    serve::Server server(std::move(opts));
    expect_ok(
        server.handle_line(create_line("e18", k_label_program(k), init,
                                       false)),
        "create");
    std::vector<double> quiesce;
    Rng rng(23);
    for (int j = 0; j < 200; ++j) {
      const std::string label =
          "L" + std::to_string(static_cast<std::size_t>(j) % k);
      const serve::Json reply = expect_ok(
          server.handle_line(inject_line(
              "e18", "[" + std::to_string(rng.bounded(100)) + ",'" + label +
                         "']")),
          "inject");
      quiesce.push_back(reply.num_or("quiesce_us", 0.0));
    }
    const serve::Json snap =
        expect_ok(server.handle_line(simple_line("snapshot", "e18")),
                  "snapshot");
    obs::StoreCounts& counts = snaps[batch ? 0 : 1];
    for (const auto& [elem, count] : snap.get("store")->as_obj()) {
      counts[elem] = count.as_int();
    }
    table.row(k, batch ? "batch" : "no-batch", pct(quiesce, 0.50),
              pct(quiesce, 0.99),
              batch ? "-" : (snaps[0] == snaps[1] ? "identical" : "DIVERGED"));
    auto& hist = tel.stats().hist(std::string("serve.") +
                                  (batch ? "batch" : "nobatch") +
                                  ".quiesce_us");
    for (const double q : quiesce) hist.observe(q);
  }
  if (snaps[0] != snaps[1]) {
    std::cout << "FATAL: batch and --no-batch serve fixpoints diverge\n";
    std::exit(1);
  }
}

// ------------------------------------------------- closed-loop latency

/// Closed loop: each client waits for the reply before injecting again —
/// pure service latency, no queueing. C>1 adds independent connections
/// contending for the daemon.
void closed_loop_sweep(Daemon& daemon, obs::Telemetry& tel) {
  std::cout << '\n';
  bench::Table table({"clients", "injects", "rtt_p50_us", "rtt_p99_us",
                      "quiesce_p50_us", "quiesce_p99_us"});
  for (const std::size_t clients : {1u, 4u}) {
    std::vector<std::vector<double>> rtts(clients), quiesces(clients);
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        const auto client = daemon.connect();
        const std::string session = "cl" + std::to_string(clients) + "_" +
                                    std::to_string(c);
        expect_ok(client->call(create_line(session, kMin, "1000000", false)),
                  "create");
        Rng rng(41 + c);
        for (int j = 0; j < 200; ++j) {
          const auto t0 = Clock::now();
          const serve::Json reply = expect_ok(
              client->call(inject_line(
                  session, std::to_string(rng.bounded(1000000)))),
              "inject");
          rtts[c].push_back(us_since(t0));
          quiesces[c].push_back(reply.num_or("quiesce_us", 0.0));
        }
        expect_ok(client->call(simple_line("close", session)), "close");
      });
    }
    for (std::thread& t : workers) t.join();
    std::vector<double> rtt, quiesce;
    for (std::size_t c = 0; c < clients; ++c) {
      rtt.insert(rtt.end(), rtts[c].begin(), rtts[c].end());
      quiesce.insert(quiesce.end(), quiesces[c].begin(), quiesces[c].end());
    }
    table.row(clients, rtt.size(), pct(rtt, 0.50), pct(rtt, 0.99),
              pct(quiesce, 0.50), pct(quiesce, 0.99));
    auto& hist = tel.stats().hist("serve.closed_c" + std::to_string(clients) +
                                  ".rtt_us");
    for (const double r : rtt) hist.observe(r);
  }
}

// --------------------------------------------------- open-loop latency

/// Open loop: requests leave on a fixed schedule regardless of replies
/// (pipelined on one connection; the daemon serves a connection in
/// order), so latency includes queueing delay once the offered rate
/// passes service capacity — the tail the closed loop can't see.
void open_loop_sweep(Daemon& daemon, obs::Telemetry& tel) {
  std::cout << '\n';
  bench::Table table({"rate_per_s", "requests", "lat_p50_us", "lat_p99_us"});
  for (const double rate : {2000.0, 20000.0}) {
    const int n = 400;
    const auto client = daemon.connect();
    const std::string session = "ol" + std::to_string(static_cast<int>(rate));
    expect_ok(client->call(create_line(session, kMin, "1000000", false)),
              "create");

    std::vector<double> lat;
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    // Each request is scheduled at start + i*interval; latency counts from
    // the SCHEDULED time, not the actual send — when the daemon falls
    // behind the offered rate, a request's wait for the connection to free
    // up is queueing delay and belongs in its latency (the standard
    // coordinated-omission correction).
    const auto start = Clock::now();
    Rng rng(59);
    for (int i = 0; i < n; ++i) {
      const auto scheduled = start + i * interval;
      std::this_thread::sleep_until(scheduled);
      (void)expect_ok(client->call(inject_line(
                          session, std::to_string(rng.bounded(1000000)))),
                      "inject");
      lat.push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                              scheduled)
                        .count());
    }
    expect_ok(client->call(simple_line("close", session)), "close");
    table.row(rate, n, pct(lat, 0.50), pct(lat, 0.99));
    auto& hist = tel.stats().hist(
        "serve.open_r" + std::to_string(static_cast<int>(rate)) + ".lat_us");
    for (const double l : lat) hist.observe(l);
  }
}

void verify() {
  bench::header(
      "E17 — streaming serve mode (worklist incremental fixpoint)",
      "claim: incremental injection reaches the exact batch fixpoint while "
      "footprint wakeups keep injection-to-quiescence latency flat as "
      "standing state grows; full rescan degrades with reaction count");
  Daemon daemon = Daemon::start();
  obs::Telemetry tel;
  scripted_differential(daemon);
  sparse_touch_sweep(daemon, tel);
  batch_sparse_touch_sweep(tel);
  closed_loop_sweep(daemon, tel);
  open_loop_sweep(daemon, tel);
  daemon.stop();
  bench::metrics_json(std::cout, "serve_latency", tel.metrics());
}

// ------------------------------------------------------------ benchmarks

/// In-process (no socket): one inject through Server::handle_line against
/// K standing label populations; arg1 toggles the rescan baseline, arg2 the
/// columnar batch matcher (`--no-batch` when 0).
void BM_Serve_SparseTouchInject(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const bool rescan = state.range(1) != 0;
  const bool batch = state.range(2) != 0;
  serve::ServeOptions opts;
  opts.batch = batch;
  serve::Server server(std::move(opts));
  std::string init;
  for (std::size_t i = 0; i < k; ++i) {
    for (int v = 0; v < 8; ++v) {
      init += "[" + std::to_string(v) + ",'L" + std::to_string(i) + "'] ";
    }
  }
  (void)server.handle_line(create_line("s", k_label_program(k), init, rescan));
  Rng rng(7);
  std::uint64_t j = 0;
  for (auto _ : state) {
    const std::string label = "L" + std::to_string(j++ % k);
    benchmark::DoNotOptimize(server.handle_line(inject_line(
        "s", "[" + std::to_string(rng.bounded(100)) + ",'" + label + "']")));
  }
  state.SetLabel(std::string(rescan ? "rescan" : "worklist") +
                 (batch ? "" : "+no-batch"));
}
BENCHMARK(BM_Serve_SparseTouchInject)
    ->Args({2, 0, 1})->Args({2, 1, 1})->Args({2, 0, 0})
    ->Args({8, 0, 1})->Args({8, 1, 1})->Args({8, 0, 0})
    ->Args({32, 0, 1})->Args({32, 1, 1})->Args({32, 0, 0})
    ->Unit(benchmark::kMicrosecond);

void BM_Serve_ProtocolPing(benchmark::State& state) {
  serve::ServeOptions opts;
  serve::Server server(std::move(opts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(R"({"verb":"ping"})"));
  }
}
BENCHMARK(BM_Serve_ProtocolPing)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
