// E4 (Fig. 4): mapping a Gamma reaction over a multiset by replicating its
// Algorithm-2 graph — instancing counts, instantiation cost, and rounds to
// fixpoint vs direct multiset rewriting.
//
// Reproduced claim: floor(|M| / arity) instances cover the multiset (the
// figure shows 3 instances for 6 elements); iterated mapped rounds reach the
// same fixpoint the rewriting engine reaches.
#include "bench_util.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element{Value(static_cast<std::int64_t>(rng.bounded(1000000)))});
  }
  return m;
}

void verify() {
  bench::header("E4 / Fig. 4 — Gamma-to-dataflow multiset mapping",
                "claim: floor(|M|/arity) instances (3 for |M|=6 in the "
                "figure); mapped rounds and rewriting agree on the fixpoint");
  const auto rmin =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  bench::Table table({"|M|", "instances", "leftover", "rounds", "min_ok"});
  const gamma::IndexedEngine engine;
  for (const std::size_t n : {3u, 6u, 16u, 64u, 256u}) {
    const gamma::Multiset m = random_ints(n, 99 + n);
    const auto mapped = translate::instantiate_mapping(rmin, m);
    const auto run = translate::map_until_fixpoint(rmin, m, 5);
    const auto direct = engine.run(gamma::Program(rmin), m);
    table.row(n, mapped.instances, mapped.leftover, run.rounds,
              run.result == direct.final_multiset ? "yes" : "NO");
  }
}

void BM_Mapping_Instantiate(benchmark::State& state) {
  const auto rmin =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::instantiate_mapping(rmin, m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Mapping_Instantiate)
    ->RangeMultiplier(8)
    ->Range(8, 32768)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_Mapping_RunToFixpoint(benchmark::State& state) {
  const auto rmin =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::map_until_fixpoint(rmin, m, 5));
  }
}
BENCHMARK(BM_Mapping_RunToFixpoint)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond);

void BM_Mapping_DirectRewritingBaseline(benchmark::State& state) {
  const auto rmin =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const gamma::Program p{rmin};
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 7);
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m));
  }
}
BENCHMARK(BM_Mapping_DirectRewritingBaseline)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond);

// Arity ablation: instancing a k-ary reaction (chunks of k).
void BM_Mapping_InstantiateByArity(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::string vars, body;
  for (std::size_t i = 0; i < k; ++i) {
    vars += (i ? ", x" : "x") + std::to_string(i);
    body += (i ? " + x" : "x") + std::to_string(i);
  }
  const auto r =
      gamma::dsl::parse_reaction("R = replace " + vars + " by " + body);
  const gamma::Multiset m = random_ints(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::instantiate_mapping(r, m));
  }
  state.counters["instances"] = static_cast<double>(4096 / k);
}
BENCHMARK(BM_Mapping_InstantiateByArity)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
