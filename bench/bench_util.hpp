// Shared helpers for the experiment harness: each bench binary first prints
// a paper-shaped verification table (the qualitative result the experiment
// reproduces), then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace gammaflow::bench {

inline void header(const std::string& experiment, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << experiment << '\n'
            << claim << '\n'
            << "================================================================\n";
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) {
      std::cout << std::setw(width_) << c;
    }
    std::cout << '\n';
    std::cout << std::string(columns_.size() * static_cast<std::size_t>(width_),
                             '-')
              << '\n';
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    ((std::cout << std::setw(width_) << cells), ...);
    std::cout << '\n';
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// Standard main body: verification table first, benchmarks second.
#define GF_BENCH_MAIN(verify_fn)                       \
  int main(int argc, char** argv) {                    \
    verify_fn();                                       \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }

}  // namespace gammaflow::bench
