// Shared helpers for the experiment harness: each bench binary first prints
// a paper-shaped verification table (the qualitative result the experiment
// reproduces), then runs its google-benchmark timings. Binaries with
// engine-internal telemetry also emit a one-line JSON metrics record (see
// metrics_json) so BENCH_*.json trajectories can carry counters, not just
// wall time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "gammaflow/common/stats.hpp"

namespace gammaflow::bench {

/// When the GF_BENCH_BASELINE environment variable names a file, every
/// metrics_json record is ALSO appended there (one bare JSON object per
/// line, no "# metrics " prefix) — how the committed BENCH_*.json baselines
/// are produced:
///   GF_BENCH_BASELINE=BENCH_engines.json
///     ./bench/bench_parallel_engines --benchmark_filter=NONE
inline std::ofstream* baseline_file() {
  static std::ofstream file;
  static bool opened = [] {
    const char* path = std::getenv("GF_BENCH_BASELINE");
    if (path == nullptr || *path == '\0') return false;
    file.open(path, std::ios::app);
    return file.is_open();
  }();
  return opened ? &file : nullptr;
}

inline void header(const std::string& experiment, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << experiment << '\n'
            << claim << '\n'
            << "================================================================\n";
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) {
      std::cout << std::setw(width_) << c;
    }
    std::cout << '\n';
    std::cout << std::string(columns_.size() * static_cast<std::size_t>(width_),
                             '-')
              << '\n';
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    ((std::cout << std::setw(width_) << cells), ...);
    std::cout << '\n';
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// One-line JSON metrics record: counters verbatim, histograms reduced to
/// count/mean/p50/p99/max. Prefixed "# metrics " so table parsers skip it
/// while trajectory tooling can grep it out of bench logs.
inline void write_metrics_object(std::ostream& os, const std::string& name,
                                 const MetricsSnapshot& m) {
  os << "{\"bench\":\"" << name << "\",\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : m.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : m.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":{\"count\":" << h.count << ",\"mean\":" << h.mean()
       << ",\"p50\":" << h.quantile(0.5) << ",\"p99\":" << h.quantile(0.99)
       << ",\"max\":" << h.max << '}';
  }
  os << "}}";
}

inline void metrics_json(std::ostream& os, const std::string& name,
                         const MetricsSnapshot& m) {
  os << "# metrics ";
  write_metrics_object(os, name, m);
  os << '\n';
  if (std::ofstream* baseline = baseline_file()) {
    write_metrics_object(*baseline, name, m);
    *baseline << '\n';
  }
}

/// Standard main body: verification table first, benchmarks second.
#define GF_BENCH_MAIN(verify_fn)                       \
  int main(int argc, char** argv) {                    \
    verify_fn();                                       \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }

}  // namespace gammaflow::bench
