// E12: bytecode compilation ablation. The same condition/action expressions
// are evaluated by the AST walker (expr::eval) and by the register VM
// (expr::compile + Vm::run); results are asserted identical, then per-eval
// latency and an engine-level rungamma workload are compared. The headline
// number is the geometric-mean VM speedup over condition-heavy expressions,
// emitted as `bytecode.geomean_speedup_milli` in the "# metrics" line.
// The batch-backend section (E18) re-runs the same conditions as 4096-lane
// column batches (compile_batch + BatchVm), bitmap checked lane-for-lane
// against the scalar VM, reporting per-lane latency and
// `bytecode.batch_geomean_speedup_milli`.
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "bench_util.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/expr/eval.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"

using namespace gammaflow;

namespace {

expr::ExprPtr parse_expr(const std::string& text) {
  expr::TokenStream ts(expr::tokenize(text));
  expr::ExprPtr e = expr::parse_expression(ts);
  if (!ts.done()) throw Error("trailing input in '" + text + "'");
  return e;
}

/// Condition-shaped workloads over slots {x, y, z} — the mix a reaction's
/// `where` clause sees: comparisons, mod-tests, short-circuit chains.
struct Workload {
  const char* name;
  const char* source;
};
constexpr Workload kWorkloads[] = {
    {"cmp", "x < y"},
    {"and_chain", "x < y and y < z and x + 1 < z"},
    {"mod_parity", "x % 2 == y % 2 or z % 3 == 0"},
    {"arith_cmp", "(x + y) * 2 - z > x * 3 or x == z"},
    {"poly_mod", "(x * x + y * y - z * z) % 7 == (x + y + z) % 5"},
};

/// Rotating operand sets so neither path degenerates into a single hot
/// branch; the same sequence feeds both evaluators.
constexpr std::int64_t kOperands[][3] = {
    {3, 8, 12}, {9, 2, 40}, {7, 7, 14}, {15, 4, 1}, {6, 11, 35}, {2, 3, 5},
};
constexpr std::size_t kSets = sizeof(kOperands) / sizeof(kOperands[0]);

constexpr int kEvals = 200'000;

template <typename Body>
double ns_per_eval(const Body& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvals; ++i) body(static_cast<std::size_t>(i) % kSets);
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::nano>(dt).count() / kEvals;
}

void verify() {
  bench::header(
      "E12 — bytecode compilation ablation (register VM vs AST walker)",
      "claim: compiled conditions/actions evaluate faster, with results "
      "identical by construction");

  static const std::vector<std::string> kSlots = {"x", "y", "z"};
  MetricsSnapshot metrics;
  bench::Table table(
      {"workload", "ast_ns", "vm_ns", "speedup", "instrs", "agree"});

  double log_sum = 0.0;
  std::size_t measured = 0;
  for (const Workload& w : kWorkloads) {
    const expr::ExprPtr e = parse_expr(w.source);
    const expr::Chunk chunk = expr::compile(e, kSlots);

    // Pre-bind one Env and one slot array per operand set; the loops below
    // only evaluate, so the comparison isolates walker-vs-VM dispatch.
    std::vector<expr::Env> envs;
    std::vector<std::array<Value, 3>> slot_vals(kSets);
    for (std::size_t s = 0; s < kSets; ++s) {
      expr::Env env;
      for (std::size_t v = 0; v < 3; ++v) {
        env.bind(kSlots[v], Value(kOperands[s][v]));
        slot_vals[s][v] = Value(kOperands[s][v]);
      }
      envs.push_back(std::move(env));
    }

    bool agree = true;
    expr::Vm check_vm;
    for (std::size_t s = 0; s < kSets; ++s) {
      const Value* slots[3] = {&slot_vals[s][0], &slot_vals[s][1],
                               &slot_vals[s][2]};
      if (!(expr::eval(e, envs[s]) == check_vm.run(chunk, slots))) {
        agree = false;
      }
    }

    const double ast_ns = ns_per_eval([&](std::size_t s) {
      benchmark::DoNotOptimize(expr::eval(e, envs[s]));
    });
    expr::Vm vm;
    const double vm_ns = ns_per_eval([&](std::size_t s) {
      const Value* slots[3] = {&slot_vals[s][0], &slot_vals[s][1],
                               &slot_vals[s][2]};
      benchmark::DoNotOptimize(vm.run(chunk, slots));
    });
    const double speedup = ast_ns / vm_ns;
    log_sum += std::log(speedup);
    ++measured;

    std::ostringstream sp;
    sp.precision(3);
    sp << speedup << 'x';
    table.row(w.name, static_cast<std::int64_t>(ast_ns),
              static_cast<std::int64_t>(vm_ns), sp.str(), chunk.code.size(),
              agree ? "yes" : "NO");
    metrics.counters["bytecode.ast_ns." + std::string(w.name)] =
        static_cast<std::uint64_t>(ast_ns);
    metrics.counters["bytecode.vm_ns." + std::string(w.name)] =
        static_cast<std::uint64_t>(vm_ns);
    metrics.counters["bytecode.speedup_milli." + std::string(w.name)] =
        static_cast<std::uint64_t>(speedup * 1000.0);
    if (!agree) {
      std::cerr << "FATAL: VM disagrees with walker on " << w.name << '\n';
      std::exit(1);
    }
  }
  const double geomean = std::exp(log_sum / static_cast<double>(measured));
  std::ostringstream gm;
  gm.precision(3);
  gm << geomean << 'x';
  table.row("geomean", "", "", gm.str(), "", "");
  metrics.counters["bytecode.geomean_speedup_milli"] =
      static_cast<std::uint64_t>(geomean * 1000.0);

  // Batch backend (E18): the same conditions over a 4096-lane column — slot
  // x varies per lane, y/z broadcast, exactly the shape the match pipeline
  // feeds it (innermost binder = column, outer binders = scalars). The
  // bitmap must agree with the scalar VM on every lane; the timed loop then
  // compares amortized per-lane latency against scalar per-eval latency.
  {
    std::cout << "\nbatch backend: x as a 4096-lane column, y/z broadcast\n";
    bench::Table btable(
        {"workload", "vm_ns", "batch_ns_lane", "speedup", "fused", "agree"});
    constexpr std::size_t kLanes = 4096;
    constexpr std::array<std::uint8_t, 3> kVec = {1, 0, 0};
    std::vector<std::int64_t> col(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      col[i] = static_cast<std::int64_t>(i % 97) - 11;
    }
    const std::int64_t yv = 8, zv = 12;
    double blog_sum = 0.0;
    std::size_t bmeasured = 0;
    for (const Workload& w : kWorkloads) {
      const expr::Chunk chunk = expr::compile(parse_expr(w.source), kSlots);
      const auto bchunk = expr::compile_batch(chunk, kVec);
      if (!bchunk) {
        std::cerr << "FATAL: int-only workload " << w.name
                  << " refused by compile_batch\n";
        std::exit(1);
      }
      std::array<expr::BatchVm::SlotInput, 3> slots{};
      slots[0].column = col.data();
      slots[1].scalar = yv;
      slots[2].scalar = zv;
      expr::BatchVm bvm;
      std::vector<std::uint8_t> bits;
      if (!bvm.run(*bchunk, slots, kLanes, bits)) {
        std::cerr << "FATAL: batch run aborted on " << w.name << '\n';
        std::exit(1);
      }
      bool agree = true;
      expr::Vm check_vm;
      const Value y{yv}, z{zv};
      for (std::size_t i = 0; i < kLanes; ++i) {
        const Value x{col[i]};
        const Value* sv[3] = {&x, &y, &z};
        if (check_vm.run(chunk, sv).truthy() != (bits[i] != 0)) {
          agree = false;
        }
      }

      expr::Vm vm;
      const double vm_ns = [&] {
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int kReps = 16;
        for (int rep = 0; rep < kReps; ++rep) {
          for (std::size_t i = 0; i < kLanes; ++i) {
            const Value x{col[i]};
            const Value* sv[3] = {&x, &y, &z};
            benchmark::DoNotOptimize(vm.run(chunk, sv));
          }
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        return std::chrono::duration<double, std::nano>(dt).count() / kReps /
               static_cast<double>(kLanes);
      }();
      const double batch_ns = [&] {
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int kReps = 64;
        for (int rep = 0; rep < kReps; ++rep) {
          benchmark::DoNotOptimize(bvm.run(*bchunk, slots, kLanes, bits));
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        return std::chrono::duration<double, std::nano>(dt).count() / kReps /
               static_cast<double>(kLanes);
      }();
      const double speedup = vm_ns / batch_ns;
      blog_sum += std::log(speedup);
      ++bmeasured;

      std::ostringstream sp, bn;
      sp.precision(3);
      sp << speedup << 'x';
      bn.precision(3);
      bn << batch_ns;
      btable.row(w.name, static_cast<std::int64_t>(vm_ns), bn.str(), sp.str(),
                 bchunk->fused_loads, agree ? "yes" : "NO");
      metrics.counters["bytecode.batch_lane_ps." + std::string(w.name)] =
          static_cast<std::uint64_t>(batch_ns * 1000.0);
      metrics.counters["bytecode.batch_speedup_milli." + std::string(w.name)] =
          static_cast<std::uint64_t>(speedup * 1000.0);
      if (!agree) {
        std::cerr << "FATAL: batch bitmap disagrees with scalar VM on "
                  << w.name << '\n';
        std::exit(1);
      }
    }
    const double bgeomean =
        std::exp(blog_sum / static_cast<double>(bmeasured));
    std::ostringstream bgm;
    bgm.precision(3);
    bgm << bgeomean << 'x';
    btable.row("geomean", "", "", bgm.str(), "", "");
    metrics.counters["bytecode.batch_geomean_speedup_milli"] =
        static_cast<std::uint64_t>(bgeomean * 1000.0);
  }

  // Engine-level: a condition-heavy single-reaction program (minimum by
  // pairwise elimination — every candidate pair evaluates the condition)
  // under the indexed engine, compile on vs off, same seed.
  const gamma::Program program =
      gamma::dsl::parse_program("Rmin = replace x, y by x where x < y");
  gamma::Multiset initial;
  for (std::int64_t i = 0; i < 200; ++i) {
    initial.add(gamma::Element{Value((i * 2654435761) % 10'000)});
  }
  const auto timed_run = [&](bool compile, obs::Telemetry* tel) {
    gamma::RunOptions ropts;
    ropts.seed = 42;
    ropts.compile = compile;
    ropts.telemetry = tel;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = gamma::IndexedEngine().run(program, initial, ropts);
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::pair{std::move(result),
                     std::chrono::duration<double, std::milli>(dt).count()};
  };
  (void)timed_run(true, nullptr);  // warm-up (allocators, caches)
  const auto [vm_result, vm_ms] = timed_run(true, nullptr);
  const auto [ast_result, ast_ms] = timed_run(false, nullptr);
  obs::Telemetry tel;  // separate instrumented run feeds the metrics line
  (void)timed_run(true, &tel);
  if (!(vm_result.final_multiset == ast_result.final_multiset)) {
    std::cerr << "FATAL: engine states diverge between compile on/off\n";
    std::exit(1);
  }
  std::cout << "\nrungamma min(200), indexed engine: ast " << ast_ms
            << " ms, vm " << vm_ms << " ms, states identical\n";
  metrics.counters["bytecode.rungamma_ast_us"] =
      static_cast<std::uint64_t>(ast_ms * 1000.0);
  metrics.counters["bytecode.rungamma_vm_us"] =
      static_cast<std::uint64_t>(vm_ms * 1000.0);
  metrics.merge(tel.metrics());
  bench::metrics_json(std::cout, "bytecode", metrics);
}

void BM_Cond_Ast(benchmark::State& state) {
  const expr::ExprPtr e = parse_expr(kWorkloads[1].source);
  expr::Env env;
  env.bind("x", Value(std::int64_t{3}));
  env.bind("y", Value(std::int64_t{8}));
  env.bind("z", Value(std::int64_t{12}));
  for (auto _ : state) benchmark::DoNotOptimize(expr::eval(e, env));
}
BENCHMARK(BM_Cond_Ast)->Unit(benchmark::kNanosecond);

void BM_Cond_Vm(benchmark::State& state) {
  static const std::vector<std::string> kSlots = {"x", "y", "z"};
  const expr::Chunk chunk = expr::compile(parse_expr(kWorkloads[1].source),
                                          kSlots);
  const Value x{std::int64_t{3}}, y{std::int64_t{8}}, z{std::int64_t{12}};
  const Value* slots[3] = {&x, &y, &z};
  expr::Vm vm;
  for (auto _ : state) benchmark::DoNotOptimize(vm.run(chunk, slots));
}
BENCHMARK(BM_Cond_Vm)->Unit(benchmark::kNanosecond);

/// Whole-batch bitmap evaluation: items/s counts LANES, so this is directly
/// comparable with BM_Cond_Vm's per-eval rate.
void BM_Cond_Batch(benchmark::State& state) {
  static const std::vector<std::string> kSlots = {"x", "y", "z"};
  const expr::Chunk chunk = expr::compile(parse_expr(kWorkloads[1].source),
                                          kSlots);
  constexpr std::array<std::uint8_t, 3> kVec = {1, 0, 0};
  const auto bchunk = expr::compile_batch(chunk, kVec);
  std::vector<std::int64_t> col(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < col.size(); ++i) {
    col[i] = static_cast<std::int64_t>(i % 97) - 11;
  }
  std::array<expr::BatchVm::SlotInput, 3> slots{};
  slots[0].column = col.data();
  slots[1].scalar = 8;
  slots[2].scalar = 12;
  expr::BatchVm vm;
  std::vector<std::uint8_t> bits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(*bchunk, slots, col.size(), bits));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Cond_Batch)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Unit(benchmark::kNanosecond);

void BM_Rungamma_Min(benchmark::State& state) {
  const gamma::Program program =
      gamma::dsl::parse_program("Rmin = replace x, y by x where x < y");
  gamma::Multiset initial;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    initial.add(gamma::Element{Value((i * 2654435761) % 10'000)});
  }
  gamma::RunOptions ropts;
  ropts.seed = 42;
  ropts.compile = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gamma::IndexedEngine().run(program, initial, ropts));
  }
}
BENCHMARK(BM_Rungamma_Min)
    ->ArgsProduct({{64, 256}, {0, 1}})
    ->ArgNames({"n", "vm"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

GF_BENCH_MAIN(verify)
