// E2 (Fig. 2): the loop  for(i=z; i>0; i--) x = x + y  with steer/inctag
// control, across iteration counts, on both models and all engines.
//
// Reproduced claim: the nine converted reactions drive the same computation
// the tagged-token machine performs, iteration for iteration; the paper's
// printed (observer-less) graph dissolves to an empty multiset.
#include "bench_util.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

void verify() {
  bench::header("E2 / Fig. 2 — loop graph with steer + inctag",
                "claim: x_final = x + z*y on both models; empty multiset "
                "without an observer");
  bench::Table table(
      {"z", "expected", "dataflow", "gamma", "df_fires", "gm_steps"});
  const dataflow::Interpreter interp;
  const gamma::IndexedEngine engine;
  for (const std::int64_t z : {0, 1, 4, 16, 64}) {
    const dataflow::Graph g = paper::fig2_graph(z, 5, 100, true);
    const auto df = interp.run(g);
    const auto conv = translate::dataflow_to_gamma(g);
    const auto gm = engine.run(conv.program, conv.initial);
    const auto observed = gm.final_multiset.with_label("x_final");
    table.row(z, 100 + 5 * z, df.single_output("x_final").to_string(),
              observed.size() == 1 ? observed[0].value().to_string() : "<none>",
              df.fires, gm.steps);
  }
  const auto listing = engine.run(paper::fig2_gamma(), paper::fig2_initial(8, 5, 100));
  std::cout << "paper's observer-less listing, z=8: final multiset = "
            << listing.final_multiset << " (expected {})\n";
}

void BM_Loop_Dataflow(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(state.range(0), 5, 0, true);
  const dataflow::Interpreter interp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Loop_Dataflow)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_Loop_DataflowParallelPEs(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(state.range(0), 5, 0, true);
  const dataflow::ParallelEngine engine;
  dataflow::DfRunOptions opts;
  opts.workers = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g, opts));
  }
}
BENCHMARK(BM_Loop_DataflowParallelPEs)
    ->RangeMultiplier(10)
    ->Range(1, 1000)
    ->Unit(benchmark::kMicrosecond);

void BM_Loop_GammaIndexed(benchmark::State& state) {
  const auto conv = translate::dataflow_to_gamma(
      paper::fig2_graph(state.range(0), 5, 0, true));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(conv.program, conv.initial));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Loop_GammaIndexed)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

// The reduced six-reaction §III-A3 program against the nine-reaction one.
void BM_Loop_GammaReducedListing(benchmark::State& state) {
  const auto program = paper::fig2_reduced_gamma();
  const auto initial = paper::fig2_initial(state.range(0), 5, 0);
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(program, initial));
  }
}
BENCHMARK(BM_Loop_GammaReducedListing)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Loop_GammaNineReactionListing(benchmark::State& state) {
  const auto program = paper::fig2_gamma();
  const auto initial = paper::fig2_initial(state.range(0), 5, 0);
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(program, initial));
  }
}
BENCHMARK(BM_Loop_GammaNineReactionListing)
    ->RangeMultiplier(10)
    ->Range(1, 10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
