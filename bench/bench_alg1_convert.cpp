// E5 (Algorithm 1): dataflow -> Gamma conversion throughput and scaling
// across graph sizes and node-kind mixes.
//
// Reproduced claim: the conversion is a single linear pass over I and E —
// measured complexity should be ~O(n) in graph size, and the reaction count
// equals the interior node count exactly.
#include "bench_util.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

void verify() {
  bench::header("E5 / Algorithm 1 — dataflow to Gamma conversion",
                "claim: one reaction per interior node, one initial element "
                "per root out-edge, one label per edge");
  bench::Table table({"graph", "nodes", "edges", "reactions", "initialM"});
  const auto show = [&](const char* name, const dataflow::Graph& g) {
    const auto conv = translate::dataflow_to_gamma(g);
    table.row(name, g.node_count(), g.edge_count(),
              conv.program.reaction_count(), conv.initial.size());
  };
  show("fig1", paper::fig1_graph());
  show("fig2", paper::fig2_graph(3, 5, 0, true));
  show("expr(64)", paper::random_expression_graph(64, 1));
  show("expr(1024)", paper::random_expression_graph(1024, 1));
  show("loops(16)", paper::multi_loop_graph(16, 4, true));
}

void BM_Alg1_ExpressionGraphs(benchmark::State& state) {
  const dataflow::Graph g = paper::random_expression_graph(
      static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::dataflow_to_gamma(g));
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_Alg1_ExpressionGraphs)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_Alg1_LoopGraphs(benchmark::State& state) {
  // Steer/inctag-heavy mix (conditional reactions with label disjunctions).
  const dataflow::Graph g = paper::multi_loop_graph(
      static_cast<std::size_t>(state.range(0)), 4, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::dataflow_to_gamma(g));
  }
  state.counters["nodes"] = static_cast<double>(g.node_count());
}
BENCHMARK(BM_Alg1_LoopGraphs)
    ->RangeMultiplier(4)
    ->Range(1, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_Alg1_Fig2Repeated(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(3, 5, 0, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::dataflow_to_gamma(g));
  }
}
BENCHMARK(BM_Alg1_Fig2Repeated)->Unit(benchmark::kMicrosecond);

void BM_Alg1_ShapeTriplesVsPairs(benchmark::State& state) {
  const dataflow::Graph g = paper::random_expression_graph(256, 11);
  const translate::DfToGammaOptions opts{
      state.range(0) == 0 ? translate::DfToGammaOptions::Shape::Pairs
                          : translate::DfToGammaOptions::Shape::Triples};
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::dataflow_to_gamma(g, opts));
  }
  state.SetLabel(state.range(0) == 0 ? "pairs" : "triples");
}
BENCHMARK(BM_Alg1_ShapeTriplesVsPairs)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
