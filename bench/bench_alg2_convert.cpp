// E6 (Algorithm 2 + reconstruction): Gamma -> dataflow conversion cost, per
// reaction (the printed algorithm) and whole-program (the future-work
// reconstruction), vs reaction count and arity.
#include <sstream>

#include "bench_util.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

using namespace gammaflow;

namespace {

void verify() {
  bench::header("E6 / Algorithm 2 — Gamma to dataflow conversion",
                "claim: replace list -> roots, conditions -> cmp + steers, "
                "by-expressions -> arithmetic trees; whole programs rebuild "
                "their source graphs");
  bench::Table table({"reaction", "roots", "cmps", "steers", "ariths"});
  const auto show = [&](const char* name, const gamma::Reaction& r) {
    const auto rg = translate::per_reaction_graph(r);
    std::size_t cmps = 0, steers = 0, ariths = 0;
    for (const auto& n : rg.graph.nodes()) {
      cmps += n.kind == dataflow::NodeKind::Cmp;
      steers += n.kind == dataflow::NodeKind::Steer;
      ariths += n.kind == dataflow::NodeKind::Arith;
    }
    table.row(name, rg.roots.size(), cmps, steers, ariths);
  };
  show("Fig1 R1", gamma::dsl::parse_reaction(
                      "R1 = replace [a,'A1'], [b,'B1'] by [a + b, 'B2']"));
  show("Eq2 min", gamma::dsl::parse_reaction(
                      "Rmin = replace x, y by x where x < y"));
  show("Rd1 (4-ary)", *paper::fig1_reduced_gamma().all_reactions()[0]);

  const auto conv = translate::dataflow_to_gamma(paper::fig2_graph(3, 5, 0, true));
  const auto rebuilt = translate::reconstruct_graph(conv.program, conv.initial);
  std::cout << "whole-program reconstruction of fig2: " << rebuilt.node_count()
            << " nodes / " << rebuilt.edge_count() << " edges (original 13/17)\n";
}

/// k-ary unconditional sum reaction.
gamma::Reaction sum_reaction(std::size_t k) {
  std::ostringstream vars, body;
  for (std::size_t i = 0; i < k; ++i) {
    vars << (i ? ", " : "") << "[x" << i << ", 'l" << i << "']";
    body << (i ? " + x" : "x") << i;
  }
  return gamma::dsl::parse_reaction("R = replace " + vars.str() + " by [" +
                                    body.str() + ", 'out']");
}

void BM_Alg2_PerReactionByArity(benchmark::State& state) {
  const gamma::Reaction r = sum_reaction(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::per_reaction_graph(r));
  }
}
BENCHMARK(BM_Alg2_PerReactionByArity)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_Alg2_PerReactionConditional(benchmark::State& state) {
  const auto r = gamma::dsl::parse_reaction(
      "Rmin = replace x, y by x where x < y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::per_reaction_graph(r));
  }
}
BENCHMARK(BM_Alg2_PerReactionConditional)->Unit(benchmark::kMicrosecond);

void BM_Alg2_ReconstructExpressionPrograms(benchmark::State& state) {
  const auto conv = translate::dataflow_to_gamma(paper::random_expression_graph(
      static_cast<std::size_t>(state.range(0)), 17));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        translate::reconstruct_graph(conv.program, conv.initial));
  }
  state.counters["reactions"] =
      static_cast<double>(conv.program.reaction_count());
}
BENCHMARK(BM_Alg2_ReconstructExpressionPrograms)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Alg2_ReconstructLoopPrograms(benchmark::State& state) {
  const auto conv = translate::dataflow_to_gamma(paper::multi_loop_graph(
      static_cast<std::size_t>(state.range(0)), 4, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        translate::reconstruct_graph(conv.program, conv.initial));
  }
}
BENCHMARK(BM_Alg2_ReconstructLoopPrograms)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Alg2_FullRoundTripFig2(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(3, 5, 0, true);
  for (auto _ : state) {
    const auto conv = translate::dataflow_to_gamma(g);
    benchmark::DoNotOptimize(
        translate::reconstruct_graph(conv.program, conv.initial));
  }
}
BENCHMARK(BM_Alg2_FullRoundTripFig2)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
