// E10 (extension; the paper's §I benefit list): instruction trace reuse
// (DF-DTM, ref [3]) applied to dataflow executions of Gamma-born programs.
// Measures hit rates and the cost/benefit of the memo table on workloads
// with and without operand recurrence.
#include "bench_util.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

using namespace gammaflow;

namespace {

/// Fixpoint iteration x = (x*2)/2 — every firing after round one repeats
/// operands exactly (the best case trace reuse was invented for).
dataflow::Graph reuse_heavy_loop(std::int64_t iters) {
  return frontend::compile_source(
      "int x = 7; for (i = " + std::to_string(iters) +
      "; i > 0; i--) x = (x * 2) / 2; output x;");
}

/// Accumulating loop — operands change every iteration; worst case.
dataflow::Graph reuse_hostile_loop(std::int64_t iters) {
  return frontend::compile_source(
      "int x = 0; for (i = " + std::to_string(iters) +
      "; i > 0; i--) x = x + i; output x;");
}

void verify() {
  bench::header("E10 — instruction trace reuse (DF-DTM, ref [3])",
                "claim: dataflow executions of repetitive programs reuse "
                "prior firings; results are unchanged");
  bench::Table table({"workload", "fires", "hits", "misses", "hit_rate"});
  const dataflow::Interpreter interp;
  dataflow::DfRunOptions memo;
  memo.memoize = true;
  const auto show = [&](const char* name, const dataflow::Graph& g) {
    const auto plain = interp.run(g);
    const auto r = interp.run(g, memo);
    const double rate =
        r.memo_hits + r.memo_misses == 0
            ? 0.0
            : static_cast<double>(r.memo_hits) /
                  static_cast<double>(r.memo_hits + r.memo_misses);
    std::ostringstream pct;
    pct.precision(3);
    pct << rate;
    table.row(name, r.fires, r.memo_hits, r.memo_misses, pct.str());
  };
  show("fig1 (one-shot)", paper::fig1_graph());
  show("fig2 z=64", paper::fig2_graph(64, 5, 0, true));
  show("reuse-heavy(64)", reuse_heavy_loop(64));
  show("reuse-hostile(64)", reuse_hostile_loop(64));
  const auto rmin = gamma::dsl::parse_reaction(
      "Rmin = replace x, y by x where x < y");
  gamma::Multiset m;
  for (int i = 0; i < 32; ++i) m.add(gamma::Element{Value(i % 4)});
  show("fig4 mapping (dup-heavy multiset)",
       translate::instantiate_mapping(rmin, m).graph);
}

void BM_Memo_ReuseHeavy_Off(benchmark::State& state) {
  const dataflow::Graph g = reuse_heavy_loop(state.range(0));
  const dataflow::Interpreter interp;
  for (auto _ : state) benchmark::DoNotOptimize(interp.run(g));
}
BENCHMARK(BM_Memo_ReuseHeavy_Off)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

void BM_Memo_ReuseHeavy_On(benchmark::State& state) {
  const dataflow::Graph g = reuse_heavy_loop(state.range(0));
  const dataflow::Interpreter interp;
  dataflow::DfRunOptions memo;
  memo.memoize = true;
  for (auto _ : state) benchmark::DoNotOptimize(interp.run(g, memo));
}
BENCHMARK(BM_Memo_ReuseHeavy_On)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

void BM_Memo_ReuseHostile_Off(benchmark::State& state) {
  const dataflow::Graph g = reuse_hostile_loop(state.range(0));
  const dataflow::Interpreter interp;
  for (auto _ : state) benchmark::DoNotOptimize(interp.run(g));
}
BENCHMARK(BM_Memo_ReuseHostile_Off)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

void BM_Memo_ReuseHostile_On(benchmark::State& state) {
  // The overhead side of the ledger: a 0%-hit workload pays for hashing.
  const dataflow::Graph g = reuse_hostile_loop(state.range(0));
  const dataflow::Interpreter interp;
  dataflow::DfRunOptions memo;
  memo.memoize = true;
  for (auto _ : state) benchmark::DoNotOptimize(interp.run(g, memo));
}
BENCHMARK(BM_Memo_ReuseHostile_On)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
