// E14 — run-recorder overhead. The journal behind `--record-out` and
// `gammaflow viz` must be effectively free when off (a null-pointer check on
// the hot commit path) and cheap enough to leave on for diagnostic runs.
// Verifies that a recorded run computes the identical result and that the
// journal replays to it, then times record-off vs record-on across the
// Gamma and dataflow engines.
#include <chrono>

#include "bench_util.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/runtime/step_loop.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset ints(std::int64_t n) {
  gamma::Multiset m;
  for (std::int64_t i = 0; i < n; ++i) m.add(gamma::Element({Value(i)}));
  return m;
}

const gamma::Program& min_program() {
  static const gamma::Program p =
      gamma::dsl::parse_program("Rmin = replace x, y by x where x < y");
  return p;
}

void verify() {
  bench::header("E14 — run-recorder overhead (provenance journal)",
                "claim: recording is off-by-default free, and a recorded "
                "run's journal replays to the identical final store");
  bench::Table table(
      {"workload", "fires", "journal_f", "rounds", "bytes", "replay_ok"});
  MetricsSnapshot metrics;

  const auto time_ns = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  {
    const gamma::Multiset initial = ints(256);
    gamma::RunOptions off;
    off.seed = 1;
    gamma::RunResult plain;
    const std::uint64_t ns_off =
        time_ns([&] { plain = gamma::IndexedEngine().run(min_program(),
                                                         initial, off); });
    obs::RunRecorder rec;
    gamma::RunOptions on = off;
    on.record = &rec;
    gamma::RunResult recorded;
    const std::uint64_t ns_on =
        time_ns([&] { recorded = gamma::IndexedEngine().run(min_program(),
                                                            initial, on); });
    const obs::Journal j = rec.take();
    const bool ok =
        plain.final_multiset.canonical() == recorded.final_multiset.canonical() &&
        obs::verify_journal(j).empty() &&
        obs::replay_rounds(j, j.rounds.size()) ==
            runtime::store_counts(recorded.final_multiset);
    table.row("gamma min-256 (idx)", recorded.steps, j.fires.size(),
              j.rounds.size(), obs::journal_to_string(j).size(),
              ok ? "yes" : "NO");
    metrics.counters["gamma_record_off_ns"] = ns_off;
    metrics.counters["gamma_record_on_ns"] = ns_on;
    metrics.counters["gamma_journal_bytes"] = obs::journal_to_string(j).size();
    metrics.counters["gamma_journal_fires"] = j.fires.size();
  }
  {
    const dataflow::Graph g = paper::fig2_graph(128, 5, 0, true);
    dataflow::DfRunOptions off;
    dataflow::DfRunResult plain;
    const std::uint64_t ns_off =
        time_ns([&] { plain = dataflow::Interpreter().run(g, off, {}); });
    obs::RunRecorder rec;
    dataflow::DfRunOptions on;
    on.record = &rec;
    dataflow::DfRunResult recorded;
    const std::uint64_t ns_on =
        time_ns([&] { recorded = dataflow::Interpreter().run(g, on, {}); });
    const obs::Journal j = rec.take();
    const bool ok = plain.outputs == recorded.outputs &&
                    obs::verify_journal(j).empty();
    table.row("dataflow fig2 z=128", recorded.fires, j.fires.size(),
              j.rounds.size(), obs::journal_to_string(j).size(),
              ok ? "yes" : "NO");
    metrics.counters["df_record_off_ns"] = ns_off;
    metrics.counters["df_record_on_ns"] = ns_on;
    metrics.counters["df_journal_bytes"] = obs::journal_to_string(j).size();
    metrics.counters["df_journal_fires"] = j.fires.size();
  }
  bench::metrics_json(std::cout, "recorder_overhead", metrics);
}

void BM_Gamma_RecordOff(benchmark::State& state) {
  const gamma::Multiset initial = ints(state.range(0));
  gamma::RunOptions opts;
  opts.seed = 1;
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(min_program(), initial, opts));
  }
}
BENCHMARK(BM_Gamma_RecordOff)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

void BM_Gamma_RecordOn(benchmark::State& state) {
  const gamma::Multiset initial = ints(state.range(0));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    obs::RunRecorder rec;
    gamma::RunOptions opts;
    opts.seed = 1;
    opts.record = &rec;
    benchmark::DoNotOptimize(engine.run(min_program(), initial, opts));
    benchmark::DoNotOptimize(rec.take());
  }
}
BENCHMARK(BM_Gamma_RecordOn)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

void BM_Df_RecordOff(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(state.range(0), 5, 0, true);
  const dataflow::Interpreter interp;
  for (auto _ : state) benchmark::DoNotOptimize(interp.run(g));
}
BENCHMARK(BM_Df_RecordOff)
    ->RangeMultiplier(4)->Range(16, 256)->Unit(benchmark::kMicrosecond);

void BM_Df_RecordOn(benchmark::State& state) {
  const dataflow::Graph g = paper::fig2_graph(state.range(0), 5, 0, true);
  const dataflow::Interpreter interp;
  for (auto _ : state) {
    obs::RunRecorder rec;
    dataflow::DfRunOptions opts;
    opts.record = &rec;
    benchmark::DoNotOptimize(interp.run(g, opts, {}));
    benchmark::DoNotOptimize(rec.take());
  }
}
BENCHMARK(BM_Df_RecordOn)
    ->RangeMultiplier(4)->Range(16, 256)->Unit(benchmark::kMicrosecond);

void BM_Journal_SerializeParse(benchmark::State& state) {
  obs::RunRecorder rec;
  gamma::RunOptions opts;
  opts.seed = 1;
  opts.record = &rec;
  (void)gamma::IndexedEngine().run(min_program(), ints(state.range(0)), opts);
  const obs::Journal j = rec.take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::parse_journal_string(obs::journal_to_string(j)));
  }
}
BENCHMARK(BM_Journal_SerializeParse)
    ->RangeMultiplier(4)->Range(16, 1024)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
