// E3 (Fig. 3): the Gamma surface grammar — parse / print / round-trip
// throughput on synthetic programs of growing size, plus verification that
// every paper listing round-trips.
#include <sstream>

#include "bench_util.hpp"
#include "gammaflow/expr/lexer.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/paper/figures.hpp"

using namespace gammaflow;

namespace {

/// A chain program with n reactions: Ri consumes label li, emits l(i+1),
/// alternating unconditional / if-else shapes so the grammar is exercised
/// broadly.
std::string chain_program_source(std::size_t n) {
  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) {
    os << "R" << i << " = replace [x, 'l" << i << "', v]\n";
    if (i % 2 == 0) {
      os << "  by [x * 2 + " << i << ", 'l" << i + 1 << "', v]\n";
    } else {
      os << "  by [x - 1, 'l" << i + 1 << "', v] if x > " << i << '\n'
         << "  by [x + 1, 'l" << i + 1 << "', v] else\n";
    }
  }
  return os.str();
}

void verify() {
  bench::header("E3 / Fig. 3 — the Gamma grammar",
                "claim: the paper's surface syntax is a context-free language"
                " our parser accepts; print/parse is a round trip");
  bench::Table table({"listing", "reactions", "roundtrip"});
  const auto check = [&](const char* name, const gamma::Program& p) {
    const std::string printed = gamma::dsl::print(p);
    const gamma::Program again = gamma::dsl::parse_program(printed);
    table.row(name, p.reaction_count(),
              gamma::dsl::print(again) == printed ? "yes" : "NO");
  };
  check("Fig1 R1-R3", paper::fig1_gamma());
  check("Fig1 Rd1", paper::fig1_reduced_gamma());
  check("Fig2 R11-R19", paper::fig2_gamma());
  check("Fig2 Rd11-Rd16", paper::fig2_reduced_gamma());
  check("chain(100)", gamma::dsl::parse_program(chain_program_source(100)));
}

void BM_Grammar_Parse(benchmark::State& state) {
  const std::string source =
      chain_program_source(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gamma::dsl::parse_program(source));
  }
  state.counters["bytes"] = static_cast<double>(source.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Grammar_Parse)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

void BM_Grammar_Print(benchmark::State& state) {
  const gamma::Program p = gamma::dsl::parse_program(
      chain_program_source(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gamma::dsl::print(p));
  }
}
BENCHMARK(BM_Grammar_Print)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Grammar_RoundTrip(benchmark::State& state) {
  const std::string source =
      chain_program_source(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gamma::dsl::print(gamma::dsl::parse_program(source)));
  }
}
BENCHMARK(BM_Grammar_RoundTrip)
    ->RangeMultiplier(10)
    ->Range(10, 1000)
    ->Unit(benchmark::kMicrosecond);

void BM_Grammar_Lexer(benchmark::State& state) {
  const std::string source =
      chain_program_source(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::tokenize(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Grammar_Lexer)
    ->RangeMultiplier(10)
    ->Range(10, 10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
