// E9 (extension; the paper's §IV future work): Gamma on distributed
// multisets. Verifies that sharded execution reaches the centralized
// fixpoint and measures rounds/messages across cluster sizes, placements,
// and latencies — the knobs an IoT deployment would care about.
#include <filesystem>

#include "bench_util.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element{Value(static_cast<std::int64_t>(rng.bounded(100000)))});
  }
  return m;
}

void verify() {
  bench::header("E9 — distributed multisets (SIV future work)",
                "claim: sharded rewriting with Safra termination reaches the "
                "centralized fixpoint; work spreads across nodes");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(200, 5);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  bench::Table table({"nodes", "rounds", "messages", "migrations",
                      "safra_laps", "correct"});
  for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    distrib::ClusterOptions opts;
    opts.nodes = nodes;
    opts.seed = 9;
    const auto r = distrib::run_distributed(p, m, opts);
    table.row(nodes, r.rounds, r.messages, r.migrations, r.token_laps,
              r.final_multiset == expected ? "yes" : "NO");
  }
  // The converted Fig. 2 loop as distributed chemistry.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(6, 5, 100, true));
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  const auto r = distrib::run_distributed(conv.program, conv.initial, opts);
  const auto observed = r.final_multiset.with_label("x_final");
  std::cout << "converted Fig. 2 loop on 4 nodes: x_final = "
            << (observed.empty() ? std::string("<none>")
                                 : observed[0].value().to_string())
            << " (expect 130), " << r.rounds << " rounds, " << r.messages
            << " messages\n";

  // Fault-rate sweep: how much the ack/retry + checkpoint machinery costs
  // as the network degrades. Every cell still converges to the oracle.
  std::cout << '\n';
  bench::Table fault_table({"loss", "crashes/run", "rounds", "messages",
                            "retransmits", "token_regens", "correct"});
  obs::Telemetry tel;
  for (const double loss : {0.0, 0.05, 0.1, 0.2}) {
    for (const std::size_t scheduled_crashes : {0u, 1u, 2u}) {
      distrib::ClusterOptions fopts;
      fopts.nodes = 4;
      fopts.seed = 9;
      fopts.telemetry = &tel;
      fopts.faults.loss = loss;
      fopts.faults.token_timeout = 24;
      for (std::size_t c = 0; c < scheduled_crashes; ++c) {
        fopts.faults.crashes.push_back({4 + 7 * c, 1 + c, 3});
      }
      const auto fr = distrib::run_distributed(p, m, fopts);
      fault_table.row(loss, scheduled_crashes, fr.rounds, fr.messages,
                      fr.retransmissions, fr.token_regenerations,
                      fr.final_multiset == expected ? "yes" : "NO");
    }
  }
  bench::metrics_json(std::cout, "distrib_fault_sweep", tel.metrics());

  // Churn x fault sweep: nodes join and leave mid-run (scheduled plus
  // random churn) while messages drop — epochs tick, shards rebalance
  // incrementally, and every cell still reaches the oracle fixpoint.
  std::cout << '\n';
  bench::Table churn_table({"churn", "loss", "epochs", "rebalances",
                            "labels_moved", "rounds", "correct"});
  obs::Telemetry churn_tel;
  for (const double churn : {0.0, 0.02, 0.05}) {
    for (const double closs : {0.0, 0.1}) {
      distrib::ClusterOptions copts;
      copts.nodes = 4;
      copts.seed = 9;
      copts.telemetry = &churn_tel;
      copts.faults.loss = closs;
      copts.faults.token_timeout = 24;
      copts.faults.membership.joins = {{6, 4}};
      copts.faults.membership.leaves = {{12, 2}};
      copts.faults.membership.churn_rate = churn;
      copts.faults.membership.max_churn = 4;
      const auto cr = distrib::run_distributed(p, m, copts);
      churn_table.row(churn, closs, cr.epochs, cr.rebalances,
                      cr.labels_moved, cr.rounds,
                      cr.final_multiset == expected ? "yes" : "NO");
    }
  }
  bench::metrics_json(std::cout, "distrib_churn_sweep", churn_tel.metrics());

  // Label-skew ablation: the same join+leave schedule over inert labeled
  // cargo sharded at different granularities. Coarse keys (1 hot label)
  // move in all-or-nothing chunks; fine keys rebalance incrementally —
  // labels_moved tracks ownership deltas, never the whole store.
  std::cout << '\n';
  bench::Table skew_table({"labels", "epochs", "labels_moved", "migrations",
                           "correct"});
  const auto skew_p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  for (const std::size_t distinct : {1u, 4u, 16u}) {
    gamma::Multiset sm;
    for (int i = 0; i < 32; ++i) {
      sm.add(gamma::Element::labeled(Value(i), "a"));
      sm.add(gamma::Element::labeled(Value(100 + i), "b"));
    }
    std::size_t cargo = 0;
    for (int i = 0; i < 128; ++i) {
      sm.add(gamma::Element::labeled(
          Value(i), "cargo" + std::to_string(i % static_cast<int>(distinct))));
      ++cargo;
    }
    distrib::ClusterOptions sopts;
    sopts.nodes = 4;
    sopts.seed = 9;
    sopts.faults.membership.joins = {{6, 4}};
    sopts.faults.membership.leaves = {{12, 2}};
    const auto sr = distrib::run_distributed(skew_p, sm, sopts);
    // Which 'a' met which 'b' is the scheduler's choice, so compare label
    // census rather than exact values: all pairs consumed, cargo intact.
    const bool ok = sr.final_multiset.with_label("c").size() == 32 &&
                    sr.final_multiset.with_label("a").empty() &&
                    sr.final_multiset.with_label("b").empty() &&
                    sr.final_multiset.size() == 32 + cargo;
    skew_table.row(distinct, sr.epochs, sr.labels_moved, sr.migrations,
                   ok ? "yes" : "NO");
  }

  // Durability: WAL every committed fire, kill the whole cluster mid-run
  // (max_rounds as the plug-pull), then --resume from the logs alone and
  // finish. The resumed fixpoint must equal the oracle byte for byte.
  std::cout << '\n';
  bench::Table wal_table({"snap_every", "wal_bytes", "records", "compactions",
                          "replays", "resumed_ok"});
  obs::Telemetry wal_tel;
  for (const std::size_t snap_every : {16u, 64u, 256u}) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("gf_bench_wal_" + std::to_string(snap_every));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    distrib::ClusterOptions wopts;
    wopts.nodes = 4;
    wopts.seed = 9;
    wopts.telemetry = &wal_tel;
    wopts.wal_dir = dir.string();
    wopts.wal_snapshot_every = snap_every;
    wopts.faults.membership.joins = {{6, 4}};
    wopts.faults.membership.leaves = {{12, 2}};
    distrib::ClusterOptions killed = wopts;
    killed.max_rounds = 20;  // plug pulled at round 20
    killed.limit_policy = LimitPolicy::Partial;
    (void)distrib::run_distributed(p, m, killed);
    distrib::ClusterOptions resumed = wopts;
    resumed.resume = true;
    const auto wr = distrib::run_distributed(p, m, resumed);
    wal_table.row(snap_every, wr.wal_bytes, wr.wal_records,
                  wr.wal_compactions, wr.wal_replays,
                  wr.final_multiset == expected ? "yes" : "NO");
    std::filesystem::remove_all(dir);
  }
  bench::metrics_json(std::cout, "distrib_wal", wal_tel.metrics());
}

void BM_Distrib_FaultRateSweep(benchmark::State& state) {
  // Message loss 0–20%: each retry round-trip stretches convergence; the
  // protocol overhead (retransmissions, acks) is the price of exactness.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  opts.faults.loss = static_cast<double>(state.range(0)) / 100.0;
  opts.faults.token_timeout = 24;
  std::uint64_t rounds = 0, retransmissions = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    retransmissions = r.retransmissions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["retransmits"] = static_cast<double>(retransmissions);
}
BENCHMARK(BM_Distrib_FaultRateSweep)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_CrashRecovery(benchmark::State& state) {
  // 0-2 scheduled crash-restarts per run: checkpoint/replica restore plus
  // sender-side retries; rounds grow with downtime, correctness holds.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  opts.faults.token_timeout = 24;
  for (std::int64_t c = 0; c < state.range(0); ++c) {
    opts.faults.crashes.push_back(
        {static_cast<std::size_t>(4 + 7 * c), static_cast<std::size_t>(1 + c),
         3});
  }
  std::uint64_t rounds = 0, checkpoints = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    checkpoints = r.checkpoints;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
}
BENCHMARK(BM_Distrib_CrashRecovery)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_SumByClusterSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(256, 5);
  distrib::ClusterOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.seed = 9;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_SumByClusterSize)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_SumByMultisetSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distrib::run_distributed(p, m, opts));
  }
}
BENCHMARK(BM_Distrib_SumByMultisetSize)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_PlacementAblation(benchmark::State& state) {
  // DESIGN §5: placement decides how much stirring is needed before
  // labeled partners meet.
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 64; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(i), "b"));
  }
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.placement = static_cast<distrib::Placement>(state.range(0));
  std::uint64_t migrations = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    migrations = r.migrations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["migrations"] = static_cast<double>(migrations);
  state.SetLabel(state.range(0) == 0   ? "hash"
                 : state.range(0) == 1 ? "round-robin"
                                       : "single-node");
}
BENCHMARK(BM_Distrib_PlacementAblation)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_LatencySweep(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.latency = static_cast<std::size_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_LatencySweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_ChurnRate(benchmark::State& state) {
  // Random membership churn 0-10%: every epoch change re-keys ownership
  // and triggers an incremental rebalance; rounds stretch with the number
  // of epochs, but only re-owned labels ever move.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  opts.faults.token_timeout = 24;
  opts.faults.membership.churn_rate =
      static_cast<double>(state.range(0)) / 100.0;
  opts.faults.membership.max_churn = 6;
  std::uint64_t rounds = 0, epochs = 0, labels_moved = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    epochs = r.epochs;
    labels_moved = r.labels_moved;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["epochs"] = static_cast<double>(epochs);
  state.counters["labels_moved"] = static_cast<double>(labels_moved);
}
BENCHMARK(BM_Distrib_ChurnRate)
    ->Arg(0)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_WalOverhead(benchmark::State& state) {
  // Write-ahead logging tax vs snapshot cadence (arg = wal_snapshot_every;
  // 0 disables the WAL). Tighter cadence = more compaction rewrites but a
  // shorter replay tail after a crash.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  const std::size_t snap_every = static_cast<std::size_t>(state.range(0));
  const auto dir = std::filesystem::temp_directory_path() / "gf_bench_walbm";
  if (snap_every > 0) {
    std::filesystem::create_directories(dir);
    opts.wal_dir = dir.string();
    opts.wal_snapshot_every = snap_every;
  }
  std::uint64_t wal_bytes = 0, compactions = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    wal_bytes = r.wal_bytes;
    compactions = r.wal_compactions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["wal_bytes"] = static_cast<double>(wal_bytes);
  state.counters["compactions"] = static_cast<double>(compactions);
  if (snap_every > 0) std::filesystem::remove_all(dir);
  state.SetLabel(snap_every == 0 ? "wal-off" : "wal-on");
}
BENCHMARK(BM_Distrib_WalOverhead)
    ->Arg(0)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_ReplicationFactor(benchmark::State& state) {
  // R in-ring replicas under scheduled crashes: higher R means a crashed
  // node's shard survives even when its first successor is down too, so
  // restores wait less (replica_waits) at the cost of wider checkpoints.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 5;
  opts.seed = 9;
  opts.replication_factor = static_cast<std::size_t>(state.range(0));
  opts.faults.token_timeout = 24;
  opts.faults.crashes.push_back({4, 1, 6});
  opts.faults.crashes.push_back({6, 2, 6});
  std::uint64_t recoveries = 0, waits = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    recoveries = r.recoveries;
    waits = r.replica_waits;
    benchmark::DoNotOptimize(r);
  }
  state.counters["recoveries"] = static_cast<double>(recoveries);
  state.counters["replica_waits"] = static_cast<double>(waits);
}
BENCHMARK(BM_Distrib_ReplicationFactor)
    ->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
