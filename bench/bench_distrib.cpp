// E9 (extension; the paper's §IV future work): Gamma on distributed
// multisets. Verifies that sharded execution reaches the centralized
// fixpoint and measures rounds/messages across cluster sizes, placements,
// and latencies — the knobs an IoT deployment would care about.
#include "bench_util.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element{Value(static_cast<std::int64_t>(rng.bounded(100000)))});
  }
  return m;
}

void verify() {
  bench::header("E9 — distributed multisets (SIV future work)",
                "claim: sharded rewriting with Safra termination reaches the "
                "centralized fixpoint; work spreads across nodes");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(200, 5);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  bench::Table table({"nodes", "rounds", "messages", "migrations",
                      "safra_laps", "correct"});
  for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    distrib::ClusterOptions opts;
    opts.nodes = nodes;
    opts.seed = 9;
    const auto r = distrib::run_distributed(p, m, opts);
    table.row(nodes, r.rounds, r.messages, r.migrations, r.token_laps,
              r.final_multiset == expected ? "yes" : "NO");
  }
  // The converted Fig. 2 loop as distributed chemistry.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(6, 5, 100, true));
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  const auto r = distrib::run_distributed(conv.program, conv.initial, opts);
  const auto observed = r.final_multiset.with_label("x_final");
  std::cout << "converted Fig. 2 loop on 4 nodes: x_final = "
            << (observed.empty() ? std::string("<none>")
                                 : observed[0].value().to_string())
            << " (expect 130), " << r.rounds << " rounds, " << r.messages
            << " messages\n";
}

void BM_Distrib_SumByClusterSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(256, 5);
  distrib::ClusterOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.seed = 9;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_SumByClusterSize)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_SumByMultisetSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distrib::run_distributed(p, m, opts));
  }
}
BENCHMARK(BM_Distrib_SumByMultisetSize)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_PlacementAblation(benchmark::State& state) {
  // DESIGN §5: placement decides how much stirring is needed before
  // labeled partners meet.
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 64; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(i), "b"));
  }
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.placement = static_cast<distrib::Placement>(state.range(0));
  std::uint64_t migrations = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    migrations = r.migrations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["migrations"] = static_cast<double>(migrations);
  state.SetLabel(state.range(0) == 0   ? "hash"
                 : state.range(0) == 1 ? "round-robin"
                                       : "single-node");
}
BENCHMARK(BM_Distrib_PlacementAblation)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_LatencySweep(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.latency = static_cast<std::size_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_LatencySweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
