// E9 (extension; the paper's §IV future work): Gamma on distributed
// multisets. Verifies that sharded execution reaches the centralized
// fixpoint and measures rounds/messages across cluster sizes, placements,
// and latencies — the knobs an IoT deployment would care about.
#include "bench_util.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element{Value(static_cast<std::int64_t>(rng.bounded(100000)))});
  }
  return m;
}

void verify() {
  bench::header("E9 — distributed multisets (SIV future work)",
                "claim: sharded rewriting with Safra termination reaches the "
                "centralized fixpoint; work spreads across nodes");
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(200, 5);
  const auto expected = gamma::IndexedEngine().run(p, m).final_multiset;
  bench::Table table({"nodes", "rounds", "messages", "migrations",
                      "safra_laps", "correct"});
  for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    distrib::ClusterOptions opts;
    opts.nodes = nodes;
    opts.seed = 9;
    const auto r = distrib::run_distributed(p, m, opts);
    table.row(nodes, r.rounds, r.messages, r.migrations, r.token_laps,
              r.final_multiset == expected ? "yes" : "NO");
  }
  // The converted Fig. 2 loop as distributed chemistry.
  const auto conv =
      translate::dataflow_to_gamma(paper::fig2_graph(6, 5, 100, true));
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  const auto r = distrib::run_distributed(conv.program, conv.initial, opts);
  const auto observed = r.final_multiset.with_label("x_final");
  std::cout << "converted Fig. 2 loop on 4 nodes: x_final = "
            << (observed.empty() ? std::string("<none>")
                                 : observed[0].value().to_string())
            << " (expect 130), " << r.rounds << " rounds, " << r.messages
            << " messages\n";

  // Fault-rate sweep: how much the ack/retry + checkpoint machinery costs
  // as the network degrades. Every cell still converges to the oracle.
  std::cout << '\n';
  bench::Table fault_table({"loss", "crashes/run", "rounds", "messages",
                            "retransmits", "token_regens", "correct"});
  obs::Telemetry tel;
  for (const double loss : {0.0, 0.05, 0.1, 0.2}) {
    for (const std::size_t scheduled_crashes : {0u, 1u, 2u}) {
      distrib::ClusterOptions fopts;
      fopts.nodes = 4;
      fopts.seed = 9;
      fopts.telemetry = &tel;
      fopts.faults.loss = loss;
      fopts.faults.token_timeout = 24;
      for (std::size_t c = 0; c < scheduled_crashes; ++c) {
        fopts.faults.crashes.push_back({4 + 7 * c, 1 + c, 3});
      }
      const auto fr = distrib::run_distributed(p, m, fopts);
      fault_table.row(loss, scheduled_crashes, fr.rounds, fr.messages,
                      fr.retransmissions, fr.token_regenerations,
                      fr.final_multiset == expected ? "yes" : "NO");
    }
  }
  bench::metrics_json(std::cout, "distrib_fault_sweep", tel.metrics());
}

void BM_Distrib_FaultRateSweep(benchmark::State& state) {
  // Message loss 0–20%: each retry round-trip stretches convergence; the
  // protocol overhead (retransmissions, acks) is the price of exactness.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  opts.faults.loss = static_cast<double>(state.range(0)) / 100.0;
  opts.faults.token_timeout = 24;
  std::uint64_t rounds = 0, retransmissions = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    retransmissions = r.retransmissions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["retransmits"] = static_cast<double>(retransmissions);
}
BENCHMARK(BM_Distrib_FaultRateSweep)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_CrashRecovery(benchmark::State& state) {
  // 0-2 scheduled crash-restarts per run: checkpoint/replica restore plus
  // sender-side retries; rounds grow with downtime, correctness holds.
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.seed = 9;
  opts.faults.token_timeout = 24;
  for (std::int64_t c = 0; c < state.range(0); ++c) {
    opts.faults.crashes.push_back(
        {static_cast<std::size_t>(4 + 7 * c), static_cast<std::size_t>(1 + c),
         3});
  }
  std::uint64_t rounds = 0, checkpoints = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    checkpoints = r.checkpoints;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
}
BENCHMARK(BM_Distrib_CrashRecovery)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_SumByClusterSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(256, 5);
  distrib::ClusterOptions opts;
  opts.nodes = static_cast<std::size_t>(state.range(0));
  opts.seed = 9;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_SumByClusterSize)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_SumByMultisetSize(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distrib::run_distributed(p, m, opts));
  }
}
BENCHMARK(BM_Distrib_SumByMultisetSize)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_PlacementAblation(benchmark::State& state) {
  // DESIGN §5: placement decides how much stirring is needed before
  // labeled partners meet.
  const auto p = gamma::dsl::parse_program(
      "R = replace [x,'a'], [y,'b'] by [x + y, 'c']");
  gamma::Multiset m;
  for (int i = 0; i < 64; ++i) {
    m.add(gamma::Element::labeled(Value(i), "a"));
    m.add(gamma::Element::labeled(Value(i), "b"));
  }
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.placement = static_cast<distrib::Placement>(state.range(0));
  std::uint64_t migrations = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    migrations = r.migrations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["migrations"] = static_cast<double>(migrations);
  state.SetLabel(state.range(0) == 0   ? "hash"
                 : state.range(0) == 1 ? "round-robin"
                                       : "single-node");
}
BENCHMARK(BM_Distrib_PlacementAblation)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Distrib_LatencySweep(benchmark::State& state) {
  const auto p = gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m = random_ints(128, 5);
  distrib::ClusterOptions opts;
  opts.nodes = 4;
  opts.latency = static_cast<std::size_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto r = distrib::run_distributed(p, m, opts);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_Distrib_LatencySweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
