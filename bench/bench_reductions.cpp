// E7 (§III-A3): reductions. Quantifies the paper's granularity trade-off —
// fused programs have fewer concurrent match opportunities and lower match
// probability, but fewer/cheaper firings per result — and times the
// fuse/expand passes themselves.
#include <sstream>

#include "bench_util.hpp"
#include "gammaflow/analysis/analysis.hpp"
#include "gammaflow/analysis/optimize.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/reduce.hpp"

using namespace gammaflow;

namespace {

/// k independent copies of the Fig. 1 input set (distinct values per copy).
gamma::Multiset wide_inputs(std::size_t copies) {
  gamma::Multiset m;
  for (std::size_t i = 0; i < copies; ++i) {
    const auto base = static_cast<std::int64_t>(i) * 100;
    m.add(gamma::Element::labeled(Value(base + 1), "A1"));
    m.add(gamma::Element::labeled(Value(base + 5), "B1"));
    m.add(gamma::Element::labeled(Value(base + 3), "C1"));
    m.add(gamma::Element::labeled(Value(base + 2), "D1"));
  }
  return m;
}

void verify() {
  bench::header(
      "E7 / SIII-A3 — reductions (R1,R2,R3 vs Rd1)",
      "claim: fusing reactions decreases the opportunity to explore "
      "parallelism (concurrent firings) and the chance a random selection "
      "reacts (match probability)");
  const gamma::Program fine = paper::fig1_gamma();
  const gamma::Program coarse = paper::fig1_reduced_gamma();
  bench::Table table({"copies", "conc_fine", "conc_Rd1", "p(R1)", "p(Rd1)"});
  for (const std::size_t copies : {1u, 2u, 4u, 8u, 16u}) {
    const gamma::Multiset m = wide_inputs(copies);
    const double p_r1 = analysis::match_probability(*fine.find("R1"), m);
    const double p_rd1 = analysis::match_probability(*coarse.find("Rd1"), m);
    std::ostringstream pf, pc;
    pf.precision(3);
    pc.precision(3);
    pf << p_r1;
    pc << p_rd1;
    table.row(copies, analysis::concurrent_firings(fine, m),
              analysis::concurrent_firings(coarse, m), pf.str(), pc.str());
  }
  std::cout << "(paper: \"the opportunity of explore the parallelism of "
               "reactions decrease\" under reduction)\n";

  // E16: the fusion planner must rediscover the hand-applied Rd1 on its
  // own: same reaction count, same arity, identical fixpoint. Structural
  // identity makes the auto-vs-hand runtime gap pure noise (the <= 5%
  // acceptance bar); a NO in any cell fails the CI smoke.
  bench::header(
      "E16 / optimizer — auto-fusion vs hand-applied Rd1",
      "claim: the analysis-driven planner finds the paper's reduction "
      "without being told; cost-gated, probe-verified");
  obs::Telemetry tel;
  analysis::OptimizeOptions oopts;
  oopts.telemetry = &tel;
  const auto auto_fused =
      analysis::optimize_program(fine, paper::fig1_initial(), oopts);
  // Fixpoints are compared against the hand-written Rd1 under the same
  // seed: past one copy the fine-grained program may legally pair elements
  // across copies differently (Gamma nondeterminism), but auto vs hand
  // must agree exactly — they are the same reaction modulo binder names.
  bench::Table t2({"copies", "reactions", "arity", "same_as_Rd1", "fixpoint_ok"});
  for (const std::size_t copies : {1u, 4u, 16u}) {
    const gamma::Multiset m = wide_inputs(copies);
    const gamma::IndexedEngine engine;
    const bool same_fixpoint = engine.run(auto_fused.program, m).final_multiset ==
                               engine.run(coarse, m).final_multiset;
    const auto reactions = auto_fused.program.all_reactions();
    const bool same_shape = reactions.size() == 1 &&
                            reactions[0]->arity() ==
                                coarse.all_reactions()[0]->arity();
    t2.row(copies, reactions.size(), reactions[0]->arity(),
           same_shape ? "YES" : "NO", same_fixpoint ? "YES" : "NO");
  }
  tel.stats().count("autofuse.reactions",
                    auto_fused.program.all_reactions().size());
  tel.stats().count("autofuse.cost_before",
                    static_cast<std::uint64_t>(auto_fused.report.cost_before));
  tel.stats().count("autofuse.cost_after",
                    static_cast<std::uint64_t>(auto_fused.report.cost_after));
  bench::metrics_json(std::cout, "reductions_autofuse",
                      tel.stats().snapshot());
}

void BM_Reduce_RunFineGrained(benchmark::State& state) {
  const gamma::Program p = paper::fig1_gamma();
  const gamma::Multiset m =
      wide_inputs(static_cast<std::size_t>(state.range(0)));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m));
  }
}
BENCHMARK(BM_Reduce_RunFineGrained)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_RunFused(benchmark::State& state) {
  const gamma::Program p = paper::fig1_reduced_gamma();
  const gamma::Multiset m =
      wide_inputs(static_cast<std::size_t>(state.range(0)));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m));
  }
}
BENCHMARK(BM_Reduce_RunFused)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_RunAutoFused(benchmark::State& state) {
  // The planner's output instead of the hand-written Rd1: the acceptance
  // bar is this arm tracking BM_Reduce_RunFused within noise.
  const gamma::Program p =
      analysis::optimize_program(paper::fig1_gamma(), paper::fig1_initial())
          .program;
  const gamma::Multiset m =
      wide_inputs(static_cast<std::size_t>(state.range(0)));
  const gamma::IndexedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m));
  }
}
BENCHMARK(BM_Reduce_RunAutoFused)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_OptimizePass(benchmark::State& state) {
  // The planner itself on a deep translated chain (probe verification on).
  const auto conv = translate::dataflow_to_gamma(paper::random_expression_graph(
      static_cast<std::size_t>(state.range(0)), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::optimize_program(conv.program, conv.initial));
  }
  state.counters["reactions"] =
      static_cast<double>(conv.program.reaction_count());
}
BENCHMARK(BM_Reduce_OptimizePass)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_FusePass(benchmark::State& state) {
  // Fusing a deep chain: random expression graph -> converted program.
  const auto conv = translate::dataflow_to_gamma(paper::random_expression_graph(
      static_cast<std::size_t>(state.range(0)), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        translate::fuse_reactions(conv.program, conv.initial));
  }
  state.counters["reactions"] =
      static_cast<double>(conv.program.reaction_count());
}
BENCHMARK(BM_Reduce_FusePass)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_ExpandPass(benchmark::State& state) {
  // Expanding the fused form back out.
  const auto conv = translate::dataflow_to_gamma(paper::random_expression_graph(
      static_cast<std::size_t>(state.range(0)), 5));
  const gamma::Program fused =
      translate::fuse_reactions(conv.program, conv.initial);
  for (auto _ : state) {
    benchmark::DoNotOptimize(translate::expand_program(fused));
  }
}
BENCHMARK(BM_Reduce_ExpandPass)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_Reduce_MatchOpportunityCount(benchmark::State& state) {
  const gamma::Program fine = paper::fig1_gamma();
  const gamma::Multiset m =
      wide_inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::match_opportunities(fine, m, 100000));
  }
}
BENCHMARK(BM_Reduce_MatchOpportunityCount)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
