// E13 — the store under the runtime core's match pipeline: raw
// find/commit throughput, and how the sharded store scales with shard count
// and survives conflict-class skew.
//
// Verification tables (hardware-independent shape):
//   - match throughput vs shard count: one workload, the ParallelEngine on
//     the plan's sharded path with 1..8 classes — fires are identical, the
//     commit path needs no revalidation, and the sharded store splits the
//     work into independently-locked sub-chemistries;
//   - conflict-class skew: the same total population concentrated into one
//     hot class — shard utilization collapses toward a single shard, the
//     known limit of class partitioning (the planner still refuses nothing:
//     results stay identical, only the speedup fades).
// Timed benchmarks: MatchPipeline::find on growing stores (hit and miss
// probes, each swept over the ast/vm/batch evaluators — the E18 dense-match
// ablation), find+commit fixpoints, and the sharded vs global-lock engine
// run.
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "bench_util.hpp"
#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/sharded_store.hpp"

using namespace gammaflow;

namespace {

/// `chains` independent countdown populations — one conflict class per
/// chain, so plan_shards gives the engine `chains` shards.
gamma::Program chain_program(std::size_t chains) {
  std::ostringstream src;
  for (std::size_t i = 0; i < chains; ++i) {
    src << "R" << i << " = replace [x,'c" << i << "'] by [x - 1,'c" << i
        << "'] if x > 0\n";
  }
  return gamma::dsl::parse_program(src.str());
}

/// `total` elements distributed over the chains. `hot_permille` of them go
/// to chain 0 (the skew knob); the rest spread round-robin.
gamma::Multiset chain_init(std::size_t chains, std::size_t total,
                           std::int64_t countdown, std::size_t hot_permille) {
  gamma::Multiset m;
  const std::size_t hot = total * hot_permille / 1000;
  for (std::size_t k = 0; k < total; ++k) {
    const std::size_t chain = k < hot ? 0 : k % chains;
    m.add(gamma::Element::labeled(Value(countdown),
                                  "c" + std::to_string(chain)));
  }
  return m;
}

gamma::RunResult run_chains(std::size_t chains, std::size_t total,
                            std::size_t hot_permille, bool shard,
                            obs::Telemetry* tel) {
  const gamma::Program p = chain_program(chains);
  const gamma::Multiset m = chain_init(chains, total, 12, hot_permille);
  gamma::RunOptions opts;
  opts.workers = 4;
  opts.shard = shard;
  opts.telemetry = tel;
  opts.conflict_classes =
      analysis::analyze_interference(p, m).engine_classes();
  return gamma::ParallelEngine().run(p, m, opts);
}

gamma::Multiset labeled_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element::labeled(
        Value(static_cast<std::int64_t>(rng.bounded(1000))), "h"));
  }
  return m;
}

/// Benchmark arg -> evaluator (0 ast, 1 vm, 2 batch); the E18 sweep axis.
expr::EvalMode eval_mode(std::int64_t arg) {
  switch (arg) {
    case 0: return expr::EvalMode::Ast;
    case 1: return expr::EvalMode::Vm;
    default: return expr::EvalMode::Batch;
  }
}

const char* mode_name(std::int64_t arg) {
  switch (arg) {
    case 0: return "ast";
    case 1: return "vm";
    default: return "batch";
  }
}

void verify() {
  bench::header(
      "E13 — sharded store: match throughput vs shard count and skew",
      "claim: per-shard locks preserve fires and zero-conflict commits at "
      "every shard count; skewing the population into one class degrades "
      "the win gracefully, never the result");

  {
    bench::Table table({"shards", "store", "fires", "conflicts", "wall_ms"},
                       12);
    for (const std::size_t chains : {1u, 2u, 4u, 8u}) {
      for (const bool shard : {false, true}) {
        obs::Telemetry tel;
        const auto r = run_chains(chains, 192, 0, shard, &tel);
        const auto it = r.metrics.counters.find("gamma.commit_conflicts");
        std::ostringstream wall;
        wall.precision(3);
        wall << r.wall_seconds * 1e3;
        table.row(chains, shard && chains > 1 ? "sharded" : "global", r.steps,
                  it == r.metrics.counters.end() ? 0 : it->second,
                  wall.str());
        MetricsSnapshot m = r.metrics;
        m.counters["store.fires"] = r.steps;
        m.counters["store.wall_us"] =
            static_cast<std::uint64_t>(r.wall_seconds * 1e6);
        bench::metrics_json(std::cout,
                            "store_shards_" + std::to_string(chains) +
                                (shard ? "_sharded" : "_global"),
                            m);
      }
    }
  }

  {
    bench::Table table({"hot_pct", "fires", "conflicts", "wall_ms"}, 12);
    for (const std::size_t hot_permille : {0u, 500u, 900u, 1000u}) {
      obs::Telemetry tel;
      const auto r = run_chains(8, 192, hot_permille, true, &tel);
      const auto it = r.metrics.counters.find("gamma.commit_conflicts");
      std::ostringstream wall;
      wall.precision(3);
      wall << r.wall_seconds * 1e3;
      table.row(hot_permille / 10, r.steps,
                it == r.metrics.counters.end() ? 0 : it->second, wall.str());
      MetricsSnapshot m = r.metrics;
      m.counters["store.fires"] = r.steps;
      m.counters["store.wall_us"] =
          static_cast<std::uint64_t>(r.wall_seconds * 1e6);
      bench::metrics_json(
          std::cout, "store_skew_" + std::to_string(hot_permille), m);
    }
  }

  // E18 — dense-match ablation: the identical EXHAUSTIVE failed search
  // (every [x,'h'] pair probed, the condition false everywhere — one
  // quiescence proof) under all three evaluators. Under EvalMode::Batch the
  // innermost bucket sweep becomes one bitmap evaluation per outer binding;
  // the probe answers are identical (no match, checked every rep) and the
  // fixpoint row proves the hit path agrees element-for-element too.
  {
    std::cout << "\nE18 dense-match: exhaustive miss proof, ast vs vm vs "
                 "batch (same store, same answer)\n";
    bench::Table table({"n", "ast_us", "vm_us", "batch_us", "batch_vs_vm"});
    const gamma::Program p = gamma::dsl::parse_program(
        "R = replace [x,'h'], [y,'h'] by [x,'h'] where x < 0");
    const gamma::Reaction& r = p.stages()[0][0];
    MetricsSnapshot metrics;
    for (const std::size_t n : {256u, 1024u, 2048u}) {
      gamma::Store store(labeled_ints(n, 17));
      // O(n^2) probes per sweep: keep the repetition budget flat-ish so the
      // verification stage stays CI-sized even on debug builds.
      const int reps = n >= 2048 ? 1 : (n >= 1024 ? 3 : 10);
      double us[3] = {0.0, 0.0, 0.0};
      for (std::int64_t mi = 0; mi < 3; ++mi) {
        const expr::EvalMode mode = eval_mode(mi);
        if (reps > 1) {  // warm allocators/caches where a rep is cheap
          (void)runtime::MatchPipeline::find(store, r, nullptr, mode);
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < reps; ++i) {
          if (runtime::MatchPipeline::find(store, r, nullptr, mode)) {
            std::cout << "FATAL: dense miss proof found a match under "
                      << mode_name(mi) << '\n';
            std::exit(1);
          }
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        us[mi] = std::chrono::duration<double, std::micro>(dt).count() / reps;
        metrics.counters["store.dense" + std::to_string(n) + "_" +
                         mode_name(mi) + "_ns"] =
            static_cast<std::uint64_t>(us[mi] * 1e3);
      }
      std::ostringstream sp;
      sp.precision(3);
      sp << us[1] / us[2] << 'x';
      table.row(n, static_cast<std::int64_t>(us[0]),
                static_cast<std::int64_t>(us[1]),
                static_cast<std::int64_t>(us[2]), sp.str());
      metrics.counters["store.dense" + std::to_string(n) +
                       "_batch_speedup_milli"] =
          static_cast<std::uint64_t>(us[1] / us[2] * 1000.0);
    }

    // Fixpoint parity: one guarded sum-reduction, same seed, batch on vs
    // off — the rng-parity contract (the fire bitmap only FILTERS; the
    // scalar probe stays the authority) makes the firing sequences, and so
    // the final states, identical.
    const gamma::Program fp = gamma::dsl::parse_program(
        "R = replace [x,'h'], [y,'h'] by [x + y,'h'] where (x + y) % 3 != 1");
    const gamma::Multiset init = labeled_ints(512, 17);
    obs::Telemetry tel;
    gamma::RunOptions bopts;
    bopts.seed = 42;
    bopts.telemetry = &tel;
    const auto batch_run = gamma::IndexedEngine().run(fp, init, bopts);
    gamma::RunOptions sopts;
    sopts.seed = 42;
    sopts.batch = false;
    const auto scalar_run = gamma::IndexedEngine().run(fp, init, sopts);
    const bool same =
        batch_run.final_multiset == scalar_run.final_multiset &&
        batch_run.steps == scalar_run.steps;
    table.row("fixpoint512", "", "", "",
              same ? "identical" : "DIVERGED");
    if (!same) {
      std::cout << "FATAL: batch and scalar fixpoints diverge\n";
      std::exit(1);
    }
    metrics.merge(tel.metrics());
    bench::metrics_json(std::cout, "store_dense_batch", metrics);
  }
}

// --- MatchPipeline::find throughput ----------------------------------------

/// An enabled arity-2 probe: every call walks the bucket and binds a pair.
void BM_StoreFind_Hit(benchmark::State& state) {
  const gamma::Program p = gamma::dsl::parse_program(
      "R = replace [x,'h'], [y,'h'] by [x + y,'h']");
  gamma::Store store(labeled_ints(static_cast<std::size_t>(state.range(0)),
                                  17));
  const gamma::Reaction& r = p.stages()[0][0];
  const expr::EvalMode mode = eval_mode(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::MatchPipeline::find(store, r, &rng, mode));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(mode_name(state.range(1)));
}
BENCHMARK(BM_StoreFind_Hit)
    ->ArgsProduct({benchmark::CreateRange(16, 4096, 4), {0, 1, 2}})
    ->ArgNames({"n", "mode"})
    ->Unit(benchmark::kNanosecond);

/// A disabled probe (condition never holds): the cost of an EXHAUSTIVE
/// failed search — the fixed-point proof every quiescence check pays, and
/// the dense-match sweep where the batch bitmap pays off most (every
/// candidate bucket is evaluated to the end).
void BM_StoreFind_MissProof(benchmark::State& state) {
  const gamma::Program p = gamma::dsl::parse_program(
      "R = replace [x,'h'], [y,'h'] by [x,'h'] where x < 0");
  gamma::Store store(labeled_ints(static_cast<std::size_t>(state.range(0)),
                                  17));
  const gamma::Reaction& r = p.stages()[0][0];
  const expr::EvalMode mode = eval_mode(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::MatchPipeline::find(store, r, nullptr, mode));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(mode_name(state.range(1)));
}
BENCHMARK(BM_StoreFind_MissProof)
    ->ArgsProduct({benchmark::CreateRange(16, 1024, 4), {0, 1, 2}})
    ->ArgNames({"n", "mode"})
    ->Unit(benchmark::kNanosecond);

/// find+commit to the fixed point: sum-reduces n elements to one.
void BM_StoreFindCommit_Fixpoint(benchmark::State& state) {
  const gamma::Program p = gamma::dsl::parse_program(
      "R = replace [x,'h'], [y,'h'] by [x + y,'h']");
  const gamma::Multiset m =
      labeled_ints(static_cast<std::size_t>(state.range(0)), 17);
  const gamma::Reaction& r = p.stages()[0][0];
  const expr::EvalMode mode = eval_mode(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    gamma::Store store(m);
    state.ResumeTiming();
    while (auto match =
               runtime::MatchPipeline::find(store, r, &rng, mode)) {
      runtime::MatchPipeline::commit(store, *match);
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetLabel(mode_name(state.range(1)));
}
BENCHMARK(BM_StoreFindCommit_Fixpoint)
    ->ArgsProduct({benchmark::CreateRange(16, 1024, 4), {0, 1, 2}})
    ->ArgNames({"n", "mode"})
    ->Unit(benchmark::kMicrosecond);

// --- engine-level: sharded vs global lock, shard-count sweep ---------------

void BM_ShardedEngine_ShardSweep(benchmark::State& state) {
  const bool shard = state.range(0) != 0;
  const auto chains = static_cast<std::size_t>(state.range(1));
  const gamma::Program p = chain_program(chains);
  const gamma::Multiset m = chain_init(chains, 128, 12, 0);
  gamma::RunOptions opts;
  opts.workers = 4;
  opts.shard = shard;
  opts.conflict_classes =
      analysis::analyze_interference(p, m).engine_classes();
  const gamma::ParallelEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m, opts));
  }
  state.SetLabel(shard ? "sharded" : "global-lock");
}
BENCHMARK(BM_ShardedEngine_ShardSweep)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_ShardedEngine_Skew(benchmark::State& state) {
  const auto hot_permille = static_cast<std::size_t>(state.range(0));
  const gamma::Program p = chain_program(8);
  const gamma::Multiset m = chain_init(8, 128, 12, hot_permille);
  gamma::RunOptions opts;
  opts.workers = 4;
  opts.conflict_classes =
      analysis::analyze_interference(p, m).engine_classes();
  const gamma::ParallelEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m, opts));
  }
  state.SetLabel(std::to_string(hot_permille / 10) + "% hot");
}
BENCHMARK(BM_ShardedEngine_Skew)
    ->Arg(0)
    ->Arg(500)
    ->Arg(900)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
