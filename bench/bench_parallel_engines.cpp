// E8 (§II claims): both models "express parallelism naturally". Two
// hardware-independent shape checks plus engine timings:
//   - the dataflow wavefront profile (how many node instances are fireable
//     per step) widens with the workload's width;
//   - the Gamma concurrent-firings count does the same;
// and engine comparisons: sequential-oracle vs indexed vs parallel Gamma,
// interpreter vs parallel-PE dataflow, worker sweeps 1..8.
#include "bench_util.hpp"
#include "gammaflow/analysis/analysis.hpp"
#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

namespace {

gamma::Multiset random_ints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element{Value(static_cast<std::int64_t>(rng.bounded(1000000)))});
  }
  return m;
}

// --- conflict classes: paired conflict-free vs high-contention workloads ---

/// `chains` independent countdown populations: reaction i touches only label
/// "c<i>", so interference analysis splits the program into `chains` conflict
/// classes and the parallel engine can commit without revalidation.
gamma::Program chain_program(std::size_t chains) {
  std::ostringstream src;
  for (std::size_t i = 0; i < chains; ++i) {
    src << "R" << i << " = replace [x,'c" << i << "'] by [x - 1,'c" << i
        << "'] if x > 0\n";
  }
  return gamma::dsl::parse_program(src.str());
}

gamma::Multiset chain_init(std::size_t chains, std::size_t per_chain,
                           std::int64_t countdown) {
  gamma::Multiset m;
  for (std::size_t i = 0; i < chains; ++i) {
    for (std::size_t k = 0; k < per_chain; ++k) {
      m.add(gamma::Element::labeled(Value(countdown),
                                    "c" + std::to_string(i)));
    }
  }
  return m;
}

/// Every element shares one label: all reactions compete, one conflict
/// class, and the class optimization (correctly) never engages.
gamma::Program contended_program() {
  return gamma::dsl::parse_program(
      "R = replace [x,'h'], [y,'h'] by [x + y,'h']");
}

gamma::Multiset contended_init(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  gamma::Multiset m;
  for (std::size_t i = 0; i < n; ++i) {
    m.add(gamma::Element::labeled(
        Value(static_cast<std::int64_t>(rng.bounded(1000))), "h"));
  }
  return m;
}

gamma::RunResult run_instrumented(const gamma::Program& p,
                                  const gamma::Multiset& m,
                                  bool with_classes, unsigned workers,
                                  bool shard = true) {
  obs::Telemetry tel;
  gamma::RunOptions opts;
  opts.workers = workers;
  opts.telemetry = &tel;
  opts.shard = shard;
  if (with_classes) {
    opts.conflict_classes =
        analysis::analyze_interference(p, m).engine_classes();
  }
  return gamma::ParallelEngine().run(p, m, opts);
}

void verify_conflict_classes() {
  bench::header(
      "E11 — interference-derived conflict classes in the parallel engine",
      "claim: on class-partitionable workloads the sharded store commits "
      "with zero conflicts and no revalidation; on contended single-class "
      "workloads behavior is unchanged");
  const gamma::Program chains = chain_program(8);
  const gamma::Multiset chains_m = chain_init(8, 16, 24);
  const gamma::Program hot = contended_program();
  const gamma::Multiset hot_m = contended_init(512, 29);

  bench::Table table(
      {"workload", "classes", "store", "fires", "conflicts", "fast_commits"},
      14);
  struct Case {
    const char* name;
    const char* tag;
    const char* store;  // the path the engine actually takes
    const gamma::Program* p;
    const gamma::Multiset* m;
    bool with_classes;
    bool shard;
  };
  // `classes + no-shard` is the pre-sharding engine (optimistic global lock
  // with per-class fast commits); `classes + shard` is the per-shard-lock
  // path the classes now unlock. Contended (one class) cannot shard: both
  // store columns are the optimistic path, behavior unchanged.
  for (const Case c :
       {Case{"conflict-free", "baseline", "global", &chains, &chains_m, false,
             true},
        Case{"conflict-free", "classes_noshard", "global", &chains, &chains_m,
             true, false},
        Case{"conflict-free", "classes", "sharded", &chains, &chains_m, true,
             true},
        Case{"contended", "baseline", "global", &hot, &hot_m, false, true},
        Case{"contended", "classes", "global", &hot, &hot_m, true, true}}) {
    const auto r = run_instrumented(*c.p, *c.m, c.with_classes, 4, c.shard);
    const auto counter = [&](const char* name) {
      const auto it = r.metrics.counters.find(name);
      return it == r.metrics.counters.end() ? std::uint64_t{0} : it->second;
    };
    table.row(c.name, c.with_classes ? "on" : "off", c.store, r.steps,
              counter("gamma.commit_conflicts"),
              counter("gamma.class_fast_commits"));
    bench::metrics_json(
        std::cout, std::string("parallel_gamma_") + c.name + '_' + c.tag,
        r.metrics);
  }
}

void verify() {
  verify_conflict_classes();
  bench::header("E8 — natural parallelism of both models",
                "claim: exposed parallelism grows with workload width in "
                "both models (hardware-independent profiles)");
  bench::Table table({"loops", "df_maxwidth", "df_speedup", "gm_concurrent"});
  for (const std::size_t loops : {1u, 2u, 4u, 8u, 16u}) {
    const dataflow::Graph g = paper::multi_loop_graph(loops, 6, true);
    const auto profile = analysis::parallelism_profile(g);
    const auto conv = translate::dataflow_to_gamma(g);
    std::ostringstream speedup;
    speedup.precision(3);
    speedup << profile.ideal_speedup;
    table.row(loops, profile.max_width, speedup.str(),
              analysis::concurrent_firings(conv.program, conv.initial));
  }
  std::cout << "(this container has " << std::thread::hardware_concurrency()
            << " hardware thread(s); wall-clock speedups below reflect that, "
               "the profiles above do not)\n";

  // One instrumented parallel-engine run so the BENCH_*.json trajectory
  // carries engine-internal counters (match attempts, commit conflicts,
  // quiescence rounds), not just wall time. The timed benchmarks below run
  // with telemetry off, as users would.
  const gamma::Program p =
      gamma::dsl::parse_program("R = replace x, y by x + y");
  obs::Telemetry tel;
  gamma::RunOptions opts;
  opts.telemetry = &tel;
  const auto result =
      gamma::ParallelEngine().run(p, random_ints(1024, 13), opts);
  bench::metrics_json(std::cout, "parallel_gamma_sum_1024", result.metrics);
}

// --- Gamma engines on the sum workload ---

template <typename Engine>
void run_gamma_sum(benchmark::State& state, unsigned workers) {
  const gamma::Program p =
      gamma::dsl::parse_program("R = replace x, y by x + y");
  const gamma::Multiset m =
      random_ints(static_cast<std::size_t>(state.range(0)), 13);
  const Engine engine;
  gamma::RunOptions opts;
  opts.workers = workers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m, opts));
  }
}

void BM_GammaSum_SequentialOracle(benchmark::State& state) {
  run_gamma_sum<gamma::SequentialEngine>(state, 1);
}
BENCHMARK(BM_GammaSum_SequentialOracle)
    ->RangeMultiplier(4)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_GammaSum_Indexed(benchmark::State& state) {
  run_gamma_sum<gamma::IndexedEngine>(state, 1);
}
BENCHMARK(BM_GammaSum_Indexed)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_GammaSum_Parallel1(benchmark::State& state) {
  run_gamma_sum<gamma::ParallelEngine>(state, 1);
}
BENCHMARK(BM_GammaSum_Parallel1)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_GammaSum_Parallel2(benchmark::State& state) {
  run_gamma_sum<gamma::ParallelEngine>(state, 2);
}
BENCHMARK(BM_GammaSum_Parallel2)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_GammaSum_Parallel4(benchmark::State& state) {
  run_gamma_sum<gamma::ParallelEngine>(state, 4);
}
BENCHMARK(BM_GammaSum_Parallel4)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

// --- conflict-class ablation: same workload, classes on/off ---
// The interference analysis runs in setup (it is a one-time compile step);
// the timed region is the engine run it accelerates.

void BM_GammaChains_Parallel(benchmark::State& state) {
  const bool with_classes = state.range(0) != 0;
  const auto chains = static_cast<std::size_t>(state.range(1));
  const gamma::Program p = chain_program(chains);
  const gamma::Multiset m = chain_init(chains, 8, 16);
  gamma::RunOptions opts;
  opts.workers = 4;
  if (with_classes) {
    opts.conflict_classes =
        analysis::analyze_interference(p, m).engine_classes();
  }
  const gamma::ParallelEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m, opts));
  }
  state.SetLabel(with_classes ? "classes" : "baseline");
}
BENCHMARK(BM_GammaChains_Parallel)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond);

// --- sharded-store ablation: same classes, per-shard locks vs global lock ---
// Classes are on in both arms; the only difference is RunOptions::shard,
// i.e. whether the plan's per-shard ownership replaces the optimistic
// shared/exclusive global lock.
void BM_GammaChains_ShardAblation(benchmark::State& state) {
  const bool shard = state.range(0) != 0;
  const auto chains = static_cast<std::size_t>(state.range(1));
  const gamma::Program p = chain_program(chains);
  const gamma::Multiset m = chain_init(chains, 8, 16);
  gamma::RunOptions opts;
  opts.workers = 4;
  opts.shard = shard;
  opts.conflict_classes =
      analysis::analyze_interference(p, m).engine_classes();
  const gamma::ParallelEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, m, opts));
  }
  state.SetLabel(shard ? "sharded" : "global-lock");
}
BENCHMARK(BM_GammaChains_ShardAblation)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond);

// --- dataflow engines on the multi-loop workload ---

void BM_DataflowLoops_Interpreter(benchmark::State& state) {
  const dataflow::Graph g = paper::multi_loop_graph(
      static_cast<std::size_t>(state.range(0)), 16, true);
  const dataflow::Interpreter engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g));
  }
}
BENCHMARK(BM_DataflowLoops_Interpreter)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMicrosecond);

void BM_DataflowLoops_ParallelPEs(benchmark::State& state) {
  const dataflow::Graph g = paper::multi_loop_graph(4, 16, true);
  const dataflow::ParallelEngine engine;
  dataflow::DfRunOptions opts;
  opts.workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g, opts));
  }
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_DataflowLoops_ParallelPEs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// --- indexed vs sequential ablation on a label-partitioned workload ---
// (DESIGN.md §5.2: index-guided matching vs Eq. (1) literal enumeration)
void BM_Ablation_IndexedVsSequential(benchmark::State& state) {
  const gamma::Program p = gamma::dsl::parse_program(R"(
    Ra = replace [x, 'a'], [y, 'a'] by [x + y, 'a']
    Rb = replace [x, 'b'], [y, 'b'] by [x + y, 'b']
    Rc = replace [x, 'c'], [y, 'c'] by [x + y, 'c']
  )");
  gamma::Multiset m;
  Rng rng(21);
  for (std::int64_t i = 0; i < state.range(1); ++i) {
    const char* label = i % 3 == 0 ? "a" : i % 3 == 1 ? "b" : "c";
    m.add(gamma::Element::labeled(
        Value(static_cast<std::int64_t>(rng.bounded(100))), label));
  }
  if (state.range(0) == 0) {
    const gamma::SequentialEngine engine;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(p, m));
    state.SetLabel("sequential-oracle");
  } else {
    const gamma::IndexedEngine engine;
    for (auto _ : state) benchmark::DoNotOptimize(engine.run(p, m));
    state.SetLabel("indexed");
  }
}
BENCHMARK(BM_Ablation_IndexedVsSequential)
    ->Args({0, 30})
    ->Args({1, 30})
    ->Args({0, 90})
    ->Args({1, 90})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(verify)
