#include "gammaflow/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/error.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::serve {

namespace {

std::string reply_str(JsonObj fields) {
  return Json(std::move(fields)).to_string();
}

/// Every error reply: ok:false + a stable machine code + a human message.
/// The codes are part of the protocol (DESIGN §14) — tests match on them.
std::string error_reply(const char* code, const std::string& message,
                        JsonObj extra = {}) {
  extra.insert_or_assign("ok", Json(false));
  extra.insert_or_assign("error", Json(std::string(code)));
  extra.insert_or_assign("message", Json(message));
  return reply_str(std::move(extra));
}

/// Outcome -> the protocol's error code ("deadline_exceeded",
/// "budget_exhausted", "cancelled"); nullptr for Completed.
const char* outcome_error_code(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Completed: return nullptr;
    case Outcome::DeadlineExceeded: return "deadline_exceeded";
    case Outcome::BudgetExhausted: return "budget_exhausted";
    case Outcome::Cancelled: return "cancelled";
  }
  return nullptr;
}

JsonObj counts_to_json(const obs::StoreCounts& counts) {
  JsonObj obj;
  for (const auto& [elem, n] : counts) obj.insert_or_assign(elem, Json(n));
  return obj;
}

void fill_inject_reply(JsonObj& reply, const Session::InjectResult& r) {
  reply.insert_or_assign("fires", Json(r.fires));
  reply.insert_or_assign("fires_total", Json(r.fires_total));
  reply.insert_or_assign("store_size",
                         Json(static_cast<std::int64_t>(r.store_size)));
  reply.insert_or_assign("quiesce_us", Json(r.quiesce_us));
  reply.insert_or_assign("outcome", Json(std::string(to_string(r.outcome))));
}

}  // namespace

std::string session_journal_path(const std::string& record_out,
                                 const std::string& session) {
  const std::size_t slash = record_out.find_last_of('/');
  const std::size_t dot = record_out.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return record_out + "." + session;
  }
  return record_out.substr(0, dot) + "." + session + record_out.substr(dot);
}

Server::Server(ServeOptions options) : options_(std::move(options)) {}

std::size_t Server::session_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::shared_ptr<Session> Server::find_session(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string Server::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Telemetry* tel = options_.telemetry) {
    tel->stats().count("serve.requests");
  }
  Json req;
  try {
    req = parse_json(line);
  } catch (const WireError& e) {
    return error_reply("bad_request", e.what());
  }
  if (!req.is_obj()) {
    return error_reply("bad_request", "request must be a JSON object");
  }
  try {
    return dispatch(req);
  } catch (const WireError& e) {
    return error_reply("bad_request", e.what());
  } catch (const Error& e) {
    return error_reply("internal", e.what());
  } catch (const std::exception& e) {
    return error_reply("internal", e.what());
  }
}

std::string Server::dispatch(const Json& req) {
  const Json* verb = req.get("verb");
  if (verb == nullptr || !verb->is_str()) {
    return error_reply("bad_request", "missing string field 'verb'");
  }
  const std::string& v = verb->as_str();
  if (v == "ping") return reply_str({{"ok", Json(true)}, {"pong", Json(true)}});
  if (v == "create") return verb_create(req);
  if (v == "inject") return verb_inject(req);
  if (v == "query") return verb_query(req);
  if (v == "snapshot") return verb_snapshot(req);
  if (v == "stats") return verb_stats(req);
  if (v == "close") return verb_close(req);
  if (v == "shutdown") return verb_shutdown();
  return error_reply("unknown_verb", "no such verb '" + v + "'",
                     {{"verb", Json(v)}});
}

std::string Server::verb_create(const Json& req) {
  const std::string program_text =
      req.str_or("program", options_.default_program);
  if (program_text.empty()) {
    return error_reply("bad_program",
                       "no 'program' field and the daemon has no default");
  }
  gamma::Program program;
  try {
    program = gamma::dsl::parse_program(program_text);
  } catch (const Error& e) {
    return error_reply("bad_program", e.what());
  }
  if (program.stage_count() > 1) {
    return error_reply(
        "multi_stage_unsupported",
        "serve sessions host single-stage programs; `;` sequencing has no "
        "incremental meaning under streaming injection");
  }
  gamma::Multiset init;
  const std::string init_text = req.str_or("init", "");
  if (!init_text.empty()) {
    try {
      init = gamma::dsl::parse_elements(init_text);
    } catch (const Error& e) {
      return error_reply("bad_elements", e.what());
    }
  }

  SessionOptions sopts;
  sopts.worklist.deadline = req.num_or("deadline", options_.deadline);
  sopts.worklist.max_steps = static_cast<std::uint64_t>(
      req.int_or("max_steps", static_cast<std::int64_t>(options_.max_steps)));
  sopts.worklist.seed = static_cast<std::uint64_t>(
      req.int_or("seed", static_cast<std::int64_t>(options_.seed)));
  sopts.worklist.rescan = req.bool_or("rescan", options_.rescan);
  sopts.worklist.compile = options_.compile;
  sopts.worklist.batch = options_.batch;
  sopts.worklist.telemetry = options_.telemetry;
  sopts.record = req.bool_or("record", !options_.record_out.empty());

  std::string id = req.str_or("session", "");
  std::shared_ptr<Session> session;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() >= options_.max_sessions) {
      return error_reply(
          "session_limit",
          "session cap reached (" + std::to_string(options_.max_sessions) +
              "); close a session or raise --max-sessions");
    }
    if (id.empty()) {
      id = "s" + std::to_string(next_id_++);
    } else if (sessions_.count(id) > 0) {
      return error_reply("duplicate_session",
                         "session '" + id + "' already exists",
                         {{"session", Json(id)}});
    }
    session = std::make_shared<Session>(id, std::move(program), sopts);
    sessions_.emplace(id, session);
  }

  JsonObj reply{{"ok", Json(true)}, {"session", Json(id)}};
  Session::InjectResult r = session->inject(init);  // initial saturation
  fill_inject_reply(reply, r);
  return reply_str(std::move(reply));
}

std::string Server::verb_inject(const Json& req) {
  const std::string id = req.str_or("session", "");
  const std::shared_ptr<Session> session = find_session(id);
  if (!session) {
    return error_reply("unknown_session", "no session '" + id + "'",
                       {{"session", Json(id)}});
  }
  gamma::Multiset elements;
  try {
    elements = gamma::dsl::parse_elements(req.str_or("elements", ""));
  } catch (const Error& e) {
    return error_reply("bad_elements", e.what());
  }
  const Session::InjectResult r = session->inject(elements);
  JsonObj reply;
  fill_inject_reply(reply, r);
  if (const char* code = outcome_error_code(r.outcome)) {
    // The drain stopped early: the store is a valid intermediate state and
    // a later inject resumes it, but the fixpoint was NOT reached — an
    // error reply with partial:true, per DESIGN §14.
    reply.insert_or_assign("partial", Json(true));
    return error_reply(code, "inject stopped before quiescence",
                       std::move(reply));
  }
  reply.insert_or_assign("ok", Json(true));
  return reply_str(std::move(reply));
}

std::string Server::verb_query(const Json& req) {
  const std::string id = req.str_or("session", "");
  const std::shared_ptr<Session> session = find_session(id);
  if (!session) {
    return error_reply("unknown_session", "no session '" + id + "'",
                       {{"session", Json(id)}});
  }
  JsonObj reply{{"ok", Json(true)}};
  if (const Json* element = req.get("element")) {
    gamma::Multiset parsed;
    try {
      parsed = gamma::dsl::parse_elements(element->as_str());
    } catch (const Error& e) {
      return error_reply("bad_elements", e.what());
    }
    if (parsed.size() != 1) {
      return error_reply("bad_elements",
                         "'element' must hold exactly one element");
    }
    reply.insert_or_assign("count",
                           Json(session->count_element(*parsed.begin())));
  } else if (const Json* label = req.get("label")) {
    reply.insert_or_assign("count", Json(session->count_label(label->as_str())));
  } else {
    reply.insert_or_assign(
        "store_size", Json(static_cast<std::int64_t>(session->store_size())));
  }
  return reply_str(std::move(reply));
}

std::string Server::verb_snapshot(const Json& req) {
  const std::string id = req.str_or("session", "");
  const std::shared_ptr<Session> session = find_session(id);
  if (!session) {
    return error_reply("unknown_session", "no session '" + id + "'",
                       {{"session", Json(id)}});
  }
  const obs::StoreCounts counts = session->snapshot_counts();
  std::int64_t total = 0;
  for (const auto& [elem, n] : counts) total += n;
  return reply_str({{"ok", Json(true)},
                    {"store", Json(counts_to_json(counts))},
                    {"store_size", Json(total)}});
}

std::string Server::verb_stats(const Json& req) {
  const std::string id = req.str_or("session", "");
  if (id.empty()) {
    return reply_str(
        {{"ok", Json(true)},
         {"sessions", Json(static_cast<std::int64_t>(session_count()))},
         {"requests",
          Json(static_cast<std::int64_t>(
              requests_.load(std::memory_order_relaxed)))}});
  }
  const std::shared_ptr<Session> session = find_session(id);
  if (!session) {
    return error_reply("unknown_session", "no session '" + id + "'",
                       {{"session", Json(id)}});
  }
  const runtime::WorklistStats s = session->stats();
  const HistogramSnapshot h = session->quiesce_histogram();
  return reply_str({{"ok", Json(true)},
                    {"session", Json(id)},
                    {"injected", Json(s.injected)},
                    {"injects", Json(s.injects)},
                    {"fires", Json(s.fires)},
                    {"wakeups", Json(s.wakeups)},
                    {"rematches", Json(s.rematches)},
                    {"drain_batches", Json(s.drain_batches)},
                    {"quiesce_p50_us", Json(h.quantile(0.50))},
                    {"quiesce_p99_us", Json(h.quantile(0.99))}});
}

void Server::finish_session(Session& session, JsonObj& reply) {
  if (!session.recording()) return;
  obs::Journal journal = session.close();
  if (!options_.record_out.empty()) {
    const std::string path =
        session_journal_path(options_.record_out, session.id());
    std::ofstream out(path);
    if (!out) {
      reply.insert_or_assign("journal_error",
                             Json("cannot write " + path));
      return;
    }
    obs::write_journal(out, journal);
    out << '\n';
    reply.insert_or_assign("journal_path", Json(path));
    return;
  }
  // No stem configured: hand the journal back inline (budget-capped by
  // RecorderLimits, so the reply stays a sane single line).
  reply.insert_or_assign("journal",
                         parse_json(obs::journal_to_string(journal)));
}

std::string Server::verb_close(const Json& req) {
  const std::string id = req.str_or("session", "");
  std::shared_ptr<Session> session;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      session = it->second;
      sessions_.erase(it);
    }
  }
  if (!session) {
    return error_reply("unknown_session", "no session '" + id + "'",
                       {{"session", Json(id)}});
  }
  JsonObj reply{{"ok", Json(true)},
                {"session", Json(id)},
                {"fires_total", Json(session->stats().fires)}};
  finish_session(*session, reply);
  return reply_str(std::move(reply));
}

void Server::close_all_sessions() {
  std::map<std::string, std::shared_ptr<Session>> doomed;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(sessions_);
  }
  for (auto& [id, session] : doomed) {
    JsonObj scratch;
    finish_session(*session, scratch);
  }
}

std::string Server::verb_shutdown() {
  close_all_sessions();
  shutdown_.store(true, std::memory_order_release);
  return reply_str({{"ok", Json(true)}, {"shutdown", Json(true)}});
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
  }
}

// ----------------------------------------------------------------- socket

namespace {

/// write(2) the whole buffer, riding out partial writes and EINTR.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int Server::serve_socket() {
  const std::string& path = options_.socket_path;
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return 1;
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return 1;
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    return 1;
  }

  std::vector<std::thread> workers;
  while (!shutdown_requested()) {
    // Poll with a timeout so a shutdown verb handled on a connection
    // thread breaks the accept loop within ~200ms.
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    workers.emplace_back([this, conn] {
      std::string buffer;
      char chunk[4096];
      while (true) {
        const ssize_t n = ::read(conn, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl = 0;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (line.empty()) continue;
          if (!write_all(conn, handle_line(line) + '\n')) break;
        }
        if (shutdown_requested()) break;
      }
      ::close(conn);
    });
  }
  for (std::thread& t : workers) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

// ----------------------------------------------------------------- client

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw Error("serve client: bad socket path '" + socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("serve client: socket() failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw Error("serve client: cannot connect to " + socket_path + ": " +
                std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::call(const std::string& request) {
  if (!write_all(fd_, request + '\n')) {
    throw Error("serve client: send failed: " + std::string(std::strerror(errno)));
  }
  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("serve client: daemon hung up mid-reply");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace gammaflow::serve
