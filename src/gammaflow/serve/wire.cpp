#include "gammaflow/serve/wire.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace gammaflow::serve {

namespace {

const char* kind_name(std::size_t index) noexcept {
  switch (index) {
    case 0: return "null";
    case 1: return "bool";
    case 2: return "int";
    case 3: return "real";
    case 4: return "string";
    case 5: return "array";
    default: return "object";
  }
}

[[noreturn]] void kind_error(const char* want, std::size_t got) {
  throw WireError(std::string("expected ") + want + ", got " +
                  kind_name(got));
}

/// Recursive-descent parser over the text; positions reported on error.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw WireError(why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool accept(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') {
      if (literal("true")) return Json(true);
      fail("bad literal");
    }
    if (c == 'f') {
      if (literal("false")) return Json(false);
      fail("bad literal");
    }
    if (c == 'n') {
      if (literal("null")) return Json(nullptr);
      fail("bad literal");
    }
    return number();
  }

  Json object() {
    expect('{');
    JsonObj obj;
    if (accept('}')) return Json(std::move(obj));
    while (true) {
      std::string key = string();
      expect(':');
      obj.insert_or_assign(std::move(key), value());
      if (accept('}')) return Json(std::move(obj));
      expect(',');
    }
  }

  Json array() {
    expect('[');
    JsonArr arr;
    if (accept(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(value());
      if (accept(']')) return Json(std::move(arr));
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Protocol strings are ASCII identifiers/DSL; anything above is
          // passed through as UTF-8 for round-trip fidelity.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long n = std::strtoll(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size() || errno == ERANGE) {
        fail("bad integer '" + tok + "'");
      }
      return Json(static_cast<std::int64_t>(n));
    }
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number '" + tok + "'");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) kind_error("bool", v_.index());
  return std::get<bool>(v_);
}

std::int64_t Json::as_int() const {
  if (!is_int()) kind_error("int", v_.index());
  return std::get<std::int64_t>(v_);
}

double Json::as_num() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  if (is_real()) return std::get<double>(v_);
  kind_error("number", v_.index());
}

const std::string& Json::as_str() const {
  if (!is_str()) kind_error("string", v_.index());
  return std::get<std::string>(v_);
}

const JsonArr& Json::as_arr() const {
  if (!is_arr()) kind_error("array", v_.index());
  return std::get<JsonArr>(v_);
}

const JsonObj& Json::as_obj() const {
  if (!is_obj()) kind_error("object", v_.index());
  return std::get<JsonObj>(v_);
}

const Json* Json::get(const std::string& key) const noexcept {
  if (!is_obj()) return nullptr;
  const JsonObj& obj = std::get<JsonObj>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Json::str_or(const std::string& key, std::string fallback) const {
  const Json* f = get(key);
  return f == nullptr ? std::move(fallback) : f->as_str();
}

std::int64_t Json::int_or(const std::string& key, std::int64_t fallback) const {
  const Json* f = get(key);
  return f == nullptr ? fallback : f->as_int();
}

double Json::num_or(const std::string& key, double fallback) const {
  const Json* f = get(key);
  return f == nullptr ? fallback : f->as_num();
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* f = get(key);
  return f == nullptr ? fallback : f->as_bool();
}

std::string Json::to_string() const {
  std::ostringstream os;
  write_json(os, *this);
  return os.str();
}

Json parse_json(const std::string& text) { return Parser(text).parse(); }

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void write_json(std::ostream& out, const Json& value) {
  if (value.is_null()) {
    out << "null";
  } else if (value.is_bool()) {
    out << (value.as_bool() ? "true" : "false");
  } else if (value.is_int()) {
    out << value.as_int();
  } else if (value.is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value.as_num());
    out << buf;
  } else if (value.is_str()) {
    out << json_quote(value.as_str());
  } else if (value.is_arr()) {
    out << '[';
    bool first = true;
    for (const Json& item : value.as_arr()) {
      if (!first) out << ',';
      first = false;
      write_json(out, item);
    }
    out << ']';
  } else {
    out << '{';
    bool first = true;
    for (const auto& [key, item] : value.as_obj()) {
      if (!first) out << ',';
      first = false;
      out << json_quote(key) << ':';
      write_json(out, item);
    }
    out << '}';
  }
}

}  // namespace gammaflow::serve
