// The `gammaflow serve` daemon core: multi-tenant sessions behind a
// line-delimited JSON protocol (one request object per line in, one reply
// object per line out; every reply carries "ok"). The protocol — every
// verb, field, and error reply — is specified in DESIGN §14; this header
// only names the moving parts:
//
//   ServeOptions — daemon-wide defaults (socket path, session cap, default
//                  per-inject deadline and per-session budget, journal stem).
//   Server       — verb dispatch (handle_line is the whole protocol; the
//                  stream and socket fronts are thin line pumps over it),
//                  the session table, and the Unix-socket accept loop
//                  (thread per connection; sessions serialize internally).
//   Client       — blocking line-oriented socket client (bench_serve's load
//                  generator and the CI smoke script).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gammaflow/serve/session.hpp"
#include "gammaflow/serve/wire.hpp"

namespace gammaflow::obs {
class Telemetry;
}

namespace gammaflow::serve {

struct ServeOptions {
  /// Unix-domain socket path for serve_socket(); serve_stream() (stdio
  /// mode, `--stdio`) ignores it.
  std::string socket_path;
  std::size_t max_sessions = 64;
  /// Default per-inject deadline in seconds (create may override); <= 0
  /// disables.
  double deadline = 0.0;
  /// Default lifetime firing budget per session (create may override).
  std::uint64_t max_steps = 50'000'000;
  std::uint64_t seed = 1;
  bool compile = true;
  /// Columnar batch matching for session drains (`--no-batch` to disable);
  /// ignored when `compile` is off. Fixpoints are identical either way.
  bool batch = true;
  /// Default wake policy: full rescan instead of footprint wakeups (the
  /// bench A/B baseline; fixpoints are identical either way).
  bool rescan = false;
  /// Journal path stem: session journals are written on close to
  /// "<stem>.<session>.<ext>" ("" = sessions record only when the create
  /// request asks, and the journal is returned inline in the close reply).
  std::string record_out;
  /// DSL program used when a create request has no "program" field.
  std::string default_program;
  obs::Telemetry* telemetry = nullptr;
};

class Server {
 public:
  explicit Server(ServeOptions options);

  /// One request line -> one reply line (no trailing newline). Never
  /// throws: malformed input and failed verbs become
  /// {"ok":false,"error":"<code>", ...} replies.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Pumps requests line-by-line until EOF or a shutdown verb — the
  /// `--stdio` front and the in-process protocol tests.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Binds options.socket_path, accepts until a shutdown verb (thread per
  /// connection). Returns 0 on clean shutdown, 1 on socket setup failure.
  int serve_socket();

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t session_count() const;

 private:
  [[nodiscard]] std::shared_ptr<Session> find_session(
      const std::string& id) const;
  std::string dispatch(const Json& req);
  std::string verb_create(const Json& req);
  std::string verb_inject(const Json& req);
  std::string verb_query(const Json& req);
  std::string verb_snapshot(const Json& req);
  std::string verb_stats(const Json& req);
  std::string verb_close(const Json& req);
  std::string verb_shutdown();
  /// Closes every session (flushing journals); shutdown's cleanup.
  void close_all_sessions();
  /// Finalizes one session: journal to "<stem>.<id>.<ext>" or inline.
  void finish_session(Session& session, JsonObj& reply);

  ServeOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
};

/// Blocking client for the daemon's Unix socket. Throws Error when the
/// socket cannot be reached or the daemon hangs up mid-reply.
class Client {
 public:
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line, blocks for the one reply line (stripped).
  [[nodiscard]] std::string call(const std::string& request);

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Journal output path for one session: "<stem>.<session>.<ext>" derived
/// from the daemon's --record-out value (e.g. "runs/serve.json" + "s1" ->
/// "runs/serve.s1.json"). Exposed for the CLI and tests.
[[nodiscard]] std::string session_journal_path(const std::string& record_out,
                                               const std::string& session);

}  // namespace gammaflow::serve
