// Wire-format JSON for the serve protocol (DESIGN §14): a minimal value
// type + parser/writer for the line-delimited request/reply objects the
// daemon speaks. The run recorder's journal parser is deliberately
// journal-shaped (fixed schema, skip-unknown); the protocol needs general
// values (arbitrary request fields, nested reply objects), so this small
// general-purpose JSON lives here and gf_obs stays untouched.
//
// Scope matches the protocol: objects, arrays, strings, bools, null, and
// numbers (int64 when the literal is integral, double otherwise). No
// unicode \uXXXX escapes beyond pass-through of the common control escapes —
// protocol strings are DSL text and identifiers, not arbitrary user prose.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "gammaflow/common/error.hpp"

namespace gammaflow::serve {

/// Malformed wire input (parse errors, type mismatches on access). The
/// server maps it to an {"ok":false,"error":"bad_request"} reply.
class WireError : public Error {
 public:
  explicit WireError(const std::string& what) : Error("WireError: " + what) {}
};

class Json;
using JsonArr = std::vector<Json>;
using JsonObj = std::map<std::string, Json>;

class Json {
 public:
  Json() noexcept : v_(nullptr) {}
  Json(std::nullptr_t) noexcept : v_(nullptr) {}          // NOLINT
  Json(bool b) noexcept : v_(b) {}                        // NOLINT
  Json(std::int64_t n) noexcept : v_(n) {}                // NOLINT
  Json(int n) noexcept : v_(std::int64_t{n}) {}           // NOLINT
  Json(std::uint64_t n) noexcept                          // NOLINT
      : v_(static_cast<std::int64_t>(n)) {}
  Json(double d) noexcept : v_(d) {}                      // NOLINT
  Json(std::string s) : v_(std::move(s)) {}               // NOLINT
  Json(const char* s) : v_(std::string(s)) {}             // NOLINT
  Json(JsonArr a) : v_(std::move(a)) {}                   // NOLINT
  Json(JsonObj o) : v_(std::move(o)) {}                   // NOLINT

  [[nodiscard]] bool is_null() const noexcept { return v_.index() == 0; }
  [[nodiscard]] bool is_bool() const noexcept { return v_.index() == 1; }
  [[nodiscard]] bool is_int() const noexcept { return v_.index() == 2; }
  [[nodiscard]] bool is_real() const noexcept { return v_.index() == 3; }
  [[nodiscard]] bool is_num() const noexcept { return is_int() || is_real(); }
  [[nodiscard]] bool is_str() const noexcept { return v_.index() == 4; }
  [[nodiscard]] bool is_arr() const noexcept { return v_.index() == 5; }
  [[nodiscard]] bool is_obj() const noexcept { return v_.index() == 6; }

  /// Checked accessors; WireError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Int or real, widened to double.
  [[nodiscard]] double as_num() const;
  [[nodiscard]] const std::string& as_str() const;
  [[nodiscard]] const JsonArr& as_arr() const;
  [[nodiscard]] const JsonObj& as_obj() const;

  /// Object field lookup; nullptr when absent (or this is not an object).
  [[nodiscard]] const Json* get(const std::string& key) const noexcept;
  /// Typed field lookups with defaults; WireError when the field exists but
  /// has the wrong kind (a silently ignored typo'd value is worse than an
  /// error reply).
  [[nodiscard]] std::string str_or(const std::string& key,
                                   std::string fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArr, JsonObj>
      v_;
};

/// Parses one JSON value (the whole string; trailing garbage is an error).
[[nodiscard]] Json parse_json(const std::string& text);

void write_json(std::ostream& out, const Json& value);

/// Escapes + quotes `s` for embedding in hand-built reply strings.
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace gammaflow::serve
