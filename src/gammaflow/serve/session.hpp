// One serve tenant: a Program, its wakeup index, and a live store kept at
// fixpoint by a runtime::IncrementalFixpoint. The session owns the mutex
// serializing its verbs (the daemon is thread-per-connection; two clients
// may share a session id) and, when recording, the RunRecorder whose journal
// is written on close — tagged with the session id (Journal::session,
// DESIGN §11) so `gammaflow viz` can label the scrubber.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/runtime/worklist.hpp"

namespace gammaflow::serve {

/// Per-session knobs resolved by the server from create-verb fields and
/// daemon defaults; `worklist.deadline` bounds each inject, `worklist.
/// max_steps` is the session's lifetime firing budget (LimitPolicy::Partial
/// — exhaustion is an error reply with valid partial state, never a crash).
struct SessionOptions {
  runtime::WorklistOptions worklist;
  bool record = false;
};

class Session {
 public:
  /// Builds the wakeup index (analysis::wakeup_keys) and the fixpoint
  /// driver. Throws EngineError for multi-stage programs.
  Session(std::string id, gamma::Program program,
          const SessionOptions& options);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] bool recording() const noexcept { return recorder_ != nullptr; }

  struct InjectResult {
    Outcome outcome = Outcome::Completed;
    std::uint64_t fires = 0;       // firings this inject
    std::uint64_t fires_total = 0; // lifetime firings
    std::size_t store_size = 0;
    double quiesce_us = 0.0;       // injection-to-quiescence wall time
  };
  [[nodiscard]] InjectResult inject(const gamma::Multiset& elements);

  /// Total multiplicity of elements whose label (string field 1) is `label`.
  [[nodiscard]] std::int64_t count_label(const std::string& label) const;
  /// Multiplicity of exactly `element`.
  [[nodiscard]] std::int64_t count_element(const gamma::Element& element) const;
  [[nodiscard]] std::size_t store_size() const;
  [[nodiscard]] obs::StoreCounts snapshot_counts() const;
  [[nodiscard]] gamma::Multiset snapshot() const;
  [[nodiscard]] runtime::WorklistStats stats() const;
  /// Injection-to-quiescence latency distribution (microseconds).
  [[nodiscard]] HistogramSnapshot quiesce_histogram() const;

  /// Finalizes the run journal and moves it out; a journal with an empty
  /// engine field means the session was not recording.
  [[nodiscard]] obs::Journal close();

 private:
  std::string id_;
  mutable std::mutex mu_;
  std::unique_ptr<obs::RunRecorder> recorder_;
  std::unique_ptr<runtime::IncrementalFixpoint> fix_;
  Histogram quiesce_us_;
};

}  // namespace gammaflow::serve
