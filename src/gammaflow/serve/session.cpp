#include "gammaflow/serve/session.hpp"

#include <chrono>
#include <utility>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::serve {

Session::Session(std::string id, gamma::Program program,
                 const SessionOptions& options)
    : id_(std::move(id)) {
  runtime::WorklistOptions wopts = options.worklist;
  // Serve sessions never throw on budget exhaustion — the client gets an
  // error reply with a valid partial store instead of a dead daemon.
  wopts.limit_policy = LimitPolicy::Partial;
  if (options.record) {
    recorder_ = std::make_unique<obs::RunRecorder>();
    wopts.record = recorder_.get();
  }
  std::vector<runtime::WakeKeys> keys = analysis::wakeup_keys(program);
  fix_ = std::make_unique<runtime::IncrementalFixpoint>(
      std::move(program), std::move(keys), wopts);
  // After construction: IncrementalFixpoint's begin() reset the journal,
  // so the tag survives until close().
  if (recorder_) recorder_->set_session(id_);
}

Session::InjectResult Session::inject(const gamma::Multiset& elements) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto t0 = std::chrono::steady_clock::now();
  InjectResult r;
  r.outcome = fix_->inject(elements);
  r.fires = fix_->last_fires();
  r.fires_total = fix_->stats().fires;
  r.store_size = fix_->store().size();
  r.quiesce_us = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  quiesce_us_.observe(r.quiesce_us);
  return r;
}

std::int64_t Session::count_label(const std::string& label) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const gamma::Element& e : fix_->snapshot()) {
    if (e.arity() >= 2 && e.field(1).is_str() &&
        e.field(1).as_str() == label) {
      ++n;
    }
  }
  return n;
}

std::int64_t Session::count_element(const gamma::Element& element) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(fix_->snapshot().count(element));
}

std::size_t Session::store_size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fix_->store().size();
}

obs::StoreCounts Session::snapshot_counts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return runtime::store_counts(fix_->snapshot());
}

gamma::Multiset Session::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fix_->snapshot();
}

runtime::WorklistStats Session::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fix_->stats();
}

HistogramSnapshot Session::quiesce_histogram() const {
  return quiesce_us_.snapshot();
}

obs::Journal Session::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!recorder_) return obs::Journal{};
  fix_->finish_recording();
  return recorder_->take();
}

}  // namespace gammaflow::serve
