// Cross-model equivalence checking: run a dataflow graph on a dataflow
// engine and its Algorithm-1 conversion on a Gamma engine, then compare the
// observable results — for every Output node, the (tag, value) tokens it
// received must equal the [value, label, tag] elements left in the final
// multiset under that output's edge label. This is the executable form of
// the paper's equivalence claim, used by tests, examples, and benches.
#pragma once

#include <string>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

namespace gammaflow::translate {

struct EquivalenceReport {
  bool equivalent = false;
  /// Human-readable mismatch description (empty when equivalent).
  std::string detail;
  dataflow::DfRunResult dataflow_result;
  gamma::RunResult gamma_result;
};

/// Extracts the observable (tag, value) pairs of `label` from a final
/// multiset (tag 0 for untagged pair elements).
[[nodiscard]] std::vector<std::pair<dataflow::Tag, Value>> observed_elements(
    const gamma::Multiset& m, const std::string& label);

/// Runs both sides and compares observables. `seed` drives the Gamma
/// engine's nondeterministic choices.
[[nodiscard]] EquivalenceReport check_equivalence(
    const dataflow::Graph& graph, const dataflow::DfEngine& df_engine,
    const gamma::Engine& gamma_engine, std::uint64_t seed = 1,
    const DfToGammaOptions& convert_options = {});

/// Convenience: Interpreter vs IndexedEngine across `seeds` consecutive
/// seeds; returns the first failing report or the last passing one.
[[nodiscard]] EquivalenceReport check_equivalence_seeds(
    const dataflow::Graph& graph, std::uint64_t first_seed = 1,
    std::uint64_t seeds = 10);

}  // namespace gammaflow::translate
