#include "gammaflow/translate/df_to_gamma.hpp"

#include <set>

#include "gammaflow/common/error.hpp"
#include "gammaflow/dataflow/engine.hpp"

namespace gammaflow::translate {

using dataflow::Edge;
using dataflow::EdgeId;
using dataflow::Graph;
using dataflow::Node;
using dataflow::NodeId;
using dataflow::NodeKind;
using dataflow::PortId;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Element;
using gamma::Pattern;
using gamma::PatternField;
using gamma::Reaction;

namespace {

constexpr const char* kTagVar = "v";

struct PortPattern {
  Pattern pattern;
  /// Disjunction over admissible labels when the port has several producers
  /// (the paper's (x=='A1') or (x=='A11')); null when the label is literal.
  ExprPtr label_condition;
  /// The variable bound to this port's value field (id1, id2, ...).
  std::string value_var;
};

/// Builds the pattern for input port `p` of node `id`.
PortPattern make_port_pattern(const Graph& graph, NodeId id, PortId p,
                              bool tagged) {
  const auto& in = graph.in_edges(id, p);
  if (in.empty()) throw TranslateError("unconnected input port");  // unreachable post-validate

  PortPattern out;
  out.value_var = "id" + std::to_string(p + 1);

  std::vector<PatternField> fields;
  fields.push_back(PatternField::bind(out.value_var));
  if (in.size() == 1) {
    fields.push_back(
        PatternField::literal(Value(graph.edge(in[0]).label.str())));
  } else {
    // Token-merge port: bind the label and constrain it by disjunction.
    const std::string label_var = p == 0 ? "x" : "y";
    fields.push_back(PatternField::bind(label_var));
    ExprPtr cond;
    for (const EdgeId eid : in) {
      ExprPtr test = Expr::binary(BinOp::Eq, Expr::var(label_var),
                                  Expr::lit(Value(graph.edge(eid).label.str())));
      cond = cond ? Expr::binary(BinOp::Or, std::move(cond), std::move(test))
                  : std::move(test);
    }
    out.label_condition = std::move(cond);
  }
  if (tagged) fields.push_back(PatternField::bind(kTagVar));
  out.pattern = Pattern(std::move(fields));
  return out;
}

/// One output tuple [value, 'label', tag] for edge `eid`.
std::vector<ExprPtr> make_output(const Graph& graph, EdgeId eid, ExprPtr value,
                                 ExprPtr tag, bool tagged) {
  std::vector<ExprPtr> tuple;
  tuple.push_back(std::move(value));
  tuple.push_back(Expr::lit(Value(graph.edge(eid).label.str())));
  if (tagged) tuple.push_back(std::move(tag));
  return tuple;
}

/// Rewrites branches to honor a structural label condition: every branch's
/// guard gains `label_cond`, and an else-branch becomes an explicit
/// complement guard so it cannot fire on inadmissible labels.
std::vector<Branch> guard_branches(std::vector<Branch> branches,
                                   const ExprPtr& label_cond) {
  if (!label_cond) return branches;
  ExprPtr first_cond;  // single if/else shape: remember the if condition
  for (Branch& br : branches) {
    if (br.is_else) {
      ExprPtr complement = first_cond
                               ? Expr::unary(expr::UnOp::Not, first_cond)
                               : Expr::lit(Value(true));
      br.is_else = false;
      br.condition =
          Expr::binary(BinOp::And, label_cond, std::move(complement));
    } else if (br.condition) {
      first_cond = br.condition;
      br.condition = Expr::binary(BinOp::And, label_cond, br.condition);
    } else {
      br.condition = label_cond;
    }
  }
  return branches;
}

}  // namespace

GammaConversion dataflow_to_gamma(const Graph& graph,
                                  const DfToGammaOptions& options) {
  graph.validate();

  bool has_tags = false;
  for (const Node& n : graph.nodes()) {
    if (n.kind == NodeKind::IncTag || n.kind == NodeKind::DecTag) {
      has_tags = true;
      break;
    }
  }
  bool tagged = true;
  switch (options.shape) {
    case DfToGammaOptions::Shape::Auto: tagged = has_tags; break;
    case DfToGammaOptions::Shape::Triples: tagged = true; break;
    case DfToGammaOptions::Shape::Pairs:
      if (has_tags) {
        throw TranslateError(
            "pairs shape cannot express inctag/dectag; use Triples");
      }
      tagged = false;
      break;
  }

  GammaConversion result;
  result.tagged = tagged;

  const ExprPtr tag_same = Expr::var(kTagVar);
  const ExprPtr tag_inc =
      Expr::binary(BinOp::Add, tag_same, Expr::lit(Value(std::int64_t{1})));
  const ExprPtr tag_dec =
      Expr::binary(BinOp::Sub, tag_same, Expr::lit(Value(std::int64_t{1})));

  std::vector<Reaction> reactions;
  std::set<std::string> used_names;

  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const Node& node = graph.node(id);
    if (node.kind == NodeKind::Const) {
      // Line 9: root emissions seed the initial multiset.
      const dataflow::Firing f = dataflow::fire_node(node, {}, 0);
      for (const EdgeId eid : graph.out_edges(id, 0)) {
        const std::string label = graph.edge(eid).label.str();
        result.initial.add(tagged ? Element::tagged(f.value, label, 0)
                                  : Element::labeled(f.value, label));
      }
      continue;
    }
    if (node.kind == NodeKind::Output) {
      // Every producer edge can deliver this output's token (if-joins merge
      // several); all their labels are observable.
      for (const EdgeId eid : graph.in_edges(id, 0)) {
        result.output_labels[node.name].push_back(graph.edge(eid).label.str());
      }
      continue;
    }

    // Patterns (replace list), one per input port.
    std::vector<PortPattern> ports;
    const std::size_t in_arity = dataflow::input_arity(node);
    for (PortId p = 0; p < in_arity; ++p) {
      ports.push_back(make_port_pattern(graph, id, p, tagged));
    }
    ExprPtr label_cond;
    for (const PortPattern& pp : ports) {
      if (!pp.label_condition) continue;
      label_cond = label_cond ? Expr::binary(BinOp::And, label_cond,
                                             pp.label_condition)
                              : pp.label_condition;
    }

    std::vector<Branch> branches;
    switch (node.kind) {
      case NodeKind::Arith: {
        // Lines 29-33. An immediate right operand becomes a literal in the
        // reaction body (the paper's R18: by [id1 - 1, 'B11', v]).
        const ExprPtr rhs = node.has_immediate
                                ? Expr::lit(node.constant)
                                : Expr::var(ports[1].value_var);
        const ExprPtr value =
            Expr::binary(node.op, Expr::var(ports[0].value_var), rhs);
        std::vector<std::vector<ExprPtr>> outputs;
        for (const EdgeId eid : graph.out_edges(id, 0)) {
          outputs.push_back(make_output(graph, eid, value, tag_same, tagged));
        }
        branches.push_back(Branch::unconditional(std::move(outputs)));
        break;
      }
      case NodeKind::Cmp: {
        // Lines 23-28: [1,...] if (x0 op x1), [0,...] else. An immediate
        // right operand yields the paper's R14 condition "if id1 > 0".
        const ExprPtr rhs = node.has_immediate
                                ? Expr::lit(node.constant)
                                : Expr::var(ports[1].value_var);
        const ExprPtr cond =
            Expr::binary(node.op, Expr::var(ports[0].value_var), rhs);
        std::vector<std::vector<ExprPtr>> ones;
        std::vector<std::vector<ExprPtr>> zeros;
        for (const EdgeId eid : graph.out_edges(id, 0)) {
          ones.push_back(make_output(graph, eid,
                                     Expr::lit(Value(std::int64_t{1})),
                                     tag_same, tagged));
          zeros.push_back(make_output(graph, eid,
                                      Expr::lit(Value(std::int64_t{0})),
                                      tag_same, tagged));
        }
        branches.push_back(Branch::when(cond, std::move(ones)));
        branches.push_back(Branch::otherwise(std::move(zeros)));
        break;
      }
      case NodeKind::Steer: {
        // Lines 13-19: route the data value by the boolean operand.
        const ExprPtr data = Expr::var(ports[dataflow::kSteerData].value_var);
        const ExprPtr cond =
            Expr::binary(BinOp::Eq,
                         Expr::var(ports[dataflow::kSteerControl].value_var),
                         Expr::lit(Value(std::int64_t{1})));
        std::vector<std::vector<ExprPtr>> true_out;
        for (const EdgeId eid : graph.out_edges(id, dataflow::kSteerTrue)) {
          true_out.push_back(make_output(graph, eid, data, tag_same, tagged));
        }
        std::vector<std::vector<ExprPtr>> false_out;
        for (const EdgeId eid : graph.out_edges(id, dataflow::kSteerFalse)) {
          false_out.push_back(make_output(graph, eid, data, tag_same, tagged));
        }
        branches.push_back(Branch::when(cond, std::move(true_out)));
        branches.push_back(Branch::otherwise(std::move(false_out)));
        break;
      }
      case NodeKind::IncTag:
      case NodeKind::DecTag: {
        // Lines 21-22: same value, new label, tag +/- 1.
        const ExprPtr tag_expr =
            node.kind == NodeKind::IncTag ? tag_inc : tag_dec;
        const ExprPtr value = Expr::var(ports[0].value_var);
        std::vector<std::vector<ExprPtr>> outputs;
        for (const EdgeId eid : graph.out_edges(id, 0)) {
          outputs.push_back(make_output(graph, eid, value, tag_expr, tagged));
        }
        branches.push_back(Branch::unconditional(std::move(outputs)));
        break;
      }
      case NodeKind::Const:
      case NodeKind::Output:
        break;  // handled above
    }

    branches = guard_branches(std::move(branches), label_cond);

    std::string name = node.name;
    if (name.empty() || used_names.contains(name)) {
      name = "R" + std::to_string(id);
    }
    used_names.insert(name);

    std::vector<Pattern> patterns;
    patterns.reserve(ports.size());
    for (PortPattern& pp : ports) patterns.push_back(std::move(pp.pattern));
    reactions.emplace_back(std::move(name), std::move(patterns),
                           std::move(branches));
  }

  result.program = gamma::Program(std::move(reactions));
  return result;
}

}  // namespace gammaflow::translate
