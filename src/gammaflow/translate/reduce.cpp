#include "gammaflow/translate/reduce.hpp"

#include <map>
#include <optional>
#include <set>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/simplify.hpp"

namespace gammaflow::translate {

using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Pattern;
using gamma::PatternField;
using gamma::Reaction;

namespace {

/// A reaction that can be folded into its consumer: one unconditional
/// branch, one output, literal pattern labels, tag preserved.
struct ProducerShape {
  std::string out_label;
  ExprPtr out_value;
  std::string tag_var;  // empty when untagged
  std::size_t element_arity;
};

std::optional<ProducerShape> producer_shape(const Reaction& r) {
  if (r.branches().size() != 1) return std::nullopt;
  const Branch& br = r.branches()[0];
  if (br.condition || br.is_else || br.outputs.size() != 1) return std::nullopt;

  const std::size_t nfields = r.patterns().front().fields().size();
  if (nfields < 2) return std::nullopt;  // unlabeled elements can't be routed
  ProducerShape shape;
  shape.element_arity = nfields;
  for (const Pattern& p : r.patterns()) {
    if (p.fields().size() != nfields) return std::nullopt;
    if (!p.fields()[0].is_binder()) return std::nullopt;
    if (p.fields()[1].is_binder()) return std::nullopt;  // wildcard label
    if (nfields == 3) {
      if (!p.fields()[2].is_binder()) return std::nullopt;
      if (shape.tag_var.empty()) shape.tag_var = p.fields()[2].name();
      if (p.fields()[2].name() != shape.tag_var) return std::nullopt;
    }
  }
  const auto& tuple = br.outputs[0];
  if (tuple.size() != nfields) return std::nullopt;
  if (tuple[1]->kind() != Expr::Kind::Literal || !tuple[1]->literal().is_str()) {
    return std::nullopt;
  }
  if (nfields == 3) {
    if (tuple[2]->kind() != Expr::Kind::Var ||
        tuple[2]->var() != shape.tag_var) {
      return std::nullopt;  // tag must be preserved verbatim
    }
  }
  shape.out_label = tuple[1]->literal().as_str();
  shape.out_value = tuple[0];
  return shape;
}

/// All binder names of a reaction.
std::set<std::string> binders_of(const Reaction& r) {
  std::set<std::string> out;
  for (const Pattern& p : r.patterns()) {
    for (const std::string& b : p.binders()) out.insert(b);
  }
  return out;
}

/// Counts (producers, consumers) of each label literal across the stage.
struct LabelUse {
  std::vector<std::pair<std::size_t, std::size_t>> producers;  // (rx, branch)
  std::vector<std::pair<std::size_t, std::size_t>> consumers;  // (rx, pattern)
};

std::map<std::string, LabelUse> label_uses(const std::vector<Reaction>& stage) {
  std::map<std::string, LabelUse> uses;
  for (std::size_t i = 0; i < stage.size(); ++i) {
    for (std::size_t bi = 0; bi < stage[i].branches().size(); ++bi) {
      for (const auto& tuple : stage[i].branches()[bi].outputs) {
        if (tuple.size() >= 2 && tuple[1]->kind() == Expr::Kind::Literal &&
            tuple[1]->literal().is_str()) {
          uses[tuple[1]->literal().as_str()].producers.emplace_back(i, bi);
        }
      }
    }
    for (std::size_t pi = 0; pi < stage[i].patterns().size(); ++pi) {
      const Pattern& p = stage[i].patterns()[pi];
      if (p.fields().size() >= 2 && !p.fields()[1].is_binder() &&
          p.fields()[1].value().is_str()) {
        uses[p.fields()[1].value().as_str()].consumers.emplace_back(i, pi);
      }
    }
  }
  return uses;
}

/// Renames every variable in `e` according to `renames`.
ExprPtr rename_vars(const ExprPtr& e,
                    const std::map<std::string, std::string>& renames) {
  std::vector<std::pair<std::string, ExprPtr>> subst;
  subst.reserve(renames.size());
  for (const auto& [from, to] : renames) {
    subst.emplace_back(from, Expr::var(to));
  }
  return expr::substitute(e, subst);
}

Pattern rename_pattern(const Pattern& p,
                       const std::map<std::string, std::string>& renames) {
  std::vector<PatternField> fields;
  for (const PatternField& f : p.fields()) {
    if (f.is_binder()) {
      auto it = renames.find(f.name());
      fields.push_back(
          PatternField::bind(it == renames.end() ? f.name() : it->second));
    } else {
      fields.push_back(f);
    }
  }
  return Pattern(std::move(fields));
}

/// Fuses producer `prod` into consumer `cons` at pattern `pattern_idx`.
Reaction fuse_pair(const Reaction& cons, std::size_t pattern_idx,
                   const Reaction& prod, const ProducerShape& shape,
                   bool do_simplify) {
  // Fresh names for the producer's binders, mapping its tag variable onto
  // the consumer's so the fused patterns share one iteration constraint.
  // Chosen fresh names join `taken` immediately: two producer binders must
  // never converge on the same identifier (e.g. id1 -> id1_1 colliding with
  // an existing id1_1 after repeated fusions).
  std::set<std::string> taken = binders_of(cons);
  std::map<std::string, std::string> renames;
  std::string cons_tag;
  const Pattern& target = cons.patterns()[pattern_idx];
  if (target.fields().size() == 3) cons_tag = target.fields()[2].name();
  taken.insert(cons_tag);

  std::size_t counter = 0;
  for (const std::string& b : binders_of(prod)) {
    if (!shape.tag_var.empty() && b == shape.tag_var && !cons_tag.empty()) {
      renames[b] = cons_tag;
      continue;
    }
    std::string fresh = b;
    while (taken.contains(fresh)) {
      fresh = b + "_" + std::to_string(++counter);
    }
    taken.insert(fresh);
    renames[b] = fresh;
  }

  std::vector<Pattern> patterns;
  for (std::size_t i = 0; i < cons.patterns().size(); ++i) {
    if (i == pattern_idx) {
      for (const Pattern& p : prod.patterns()) {
        patterns.push_back(rename_pattern(p, renames));
      }
    } else {
      patterns.push_back(cons.patterns()[i]);
    }
  }

  // Substitute the consumed value variable by the producer's output value.
  const std::string value_var = target.fields()[0].name();
  const ExprPtr replacement = rename_vars(shape.out_value, renames);
  const std::vector<std::pair<std::string, ExprPtr>> subst = {
      {value_var, replacement}};

  std::vector<Branch> branches;
  for (const Branch& br : cons.branches()) {
    Branch nb;
    nb.is_else = br.is_else;
    if (br.condition) {
      nb.condition = expr::substitute(br.condition, subst);
      if (do_simplify) nb.condition = expr::simplify(nb.condition);
    }
    for (const auto& tuple : br.outputs) {
      auto& out = nb.outputs.emplace_back();
      for (const ExprPtr& field : tuple) {
        ExprPtr sub = expr::substitute(field, subst);
        out.push_back(do_simplify ? expr::simplify(sub) : sub);
      }
    }
    branches.push_back(std::move(nb));
  }
  return Reaction(cons.name(), std::move(patterns), std::move(branches));
}

std::vector<Reaction> fuse_stage(std::vector<Reaction> stage,
                                 const std::set<std::string>& forbidden,
                                 const FuseOptions& options) {
  std::size_t steps = 0;
  while (options.max_steps == 0 || steps < options.max_steps) {
    const auto uses = label_uses(stage);
    bool fused = false;
    for (const auto& [label, use] : uses) {
      if (forbidden.contains(label)) continue;
      if (use.producers.size() != 1 || use.consumers.size() != 1) continue;
      const std::size_t prod_idx = use.producers[0].first;
      const auto [cons_idx, pattern_idx] = use.consumers[0];
      if (prod_idx == cons_idx) continue;  // self-loop label
      const auto shape = producer_shape(stage[prod_idx]);
      if (!shape || shape->out_label != label) continue;
      const Pattern& target = stage[cons_idx].patterns()[pattern_idx];
      if (target.fields().size() != shape->element_arity) continue;
      // The consumed value variable must bind exactly here (a repeat binder
      // is an equality constraint substitution would silently drop).
      const std::string& vvar = target.fields()[0].name();
      std::size_t binds = 0;
      for (const Pattern& p : stage[cons_idx].patterns()) {
        for (const PatternField& f : p.fields()) {
          if (f.is_binder() && f.name() == vvar) ++binds;
        }
      }
      if (binds != 1) continue;

      Reaction merged = fuse_pair(stage[cons_idx], pattern_idx,
                                  stage[prod_idx], *shape, options.simplify);
      std::vector<Reaction> next;
      for (std::size_t i = 0; i < stage.size(); ++i) {
        if (i == prod_idx) continue;
        if (i == cons_idx) {
          next.push_back(merged);
        } else {
          next.push_back(stage[i]);
        }
      }
      stage = std::move(next);
      fused = true;
      ++steps;
      break;  // label_uses is stale; recompute
    }
    if (!fused) break;
  }
  return stage;
}

}  // namespace

gamma::Program fuse_reactions(const gamma::Program& program,
                              const gamma::Multiset& initial,
                              const FuseOptions& options) {
  std::set<std::string> forbidden(options.preserve_labels.begin(),
                                  options.preserve_labels.end());
  for (const auto& e : initial) {
    if (e.arity() >= 2 && e.field(1).is_str()) {
      forbidden.insert(e.field(1).as_str());
    }
  }

  std::vector<std::vector<Reaction>> stages;
  stages.reserve(program.stage_count());
  for (const auto& stage : program.stages()) {
    stages.push_back(fuse_stage(stage, forbidden, options));
  }
  return gamma::Program::from_stages(std::move(stages));
}

namespace {

struct Expander {
  const Reaction& original;
  std::function<std::string(std::size_t)> fresh;
  std::vector<Reaction> result;
  std::size_t next_label = 0;
  std::size_t next_rx = 0;
  std::string tag_var;
  std::size_t element_arity = 2;

  /// A value available as a multiset element under `label`.
  struct Operand {
    std::string label;
  };

  /// Emits one binary reaction consuming `a` (and `b` when binary) and
  /// producing `out_label`; `body` is the output value over id1/id2.
  void emit(const std::optional<Operand>& a, const std::optional<Operand>& b,
            const ExprPtr& body, const std::string& out_label) {
    std::vector<Pattern> patterns;
    auto add_pattern = [&](const Operand& op, const std::string& var) {
      std::vector<PatternField> fields;
      fields.push_back(PatternField::bind(var));
      fields.push_back(PatternField::literal(Value(op.label)));
      if (element_arity == 3) fields.push_back(PatternField::bind(tag_var));
      patterns.push_back(Pattern(std::move(fields)));
    };
    if (a) add_pattern(*a, "id1");
    if (b) add_pattern(*b, "id2");

    std::vector<ExprPtr> tuple;
    tuple.push_back(body);
    tuple.push_back(Expr::lit(Value(out_label)));
    if (element_arity == 3) tuple.push_back(Expr::var(tag_var));

    const std::string name = out_label == final_label()
                                 ? original.name()
                                 : original.name() + "_e" + std::to_string(++next_rx);
    std::vector<std::vector<ExprPtr>> outputs;
    outputs.push_back(std::move(tuple));
    std::vector<Branch> branches;
    branches.push_back(Branch::unconditional(std::move(outputs)));
    result.emplace_back(name, std::move(patterns), std::move(branches));
  }

  [[nodiscard]] std::string final_label() const { return final_label_; }
  std::string final_label_;

  std::string make_label() {
    const std::size_t k = next_label++;
    return fresh ? fresh(k) : original.name() + "_t" + std::to_string(k);
  }

  /// Lowers `e`; returns either an Operand (element carrying the value) or
  /// an inline literal expression.
  struct Lowered {
    std::optional<Operand> operand;
    ExprPtr literal;  // set iff operand is empty
  };

  Lowered lower(const ExprPtr& e,
                const std::map<std::string, std::string>& var_labels,
                const std::string& target_label) {
    switch (e->kind()) {
      case Expr::Kind::Literal:
        return Lowered{std::nullopt, e};
      case Expr::Kind::Var: {
        auto it = var_labels.find(e->var());
        if (it == var_labels.end()) {
          throw TranslateError("expand: variable '" + e->var() +
                               "' is not a pattern value binder");
        }
        return Lowered{Operand{it->second}, nullptr};
      }
      case Expr::Kind::Unary: {
        if (e->un_op() != expr::UnOp::Neg) {
          throw TranslateError("expand: cannot split 'not'");
        }
        return lower(Expr::binary(BinOp::Sub, Expr::lit(Value(std::int64_t{0})),
                                  e->operand()),
                     var_labels, target_label);
      }
      case Expr::Kind::Binary: {
        const Lowered lhs = lower(e->lhs(), var_labels, make_label());
        const Lowered rhs = lower(e->rhs(), var_labels, make_label());
        if (!lhs.operand && !rhs.operand) {
          return Lowered{std::nullopt,
                         expr::simplify(Expr::binary(e->bin_op(), lhs.literal,
                                                     rhs.literal))};
        }
        ExprPtr left_body =
            lhs.operand ? Expr::var("id1") : lhs.literal;
        ExprPtr right_body =
            rhs.operand ? Expr::var(lhs.operand ? "id2" : "id1") : rhs.literal;
        emit(lhs.operand, rhs.operand,
             Expr::binary(e->bin_op(), left_body, right_body), target_label);
        return Lowered{Operand{target_label}, nullptr};
      }
    }
    throw TranslateError("expand: unreachable expression kind");
  }
};

}  // namespace

std::vector<Reaction> expand_reaction(
    const Reaction& reaction,
    const std::function<std::string(std::size_t)>& fresh,
    std::string* skip_reason) {
  const auto skip = [&](const std::string& why) -> std::vector<Reaction> {
    if (skip_reason != nullptr) *skip_reason = why;
    return {reaction};
  };
  if (skip_reason != nullptr) skip_reason->clear();

  if (reaction.branches().size() != 1 || reaction.branches()[0].condition ||
      reaction.branches()[0].outputs.size() != 1) {
    return skip(
        "not a single-unconditional-output expression reaction (conditions "
        "and multi-output branches cannot be split)");
  }
  const auto& tuple = reaction.branches()[0].outputs[0];
  const std::size_t nfields = reaction.patterns().front().fields().size();
  if (nfields < 2) {
    return skip("elements are unlabeled; intermediates cannot be routed");
  }
  if (tuple.size() != nfields || tuple[1]->kind() != Expr::Kind::Literal ||
      !tuple[1]->literal().is_str()) {
    return skip("output label is not a string literal of the input arity");
  }
  if (tuple[0]->kind() != Expr::Kind::Binary) {
    return skip("output value has no binary operator to split on");
  }

  // A single-operator body is already in expanded form; keep the reaction
  // verbatim (including its variable names).
  {
    std::function<std::size_t(const Expr&)> ops = [&](const Expr& e) -> std::size_t {
      switch (e.kind()) {
        case Expr::Kind::Binary: return 1 + ops(*e.lhs()) + ops(*e.rhs());
        case Expr::Kind::Unary: return 1 + ops(*e.operand());
        default: return 0;
      }
    };
    if (ops(*tuple[0]) <= 1) {
      return skip("already in expanded form (single-operator body)");
    }
  }

  // Every value binder must occur exactly once in the body: splitting a
  // shared subexpression would make two reactions race for one element.
  {
    std::function<void(const ExprPtr&, std::map<std::string, int>&)> count =
        [&](const ExprPtr& e, std::map<std::string, int>& uses) {
          switch (e->kind()) {
            case Expr::Kind::Var: ++uses[e->var()]; break;
            case Expr::Kind::Unary: count(e->operand(), uses); break;
            case Expr::Kind::Binary:
              count(e->lhs(), uses);
              count(e->rhs(), uses);
              break;
            case Expr::Kind::Literal: break;
          }
        };
    std::map<std::string, int> uses;
    count(tuple[0], uses);
    for (const auto& [var, n] : uses) {
      if (n > 1) {
        return skip("binder '" + var +
                    "' occurs " + std::to_string(n) +
                    " times in the body; split reactions would race for one "
                    "element");
      }
    }
  }

  // Map value binders to their element labels; each must be used once.
  std::map<std::string, std::string> var_labels;
  std::string tag_var;
  for (const Pattern& p : reaction.patterns()) {
    if (p.fields().size() != nfields || !p.fields()[0].is_binder() ||
        p.fields()[1].is_binder()) {
      return skip(
          "patterns are not uniform [binder, literal-label, ...] shapes");
    }
    var_labels[p.fields()[0].name()] = p.fields()[1].value().as_str();
    if (nfields == 3) {
      if (!p.fields()[2].is_binder()) {
        return skip("tag field is not a binder");
      }
      tag_var = p.fields()[2].name();
    }
  }

  Expander ex{reaction, fresh, {}, 0, 0, tag_var, nfields, {}};
  ex.final_label_ = tuple[1]->literal().as_str();
  const Expander::Lowered top =
      ex.lower(tuple[0], var_labels, ex.final_label_);
  if (!top.operand) {
    return skip("body folded to a literal; nothing to split");
  }
  return std::move(ex.result);
}

gamma::Program expand_program(const gamma::Program& program,
                              std::vector<ExpandSkip>* skips) {
  std::vector<std::vector<Reaction>> stages;
  stages.reserve(program.stage_count());
  for (const auto& stage : program.stages()) {
    std::vector<Reaction> expanded;
    for (const Reaction& r : stage) {
      std::string reason;
      std::vector<Reaction> es = expand_reaction(r, nullptr, &reason);
      if (skips != nullptr && !reason.empty()) {
        skips->push_back({r.name(), reason});
      }
      for (Reaction& e : es) expanded.push_back(std::move(e));
    }
    stages.push_back(std::move(expanded));
  }
  return gamma::Program::from_stages(std::move(stages));
}

}  // namespace gammaflow::translate
