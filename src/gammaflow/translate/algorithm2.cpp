// Algorithm 2 (per-reaction graph) and the Fig. 4 multiset mapping.
#include <algorithm>
#include <functional>
#include <map>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::translate {

using dataflow::GraphBuilder;
using dataflow::NodeId;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Element;
using gamma::Pattern;
using gamma::Reaction;

namespace {

/// First binder of a pattern's value field (field 0); Algorithm 2 needs it
/// to know which root feeds which variable.
std::string value_var_of(const Pattern& p, const std::string& rname) {
  const auto& f = p.fields().front();
  if (!f.is_binder()) {
    throw TranslateError("reaction '" + rname +
                         "': pattern value field must be a variable for "
                         "graph generation");
  }
  return f.name();
}

/// Label literal of a pattern (field 1), empty when absent.
std::string label_of(const Pattern& p) {
  if (p.fields().size() >= 2 && !p.fields()[1].is_binder() &&
      p.fields()[1].value().is_str()) {
    return p.fields()[1].value().as_str();
  }
  return {};
}

struct InstanceInfo {
  std::vector<NodeId> roots;
  std::vector<std::string> produced;
  std::vector<std::string> unreacted;
};

/// Compiles `e` to dataflow nodes. `source` resolves a variable to the port
/// currently carrying its value (root output or steer TRUE/FALSE port).
GraphBuilder::Port build_expr(
    GraphBuilder& b, const ExprPtr& e,
    const std::function<GraphBuilder::Port(const std::string&)>& source,
    const std::string& rname) {
  switch (e->kind()) {
    case Expr::Kind::Literal:
      return b.constant(e->literal());
    case Expr::Kind::Var:
      return source(e->var());
    case Expr::Kind::Unary:
      if (e->un_op() == expr::UnOp::Neg) {
        // No dedicated negate node: 0 - x.
        return b.arith(BinOp::Sub, b.constant(Value(std::int64_t{0})),
                       build_expr(b, e->operand(), source, rname));
      }
      throw TranslateError("reaction '" + rname +
                           "': 'not' has no dataflow node equivalent");
    case Expr::Kind::Binary: {
      const BinOp op = e->bin_op();
      if (expr::is_logical(op)) {
        throw TranslateError("reaction '" + rname +
                             "': logical operators are not supported by "
                             "Algorithm 2 graph generation");
      }
      auto lhs = build_expr(b, e->lhs(), source, rname);
      auto rhs = build_expr(b, e->rhs(), source, rname);
      return expr::is_comparison(op) ? b.cmp(op, lhs, rhs)
                                     : b.arith(op, lhs, rhs);
    }
  }
  throw TranslateError("unreachable expression kind");
}

/// Adds one instance of the reaction's graph to `b`. Names/labels are
/// prefixed so several instances coexist (Fig. 4). `seed` supplies root
/// values (one element per pattern) or nullptr for nil placeholders.
InstanceInfo add_reaction_instance(GraphBuilder& b, const Reaction& reaction,
                                   const std::vector<Element>* seed,
                                   const std::string& prefix) {
  const auto& patterns = reaction.patterns();
  const auto& branches = reaction.branches();
  const std::string& rname = reaction.name();

  if (branches.size() > 2 ||
      (branches.size() == 2 &&
       !(branches[0].condition && branches[1].is_else))) {
    throw TranslateError("reaction '" + rname +
                         "': Algorithm 2 supports a single branch or an "
                         "if/else pair");
  }
  if (seed && seed->size() != patterns.size()) {
    throw TranslateError("seed size mismatch for reaction '" + rname + "'");
  }

  InstanceInfo info;

  // Lines 2-4: replace-list elements become root nodes.
  std::map<std::string, std::size_t> var_to_root;  // value var -> pattern idx
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const std::string var = value_var_of(patterns[i], rname);
    std::string name = label_of(patterns[i]);
    if (name.empty()) name = "in" + std::to_string(i + 1);
    const Value v = seed ? (*seed)[i].field(0) : Value();
    info.roots.push_back(b.constant(v, prefix + name).node);
    var_to_root.emplace(var, i);
  }

  auto root_port = [&](const std::string& var) -> GraphBuilder::Port {
    auto it = var_to_root.find(var);
    if (it == var_to_root.end()) {
      throw TranslateError("reaction '" + rname + "': variable '" + var +
                           "' is not a value-field binder (tag/label "
                           "variables cannot flow through Algorithm 2)");
    }
    return GraphBuilder::out(info.roots[it->second]);
  };

  auto emit_outputs = [&](const Branch& branch, const char* tag,
                          const std::function<GraphBuilder::Port(
                              const std::string&)>& source) {
    for (std::size_t k = 0; k < branch.outputs.size(); ++k) {
      const auto& tuple = branch.outputs[k];
      std::string out_name = prefix + tag + std::to_string(k);
      const GraphBuilder::Port value =
          build_expr(b, tuple.front(), source, rname);
      b.output(value, out_name);
      info.produced.push_back(std::move(out_name));
    }
  };

  if (!branches[0].condition) {
    // Lines 18-21: unconditional — arithmetic nodes fed by roots directly.
    emit_outputs(branches[0], "p", root_port);
    return info;
  }

  // Lines 6-12: comparison subgraph + one steer per consumed element.
  const GraphBuilder::Port control =
      build_expr(b, branches[0].condition, root_port, rname);
  std::vector<NodeId> steers(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    steers[i] =
        b.steer(GraphBuilder::out(info.roots[i]), control,
                prefix + "st" + std::to_string(i + 1));
  }
  auto steer_true = [&](const std::string& var) {
    auto it = var_to_root.find(var);
    if (it == var_to_root.end()) {
      throw TranslateError("reaction '" + rname + "': variable '" + var +
                           "' is not a value-field binder");
    }
    return GraphBuilder::true_out(steers[it->second]);
  };
  // Lines 13-16: outputs hang off the TRUE ports.
  emit_outputs(branches[0], "p", steer_true);

  if (branches.size() == 2 && !branches[1].outputs.empty()) {
    // Extension beyond the printed algorithm: an else branch with outputs
    // routes through the FALSE ports (the paper's examples only use
    // "by 0 else", which leaves the FALSE ports dangling).
    auto steer_false = [&](const std::string& var) {
      auto it = var_to_root.find(var);
      if (it == var_to_root.end()) {
        throw TranslateError("reaction '" + rname + "': variable '" + var +
                             "' is not a value-field binder");
      }
      return GraphBuilder::false_out(steers[it->second]);
    };
    emit_outputs(branches[1], "q", steer_false);
  } else if (branches.size() == 1) {
    // No else: when the condition fails the reaction does NOT fire and its
    // elements survive. The FALSE ports re-emit them ("unreacted" path) so
    // one mapped round preserves Gamma semantics.
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      std::string out_name = prefix + "u" + std::to_string(i + 1);
      b.output(GraphBuilder::false_out(steers[i]), out_name);
      info.unreacted.push_back(std::move(out_name));
    }
  }
  return info;
}

/// Element tails (fields past 0) must be literal so mapped rounds can
/// rebuild full elements from computed values.
std::vector<Value> literal_tail(const std::vector<ExprPtr>& tuple,
                                const std::string& rname) {
  std::vector<Value> tail;
  for (std::size_t f = 1; f < tuple.size(); ++f) {
    if (tuple[f]->kind() != Expr::Kind::Literal) {
      throw TranslateError(
          "reaction '" + rname +
          "': mapped execution requires literal label/tag output fields");
    }
    tail.push_back(tuple[f]->literal());
  }
  return tail;
}

}  // namespace

ReactionGraph per_reaction_graph(const Reaction& reaction,
                                 const std::vector<Element>* seed) {
  GraphBuilder b;
  InstanceInfo info = add_reaction_instance(b, reaction, seed, "");
  ReactionGraph out;
  out.roots = std::move(info.roots);
  out.produced_outputs = std::move(info.produced);
  out.unreacted_outputs = std::move(info.unreacted);
  out.graph = std::move(b).build();
  return out;
}

MappingResult instantiate_mapping(const Reaction& reaction,
                                  const gamma::Multiset& m) {
  const std::size_t arity = reaction.arity();
  const auto& elements = m.elements();
  const std::size_t instances = elements.size() / arity;

  GraphBuilder b;
  for (std::size_t i = 0; i < instances; ++i) {
    const std::vector<Element> chunk(elements.begin() +
                                         static_cast<std::ptrdiff_t>(i * arity),
                                     elements.begin() +
                                         static_cast<std::ptrdiff_t>((i + 1) * arity));
    add_reaction_instance(b, reaction, &chunk,
                          "i" + std::to_string(i) + ".");
  }
  // Leftover elements (|M| mod arity) pass through untouched.
  const std::size_t first_left = instances * arity;
  for (std::size_t j = first_left; j < elements.size(); ++j) {
    b.output(b.constant(elements[j].field(0)),
             "left" + std::to_string(j - first_left));
  }

  MappingResult result;
  result.instances = instances;
  result.leftover = elements.size() - first_left;
  result.graph = std::move(b).build();
  return result;
}

MappingRun map_until_fixpoint(const Reaction& reaction,
                              const gamma::Multiset& initial,
                              std::uint64_t seed, std::size_t max_rounds) {
  MappingRun run;
  Rng rng(seed);
  const std::size_t arity = reaction.arity();
  std::vector<Element> current = initial.elements();

  // Precompute output element tails per branch tuple.
  std::vector<std::vector<std::vector<Value>>> tails;  // [branch][tuple]
  for (const Branch& br : reaction.branches()) {
    auto& per_branch = tails.emplace_back();
    for (const auto& tuple : br.outputs) {
      per_branch.push_back(literal_tail(tuple, reaction.name()));
    }
  }

  const dataflow::Interpreter interp;
  while (true) {
    // True-fixpoint check through the Gamma matcher (a failed round could
    // just be an unlucky pairing).
    {
      gamma::Store store{gamma::Multiset(current)};
      if (!runtime::MatchPipeline::find(store, reaction, &rng)) break;
    }
    if (run.rounds >= max_rounds) {
      throw EngineError("map_until_fixpoint exceeded max_rounds=" +
                        std::to_string(max_rounds));
    }
    ++run.rounds;
    std::shuffle(current.begin(), current.end(), rng);

    const gamma::Multiset round_input{std::vector<Element>(current)};
    const MappingResult mapped = instantiate_mapping(reaction, round_input);
    const dataflow::DfRunResult res = interp.run(mapped.graph);
    run.total_fires += res.fires;

    std::vector<Element> next;
    for (std::size_t i = 0; i < mapped.instances; ++i) {
      const std::string prefix = "i" + std::to_string(i) + ".";
      // Did this instance react? The unreacted path emits iff it did not.
      bool reacted = true;
      if (!reaction.branches()[0].is_else && reaction.branches().size() == 1 &&
          reaction.branches()[0].condition) {
        const auto it = res.outputs.find(prefix + "u1");
        reacted = (it == res.outputs.end() || it->second.empty());
      }
      if (!reacted) {
        for (std::size_t k = 0; k < arity; ++k) {
          next.push_back(current[i * arity + k]);
        }
        continue;
      }
      // Which branch fired decides which outputs exist ("p" vs "q").
      for (std::size_t br = 0; br < reaction.branches().size(); ++br) {
        const char* tag = br == 0 ? "p" : "q";
        for (std::size_t k = 0; k < reaction.branches()[br].outputs.size();
             ++k) {
          const auto it = res.outputs.find(prefix + tag + std::to_string(k));
          if (it == res.outputs.end() || it->second.empty()) continue;
          std::vector<Value> fields;
          fields.push_back(it->second.front().second);
          for (const Value& t : tails[br][k]) fields.push_back(t);
          next.emplace_back(std::move(fields));
        }
      }
    }
    // Leftovers survive.
    const std::size_t first_left = mapped.instances * arity;
    for (std::size_t j = first_left; j < current.size(); ++j) {
      next.push_back(current[j]);
    }
    current = std::move(next);
  }

  run.result = gamma::Multiset(std::move(current));
  return run;
}

}  // namespace gammaflow::translate
