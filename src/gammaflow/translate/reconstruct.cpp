// reconstruct_graph: Gamma program + initial multiset -> dataflow graph.
//
// The paper sketches the recognition rules in §III-A2 and leaves "expliciting
// the transformations" as future work (§IV); this file is that algorithm:
//
//   reaction shape                                         node kind
//   ------------------------------------------------------ ---------
//   1 pattern, outputs [x,'L',v+1]                          IncTag
//   1 pattern, outputs [x,'L',v-1]                          DecTag
//   2 patterns, by <data> if ctrl==1 / by ... else          Steer
//   2 patterns, by [1,...] if (a op b) / by [0,...] else    Cmp
//   k patterns, unconditional arithmetic outputs            expression tree
//                                                           of Arith nodes
//
// Label disjunctions ((x=='A1') or (x=='A11')) are stripped from conditions
// first — they are structural (token-merge ports), not behavioral. Initial
// multiset elements become Const roots; labels nothing consumes become
// Output sinks (e.g. 'm' in Fig. 1).
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "gammaflow/common/error.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

namespace gammaflow::translate {

using dataflow::GraphBuilder;
using dataflow::NodeId;
using dataflow::PortId;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Element;
using gamma::Pattern;
using gamma::Reaction;

namespace {

[[noreturn]] void fail(const Reaction& r, const std::string& why) {
  throw TranslateError("cannot reconstruct reaction '" + r.name() + "': " + why);
}

// ---------- condition dissection ----------

/// Is `e` the literal disjunction (var=='L1') or (var=='L2') or ... ?
/// Returns the labels when it is (and fills var_name).
std::optional<std::vector<std::string>> match_label_disjunction(
    const ExprPtr& e, std::string& var_name) {
  if (e->kind() == Expr::Kind::Binary && e->bin_op() == BinOp::Or) {
    auto lhs = match_label_disjunction(e->lhs(), var_name);
    if (!lhs) return std::nullopt;
    auto rhs = match_label_disjunction(e->rhs(), var_name);
    if (!rhs) return std::nullopt;
    lhs->insert(lhs->end(), rhs->begin(), rhs->end());
    return lhs;
  }
  if (e->kind() == Expr::Kind::Binary && e->bin_op() == BinOp::Eq &&
      e->lhs()->kind() == Expr::Kind::Var &&
      e->rhs()->kind() == Expr::Kind::Literal &&
      e->rhs()->literal().is_str()) {
    if (var_name.empty()) var_name = e->lhs()->var();
    if (e->lhs()->var() != var_name) return std::nullopt;
    return std::vector<std::string>{e->rhs()->literal().as_str()};
  }
  return std::nullopt;
}

/// Splits a condition into top-level conjuncts.
void flatten_and(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (e->kind() == Expr::Kind::Binary && e->bin_op() == BinOp::And) {
    flatten_and(e->lhs(), out);
    flatten_and(e->rhs(), out);
    return;
  }
  out.push_back(e);
}

struct StrippedCondition {
  /// label var -> admissible labels (from disjunction conjuncts)
  std::map<std::string, std::vector<std::string>> label_sets;
  /// behavioral remainder (null when none)
  ExprPtr residual;
};

StrippedCondition strip_labels(const ExprPtr& cond) {
  StrippedCondition out;
  if (!cond) return out;
  std::vector<ExprPtr> conjuncts;
  flatten_and(cond, conjuncts);
  for (const ExprPtr& c : conjuncts) {
    std::string var;
    if (auto labels = match_label_disjunction(c, var)) {
      auto& set = out.label_sets[var];
      set.insert(set.end(), labels->begin(), labels->end());
      continue;
    }
    if (c->kind() == Expr::Kind::Literal && c->literal().is_bool() &&
        c->literal().as_bool()) {
      continue;  // trivially-true placeholder from guard rewriting
    }
    out.residual = out.residual
                       ? Expr::binary(BinOp::And, out.residual, c)
                       : c;
  }
  return out;
}

// ---------- per-reaction shape analysis ----------

struct PatternInfo {
  std::string value_var;
  std::vector<std::string> labels;  // one literal, or the disjunction set
  std::string label_var;            // set when field 1 was a binder
};

struct OutputInfo {
  ExprPtr value;
  std::string label;
  int tag_delta = 0;  // 0: same tag 'v'; +1/-1: inc/dec
  bool value_is_var = false;
  std::string value_var;
};

enum class RxKind { IncTag, DecTag, Steer, Cmp, Expression };

struct RxInfo {
  const Reaction* reaction = nullptr;
  RxKind kind = RxKind::Expression;
  std::vector<PatternInfo> patterns;
  bool tagged = false;
  // Branch outputs after analysis: [0]=if/unconditional, [1]=else.
  std::vector<std::vector<OutputInfo>> branch_outputs;
  ExprPtr residual;          // behavioral condition of branch 0
  std::size_t control = 0;   // Steer: pattern index of the boolean operand
  std::size_t data = 0;      // Steer: pattern index of the routed value
  BinOp cmp_op = BinOp::Lt;  // Cmp
  std::size_t cmp_lhs = 0, cmp_rhs = 1;
  bool cmp_has_imm = false;  // Cmp against a literal (Fig. 2's R14)
  Value cmp_imm;
};

int tag_delta_of(const ExprPtr& e, const std::string& tag_var,
                 const Reaction& r) {
  if (e->kind() == Expr::Kind::Var && e->var() == tag_var) return 0;
  if (e->kind() == Expr::Kind::Binary &&
      (e->bin_op() == BinOp::Add || e->bin_op() == BinOp::Sub) &&
      e->lhs()->kind() == Expr::Kind::Var && e->lhs()->var() == tag_var &&
      e->rhs()->kind() == Expr::Kind::Literal &&
      e->rhs()->literal().is_int() && e->rhs()->literal().as_int() == 1) {
    return e->bin_op() == BinOp::Add ? 1 : -1;
  }
  fail(r, "unsupported tag expression '" + e->to_string() + "'");
}

RxInfo analyze(const Reaction& r) {
  RxInfo info;
  info.reaction = &r;

  // Patterns: [valueVar, labelLit|labelVar (, tagVar)].
  const std::size_t nfields = r.patterns().front().fields().size();
  if (nfields < 1 || nfields > 3) fail(r, "unsupported element arity");
  info.tagged = nfields == 3;
  std::string tag_var;
  for (const Pattern& p : r.patterns()) {
    if (p.fields().size() != nfields) fail(r, "mixed element arities");
    PatternInfo pi;
    if (!p.fields()[0].is_binder()) fail(r, "literal value field");
    pi.value_var = p.fields()[0].name();
    if (nfields >= 2) {
      if (p.fields()[1].is_binder()) {
        pi.label_var = p.fields()[1].name();
      } else if (p.fields()[1].value().is_str()) {
        pi.labels.push_back(p.fields()[1].value().as_str());
      } else {
        fail(r, "non-string label field");
      }
    } else {
      fail(r, "untagged 1-field elements carry no label to reconstruct edges");
    }
    if (nfields == 3) {
      if (!p.fields()[2].is_binder()) fail(r, "literal tag field");
      if (tag_var.empty()) tag_var = p.fields()[2].name();
      if (p.fields()[2].name() != tag_var) fail(r, "inconsistent tag variables");
    }
    info.patterns.push_back(std::move(pi));
  }

  // Branches: strip label disjunctions; resolve per-pattern label sets.
  std::vector<ExprPtr> residuals;
  for (const Branch& br : r.branches()) {
    StrippedCondition sc = strip_labels(br.condition);
    for (auto& [var, labels] : sc.label_sets) {
      bool found = false;
      for (PatternInfo& pi : info.patterns) {
        if (pi.label_var == var) {
          if (pi.labels.empty()) pi.labels = labels;
          found = true;
        }
      }
      if (!found) fail(r, "label condition on unknown variable '" + var + "'");
    }
    residuals.push_back(sc.residual);

    auto& outs = info.branch_outputs.emplace_back();
    for (const auto& tuple : br.outputs) {
      if (tuple.size() != nfields) fail(r, "output arity differs from input");
      OutputInfo oi;
      oi.value = tuple[0];
      oi.value_is_var = tuple[0]->kind() == Expr::Kind::Var;
      if (oi.value_is_var) oi.value_var = tuple[0]->var();
      if (tuple[1]->kind() != Expr::Kind::Literal ||
          !tuple[1]->literal().is_str()) {
        fail(r, "output label must be a string literal");
      }
      oi.label = tuple[1]->literal().as_str();
      if (nfields == 3) oi.tag_delta = tag_delta_of(tuple[2], tag_var, r);
      outs.push_back(std::move(oi));
    }
  }
  for (const PatternInfo& pi : info.patterns) {
    if (pi.labels.empty()) {
      fail(r, "pattern label variable '" + pi.label_var +
                  "' has no label disjunction in any condition");
    }
  }
  info.residual = residuals[0];

  // Else detection: a second branch whose residual is `not <first>` (the
  // guard rewrite) or that was a literal else.
  const std::size_t nbranches = r.branches().size();
  if (nbranches > 2) fail(r, "more than two branches");
  bool has_else = false;
  if (nbranches == 2) {
    const Branch& b1 = r.branches()[1];
    if (b1.is_else) {
      has_else = true;
    } else if (residuals[1] && residuals[1]->kind() == Expr::Kind::Unary &&
               residuals[1]->un_op() == expr::UnOp::Not && info.residual &&
               expr::equal(residuals[1]->operand(), info.residual)) {
      has_else = true;
    } else {
      fail(r, "second branch is neither else nor the first's complement");
    }
  }

  // --- classify ---
  const auto all_tag_delta = [&](const std::vector<OutputInfo>& outs, int d) {
    for (const OutputInfo& o : outs) {
      if (o.tag_delta != d) return false;
    }
    return true;
  };

  if (r.arity() == 1 && nbranches == 1 && !info.residual &&
      !info.branch_outputs[0].empty() &&
      (all_tag_delta(info.branch_outputs[0], 1) ||
       all_tag_delta(info.branch_outputs[0], -1))) {
    // IncTag/DecTag: identity value, tag +/- 1.
    for (const OutputInfo& o : info.branch_outputs[0]) {
      if (!o.value_is_var || o.value_var != info.patterns[0].value_var) {
        fail(r, "tag-changing reaction must forward its value unchanged");
      }
    }
    info.kind = info.branch_outputs[0][0].tag_delta == 1 ? RxKind::IncTag
                                                         : RxKind::DecTag;
    return info;
  }

  // From here on, tags must be preserved.
  for (const auto& outs : info.branch_outputs) {
    if (!all_tag_delta(outs, 0)) {
      fail(r, "tag arithmetic outside inctag/dectag shape");
    }
  }

  if ((r.arity() == 1 || r.arity() == 2) && nbranches == 2 && has_else &&
      info.residual) {
    const ExprPtr& c = info.residual;
    // Steer: ctrl == 1, outputs forward the data variable.
    if (r.arity() == 2 && c->kind() == Expr::Kind::Binary &&
        c->bin_op() == BinOp::Eq && c->lhs()->kind() == Expr::Kind::Var &&
        c->rhs()->kind() == Expr::Kind::Literal &&
        c->rhs()->literal() == Value(std::int64_t{1})) {
      const std::string& ctrl_var = c->lhs()->var();
      std::optional<std::size_t> ctrl_idx;
      for (std::size_t i = 0; i < info.patterns.size(); ++i) {
        if (info.patterns[i].value_var == ctrl_var) ctrl_idx = i;
      }
      if (ctrl_idx) {
        const std::size_t data_idx = 1 - *ctrl_idx;
        const std::string& data_var = info.patterns[data_idx].value_var;
        bool forwards = true;
        for (const auto& outs : info.branch_outputs) {
          for (const OutputInfo& o : outs) {
            if (!o.value_is_var || o.value_var != data_var) forwards = false;
          }
        }
        if (forwards) {
          info.kind = RxKind::Steer;
          info.control = *ctrl_idx;
          info.data = data_idx;
          return info;
        }
      }
    }
    // Cmp: (a op b) or (a op literal) with 1/0 outputs mirrored across
    // branches (the immediate form is Fig. 2's R14, "if id1 > 0").
    if (c->kind() == Expr::Kind::Binary && expr::is_comparison(c->bin_op()) &&
        c->lhs()->kind() == Expr::Kind::Var &&
        (c->rhs()->kind() == Expr::Kind::Var ||
         c->rhs()->kind() == Expr::Kind::Literal)) {
      auto idx_of = [&](const std::string& v) -> std::optional<std::size_t> {
        for (std::size_t i = 0; i < info.patterns.size(); ++i) {
          if (info.patterns[i].value_var == v) return i;
        }
        return std::nullopt;
      };
      const bool imm = c->rhs()->kind() == Expr::Kind::Literal;
      const auto li = idx_of(c->lhs()->var());
      const auto ri =
          imm ? std::optional<std::size_t>{0} : idx_of(c->rhs()->var());
      // Immediate comparisons have arity 1 (only the compared element).
      if (imm && r.arity() != 1) {
        fail(r, "immediate comparison must consume exactly one element");
      }
      auto all_const = [](const std::vector<OutputInfo>& outs, std::int64_t k) {
        for (const OutputInfo& o : outs) {
          if (o.value->kind() != Expr::Kind::Literal ||
              o.value->literal() != Value(k)) {
            return false;
          }
        }
        return !outs.empty();
      };
      auto labels_of = [](const std::vector<OutputInfo>& outs) {
        std::set<std::string> s;
        for (const OutputInfo& o : outs) s.insert(o.label);
        return s;
      };
      if (li && ri && all_const(info.branch_outputs[0], 1) &&
          all_const(info.branch_outputs[1], 0) &&
          labels_of(info.branch_outputs[0]) ==
              labels_of(info.branch_outputs[1])) {
        info.kind = RxKind::Cmp;
        info.cmp_op = c->bin_op();
        info.cmp_lhs = *li;
        info.cmp_rhs = *ri;
        if (imm) {
          info.cmp_has_imm = true;
          info.cmp_imm = c->rhs()->literal();
        }
        return info;
      }
    }
    fail(r, "two-branch reaction matches neither steer nor comparison shape");
  }

  if (nbranches == 1 && !info.residual) {
    info.kind = RxKind::Expression;  // k-ary arithmetic (incl. reduced Rd1)
    return info;
  }
  fail(r, "conditional reaction of unrecognized shape");
}

// ---------- graph assembly ----------

struct ProducerPort {
  NodeId node;
  PortId port;
};

struct ConsumerSlot {
  NodeId node;
  PortId port;
};

}  // namespace

dataflow::Graph reconstruct_graph(const gamma::Program& program,
                                  const gamma::Multiset& initial) {
  if (program.stage_count() > 1) {
    throw TranslateError(
        "sequential (';') programs have no single-graph equivalent");
  }

  std::vector<RxInfo> infos;
  for (const Reaction* r : program.all_reactions()) {
    infos.push_back(analyze(*r));
  }

  GraphBuilder b;
  std::map<std::string, std::vector<ProducerPort>> producers;
  std::map<std::string, std::vector<ConsumerSlot>> consumers;
  std::set<std::string> all_labels;

  // Const roots from the initial multiset.
  for (const Element& e : initial) {
    if (e.arity() < 2 || !e.field(1).is_str()) {
      throw TranslateError("initial element " + e.to_string() +
                           " has no label field");
    }
    if (e.arity() == 3 && e.field(2) != Value(std::int64_t{0})) {
      throw TranslateError("initial element " + e.to_string() +
                           " must carry tag 0");
    }
    const std::string label = e.field(1).as_str();
    const NodeId n = b.constant(e.field(0), label + "_src").node;
    producers[label].push_back(ProducerPort{n, 0});
    all_labels.insert(label);
  }

  // Reaction nodes; collect producer ports and consumer slots per label.
  for (RxInfo& info : infos) {
    const Reaction& r = *info.reaction;
    auto consume = [&](std::size_t pattern_idx, NodeId node, PortId port) {
      for (const std::string& label : info.patterns[pattern_idx].labels) {
        consumers[label].push_back(ConsumerSlot{node, port});
        all_labels.insert(label);
      }
    };
    auto produce = [&](const OutputInfo& o, NodeId node, PortId port) {
      producers[o.label].push_back(ProducerPort{node, port});
      all_labels.insert(o.label);
    };

    switch (info.kind) {
      case RxKind::IncTag:
      case RxKind::DecTag: {
        const NodeId n = info.kind == RxKind::IncTag ? b.inctag(r.name())
                                                     : b.dectag(r.name());
        consume(0, n, 0);
        for (const OutputInfo& o : info.branch_outputs[0]) produce(o, n, 0);
        break;
      }
      case RxKind::Steer: {
        const NodeId n = b.steer(r.name());
        consume(info.data, n, dataflow::kSteerData);
        consume(info.control, n, dataflow::kSteerControl);
        for (const OutputInfo& o : info.branch_outputs[0]) {
          produce(o, n, dataflow::kSteerTrue);
        }
        for (const OutputInfo& o : info.branch_outputs[1]) {
          produce(o, n, dataflow::kSteerFalse);
        }
        break;
      }
      case RxKind::Cmp: {
        const NodeId n = info.cmp_has_imm
                             ? b.cmp_imm(info.cmp_op, info.cmp_imm, r.name())
                             : b.cmp(info.cmp_op, r.name());
        consume(info.cmp_lhs, n, 0);
        if (!info.cmp_has_imm) consume(info.cmp_rhs, n, 1);
        // Both branches emit on the same port (1 on true, 0 on false);
        // labels are mirrored, so registering branch 0 covers them.
        for (const OutputInfo& o : info.branch_outputs[0]) produce(o, n, 0);
        break;
      }
      case RxKind::Expression: {
        // One arithmetic tree per output tuple; every leaf variable becomes
        // a consumer slot of its pattern.
        std::map<std::string, std::size_t> var_to_pattern;
        for (std::size_t i = 0; i < info.patterns.size(); ++i) {
          var_to_pattern[info.patterns[i].value_var] = i;
        }
        std::set<std::size_t> used;
        std::function<GraphBuilder::Port(const ExprPtr&)> tree =
            [&](const ExprPtr& e) -> GraphBuilder::Port {
          switch (e->kind()) {
            case Expr::Kind::Literal:
              return b.constant(e->literal());
            case Expr::Kind::Var: {
              // A fresh relay point for the operand: materialized as an
              // identity via arith(+0)? No — leaves connect directly: the
              // slot is the consuming operator port, handled by the caller.
              fail(r, "internal: bare-variable leaf outside binary context");
            }
            case Expr::Kind::Unary:
              if (e->un_op() == expr::UnOp::Neg) {
                return tree(Expr::binary(BinOp::Sub,
                                         Expr::lit(Value(std::int64_t{0})),
                                         e->operand()));
              }
              fail(r, "'not' in arithmetic output");
            case Expr::Kind::Binary: {
              if (!expr::is_arithmetic(e->bin_op()) &&
                  !expr::is_comparison(e->bin_op())) {
                fail(r, "logical operator in arithmetic output");
              }
              // A literal right operand becomes an immediate node so the
              // expression stays usable inside loops (R18's id1 - 1; a
              // Const node would only fire at tag 0).
              const bool imm = e->rhs()->kind() == Expr::Kind::Literal;
              const NodeId n =
                  expr::is_arithmetic(e->bin_op())
                      ? (imm ? b.arith_imm(e->bin_op(), e->rhs()->literal())
                             : b.arith(e->bin_op()))
                      : (imm ? b.cmp_imm(e->bin_op(), e->rhs()->literal())
                             : b.cmp(e->bin_op()));
              auto wire = [&](const ExprPtr& child, PortId port) {
                if (child->kind() == Expr::Kind::Var) {
                  auto it = var_to_pattern.find(child->var());
                  if (it == var_to_pattern.end()) {
                    fail(r, "unknown variable '" + child->var() + "'");
                  }
                  used.insert(it->second);
                  consume(it->second, n, port);
                } else {
                  b.connect(tree(child), n, port);
                }
              };
              wire(e->lhs(), 0);
              if (!imm) wire(e->rhs(), 1);
              return GraphBuilder::out(n);
            }
          }
          fail(r, "unreachable");
        };
        std::size_t tree_index = 0;
        for (const OutputInfo& o : info.branch_outputs[0]) {
          if (o.value->kind() == Expr::Kind::Var) {
            fail(r, "copy reactions have no dataflow node equivalent");
          }
          const NodeId root = tree(o.value).node;
          // Carry the reaction name on the tree root (suffixing extra trees)
          // so round-tripped graphs keep their vertex names.
          b.set_name(root, tree_index == 0
                               ? r.name()
                               : r.name() + "#" + std::to_string(tree_index));
          ++tree_index;
          produce(o, root, 0);
        }
        if (used.size() != info.patterns.size()) {
          fail(r, "some consumed elements are unused by the outputs");
        }
        break;
      }
    }
  }

  // Wire label edges; unconsumed labels become Output sinks.
  for (const std::string& label : all_labels) {
    const auto prod_it = producers.find(label);
    if (prod_it == producers.end()) {
      throw TranslateError("label '" + label +
                           "' is consumed but never produced");
    }
    auto cons_it = consumers.find(label);
    std::vector<ConsumerSlot> slots;
    if (cons_it == consumers.end()) {
      // Result label (the paper's 'm'): attach an Output sink.
      const NodeId out = b.output(label);
      slots.push_back(ConsumerSlot{out, 0});
    } else {
      slots = cons_it->second;
    }
    std::size_t serial = 0;
    for (const ProducerPort& p : prod_it->second) {
      for (const ConsumerSlot& c : slots) {
        std::string edge_label = label;
        if (serial > 0) edge_label += "#" + std::to_string(serial);
        ++serial;
        b.connect(GraphBuilder::Port{p.node, p.port}, c.node, c.port,
                  edge_label);
      }
    }
  }

  return std::move(b).build();
}

}  // namespace gammaflow::translate
