// Algorithm 1 of the paper: convert a dynamic dataflow graph D(I, E) into a
// Gamma program G(R, M).
//
//   * every edge label becomes a multiset element label;
//   * every root (Const) node's emissions become initial multiset elements
//     [value, label, 0] (line 9);
//   * every interior node becomes one reaction:
//       - arithmetic op  -> replace [x0,l(s1),v],[x1,l(s2),v]
//                           by [x0 op x1, l(o), v]  for every output o
//         (lines 29-33);
//       - comparison op  -> two branches producing [1,...] if (x0 op x1) and
//                           [0,...] else (lines 23-28);
//       - steer          -> by <true-port labels> if x1 == 1,
//                           by <false-port labels> else ("by 0" when the
//                           false port is unconnected) (lines 13-19);
//       - inctag/dectag  -> single unconditional branch with tag v±1
//                           (lines 21-22);
//   * an input port fed by several edges (token merge, e.g. the loop-back
//     A1/A11 in Fig. 2) binds its label to a variable and adds the paper's
//     disjunction condition (x=='A1') or (x=='A11') to every branch;
//   * Output nodes become nothing: their incoming elements simply stay in
//     the final multiset, which is how the converted program exposes its
//     results (the 'm' element of Fig. 1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::translate {

struct DfToGammaOptions {
  /// Element shape: tagged triples [value,label,tag] (needed whenever the
  /// graph manipulates tags) or the untagged pairs [value,label] the paper
  /// uses for Fig. 1. Auto picks pairs iff the graph has no IncTag/DecTag.
  enum class Shape { Auto, Pairs, Triples };
  Shape shape = Shape::Auto;
};

struct GammaConversion {
  gamma::Program program;
  gamma::Multiset initial;
  /// Output-node name -> the edge labels whose elements carry that output's
  /// values in the final multiset (e.g. "m" -> {"m"} in Fig. 1; several
  /// labels when the output port is an if-join merge).
  std::map<std::string, std::vector<std::string>> output_labels;
  /// Whether tagged triples were emitted.
  bool tagged = false;
};

/// Converts `graph` (validated first). Throws TranslateError when a pairs
/// shape is forced on a graph containing tag-manipulating nodes.
[[nodiscard]] GammaConversion dataflow_to_gamma(
    const dataflow::Graph& graph, const DfToGammaOptions& options = {});

}  // namespace gammaflow::translate
