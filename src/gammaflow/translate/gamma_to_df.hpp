// Algorithm 2 of the paper and its completion.
//
// 1. per_reaction_graph — Algorithm 2 as printed: one reaction becomes a
//    dataflow graph whose roots are the replace-list elements (lines 2-4);
//    a by-condition becomes comparison nodes plus one steer per consumed
//    element that feeds the outputs (lines 6-12); by-expressions become
//    arithmetic node trees hanging off the steer TRUE ports (lines 13-16),
//    or directly off the roots when unconditional (lines 18-21).
//
// 2. instantiate / instantiate_mapping — step 2 of the paper's procedure
//    (Fig. 4): replicate the per-reaction graph floor(|M|/arity) times to
//    cover the whole multiset, wiring each chunk of elements into one
//    instance's roots. One round of parallel rewriting as pure dataflow.
//    map_until_fixpoint iterates rounds (reshuffling between them) until the
//    reaction is disabled on the surviving multiset — the "complex mapping
//    algorithm" the paper leaves out, in its simplest correct form.
//
// 3. reconstruct_graph — the paper's future work (§IV): rebuild a whole
//    dataflow graph from a converted Gamma program by recognizing node kinds
//    from reaction shapes (§III-A2's observations): tag+1 output => inctag;
//    two-input if(x==1)/else routing => steer; 1/0-producing comparison
//    branches => cmp; unconditional arithmetic => expression trees. Initial
//    multiset elements become Const roots; produced-but-never-consumed
//    labels become Output sinks. Composing with Algorithm 1 gives the
//    round-trip the paper demonstrates on Fig. 1.
#pragma once

#include <string>
#include <vector>

#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::translate {

/// Result of Algorithm 2 on one reaction: the graph plus which Const roots
/// correspond to which replace-list position (for instantiation).
struct ReactionGraph {
  dataflow::Graph graph;
  /// roots[i] = Const node holding the value of replace-list element i.
  std::vector<dataflow::NodeId> roots;
  /// Output node names of produced elements, in by-list order.
  std::vector<std::string> produced_outputs;
  /// Output node names that re-emit consumed elements when the condition is
  /// false (the "unreacted" path), one per steered input.
  std::vector<std::string> unreacted_outputs;
};

/// Algorithm 2 on a single reaction. Placeholder root values (nil) unless
/// `seed` provides one element per pattern. Supported shape: single
/// conditional or unconditional branch whose condition is a comparison over
/// value variables and whose outputs are arithmetic expressions / variables;
/// richer reactions throw TranslateError.
[[nodiscard]] ReactionGraph per_reaction_graph(
    const gamma::Reaction& reaction,
    const std::vector<gamma::Element>* seed = nullptr);

/// Fig. 4: replicate the reaction graph over `m`, floor(|M|/arity) instances
/// (elements taken in multiset order), leftover elements pass through.
struct MappingResult {
  dataflow::Graph graph;
  std::size_t instances = 0;
  std::size_t leftover = 0;
};
[[nodiscard]] MappingResult instantiate_mapping(const gamma::Reaction& reaction,
                                                const gamma::Multiset& m);

/// Runs mapped rounds until the reaction is globally disabled: each round
/// instantiates Fig. 4's replication on the current multiset, executes it
/// with the dataflow interpreter, and feeds produced + unreacted elements to
/// the next round (shuffled by `seed`). A disabled check via the Gamma
/// matcher decides true fixpoints. Returns the final multiset.
struct MappingRun {
  gamma::Multiset result;
  std::size_t rounds = 0;
  std::uint64_t total_fires = 0;
};
[[nodiscard]] MappingRun map_until_fixpoint(const gamma::Reaction& reaction,
                                            const gamma::Multiset& initial,
                                            std::uint64_t seed = 1,
                                            std::size_t max_rounds = 1'000'000);

/// Future-work reconstruction: whole Gamma program + initial multiset back
/// to a dataflow graph. Handles the image of Algorithm 1 (arith/cmp/steer/
/// inctag/dectag shapes, token-merge label disjunctions) plus k-ary
/// unconditional expression reactions (e.g. the reduced Rd1). Throws
/// TranslateError with the offending reaction otherwise.
[[nodiscard]] dataflow::Graph reconstruct_graph(const gamma::Program& program,
                                                const gamma::Multiset& initial);

}  // namespace gammaflow::translate
