#include "gammaflow/translate/equivalence.hpp"

#include <algorithm>
#include <sstream>

namespace gammaflow::translate {

std::vector<std::pair<dataflow::Tag, Value>> observed_elements(
    const gamma::Multiset& m, const std::string& label) {
  std::vector<std::pair<dataflow::Tag, Value>> out;
  for (const gamma::Element& e : m) {
    if (e.arity() >= 2 && e.field(1).is_str() && e.field(1).as_str() == label) {
      const dataflow::Tag tag =
          e.arity() >= 3 && e.field(2).is_int()
              ? static_cast<dataflow::Tag>(e.field(2).as_int())
              : 0;
      out.emplace_back(tag, e.field(0));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

EquivalenceReport check_equivalence(const dataflow::Graph& graph,
                                    const dataflow::DfEngine& df_engine,
                                    const gamma::Engine& gamma_engine,
                                    std::uint64_t seed,
                                    const DfToGammaOptions& convert_options) {
  EquivalenceReport report;
  const GammaConversion conv = dataflow_to_gamma(graph, convert_options);

  report.dataflow_result = df_engine.run(graph);
  gamma::RunOptions gopts;
  gopts.seed = seed;
  report.gamma_result = gamma_engine.run(conv.program, conv.initial, gopts);

  std::ostringstream detail;
  bool ok = true;
  for (const auto& [output_name, labels] : conv.output_labels) {
    auto df_tokens = [&] {
      auto it = report.dataflow_result.outputs.find(output_name);
      std::vector<std::pair<dataflow::Tag, Value>> v;
      if (it != report.dataflow_result.outputs.end()) v = it->second;
      std::sort(v.begin(), v.end());
      return v;
    }();
    std::vector<std::pair<dataflow::Tag, Value>> gamma_tokens;
    for (const std::string& label : labels) {
      const auto part =
          observed_elements(report.gamma_result.final_multiset, label);
      gamma_tokens.insert(gamma_tokens.end(), part.begin(), part.end());
    }
    std::sort(gamma_tokens.begin(), gamma_tokens.end());
    if (df_tokens != gamma_tokens) {
      ok = false;
      detail << "output '" << output_name << "' ("
             << labels.size() << " label(s), first '"
             << (labels.empty() ? std::string() : labels.front())
             << "'): dataflow produced " << df_tokens.size()
             << " tokens, gamma left " << gamma_tokens.size() << " elements";
      const std::size_t n = std::min(df_tokens.size(), gamma_tokens.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (df_tokens[i] != gamma_tokens[i]) {
          detail << "; first diff at #" << i << ": df (tag "
                 << df_tokens[i].first << ", " << df_tokens[i].second
                 << ") vs gamma (tag " << gamma_tokens[i].first << ", "
                 << gamma_tokens[i].second << ")";
          break;
        }
      }
      detail << ". ";
    }
  }
  report.equivalent = ok;
  report.detail = detail.str();
  return report;
}

EquivalenceReport check_equivalence_seeds(const dataflow::Graph& graph,
                                          std::uint64_t first_seed,
                                          std::uint64_t seeds) {
  const dataflow::Interpreter df_engine;
  const gamma::IndexedEngine gamma_engine;
  EquivalenceReport last;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    last = check_equivalence(graph, df_engine, gamma_engine, first_seed + s);
    if (!last.equivalent) return last;
  }
  return last;
}

}  // namespace gammaflow::translate
