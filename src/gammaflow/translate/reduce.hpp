// §III-A3 "Reductions": fuse chains of reactions into fewer, coarser
// reactions (R1,R2,R3 -> Rd1) and the inverse expansion. Fusion trades match
// opportunities (parallelism) for per-firing work — the paper's observation
// that "the opportunity to explore the parallelism of reactions decreases"
// is quantified by bench_reductions using these passes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::translate {

struct FuseOptions {
  /// Labels that must survive (program results, e.g. 'm'); reactions
  /// producing them can still fuse forward, but a label listed here is never
  /// eliminated as an intermediate.
  std::vector<std::string> preserve_labels;
  /// Cap on fusion steps (0 = to fixpoint).
  std::size_t max_steps = 0;
  /// Run the expression simplifier on fused bodies.
  bool simplify = true;
};

/// Fuses producer->consumer pairs where the producer has one unconditional
/// branch with a single tag-preserving output, its label has exactly one
/// producer and one consumer (a private intermediate edge), and the label is
/// absent from `initial` and not preserved. Returns the reduced program.
[[nodiscard]] gamma::Program fuse_reactions(const gamma::Program& program,
                                            const gamma::Multiset& initial,
                                            const FuseOptions& options = {});

/// Inverse reduction: splits one k-ary unconditional expression reaction
/// into binary-operator reactions with fresh intermediate labels (Rd1 ->
/// R1,R2,R3 shape). `fresh` generates intermediate label names; defaults to
/// "<name>_t<k>". A reaction that does not fit the expandable shape is
/// returned unchanged; pass `skip_reason` to learn why (set to a one-line
/// explanation on skip, cleared on success).
[[nodiscard]] std::vector<gamma::Reaction> expand_reaction(
    const gamma::Reaction& reaction,
    const std::function<std::string(std::size_t)>& fresh = nullptr,
    std::string* skip_reason = nullptr);

/// One reaction expand_program left untouched, and why. Historically these
/// skips were invisible — a program could come back verbatim with no hint
/// which shape requirement failed.
struct ExpandSkip {
  std::string reaction;
  std::string reason;
};

/// Expands every eligible reaction, stage by stage (stage boundaries are
/// preserved; reactions never move across a `;`). Reactions left unchanged
/// are appended to `skips` with the reason, when provided.
[[nodiscard]] gamma::Program expand_program(
    const gamma::Program& program, std::vector<ExpandSkip>* skips = nullptr);

}  // namespace gammaflow::translate
