#include "gammaflow/analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "gammaflow/expr/simplify.hpp"

namespace gammaflow::analysis {

using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Pattern;
using gamma::Reaction;

const char* to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

namespace {

/// Literal label of a pattern's field 1, empty when absent/variable.
std::string pattern_label(const Pattern& p) {
  if (p.fields().size() >= 2 && !p.fields()[1].is_binder() &&
      p.fields()[1].value().is_str()) {
    return p.fields()[1].value().as_str();
  }
  return {};
}

/// Labels admitted by a label-variable pattern via a branch condition's
/// (x=='A') or (x=='B') disjunctions. Collects every string literal compared
/// against the variable (an over-approximation, fine for linting).
std::set<std::string> condition_labels(const ExprPtr& cond,
                                       const std::string& var) {
  std::set<std::string> out;
  if (!cond) return out;
  if (cond->kind() == Expr::Kind::Binary) {
    const auto op = cond->bin_op();
    if (op == expr::BinOp::Eq && cond->lhs()->kind() == Expr::Kind::Var &&
        cond->lhs()->var() == var &&
        cond->rhs()->kind() == Expr::Kind::Literal &&
        cond->rhs()->literal().is_str()) {
      out.insert(cond->rhs()->literal().as_str());
      return out;
    }
    for (const auto& side : {cond->lhs(), cond->rhs()}) {
      auto sub = condition_labels(side, var);
      out.insert(sub.begin(), sub.end());
    }
  } else if (cond->kind() == Expr::Kind::Unary) {
    return condition_labels(cond->operand(), var);
  }
  return out;
}

/// Labels a reaction can consume (per pattern: the literal, or the
/// condition-admitted set for a label variable; empty set = wildcard).
struct ConsumeInfo {
  std::set<std::string> labels;
  bool wildcard = false;  // label variable with no recognizable constraint
};

ConsumeInfo consumed_labels(const Reaction& r) {
  ConsumeInfo info;
  for (const Pattern& p : r.patterns()) {
    const std::string lit = pattern_label(p);
    if (!lit.empty()) {
      info.labels.insert(lit);
      continue;
    }
    if (p.fields().size() >= 2 && p.fields()[1].is_binder()) {
      std::set<std::string> admitted;
      for (const Branch& br : r.branches()) {
        auto sub = condition_labels(br.condition, p.fields()[1].name());
        admitted.insert(sub.begin(), sub.end());
      }
      if (admitted.empty()) {
        info.wildcard = true;
      } else {
        info.labels.insert(admitted.begin(), admitted.end());
      }
    } else if (p.fields().size() < 2) {
      info.wildcard = true;  // unlabeled elements: matches anything of arity
    }
  }
  return info;
}

/// Labels a reaction can produce (literal field-1s of output tuples).
std::set<std::string> produced_labels(const Reaction& r) {
  std::set<std::string> out;
  for (const Branch& br : r.branches()) {
    for (const auto& tuple : br.outputs) {
      if (tuple.size() >= 2 && tuple[1]->kind() == Expr::Kind::Literal &&
          tuple[1]->literal().is_str()) {
        out.insert(tuple[1]->literal().as_str());
      }
    }
  }
  return out;
}

}  // namespace

std::size_t LintReport::errors() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::Error;
      }));
}

std::size_t LintReport::warnings() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::Warning;
      }));
}

std::vector<Finding> LintReport::of(const std::string& check) const {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.check == check) out.push_back(f);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const LintReport& report) {
  for (const Finding& f : report.findings) {
    os << to_string(f.severity) << " [" << f.check << "]";
    if (!f.reaction.empty()) os << " " << f.reaction;
    os << ": " << f.message << '\n';
  }
  return os;
}

void write_json(std::ostream& os, const LintReport& report) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  };
  os << "{\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings() << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i) os << ',';
    os << "{\"severity\":\"" << to_string(f.severity) << "\",\"check\":\""
       << escape(f.check) << "\",\"where\":\"" << escape(f.reaction)
       << "\",\"message\":\"" << escape(f.message) << "\"}";
  }
  os << "]}";
}

LintReport lint_program(const gamma::Program& program,
                        const gamma::Multiset& initial) {
  LintReport report;
  auto add = [&](Severity s, std::string check, std::string reaction,
                 std::string message) {
    report.findings.push_back(
        Finding{s, std::move(check), std::move(reaction), std::move(message)});
  };

  // Program-wide label flow.
  std::set<std::string> available;  // initial + any produced label
  bool any_wildcard_consumer = false;
  for (const auto& e : initial) {
    if (e.arity() >= 2 && e.field(1).is_str()) {
      available.insert(e.field(1).as_str());
    }
  }
  std::map<std::string, std::set<std::string>> consumers;  // label -> reactions
  for (const Reaction* r : program.all_reactions()) {
    for (const std::string& l : produced_labels(*r)) available.insert(l);
  }
  for (const Reaction* r : program.all_reactions()) {
    const ConsumeInfo ci = consumed_labels(*r);
    any_wildcard_consumer |= ci.wildcard;
    for (const std::string& l : ci.labels) consumers[l].insert(r->name());
  }

  for (const Reaction* r : program.all_reactions()) {
    const std::string& name = r->name();
    const ConsumeInfo ci = consumed_labels(*r);

    // dead-reaction: every needed label must be obtainable.
    if (!ci.wildcard) {
      for (const std::string& l : ci.labels) {
        if (!available.contains(l)) {
          add(Severity::Error, "dead-reaction", name,
              "consumes label '" + l +
                  "' that is neither initial nor produced by any reaction");
        }
      }
    }

    // constant-condition.
    for (std::size_t bi = 0; bi < r->branches().size(); ++bi) {
      const Branch& br = r->branches()[bi];
      if (!br.condition) continue;
      const ExprPtr folded = expr::simplify(br.condition);
      if (folded->kind() == Expr::Kind::Literal && folded->literal().is_bool()) {
        add(Severity::Warning, "constant-condition", name,
            "branch " + std::to_string(bi + 1) + " condition '" +
                br.condition->to_string() + "' is always " +
                (folded->literal().as_bool() ? "true" : "false"));
      }
    }

    // guaranteed-divergence: fires whenever patterns match (unconditional or
    // else), never shrinks, and can refill its own inputs.
    const bool always_fires =
        std::any_of(r->branches().begin(), r->branches().end(),
                    [](const Branch& b) { return !b.condition; });
    if (always_fires && !r->is_shrinking()) {
      const auto produced = produced_labels(*r);
      const bool self_feeding =
          ci.wildcard ||
          std::any_of(produced.begin(), produced.end(),
                      [&](const std::string& l) { return ci.labels.contains(l); });
      bool grows = false;
      for (const Branch& b : r->branches()) {
        grows |= b.outputs.size() >= r->arity();
      }
      if (self_feeding && grows) {
        add(Severity::Error, "guaranteed-divergence", name,
            "unconditional, non-shrinking, and feeds its own inputs: the "
            "program cannot reach a fixed point");
      }
    }

    // unused-binder.
    std::set<std::string> used;
    for (const Branch& br : r->branches()) {
      if (br.condition) {
        auto fv = br.condition->free_vars();
        used.insert(fv.begin(), fv.end());
      }
      for (const auto& tuple : br.outputs) {
        for (const auto& field : tuple) {
          auto fv = field->free_vars();
          used.insert(fv.begin(), fv.end());
        }
      }
    }
    for (const Pattern& p : r->patterns()) {
      if (p.fields().empty() || !p.fields()[0].is_binder()) continue;
      const std::string& v = p.fields()[0].name();
      // Repeated binders are equality constraints: count as used.
      std::size_t binds = 0;
      for (const Pattern& q : r->patterns()) {
        for (const auto& f : q.fields()) {
          binds += f.is_binder() && f.name() == v;
        }
      }
      if (!used.contains(v) && binds == 1) {
        add(Severity::Info, "unused-binder", name,
            "value '" + v + "' is consumed but never read (pure "
            "synchronization element)");
      }
    }
  }

  // leaked-label: produced (or initial), consumed by nothing; results look
  // like this on purpose, hence Info.
  if (!any_wildcard_consumer) {
    for (const std::string& l : available) {
      if (!consumers.contains(l)) {
        add(Severity::Info, "leaked-label", "",
            "label '" + l + "' is never consumed; its elements accumulate "
            "in the final multiset (program output?)");
      }
    }
  }

  return report;
}

}  // namespace gammaflow::analysis
