// Analyses the paper motivates as cross-model benefits: parallelism profiles
// of dataflow graphs, match-opportunity counting for Gamma programs (the
// quantity §III-A3's reduction argument is about), and summary statistics
// used by the benches and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::analysis {

/// Exposed parallelism of one execution: the wavefront widths the
/// interpreter observed, summarized.
struct ParallelismProfile {
  std::vector<std::size_t> wavefronts;
  std::size_t depth = 0;        // number of wavefronts (critical path length)
  std::size_t max_width = 0;    // widest wavefront
  double avg_width = 0.0;       // fires / depth
  std::uint64_t total_fires = 0;
  /// Ideal speedup on unbounded PEs: total_fires / depth.
  double ideal_speedup = 0.0;
};

/// Runs `graph` on the interpreter and summarizes its wavefronts.
[[nodiscard]] ParallelismProfile parallelism_profile(
    const dataflow::Graph& graph);
[[nodiscard]] ParallelismProfile summarize_wavefronts(
    const std::vector<std::size_t>& wavefronts);

/// Counts enabled matches per reaction on `m` (capped). This is the paper's
/// "opportunity to explore the parallelism of reactions": how many distinct
/// reaction applications are simultaneously available.
struct MatchOpportunities {
  std::map<std::string, std::size_t> per_reaction;
  std::size_t total = 0;
  bool capped = false;
};
[[nodiscard]] MatchOpportunities match_opportunities(
    const gamma::Program& program, const gamma::Multiset& m,
    std::size_t cap_per_reaction = 100000);

/// Maximum number of reactions that can fire CONCURRENTLY on `m` (greedy
/// maximal set of element-disjoint enabled matches). This is the
/// parallelism §III-A3's reduction argument trades away: fusing R1,R2,R3
/// into Rd1 shrinks one wide multiset's concurrent firings from 2k to k.
[[nodiscard]] std::size_t concurrent_firings(const gamma::Program& program,
                                             const gamma::Multiset& m,
                                             std::uint64_t seed = 1);

/// Probability that a uniformly random ordered k-tuple of distinct elements
/// enables `reaction` — the paper's "the chance of the reaction condition
/// occurring can decrease" under reduction. Exact when the enabled-match
/// enumeration is not capped.
[[nodiscard]] double match_probability(const gamma::Reaction& reaction,
                                       const gamma::Multiset& m,
                                       std::size_t cap = 1000000);

/// Structural statistics.
struct GraphStats {
  std::map<std::string, std::size_t> nodes_by_kind;
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  std::size_t root_count = 0;
  std::size_t output_count = 0;
};
[[nodiscard]] GraphStats graph_stats(const dataflow::Graph& graph);

struct ProgramStats {
  std::size_t reaction_count = 0;
  std::size_t stage_count = 0;
  double avg_arity = 0.0;
  std::size_t max_arity = 0;
  std::size_t conditional_reactions = 0;  // at least one guarded branch
  std::size_t total_output_tuples = 0;
};
[[nodiscard]] ProgramStats program_stats(const gamma::Program& program);

}  // namespace gammaflow::analysis
