// Interference & confluence analysis — the static side of the paper's
// §III-A3 trade between match opportunities and per-reaction work, and the
// "type checking at compile time" direction Structured Gamma (§II-B) points
// at. Where lint.hpp finds local defects, this module answers the scheduling
// question the runtimes actually ask: which reactions can PROVABLY never
// disturb each other?
//
// Pipeline:
//   1. Footprint   — per-reaction read/consume/produce label sets, including
//                    labels admitted through branch conditions (the token-
//                    merge disjunctions Algorithm 1 emits) and produced along
//                    else-branches. Over-approximate by construction: a
//                    pattern or output whose label cannot be bounded is a
//                    wildcard that overlaps everything.
//   2. Interference graph — an edge between two reactions when their
//                    footprints can overlap: Compete (both may consume the
//                    same element population) or Feed (one may produce what
//                    the other consumes).
//   3. Conflict classes — connected components of that graph. Reactions in
//                    different classes touch provably disjoint element
//                    populations, so the engines may commit them without
//                    revalidation or lock contention (gamma/parallel_engine),
//                    schedule them class-by-class without global re-passes
//                    (gamma/indexed_engine), and co-locate each class's
//                    labels on one cluster node (distrib/cluster).
//   4. Confluence verdict — all enabled pairs commute => deterministic
//                    result. Statically independent/ordered pairs commute by
//                    construction; competing pairs are probed on REACHABLE
//                    states (sampled from engine traces): a probe that finds
//                    two fixpoints from one state is a divergence PROOF and
//                    is reported as a counterexample pair with its witness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/runtime/worklist.hpp"

namespace gammaflow::analysis {

/// What one reaction can touch, as label/arity keys. `labels` hold the
/// bounded label universe (patterns with a literal label field, or a label
/// binder constrained by a pure disjunction of equalities in every branch);
/// `arities` hold unlabeled element shapes (classic Gamma `replace x, y`);
/// `any` means the bound failed and the side overlaps everything.
struct Footprint {
  std::set<std::string> consume_labels;
  std::set<std::size_t> consume_arities;
  bool consume_any = false;
  std::set<std::string> produce_labels;
  std::set<std::size_t> produce_arities;
  bool produce_any = false;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Footprint reaction_footprint(const gamma::Reaction& reaction);

/// Labels a binder in the label position can take, derived from the pure
/// positive structure of branch conditions (`var == 'lit'` disjunctions; And
/// intersects, Or unions). nullopt when the binder may admit any label.
/// Exposed for the optimizer's private-intermediate proofs, which need the
/// bound per pattern rather than folded into the whole-reaction footprint.
[[nodiscard]] std::optional<std::set<std::string>> admitted_labels(
    const gamma::Reaction& reaction, const std::string& var);

/// Per-reaction consume-side wakeup keys for the worklist-driven
/// incremental fixpoint (runtime/worklist.hpp): one WakeKeys per reaction of
/// the (single-stage) program, in stage order, each the runtime-consumable
/// projection of that reaction's Footprint consume side. The admitted-labels
/// derivation stays here so the runtime never re-implements it.
[[nodiscard]] std::vector<runtime::WakeKeys> wakeup_keys(
    const gamma::Program& program);

/// True when the two reactions can never consume a common element (no
/// consume/consume overlap) — the pair commutes on disjoint matches and a
/// commit of one can never invalidate a match of the other.
[[nodiscard]] bool compete(const Footprint& a, const Footprint& b);

/// True when `a` may produce an element `b` consumes (enabling order matters
/// for scheduling, never for the final multiset).
[[nodiscard]] bool feeds(const Footprint& a, const Footprint& b);

/// compete + feeds in either direction: the full interference relation the
/// conflict classes are closed under.
[[nodiscard]] bool interferes(const Footprint& a, const Footprint& b);

enum class PairStatus {
  Independent,  // no overlap at all: commutes, different classes possible
  Ordered,      // produce->consume only: commutes, same class (scheduling)
  Commutes,     // competes statically; every probed conflict rejoined
  Diverges,     // competes and a reachable counterexample was found
  Unknown,      // competes; probes exhausted their budget without a verdict
};
const char* to_string(PairStatus status) noexcept;

enum class ConfluenceVerdict {
  Confluent,        // every pair Independent/Ordered: deterministic, proven
  LikelyConfluent,  // competing pairs exist but all probes commuted
  NonConfluent,     // at least one divergence witness found
};
const char* to_string(ConfluenceVerdict verdict) noexcept;

/// One analyzed non-independent reaction pair (r1 <= r2, self-pairs
/// included: a reaction competing with itself is how `replace x, y by x - y`
/// loses determinism). Witness fields are filled for Diverges only:
/// `witness` is a reachable multiset, `witness_m1`/`witness_m2` the states
/// after the two conflicting firings, and running the pair program from
/// them (IndexedEngine, `witness_seed`) reaches the distinct fixpoints
/// `fixpoint1` != `fixpoint2` — a re-checkable proof, not a heuristic.
struct PairFinding {
  std::size_t r1 = 0;
  std::size_t r2 = 0;
  PairStatus status = PairStatus::Unknown;
  gamma::Multiset witness;
  gamma::Multiset witness_m1;
  gamma::Multiset witness_m2;
  gamma::Multiset fixpoint1;
  gamma::Multiset fixpoint2;
  std::uint64_t witness_seed = 0;
};

struct InterferenceOptions {
  std::uint64_t seed = 1;
  /// Reachable states sampled (via an instrumented engine run from
  /// `initial`) for commutation probing; 0 disables probing, leaving
  /// competing pairs Unknown.
  std::size_t probe_states = 24;
  /// Enabled-match pairs examined per sampled state and pair.
  std::size_t probe_matches = 4;
  /// Firing budget for each probe fixpoint; exceeding it makes that probe
  /// inconclusive instead of non-terminating.
  std::uint64_t probe_max_steps = 512;
};

struct InterferenceReport {
  /// Reaction names in program order (all stages).
  std::vector<std::string> reactions;
  std::vector<Footprint> footprints;
  /// Interference edges (i < j, same stage only — reactions in different
  /// sequential stages are never concurrent).
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  /// The same edges with their kinds broken out: `compete` when the two may
  /// consume a common element population, `feeds_12`/`feeds_21` when one may
  /// produce what the other consumes. Parallel to `edges` (same order); the
  /// optimizer walks feeds_* to enumerate fusable chains, and check --json
  /// serializes them as feed/compete edge lists.
  struct TypedEdge {
    std::size_t r1 = 0;
    std::size_t r2 = 0;
    bool compete = false;
    bool feeds_12 = false;
    bool feeds_21 = false;
  };
  std::vector<TypedEdge> typed_edges;
  /// Conflict class per reaction: connected components of the interference
  /// graph, offset so classes never span stages.
  std::vector<std::size_t> class_of;
  std::size_t class_count = 0;
  ConfluenceVerdict verdict = ConfluenceVerdict::Confluent;
  /// Every non-independent pair with its probe result; Diverges entries are
  /// the confluence counterexamples.
  std::vector<PairFinding> pairs;

  /// Reaction name -> conflict class, the form RunOptions::conflict_classes
  /// consumes.
  [[nodiscard]] std::map<std::string, std::size_t> engine_classes() const;
  /// Label -> conflict class (consumers win over producers), the form
  /// distrib::ClusterOptions::label_affinity consumes.
  [[nodiscard]] std::map<std::string, std::size_t> label_affinity() const;
  [[nodiscard]] bool has_divergence() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const InterferenceReport& report);

/// Machine-readable form (one JSON object) for `gammaflow check --json`.
void write_json(std::ostream& os, const InterferenceReport& report);

/// Analyzes `program` against `initial`. Pure up to the seeded probe runs;
/// the same inputs and options always produce the same report.
[[nodiscard]] InterferenceReport analyze_interference(
    const gamma::Program& program, const gamma::Multiset& initial,
    const InterferenceOptions& options = {});

}  // namespace gammaflow::analysis
