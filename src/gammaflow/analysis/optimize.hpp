// Analysis-driven §III-A3 auto-reduction: a fusion planner that walks the
// interference graph's feed edges, proves producer->consumer rewrites safe
// with the footprint machinery, gates them on the cost model (analysis/cost),
// and double-checks every applied rewrite by probing original-vs-rewritten
// fixpoints. Generalizes translate::fuse_reactions two ways: multi-hop
// chains fall out of iterating single safe steps, and producers may carry
// one guard condition (the fused consumer conjoins it into every branch).
//
// Safety obligations for fusing producer P (output label L) into consumer C:
//   S1  L is PRIVATE: across the whole program, P is the only reaction whose
//       footprint can produce L and C the only one that can consume it (no
//       wildcard producers/consumers anywhere), L is absent from the initial
//       multiset and not preserved by options.
//   S2  P has one branch with one output; the branch is unconditional or
//       carries one guard whose variables are P's own binders (the guard
//       then commutes: its value is fixed by the matched elements, so
//       deciding it at the fused match sees exactly what P saw).
//   S3  C consumes L at exactly one pattern site, with a literal label and
//       matching arity; no other pattern of C can admit L.
//   S4  C's consumed value binder binds exactly once (a repeat binder is an
//       equality constraint substitution would drop).
//   S5  The tag field, when present, is preserved verbatim by P.
//   S6  C is TOTAL: some branch fires on every match (unconditional or
//       else). A partial consumer strands unconsumed intermediates under L
//       at the fixpoint — a state the fused program cannot represent.
//   S7  The rewritten stage's probed fixpoint matches the original's from
//       the actual initial store (three seeds; any mismatch reverts the
//       rewrite). This is the net under the statically undecidable
//       production/consumption balance: e.g. a leftover element under L
//       with no partner is representable in the unfused program only.
//
// After planning, the pass re-runs the interference analysis on the result
// and verifies the conflict classes did not get COARSER than it assumed —
// fusion removes labels, so classes may only split or stay; a merge would
// mean the cost model priced parallelism that does not exist.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gammaflow/analysis/cost.hpp"
#include "gammaflow/analysis/lint.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::obs {
class Telemetry;
}  // namespace gammaflow::obs

namespace gammaflow::analysis {

struct OptimizeOptions {
  /// Labels never eliminated as intermediates (program results).
  std::vector<std::string> preserve_labels;
  /// Cap on applied fusion steps (0 = run to fixpoint).
  std::size_t max_steps = 0;
  /// Gate rewrites on the cost model; off applies every safe fusion.
  bool use_cost_model = true;
  /// Remove dead reactions (unsatisfiable condition, or — with a known
  /// initial store — label cardinality provably zero).
  bool eliminate_dead = true;
  bool fuse = true;
  /// Simplify fused bodies and conditions.
  bool simplify = true;
  /// S7: probe original-vs-rewritten fixpoints per applied rewrite. Needs a
  /// non-empty initial store; skipped (with rewrites still applied) without
  /// one.
  bool verify_rewrites = true;
  std::uint64_t seed = 1;
  /// Firing budget per verification probe; exhausting it rejects the
  /// rewrite (conservative).
  std::uint64_t verify_max_steps = 4096;
  CostParams cost;
  /// Optional sink for opt.* counters (chains_found, fused,
  /// rejected_by_cost, rejected_by_verify, dead_removed).
  obs::Telemetry* telemetry = nullptr;
};

enum class RewriteStatus {
  Applied,
  RejectedByCost,
  RejectedByVerify,
};
const char* to_string(RewriteStatus status) noexcept;

/// One planned single-step fusion (multi-hop chains appear as a sequence of
/// these collapsing into the same surviving consumer).
struct PlannedRewrite {
  std::string producer;
  std::string consumer;
  std::string via_label;
  bool conditional_producer = false;
  /// Stage time (cost model) before/after, for the gated decision.
  double cost_before = 0;
  double cost_after = 0;
  RewriteStatus status = RewriteStatus::Applied;
};

struct OptimizeReport {
  std::size_t chains_found = 0;  // distinct candidate fusion steps seen
  std::size_t fused = 0;
  std::size_t rejected_by_cost = 0;
  std::size_t rejected_by_verify = 0;
  std::size_t dead_removed = 0;
  std::vector<PlannedRewrite> rewrites;
  /// Dead reactions removed, as lint-style findings.
  std::vector<Finding> dead;
  /// Boundedness of the ORIGINAL program (the planner's input facts).
  BoundednessReport bounds;
  double cost_before = 0;  // program cost estimate, original
  double cost_after = 0;   // program cost estimate, optimized
  /// Post-rewrite class re-verification: conflict classes per stage did not
  /// get coarser than planned. A false here is a planner bug, not a user
  /// error; the CLI exits non-zero on it.
  bool class_check_ok = true;
  std::size_t classes_before = 0;
  std::size_t classes_after = 0;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const OptimizeReport& report);

/// Machine-readable form (one JSON object) for `gammaflow optimize --json`.
void write_json(std::ostream& os, const OptimizeReport& report);

struct OptimizeResult {
  gamma::Program program;
  OptimizeReport report;
};

/// Runs dead-reaction elimination then the fusion planner to fixpoint.
/// Deterministic for fixed inputs and options (candidate order is by label
/// name; probes are seeded).
[[nodiscard]] OptimizeResult optimize_program(const gamma::Program& program,
                                              const gamma::Multiset& initial,
                                              const OptimizeOptions& options = {});

/// The optimizer's analyses as lints for `gammaflow check`: per-label
/// possibly-unbounded growth (divergence risk), whole-multiset growth,
/// unsatisfiable-branch dead reactions, and — when `initial` is non-empty —
/// reactions unreachable through the feed graph. Merged into lint_program's
/// report by the CLI.
[[nodiscard]] LintReport optimizer_lints(const gamma::Program& program,
                                         const gamma::Multiset& initial);

}  // namespace gammaflow::analysis
