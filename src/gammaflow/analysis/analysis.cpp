#include "gammaflow/analysis/analysis.hpp"

#include <algorithm>
#include <numeric>

#include "gammaflow/gamma/store.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"

namespace gammaflow::analysis {

ParallelismProfile summarize_wavefronts(
    const std::vector<std::size_t>& wavefronts) {
  ParallelismProfile p;
  p.wavefronts = wavefronts;
  p.depth = wavefronts.size();
  for (const std::size_t w : wavefronts) {
    p.max_width = std::max(p.max_width, w);
    p.total_fires += w;
  }
  if (p.depth > 0) {
    p.avg_width = static_cast<double>(p.total_fires) /
                  static_cast<double>(p.depth);
    p.ideal_speedup = p.avg_width;
  }
  return p;
}

ParallelismProfile parallelism_profile(const dataflow::Graph& graph) {
  const dataflow::Interpreter interp;
  const dataflow::DfRunResult result = interp.run(graph);
  return summarize_wavefronts(result.wavefronts);
}

MatchOpportunities match_opportunities(const gamma::Program& program,
                                       const gamma::Multiset& m,
                                       std::size_t cap_per_reaction) {
  MatchOpportunities out;
  gamma::Store store(m);
  for (const gamma::Reaction* r : program.all_reactions()) {
    const std::size_t n = runtime::MatchPipeline::enumerate(
        store, *r, cap_per_reaction, [](const gamma::Match&) { return true; });
    out.per_reaction[r->name()] = n;
    out.total += n;
    if (n >= cap_per_reaction) out.capped = true;
  }
  return out;
}

std::size_t concurrent_firings(const gamma::Program& program,
                               const gamma::Multiset& m, std::uint64_t seed) {
  gamma::Store store(m);
  Rng rng(seed);
  std::size_t fired = 0;
  bool progressed = true;
  // Greedy maximal set: claim a match, delete its elements WITHOUT inserting
  // products (all firings of the set happen "at the same instant").
  while (progressed) {
    progressed = false;
    for (const gamma::Reaction* r : program.all_reactions()) {
      while (auto match = runtime::MatchPipeline::find(store, *r, &rng)) {
        for (const auto id : match->ids) store.remove(id);
        ++fired;
        progressed = true;
      }
    }
  }
  return fired;
}

double match_probability(const gamma::Reaction& reaction,
                         const gamma::Multiset& m, std::size_t cap) {
  const std::size_t n = m.size();
  const std::size_t k = reaction.arity();
  if (n < k) return 0.0;
  double tuples = 1.0;
  for (std::size_t i = 0; i < k; ++i) tuples *= static_cast<double>(n - i);
  gamma::Store store(m);
  const std::size_t enabled = runtime::MatchPipeline::enumerate(
      store, reaction, cap, [](const gamma::Match&) { return true; });
  return static_cast<double>(enabled) / tuples;
}

GraphStats graph_stats(const dataflow::Graph& graph) {
  GraphStats s;
  s.node_count = graph.node_count();
  s.edge_count = graph.edge_count();
  for (const dataflow::Node& n : graph.nodes()) {
    ++s.nodes_by_kind[dataflow::to_string(n.kind)];
    if (n.kind == dataflow::NodeKind::Const) ++s.root_count;
    if (n.kind == dataflow::NodeKind::Output) ++s.output_count;
  }
  return s;
}

ProgramStats program_stats(const gamma::Program& program) {
  ProgramStats s;
  s.stage_count = program.stage_count();
  std::size_t arity_sum = 0;
  for (const gamma::Reaction* r : program.all_reactions()) {
    ++s.reaction_count;
    arity_sum += r->arity();
    s.max_arity = std::max(s.max_arity, r->arity());
    for (const gamma::Branch& br : r->branches()) {
      if (br.condition) ++s.conditional_reactions;
      s.total_output_tuples += br.outputs.size();
      if (br.condition) break;  // count the reaction once
    }
  }
  if (s.reaction_count > 0) {
    s.avg_arity = static_cast<double>(arity_sum) /
                  static_cast<double>(s.reaction_count);
  }
  return s;
}

}  // namespace gammaflow::analysis
