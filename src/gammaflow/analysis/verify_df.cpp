#include "gammaflow/analysis/verify_df.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace gammaflow::analysis {

using dataflow::Edge;
using dataflow::EdgeId;
using dataflow::Graph;
using dataflow::Node;
using dataflow::NodeId;
using dataflow::NodeKind;

namespace {

std::string node_ref(const Graph& g, NodeId id) {
  const std::string& name = g.node(id).name;
  if (!name.empty()) return name;
  return "#" + std::to_string(id);
}

void add(LintReport& report, Severity severity, std::string check,
         std::string where, std::string message) {
  report.findings.push_back(Finding{severity, std::move(check),
                                    std::move(where), std::move(message)});
}

/// Tag-offset abstract value: offsets (relative to the Const roots' tag 0)
/// a node's tokens may carry. Empty set = no token ever arrives (bottom);
/// `top` = any offset (the widening that keeps loops silent).
struct TagOffsets {
  std::set<int> offsets;
  bool top = false;

  bool merge(const TagOffsets& o) {
    if (top) return false;
    if (o.top) {
      top = true;
      offsets.clear();
      return true;
    }
    bool changed = false;
    for (const int v : o.offsets) changed |= offsets.insert(v).second;
    if (offsets.size() > 4) {  // widen: more than a loop nest's worth
      top = true;
      offsets.clear();
      changed = true;
    }
    return changed;
  }
  [[nodiscard]] TagOffsets shifted(int delta) const {
    if (top || delta == 0) return *this;
    TagOffsets out;
    for (const int v : offsets) out.offsets.insert(v + delta);
    return out;
  }
  /// Provably disjoint: both finite, non-empty, no common offset.
  [[nodiscard]] bool disjoint(const TagOffsets& o) const {
    if (top || o.top || offsets.empty() || o.offsets.empty()) return false;
    return std::none_of(offsets.begin(), offsets.end(),
                        [&](int v) { return o.offsets.contains(v); });
  }
  [[nodiscard]] std::string to_string() const {
    if (top) return "*";
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const int v : offsets) {
      os << (first ? "" : ",") << v;
      first = false;
    }
    os << '}';
    return os.str();
  }
};

int tag_delta(NodeKind kind) {
  if (kind == NodeKind::IncTag) return 1;
  if (kind == NodeKind::DecTag) return -1;
  return 0;
}

/// Saturating token-count interval per port (acyclic graphs only).
struct TokenRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  static constexpr std::uint64_t kCap = 1u << 20;
  void add(TokenRange o) {
    lo = std::min(lo + o.lo, kCap);
    hi = std::min(hi + o.hi, kCap);
  }
};

/// True when the directed graph restricted to `keep` has a cycle; names a
/// node on the first cycle found via `witness`.
bool has_cycle(const std::vector<std::vector<NodeId>>& succ,
               const std::vector<bool>& keep, NodeId* witness) {
  const std::size_t n = succ.size();
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> color(n, White);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (!keep[root] || color[root] != White) continue;
    stack.emplace_back(static_cast<NodeId>(root), 0);
    color[root] = Grey;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < succ[node].size()) {
        const NodeId to = succ[node][next++];
        if (!keep[to]) continue;
        if (color[to] == Grey) {
          if (witness) *witness = to;
          return true;
        }
        if (color[to] == White) {
          color[to] = Grey;
          stack.emplace_back(to, 0);
        }
      } else {
        color[node] = Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

LintReport verify_graph(const Graph& graph) {
  LintReport report;
  const std::size_t n = graph.node_count();

  // --- structural pass (collecting, never throwing) ---
  std::map<std::string, std::vector<EdgeId>> by_label;
  std::vector<bool> edge_ok(graph.edge_count(), true);
  for (std::size_t k = 0; k < graph.edge_count(); ++k) {
    const Edge& e = graph.edge(static_cast<EdgeId>(k));
    if (e.src >= n || e.dst >= n) {
      add(report, Severity::Error, "df-edge-endpoint", e.label.str(),
          "edge '" + e.label.str() + "' references node id " +
              std::to_string(e.src >= n ? e.src : e.dst) + " but the graph has " +
              std::to_string(n) + " node(s)");
      edge_ok[k] = false;
      continue;
    }
    if (e.src_port >= dataflow::output_arity(graph.node(e.src).kind)) {
      add(report, Severity::Error, "df-port-range", node_ref(graph, e.src),
          "edge '" + e.label.str() + "' leaves output port " +
              std::to_string(e.src_port) + " but " +
              dataflow::to_string(graph.node(e.src).kind) + " has " +
              std::to_string(dataflow::output_arity(graph.node(e.src).kind)) +
              " output port(s)");
      edge_ok[k] = false;
    }
    if (e.dst_port >= dataflow::input_arity(graph.node(e.dst))) {
      add(report, Severity::Error, "df-port-range", node_ref(graph, e.dst),
          "edge '" + e.label.str() + "' enters input port " +
              std::to_string(e.dst_port) + " but " +
              dataflow::to_string(graph.node(e.dst).kind) + " takes " +
              std::to_string(dataflow::input_arity(graph.node(e.dst))) +
              " input(s)");
      edge_ok[k] = false;
    }
    by_label[e.label.str()].push_back(static_cast<EdgeId>(k));
  }
  for (const auto& [label, edges] : by_label) {
    if (edges.size() > 1) {
      add(report, Severity::Error, "df-duplicate-label", label,
          "label '" + label + "' is shared by " + std::to_string(edges.size()) +
              " edges; Algorithm 1 would merge their token populations");
    }
  }
  for (std::size_t id = 0; id < n; ++id) {
    const Node& node = graph.node(static_cast<NodeId>(id));
    if (node.kind == NodeKind::Arith && !expr::is_arithmetic(node.op)) {
      add(report, Severity::Error, "df-operator-kind", node_ref(graph, static_cast<NodeId>(id)),
          std::string("Arith node carries non-arithmetic operator '") +
              expr::to_string(node.op) + "'");
    }
    if (node.kind == NodeKind::Cmp && !expr::is_comparison(node.op)) {
      add(report, Severity::Error, "df-operator-kind", node_ref(graph, static_cast<NodeId>(id)),
          std::string("Cmp node carries non-comparison operator '") +
              expr::to_string(node.op) + "'");
    }
  }
  // Fed-input check from the raw edge list (adjacency may be inconsistent on
  // malformed graphs).
  {
    std::vector<std::set<dataflow::PortId>> fed(n);
    for (std::size_t k = 0; k < graph.edge_count(); ++k) {
      const Edge& e = graph.edge(static_cast<EdgeId>(k));
      if (edge_ok[k]) fed[e.dst].insert(e.dst_port);
    }
    for (std::size_t id = 0; id < n; ++id) {
      const auto node_id = static_cast<NodeId>(id);
      const std::size_t arity = dataflow::input_arity(graph.node(node_id));
      for (dataflow::PortId p = 0; p < arity; ++p) {
        if (!fed[id].contains(p)) {
          add(report, Severity::Error, "df-input-unfed", node_ref(graph, node_id),
              "input port " + std::to_string(p) +
                  " has no producer: the node can never fire");
        }
      }
    }
  }
  if (report.errors() > 0) return report;  // adjacency is unsafe past here

  // --- semantic passes (structure known good) ---
  std::vector<std::vector<NodeId>> succ(n);
  std::vector<std::vector<std::vector<EdgeId>>> in_by_port(n);
  std::vector<std::vector<std::vector<EdgeId>>> out_by_port(n);
  for (std::size_t id = 0; id < n; ++id) {
    const auto node_id = static_cast<NodeId>(id);
    in_by_port[id].resize(dataflow::input_arity(graph.node(node_id)));
    out_by_port[id].resize(dataflow::output_arity(graph.node(node_id).kind));
  }
  for (std::size_t k = 0; k < graph.edge_count(); ++k) {
    const Edge& e = graph.edge(static_cast<EdgeId>(k));
    succ[e.src].push_back(e.dst);
    in_by_port[e.dst][e.dst_port].push_back(static_cast<EdgeId>(k));
    out_by_port[e.src][e.src_port].push_back(static_cast<EdgeId>(k));
  }

  // Reachability from the Const roots.
  std::vector<bool> reachable(n, false);
  {
    std::deque<NodeId> queue;
    for (std::size_t id = 0; id < n; ++id) {
      if (graph.node(static_cast<NodeId>(id)).kind == NodeKind::Const) {
        reachable[id] = true;
        queue.push_back(static_cast<NodeId>(id));
      }
    }
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      for (const NodeId to : succ[at]) {
        if (!reachable[to]) {
          reachable[to] = true;
          queue.push_back(to);
        }
      }
    }
    for (std::size_t id = 0; id < n; ++id) {
      if (!reachable[id]) {
        add(report, Severity::Warning, "df-unreachable",
            node_ref(graph, static_cast<NodeId>(id)),
            "no path from any Const root: the node never receives a token");
      }
    }
  }

  // Tag safety along back-edges: a cycle that passes no IncTag/DecTag reuses
  // the same iteration tag every trip around.
  std::vector<bool> all(n, true);
  std::vector<bool> non_tagging(n);
  for (std::size_t id = 0; id < n; ++id) {
    non_tagging[id] = tag_delta(graph.node(static_cast<NodeId>(id)).kind) == 0;
  }
  const bool cyclic = has_cycle(succ, all, nullptr);
  NodeId cycle_witness = 0;
  if (has_cycle(succ, non_tagging, &cycle_witness)) {
    add(report, Severity::Error, "df-untagged-cycle",
        node_ref(graph, cycle_witness),
        "cycle through this node passes no IncTag/DecTag: successive loop "
        "waves would collide on the same iteration tag");
  }

  // Steer control-port discipline.
  for (std::size_t id = 0; id < n; ++id) {
    if (graph.node(static_cast<NodeId>(id)).kind != NodeKind::Steer) continue;
    for (const EdgeId k : in_by_port[id][dataflow::kSteerControl]) {
      const Node& src = graph.node(graph.edge(k).src);
      if (src.kind == NodeKind::Const && !src.constant.is_bool() &&
          !src.constant.is_int()) {
        add(report, Severity::Error, "df-steer-control",
            node_ref(graph, static_cast<NodeId>(id)),
            "control input fed by Const of kind " +
                std::string(to_string(src.constant.kind())) +
                ", which can never satisfy truthy()");
      } else if (src.kind == NodeKind::Arith) {
        add(report, Severity::Warning, "df-steer-control",
            node_ref(graph, static_cast<NodeId>(id)),
            "control input fed by an Arith node; a Cmp producing 0/1 is the "
            "idiomatic control source");
      }
    }
  }

  // Tag-offset abstract interpretation: which iteration-tag offsets can each
  // node's tokens carry? A join whose ports hold provably disjoint finite
  // offset sets can never see matching tags.
  std::vector<TagOffsets> out_offsets(n);
  for (std::size_t id = 0; id < n; ++id) {
    if (graph.node(static_cast<NodeId>(id)).kind == NodeKind::Const) {
      out_offsets[id].offsets.insert(0);
    }
  }
  for (std::size_t round = 0, changed = 1; changed && round < 8 * n + 8;
       ++round) {
    changed = 0;
    for (std::size_t id = 0; id < n; ++id) {
      const Node& node = graph.node(static_cast<NodeId>(id));
      if (node.kind == NodeKind::Const) continue;
      TagOffsets in;
      for (const auto& port_edges : in_by_port[id]) {
        for (const EdgeId k : port_edges) {
          in.merge(out_offsets[graph.edge(k).src]);
        }
      }
      changed |= out_offsets[id].merge(in.shifted(tag_delta(node.kind)))
                     ? 1u
                     : 0u;
    }
  }
  std::vector<bool> tag_mismatch(n, false);
  for (std::size_t id = 0; id < n; ++id) {
    if (in_by_port[id].size() < 2) continue;
    std::vector<TagOffsets> per_port(in_by_port[id].size());
    for (std::size_t p = 0; p < in_by_port[id].size(); ++p) {
      for (const EdgeId k : in_by_port[id][p]) {
        per_port[p].merge(out_offsets[graph.edge(k).src]);
      }
    }
    for (std::size_t p = 0; p < per_port.size() && !tag_mismatch[id]; ++p) {
      for (std::size_t q = p + 1; q < per_port.size(); ++q) {
        if (per_port[p].disjoint(per_port[q])) {
          tag_mismatch[id] = true;
          add(report, Severity::Warning, "df-tag-mismatch",
              node_ref(graph, static_cast<NodeId>(id)),
              "input ports can only carry disjoint iteration-tag offsets " +
                  per_port[p].to_string() + " vs " + per_port[q].to_string() +
                  ": tokens never match and the node never fires");
          break;
        }
      }
    }
  }

  // Dead nodes: reachable but no path onward to any Output.
  const std::vector<NodeId> outputs = graph.outputs();
  if (!outputs.empty()) {
    std::vector<bool> useful(n, false);
    std::vector<std::vector<NodeId>> pred(n);
    for (std::size_t id = 0; id < n; ++id) {
      for (const NodeId to : succ[id]) {
        pred[to].push_back(static_cast<NodeId>(id));
      }
    }
    std::deque<NodeId> queue(outputs.begin(), outputs.end());
    for (const NodeId o : outputs) useful[o] = true;
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      for (const NodeId from : pred[at]) {
        if (!useful[from]) {
          useful[from] = true;
          queue.push_back(from);
        }
      }
    }
    for (std::size_t id = 0; id < n; ++id) {
      if (reachable[id] && !useful[id]) {
        add(report, Severity::Warning, "df-dead-node",
            node_ref(graph, static_cast<NodeId>(id)),
            "no path to any Output node: every token it produces is "
            "discarded");
      }
    }
  }

  // Token-balance deadlock detection — acyclic graphs only (cycles recycle
  // tokens through IncTag, which the interval model cannot bound; the tag
  // discipline above covers them).
  if (!cyclic) {
    // Topological order via Kahn on node-level adjacency.
    std::vector<std::size_t> indegree(n, 0);
    for (std::size_t id = 0; id < n; ++id) {
      for (const NodeId to : succ[id]) ++indegree[to];
    }
    std::deque<NodeId> queue;
    for (std::size_t id = 0; id < n; ++id) {
      if (indegree[id] == 0) queue.push_back(static_cast<NodeId>(id));
    }
    std::vector<NodeId> topo;
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      topo.push_back(at);
      for (const NodeId to : succ[at]) {
        if (--indegree[to] == 0) queue.push_back(to);
      }
    }
    std::vector<TokenRange> firings(n);
    std::vector<std::vector<TokenRange>> in_tokens(n);
    for (std::size_t id = 0; id < n; ++id) {
      in_tokens[id].resize(in_by_port[id].size());
    }
    for (const NodeId at : topo) {
      const Node& node = graph.node(at);
      if (node.kind == NodeKind::Const) {
        firings[at] = TokenRange{1, 1};
      } else if (in_by_port[at].empty()) {
        firings[at] = TokenRange{0, 0};
      } else {
        TokenRange f{TokenRange::kCap, TokenRange::kCap};
        for (std::size_t p = 0; p < in_by_port[at].size(); ++p) {
          TokenRange got;
          for (const EdgeId k : in_by_port[at][p]) {
            const Edge& e = graph.edge(k);
            TokenRange carried = firings[e.src];
            // A steer output port passes only the tokens routed its way:
            // anywhere between none and all firings.
            if (graph.node(e.src).kind == NodeKind::Steer) carried.lo = 0;
            got.add(carried);
          }
          in_tokens[at][p] = got;
          f.lo = std::min(f.lo, got.lo);
          f.hi = std::min(f.hi, got.hi);
        }
        // A provable tag mismatch means matching NEVER happens regardless of
        // how many tokens arrive — the node's firing count is exactly zero
        // (disjointness is proven, not approximated), which is what lets a
        // downstream join's starvation surface as df-deadlock.
        if (tag_mismatch[at]) f = TokenRange{0, 0};
        firings[at] = f;
      }
    }
    for (std::size_t id = 0; id < n; ++id) {
      if (in_tokens[id].size() < 2) continue;
      bool reported = false;
      for (std::size_t p = 0; p < in_tokens[id].size() && !reported; ++p) {
        for (std::size_t q = 0; q < in_tokens[id].size(); ++q) {
          if (p == q) continue;
          const TokenRange& a = in_tokens[id][p];
          const TokenRange& b = in_tokens[id][q];
          if (a.lo > 0 && b.hi == 0) {
            add(report, Severity::Error, "df-deadlock",
                node_ref(graph, static_cast<NodeId>(id)),
                "input port " + std::to_string(q) +
                    " never receives a token while port " + std::to_string(p) +
                    " does: the join starves forever");
            reported = true;
            break;
          }
          if (p < q && a.lo > b.hi) {
            add(report, Severity::Info, "df-token-imbalance",
                node_ref(graph, static_cast<NodeId>(id)),
                "input ports receive provably unequal token counts ([" +
                    std::to_string(a.lo) + "," + std::to_string(a.hi) +
                    "] vs [" + std::to_string(b.lo) + "," +
                    std::to_string(b.hi) + "]): leftover tokens linger");
            reported = true;
            break;
          }
        }
      }
    }
  }

  // Discarded output ports (legal; Fig. 2 leaves steer FALSE ports open).
  for (std::size_t id = 0; id < n; ++id) {
    const Node& node = graph.node(static_cast<NodeId>(id));
    if (!reachable[id]) continue;
    for (std::size_t p = 0; p < out_by_port[id].size(); ++p) {
      if (out_by_port[id][p].empty()) {
        add(report, Severity::Info, "df-discarded-port",
            node_ref(graph, static_cast<NodeId>(id)),
            std::string(dataflow::to_string(node.kind)) + " output port " +
                std::to_string(p) + " has no consumer: its tokens are "
                "discarded on arrival");
      }
    }
  }

  return report;
}

}  // namespace gammaflow::analysis
