// Dataflow-graph verifier — the graph-side counterpart of lint.hpp and the
// translation-validation oracle for Algorithm 1/2 outputs. Graph::validate()
// enforces raw structure (port ranges, fed inputs, unique labels) and throws
// on the FIRST violation; this pass collects findings, re-checks structure,
// and then verifies the semantic discipline the TALM model relies on:
//
//   df-edge-endpoint   E  edge references a node id out of range
//   df-port-range      E  port index beyond the node's input/output arity
//   df-input-unfed     E  non-root input port with no producer
//   df-duplicate-label E  two edges share a label (Algorithm 1 would emit
//                         two indistinguishable element populations)
//   df-operator-kind   E  Arith node with a non-arithmetic op / Cmp with a
//                         non-comparison op
//   df-untagged-cycle  E  a cycle that passes no IncTag/DecTag: every trip
//                         re-uses the same iteration tag, so loop waves
//                         collide (the Fig. 2 discipline violated)
//   df-steer-control   E/W control input fed by a Const whose value can
//                         never satisfy truthy() (error), or by an Arith
//                         (warning — Cmp is the idiomatic producer)
//   df-tag-mismatch    W  a join node whose input ports can only carry
//                         provably different iteration tags: it can never
//                         fire (tag-offset abstract interpretation)
//   df-unreachable     W  node not reachable from any Const root: it never
//                         receives a token
//   df-dead-node       W  node from which no Output is reachable (only
//                         checked when the graph has Output nodes)
//   df-deadlock        E  acyclic graphs only: a join node one of whose
//                         input ports provably never receives a token while
//                         another does — it starves forever
//   df-token-imbalance I  acyclic graphs only: input ports with provably
//                         unequal token counts (leftover tokens linger)
//   df-discarded-port  I  output port with no consumer (legal — Fig. 2's
//                         unused steer FALSE ports — but worth surfacing)
//
// Findings reuse the LintReport machinery so the CLI `check` subcommand
// reports both representations uniformly; `Finding::reaction` carries the
// node's name (or "#<id>" when unnamed).
//
// Semantic passes run only when the structural checks are clean — walking
// adjacency of a malformed graph would be UB, and structural errors must be
// fixed first anyway.
#pragma once

#include "gammaflow/analysis/lint.hpp"
#include "gammaflow/dataflow/graph.hpp"

namespace gammaflow::analysis {

/// Verifies `graph`. Pure and total: never throws on malformed graphs (that
/// is the point — it is usable where Graph::validate() would abort).
[[nodiscard]] LintReport verify_graph(const dataflow::Graph& graph);

}  // namespace gammaflow::analysis
