// Static checking of Gamma programs — the direction Structured Gamma
// (§II-B: "type checking at compile time") points at, applied to the plain
// model: label-flow analysis over a program + initial multiset that reports
// defects before anything runs.
//
// Findings:
//   DeadReaction       — a pattern's label is never produced by any reaction
//                        nor present initially: the reaction can never fire.
//   LeakedLabel        — a label is produced but no reaction consumes it;
//                        its elements accumulate. Often intended (program
//                        results like Fig. 1's 'm') — severity Info.
//   GuaranteedDivergence — an unconditional (or else-carrying) reaction
//                        whose every firing keeps the multiset size >= its
//                        consumption while producing a label it also
//                        consumes: the classic x -> x+1 runaway.
//   ConstantCondition  — a branch condition that folds to a literal: the
//                        branch is always or never taken.
//   UnusedBinder       — a replace-list value binder referenced by no
//                        condition or output: the element is consumed purely
//                        for synchronization (legal, worth flagging).
//   ArityMismatch      — mixed element arities between a reaction's outputs
//                        and the patterns that would consume them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::analysis {

enum class Severity { Info, Warning, Error };

/// Stable lowercase name ("info", "warning", "error") for reports.
const char* to_string(Severity severity) noexcept;

struct Finding {
  Severity severity = Severity::Warning;
  std::string check;     // stable id, e.g. "dead-reaction"
  std::string reaction;  // offending reaction name ("" for program-level)
  std::string message;
};

struct LintReport {
  std::vector<Finding> findings;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;
  /// Findings of one check id.
  [[nodiscard]] std::vector<Finding> of(const std::string& check) const;
};

std::ostream& operator<<(std::ostream& os, const LintReport& report);

/// Machine-readable form (one JSON object with a "findings" array) for the
/// CLI's --json mode; shared by lint_program and verify_graph reports.
void write_json(std::ostream& os, const LintReport& report);

/// Analyzes `program` against `initial`. Pure; never throws on suspicious
/// programs (that is the point), only on malformed inputs.
[[nodiscard]] LintReport lint_program(const gamma::Program& program,
                                      const gamma::Multiset& initial);

}  // namespace gammaflow::analysis
