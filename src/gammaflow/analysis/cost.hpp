// Cost model + label-cardinality analysis feeding the §III-A3 auto-reduction
// planner (analysis/optimize.hpp). Two halves:
//
//   1. Boundedness — an abstract interpretation over per-label cardinalities.
//      The abstract value for a label is an upper bound on how many elements
//      can EVER exist under it across a run (initial population plus
//      everything produced), widened to "possibly unbounded" when a growth
//      cycle keeps feeding it. Labels whose net change is provably <= 0 in
//      every reaction are pinned at their initial count (a shrinking label
//      never exceeds what it started with). The per-label growth sign
//      (shrinking / bounded / possibly-unbounded) doubles as a standalone
//      divergence lint in `gammaflow check`.
//
//   2. Cost — per-reaction work estimated as match cost (arity x live-label
//      cardinality) + body cost (bytecode chunk length from the compiled
//      reaction) + store traffic (elements removed + inserted), scaled by a
//      firing-count estimate from the same label bounds. Stage time divides
//      total work by min(workers, concurrent match opportunities), which is
//      exactly the paper's trade: fusing a chain shrinks total work (the
//      intermediate label's store round-trip disappears) but also shrinks
//      the number of independent matches, so under enough workers the fused
//      form can lose. Constants are calibrated against bench_reductions
//      (EXPERIMENTS E16).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::analysis {

/// Growth sign of one label's population (or of the whole multiset).
enum class Growth {
  Shrinking,          // provably never exceeds its initial count
  Bounded,            // finite upper bound exists
  PossiblyUnbounded,  // a growth cycle may feed it forever
};
const char* to_string(Growth g) noexcept;

struct LabelBound {
  /// Upper bound on the label's LIVE population (elements present at any
  /// one instant — what a match scan can see). Meaningful only when
  /// growth != PossiblyUnbounded. Internally the analysis also tracks the
  /// cumulative count of elements that ever exist, which is what bounds
  /// firings; the two differ for self-feeding labels.
  std::size_t bound = 0;
  Growth growth = Growth::Bounded;
  [[nodiscard]] bool unbounded() const noexcept {
    return growth == Growth::PossiblyUnbounded;
  }
};

struct BoundednessReport {
  std::map<std::string, LabelBound> labels;
  /// True when `initial` was non-empty, making the bounds absolute counts.
  /// When false the analysis seeds every label with one symbolic element —
  /// growth signs are still trustworthy, absolute bounds are not, and
  /// cardinality-driven dead-reaction elimination must not fire.
  bool initial_known = false;
  /// Whole-multiset verdict; folds in unlabeled reactions (classic Gamma
  /// `replace x, y by x`) which the per-label map cannot see.
  Growth overall = Growth::Bounded;

  /// Bound for `label`, or `fallback` when unknown or unbounded.
  [[nodiscard]] std::size_t bound_or(const std::string& label,
                                     std::size_t fallback) const;
  [[nodiscard]] bool any_unbounded() const;
};

/// Runs the cardinality abstract interpretation. Sound over-approximation:
/// production counts every output that COULD carry the label (wildcard
/// outputs poison everything), consumption is only trusted when a pattern
/// pins the label. Conditions are ignored (they can only reduce firings).
[[nodiscard]] BoundednessReport analyze_boundedness(
    const gamma::Program& program, const gamma::Multiset& initial);

/// Calibrated against bench_reductions (see EXPERIMENTS E16): one bytecode
/// instruction is the unit, a match probe costs ~c_match units per pattern
/// per live candidate, a store remove/insert ~c_store units per element.
struct CostParams {
  double c_match = 3.0;
  double c_instr = 1.0;
  double c_store = 8.0;
  /// Workers the target engine can throw at independent matches; 1 models
  /// the sequential/indexed engines, higher values the parallel engines.
  unsigned workers = 1;
  /// Live-population fallback when a label has no finite bound.
  std::size_t assumed_scale = 16;
};

struct ReactionCost {
  double per_fire = 0;  // match + body + store work for one firing
  double fires = 0;     // firing-count estimate over a whole run
  double work = 0;      // fires * per_fire
  std::size_t instrs = 0;
  std::size_t live = 0;  // largest live-label population among the patterns
};

[[nodiscard]] ReactionCost estimate_reaction_cost(
    const gamma::Reaction& reaction, const BoundednessReport& bounds,
    const CostParams& params = {});

struct StageCost {
  double work = 0;         // sum of reaction work
  double concurrency = 0;  // sum of firing estimates: independent matches
  double time = 0;         // work / min(workers, concurrency)
};

[[nodiscard]] StageCost estimate_stage_cost(
    const std::vector<gamma::Reaction>& stage, const BoundednessReport& bounds,
    const CostParams& params = {});

/// Sum of stage times — the planner's objective function.
[[nodiscard]] double estimate_program_cost(const gamma::Program& program,
                                           const BoundednessReport& bounds,
                                           const CostParams& params = {});

}  // namespace gammaflow::analysis
