#include "gammaflow/analysis/cost.hpp"

#include <algorithm>
#include <limits>

#include "gammaflow/analysis/interference.hpp"

namespace gammaflow::analysis {

using expr::Expr;
using gamma::Branch;
using gamma::Element;
using gamma::Multiset;
using gamma::Pattern;
using gamma::Program;
using gamma::Reaction;

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

std::size_t sat_add(std::size_t a, std::size_t b) {
  if (a == kInf || b == kInf || a > kInf - b) return kInf;
  return a + b;
}

std::size_t sat_mul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kInf || b == kInf || a > kInf / b) return kInf;
  return a * b;
}

/// Label traffic of one reaction, split by soundness direction: `consumed`
/// only counts patterns GUARANTEED to take an element of that label (literal
/// label field, or a binder whose condition pins a singleton), so dividing a
/// label bound by it under-counts nothing; `produced_max` counts every
/// output that COULD carry the label (max across branches), and `any_max`
/// the outputs whose label cannot be resolved at all — each such output may
/// land on ANY label, so it contributes 1 to every label's production.
struct ReactionUse {
  std::map<std::string, std::size_t> consumed;
  std::map<std::string, std::size_t> produced_max;
  std::size_t any_max = 0;
  bool unlabeled_outputs = false;
};

ReactionUse reaction_use(const Reaction& r) {
  ReactionUse u;
  for (const Pattern& p : r.patterns()) {
    const auto& fields = p.fields();
    if (fields.size() < 2) continue;  // unlabeled elements: no label traffic
    if (!fields[1].is_binder()) {
      if (fields[1].value().is_str()) ++u.consumed[fields[1].value().as_str()];
      continue;
    }
    if (auto bounds = admitted_labels(r, fields[1].name());
        bounds && bounds->size() == 1) {
      ++u.consumed[*bounds->begin()];
    }
  }
  for (const Branch& br : r.branches()) {
    std::map<std::string, std::size_t> per_branch;
    std::size_t any_here = 0;
    for (const auto& tuple : br.outputs) {
      if (tuple.size() < 2) {
        u.unlabeled_outputs = true;
        continue;
      }
      const auto& label = tuple[1];
      if (label->kind() == Expr::Kind::Literal && label->literal().is_str()) {
        ++per_branch[label->literal().as_str()];
        continue;
      }
      if (label->kind() == Expr::Kind::Var) {
        if (auto bounds = admitted_labels(r, label->var())) {
          for (const auto& l : *bounds) ++per_branch[l];
          continue;
        }
      }
      ++any_here;
    }
    for (const auto& [l, n] : per_branch) {
      u.produced_max[l] = std::max(u.produced_max[l], n);
    }
    u.any_max = std::max(u.any_max, any_here);
  }
  return u;
}

std::size_t produced_to(const ReactionUse& u, const std::string& label) {
  const auto it = u.produced_max.find(label);
  return sat_add(it == u.produced_max.end() ? 0 : it->second, u.any_max);
}

/// Cumulative firing bound: each firing removes `consumed[l]` elements of l,
/// and at most bound(l) elements of l ever exist, so fires <= bound/mult.
/// A reaction with no guaranteed label consumption cannot be bounded.
std::size_t fires_bound(const ReactionUse& u,
                        const std::map<std::string, std::size_t>& bound) {
  if (u.consumed.empty()) return kInf;
  std::size_t fires = kInf;
  for (const auto& [l, mult] : u.consumed) {
    const auto it = bound.find(l);
    const std::size_t b = it == bound.end() ? 0 : it->second;
    fires = std::min(fires, b == kInf ? kInf : b / mult);
  }
  return fires;
}

std::size_t max_outputs(const Reaction& r) {
  std::size_t n = 0;
  for (const Branch& br : r.branches()) n = std::max(n, br.outputs.size());
  return n;
}

}  // namespace

const char* to_string(Growth g) noexcept {
  switch (g) {
    case Growth::Shrinking: return "shrinking";
    case Growth::Bounded: return "bounded";
    case Growth::PossiblyUnbounded: return "possibly-unbounded";
  }
  return "?";
}

std::size_t BoundednessReport::bound_or(const std::string& label,
                                        std::size_t fallback) const {
  const auto it = labels.find(label);
  if (it == labels.end() || it->second.unbounded()) return fallback;
  return it->second.bound;
}

bool BoundednessReport::any_unbounded() const {
  return std::any_of(labels.begin(), labels.end(),
                     [](const auto& kv) { return kv.second.unbounded(); });
}

BoundednessReport analyze_boundedness(const Program& program,
                                      const Multiset& initial) {
  BoundednessReport report;
  report.initial_known = !initial.empty();

  std::vector<const Reaction*> reactions = program.all_reactions();
  std::vector<ReactionUse> uses;
  uses.reserve(reactions.size());
  for (const Reaction* r : reactions) uses.push_back(reaction_use(*r));

  std::map<std::string, std::size_t> seed;
  for (const Element& e : initial) {
    if (e.arity() >= 2 && e.field(1).is_str()) ++seed[e.field(1).as_str()];
  }
  std::set<std::string> universe;
  for (const auto& [l, n] : seed) universe.insert(l);
  for (const ReactionUse& u : uses) {
    for (const auto& [l, n] : u.consumed) universe.insert(l);
    for (const auto& [l, n] : u.produced_max) universe.insert(l);
  }
  // Without an initial store the bounds are symbolic: one element per label,
  // enough to expose growth cycles but not to prove anything dead.
  if (!report.initial_known) {
    for (const std::string& l : universe) seed[l] = 1;
  }

  // A label is non-increasing when every reaction consumes at least as many
  // of it as it can produce — its population never exceeds the seed.
  std::set<std::string> non_increasing;
  for (const std::string& l : universe) {
    bool ok = true;
    for (const ReactionUse& u : uses) {
      const auto it = u.consumed.find(l);
      const std::size_t consumed = it == u.consumed.end() ? 0 : it->second;
      if (produced_to(u, l) > consumed) {
        ok = false;
        break;
      }
    }
    if (ok) non_increasing.insert(l);
  }

  // Kleene iteration of ever(l) = seed(l) + sum_r fires(r) * produced(r,l) —
  // the CUMULATIVE count of elements that ever exist under l, which is what
  // bounds firings (each firing consumes distinct elements). It must be
  // tracked even for non-increasing labels: a self-feeding reaction keeps
  // its label's live population at the seed while minting fresh elements
  // every firing, so the cumulative count (and the firing bound) diverges.
  // Labels still climbing past the sweep cap widen to infinity; the
  // post-cap sweeps terminate because each one either stabilizes or turns
  // at least one more label infinite.
  std::map<std::string, std::size_t> ever;
  for (const std::string& l : universe) {
    ever[l] = seed.count(l) != 0 ? seed[l] : 0;
  }
  const std::size_t sweep_cap = 8 + 2 * universe.size();
  for (std::size_t sweep = 0;; ++sweep) {
    std::vector<std::size_t> fires;
    fires.reserve(uses.size());
    for (const ReactionUse& u : uses) fires.push_back(fires_bound(u, ever));

    std::set<std::string> climbed;
    for (const std::string& l : universe) {
      std::size_t total = seed.count(l) != 0 ? seed[l] : 0;
      for (std::size_t i = 0; i < uses.size(); ++i) {
        const std::size_t pm = produced_to(uses[i], l);
        if (pm == 0) continue;
        total = sat_add(total, sat_mul(fires[i], pm));
      }
      if (total > ever[l]) {
        ever[l] = total;
        climbed.insert(l);
      }
    }
    if (climbed.empty()) break;
    if (sweep >= sweep_cap) {
      for (const std::string& l : climbed) ever[l] = kInf;
    }
  }

  // Reported bounds are LIVE-population bounds (what a match scan can see):
  // non-increasing labels sit at their seed count even when their
  // cumulative count diverges; everything else is over-approximated by the
  // cumulative count.
  for (const std::string& l : universe) {
    LabelBound lb;
    if (non_increasing.contains(l)) {
      lb.bound = seed.count(l) != 0 ? seed[l] : 0;
      lb.growth = Growth::Shrinking;
    } else if (ever[l] == kInf) {
      lb.growth = Growth::PossiblyUnbounded;
    } else {
      lb.bound = ever[l];
      lb.growth = Growth::Bounded;
    }
    report.labels.emplace(l, lb);
  }

  // Whole-multiset verdict. Unlabeled production escapes the label map, so
  // fold it in per reaction: an unlabeled-producing, non-shrinking reaction
  // whose firings cannot be bounded may grow (or spin) forever.
  report.overall = report.any_unbounded() ? Growth::PossiblyUnbounded
                                          : Growth::Bounded;
  if (report.overall == Growth::Bounded) {
    for (std::size_t i = 0; i < uses.size(); ++i) {
      if ((uses[i].unlabeled_outputs || uses[i].any_max > 0) &&
          !reactions[i]->is_shrinking() &&
          fires_bound(uses[i], ever) == kInf) {
        report.overall = Growth::PossiblyUnbounded;
        break;
      }
    }
  }
  if (report.overall == Growth::Bounded &&
      std::all_of(reactions.begin(), reactions.end(),
                  [](const Reaction* r) { return r->is_shrinking(); })) {
    report.overall = Growth::Shrinking;
  }
  return report;
}

ReactionCost estimate_reaction_cost(const Reaction& reaction,
                                    const BoundednessReport& bounds,
                                    const CostParams& params) {
  ReactionCost cost;
  cost.instrs = reaction.compiled().instr_count();

  // Live population per pattern: the label bound when one is pinned,
  // assumed_scale for wildcards and unbounded labels.
  cost.live = 1;
  for (const Pattern& p : reaction.patterns()) {
    const auto& fields = p.fields();
    std::size_t pop = params.assumed_scale;
    if (fields.size() >= 2 && !fields[1].is_binder() &&
        fields[1].value().is_str()) {
      pop = bounds.bound_or(fields[1].value().as_str(), params.assumed_scale);
    }
    cost.live = std::max(cost.live, pop);
  }

  const ReactionUse use = reaction_use(reaction);
  std::map<std::string, std::size_t> label_bounds;
  for (const auto& [l, lb] : bounds.labels) {
    label_bounds[l] = lb.unbounded() ? kInf : lb.bound;
  }
  const std::size_t fb = fires_bound(use, label_bounds);
  cost.fires = fb == kInf ? static_cast<double>(params.assumed_scale)
                          : static_cast<double>(fb);

  const auto arity = static_cast<double>(reaction.arity());
  cost.per_fire =
      params.c_match * arity * static_cast<double>(cost.live) +
      params.c_instr * static_cast<double>(cost.instrs) +
      params.c_store * (arity + static_cast<double>(max_outputs(reaction)));
  cost.work = cost.fires * cost.per_fire;
  return cost;
}

StageCost estimate_stage_cost(const std::vector<Reaction>& stage,
                              const BoundednessReport& bounds,
                              const CostParams& params) {
  StageCost sc;
  for (const Reaction& r : stage) {
    const ReactionCost rc = estimate_reaction_cost(r, bounds, params);
    sc.work += rc.work;
    sc.concurrency += rc.fires;
  }
  const double lanes =
      std::min(static_cast<double>(params.workers), std::max(sc.concurrency, 1.0));
  sc.time = sc.work / std::max(lanes, 1.0);
  return sc;
}

double estimate_program_cost(const Program& program,
                             const BoundednessReport& bounds,
                             const CostParams& params) {
  double total = 0;
  for (const auto& stage : program.stages()) {
    total += estimate_stage_cost(stage, bounds, params).time;
  }
  return total;
}

}  // namespace gammaflow::analysis
