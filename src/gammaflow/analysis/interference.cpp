#include "gammaflow/analysis/interference.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"

namespace gammaflow::analysis {

using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using gamma::Branch;
using gamma::Element;
using gamma::Multiset;
using gamma::Pattern;
using gamma::Program;
using gamma::Reaction;

namespace {

/// Sound upper bound on the string labels `var` may hold for `cond` to be
/// true: nullopt when no bound can be proven (the condition may admit any
/// label). Only pure positive structure is trusted — Or unions, And
/// intersects (one bounded side suffices), var == 'lit' is a singleton;
/// anything else (negation, inequality, arithmetic over var) gives up.
std::optional<std::set<std::string>> bound_labels(const ExprPtr& cond,
                                                  const std::string& var) {
  if (!cond || cond->kind() != Expr::Kind::Binary) return std::nullopt;
  const BinOp op = cond->bin_op();
  if (op == BinOp::Eq) {
    const ExprPtr& l = cond->lhs();
    const ExprPtr& r = cond->rhs();
    for (const auto& [v, lit] : {std::pair{l, r}, std::pair{r, l}}) {
      if (v->kind() == Expr::Kind::Var && v->var() == var &&
          lit->kind() == Expr::Kind::Literal && lit->literal().is_str()) {
        return std::set<std::string>{lit->literal().as_str()};
      }
    }
    return std::nullopt;
  }
  if (op == BinOp::Or) {
    auto a = bound_labels(cond->lhs(), var);
    auto b = bound_labels(cond->rhs(), var);
    if (!a || !b) return std::nullopt;
    a->insert(b->begin(), b->end());
    return a;
  }
  if (op == BinOp::And) {
    auto a = bound_labels(cond->lhs(), var);
    auto b = bound_labels(cond->rhs(), var);
    if (a && b) {
      std::set<std::string> both;
      std::set_intersection(a->begin(), a->end(), b->begin(), b->end(),
                            std::inserter(both, both.begin()));
      return both;
    }
    return a ? a : b;
  }
  return std::nullopt;
}

}  // namespace

/// Reaction-level bound for a label binder: the union of per-branch bounds.
/// An unconditional or else branch fires regardless of the label, so the
/// binder admits anything.
std::optional<std::set<std::string>> admitted_labels(const Reaction& r,
                                                     const std::string& var) {
  std::set<std::string> all;
  for (const Branch& br : r.branches()) {
    if (!br.condition || br.is_else) return std::nullopt;
    auto sub = bound_labels(br.condition, var);
    if (!sub) return std::nullopt;
    all.insert(sub->begin(), sub->end());
  }
  return all;
}

namespace {

bool sets_intersect(const std::set<std::string>& a,
                    const std::set<std::string>& b) {
  if (a.size() > b.size()) return sets_intersect(b, a);
  return std::any_of(a.begin(), a.end(),
                     [&](const std::string& s) { return b.contains(s); });
}

bool sets_intersect(const std::set<std::size_t>& a,
                    const std::set<std::size_t>& b) {
  if (a.size() > b.size()) return sets_intersect(b, a);
  return std::any_of(a.begin(), a.end(),
                     [&](std::size_t s) { return b.contains(s); });
}

bool consumes_anything(const Footprint& f) {
  return f.consume_any || !f.consume_labels.empty() ||
         !f.consume_arities.empty();
}

bool produces_anything(const Footprint& f) {
  return f.produce_any || !f.produce_labels.empty() ||
         !f.produce_arities.empty();
}

struct Dsu {
  std::vector<std::size_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

void join(std::ostream& os, const std::set<std::string>& labels,
          const std::set<std::size_t>& arities, bool any) {
  if (any) {
    os << '*';
    return;
  }
  bool first = true;
  for (const std::string& l : labels) {
    os << (first ? "" : ",") << '\'' << l << '\'';
    first = false;
  }
  for (const std::size_t a : arities) {
    os << (first ? "" : ",") << "arity:" << a;
    first = false;
  }
  if (first) os << "-";
}

/// Upper bound on how many elements of label `l` can ever coexist: its
/// initial count, or unbounded once any reaction can produce it.
std::size_t label_cap(const std::string& l,
                      const std::map<std::string, std::size_t>& initial_counts,
                      const std::set<std::string>& produced,
                      bool any_produce_any) {
  if (any_produce_any || produced.contains(l)) {
    return std::numeric_limits<std::size_t>::max();
  }
  const auto it = initial_counts.find(l);
  return it == initial_counts.end() ? 0 : it->second;
}

/// Can two DISTINCT overlapping matches of `r` ever exist? Distinct matches
/// of a single-pattern reaction are element-disjoint (and commute); a
/// multi-pattern reaction whose every pattern is pinned to a label with at
/// most one live element admits at most one tuple. Everything else is
/// probed dynamically.
bool self_competes(const Reaction& r, const Footprint& f,
                   const std::map<std::string, std::size_t>& initial_counts,
                   const std::set<std::string>& produced,
                   bool any_produce_any) {
  if (r.arity() <= 1) return false;
  if (f.consume_any || !f.consume_arities.empty()) return true;
  for (const Pattern& p : r.patterns()) {
    const auto& fields = p.fields();
    if (fields.size() < 2 || fields[1].is_binder() ||
        !fields[1].value().is_str()) {
      return true;  // not label-pinned: multiplicity unknowable
    }
    if (label_cap(fields[1].value().as_str(), initial_counts, produced,
                  any_produce_any) > 1) {
      return true;
    }
  }
  return false;
}

/// The program restricted to stages `from_stage..end` — the valid
/// continuation of a run that has reached the middle of stage `from_stage`.
Program tail_program(const Program& program, std::size_t from_stage) {
  Program tail;
  for (std::size_t s = from_stage; s < program.stages().size(); ++s) {
    Program stage{program.stages()[s]};
    tail = tail.empty() ? std::move(stage) : tail.then(stage);
  }
  return tail;
}

/// Reachable states sampled from one instrumented run, bucketed by the
/// stage that was active when each state was visited.
std::vector<std::vector<Multiset>> sample_states(
    const Program& program, const Multiset& initial,
    const InterferenceOptions& options) {
  std::vector<std::vector<Multiset>> by_stage(program.stages().size());
  if (by_stage.empty()) return by_stage;

  gamma::RunOptions ro;
  ro.seed = options.seed;
  ro.record_trace = true;
  ro.max_steps = std::max<std::uint64_t>(options.probe_max_steps * 8, 4096);
  ro.trace_limit = ro.max_steps;
  ro.limit_policy = LimitPolicy::Partial;
  const gamma::RunResult run = gamma::IndexedEngine().run(program, initial, ro);

  // Reconstruct every intermediate multiset, then keep an even sample.
  std::vector<Multiset> states;
  std::vector<std::size_t> state_stage;
  Multiset current = initial;
  states.push_back(current);
  state_stage.push_back(run.trace.empty() ? 0 : run.trace.front().stage);
  for (const gamma::FireEvent& ev : run.trace) {
    for (const Element& e : ev.consumed) current.remove_one(e);
    for (const Element& e : ev.produced) current.add(e);
    states.push_back(current);
    state_stage.push_back(ev.stage);
  }
  const std::size_t want = std::max<std::size_t>(options.probe_states, 1);
  const std::size_t stride = std::max<std::size_t>(states.size() / want, 1);
  for (std::size_t k = 0; k < states.size(); k += stride) {
    by_stage[state_stage[k]].push_back(std::move(states[k]));
  }
  return by_stage;
}

/// Fallback when no initial multiset is given: random states synthesized
/// from the pair's own replace lists (one binding environment per reaction
/// instance so repeated binders stay consistent), with label binders drawn
/// from the admitted bounds or the program's label universe.
Multiset synthesize_state(const Reaction& r1, const Reaction& r2,
                          const std::set<std::string>& universe, Rng& rng) {
  Multiset m;
  const std::vector<const Reaction*> pair =
      (&r1 == &r2) ? std::vector<const Reaction*>{&r1}
                   : std::vector<const Reaction*>{&r1, &r2};
  for (const Reaction* r : pair) {
    const std::size_t instances = 1 + rng.bounded(2) + (&r1 == &r2 ? 1 : 0);
    for (std::size_t inst = 0; inst < instances; ++inst) {
      std::map<std::string, Value> binding;
      for (const Pattern& p : r->patterns()) {
        std::vector<Value> fields;
        for (std::size_t i = 0; i < p.fields().size(); ++i) {
          const auto& f = p.fields()[i];
          if (!f.is_binder()) {
            fields.push_back(f.value());
            continue;
          }
          auto it = binding.find(f.name());
          if (it == binding.end()) {
            Value v(static_cast<std::int64_t>(rng.bounded(6)));
            if (i == 1) {
              std::set<std::string> pool;
              if (auto bounds = admitted_labels(*r, f.name())) {
                pool = *bounds;
              } else {
                pool = universe;
              }
              if (!pool.empty()) {
                auto pick = pool.begin();
                std::advance(pick, static_cast<std::ptrdiff_t>(
                                       rng.bounded(pool.size())));
                v = Value(*pick);
              }
            }
            it = binding.emplace(f.name(), std::move(v)).first;
          }
          fields.push_back(it->second);
        }
        m.add(Element(std::move(fields)));
      }
    }
  }
  return m;
}

bool ids_overlap(const std::vector<gamma::Store::Id>& a,
                 const std::vector<gamma::Store::Id>& b) {
  return std::any_of(a.begin(), a.end(), [&](gamma::Store::Id id) {
    return std::find(b.begin(), b.end(), id) != b.end();
  });
}

/// Runs the continuation program from `m` to a fixpoint under a firing
/// budget. nullopt = budget exhausted (inconclusive probe).
std::optional<Multiset> probe_fixpoint(const Program& continuation,
                                       const Multiset& m, std::uint64_t seed,
                                       std::uint64_t max_steps) {
  gamma::RunOptions ro;
  ro.seed = seed;
  ro.max_steps = max_steps;
  ro.limit_policy = LimitPolicy::Partial;
  gamma::RunResult r = gamma::IndexedEngine().run(continuation, m, ro);
  if (r.outcome != Outcome::Completed) return std::nullopt;
  return std::move(r.final_multiset);
}

}  // namespace

std::string Footprint::to_string() const {
  std::ostringstream os;
  os << "consumes ";
  join(os, consume_labels, consume_arities, consume_any);
  os << " produces ";
  join(os, produce_labels, produce_arities, produce_any);
  return os.str();
}

Footprint reaction_footprint(const Reaction& reaction) {
  Footprint f;
  for (const Pattern& p : reaction.patterns()) {
    const auto& fields = p.fields();
    if (fields.size() < 2) {
      f.consume_arities.insert(p.arity());
      continue;
    }
    if (!fields[1].is_binder()) {
      if (fields[1].value().is_str()) {
        f.consume_labels.insert(fields[1].value().as_str());
      } else {
        f.consume_arities.insert(p.arity());
      }
      continue;
    }
    if (auto bounds = admitted_labels(reaction, fields[1].name())) {
      f.consume_labels.insert(bounds->begin(), bounds->end());
    } else {
      f.consume_any = true;
    }
  }
  for (const Branch& br : reaction.branches()) {
    for (const auto& tuple : br.outputs) {
      if (tuple.size() < 2) {
        f.produce_arities.insert(tuple.size());
        continue;
      }
      const ExprPtr& label = tuple[1];
      if (label->kind() == Expr::Kind::Literal) {
        if (label->literal().is_str()) {
          f.produce_labels.insert(label->literal().as_str());
        } else {
          f.produce_arities.insert(tuple.size());
        }
        continue;
      }
      // A label binder passed through keeps its consume-side bound.
      if (label->kind() == Expr::Kind::Var) {
        if (auto bounds = admitted_labels(reaction, label->var())) {
          f.produce_labels.insert(bounds->begin(), bounds->end());
          continue;
        }
      }
      f.produce_any = true;
    }
  }
  return f;
}

std::vector<runtime::WakeKeys> wakeup_keys(const gamma::Program& program) {
  std::vector<runtime::WakeKeys> keys;
  for (const gamma::Reaction* r : program.all_reactions()) {
    const Footprint f = reaction_footprint(*r);
    runtime::WakeKeys k;
    k.labels = f.consume_labels;
    k.arities = f.consume_arities;
    k.any = f.consume_any;
    keys.push_back(std::move(k));
  }
  return keys;
}

bool compete(const Footprint& a, const Footprint& b) {
  if ((a.consume_any && consumes_anything(b)) ||
      (b.consume_any && consumes_anything(a))) {
    return true;
  }
  return sets_intersect(a.consume_labels, b.consume_labels) ||
         sets_intersect(a.consume_arities, b.consume_arities);
}

bool feeds(const Footprint& a, const Footprint& b) {
  if (a.produce_any && consumes_anything(b)) return true;
  if (b.consume_any && produces_anything(a)) return true;
  return sets_intersect(a.produce_labels, b.consume_labels) ||
         sets_intersect(a.produce_arities, b.consume_arities);
}

bool interferes(const Footprint& a, const Footprint& b) {
  return compete(a, b) || feeds(a, b) || feeds(b, a);
}

const char* to_string(PairStatus status) noexcept {
  switch (status) {
    case PairStatus::Independent: return "independent";
    case PairStatus::Ordered: return "ordered";
    case PairStatus::Commutes: return "commutes";
    case PairStatus::Diverges: return "diverges";
    case PairStatus::Unknown: return "unknown";
  }
  return "?";
}

const char* to_string(ConfluenceVerdict verdict) noexcept {
  switch (verdict) {
    case ConfluenceVerdict::Confluent: return "confluent";
    case ConfluenceVerdict::LikelyConfluent: return "likely-confluent";
    case ConfluenceVerdict::NonConfluent: return "non-confluent";
  }
  return "?";
}

std::map<std::string, std::size_t> InterferenceReport::engine_classes() const {
  std::map<std::string, std::size_t> out;
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    out[reactions[i]] = class_of[i];
  }
  return out;
}

std::map<std::string, std::size_t> InterferenceReport::label_affinity() const {
  std::map<std::string, std::size_t> out;
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    for (const std::string& l : footprints[i].consume_labels) {
      out.emplace(l, class_of[i]);  // consumers win: emplace keeps the first
    }
  }
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    for (const std::string& l : footprints[i].produce_labels) {
      out.emplace(l, class_of[i]);
    }
  }
  return out;
}

bool InterferenceReport::has_divergence() const noexcept {
  return std::any_of(pairs.begin(), pairs.end(), [](const PairFinding& p) {
    return p.status == PairStatus::Diverges;
  });
}

std::string InterferenceReport::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const InterferenceReport& report) {
  os << "interference: " << report.reactions.size() << " reaction(s), "
     << report.edges.size() << " edge(s), " << report.class_count
     << " conflict class(es), verdict " << to_string(report.verdict) << '\n';
  for (std::size_t i = 0; i < report.reactions.size(); ++i) {
    os << "  " << report.reactions[i] << " [class " << report.class_of[i]
       << "] " << report.footprints[i].to_string() << '\n';
  }
  for (const PairFinding& p : report.pairs) {
    os << "  pair (" << report.reactions[p.r1] << ", " << report.reactions[p.r2]
       << "): " << to_string(p.status) << '\n';
    if (p.status == PairStatus::Diverges) {
      os << "    witness M = " << p.witness << '\n'
         << "    fixpoint via " << report.reactions[p.r1] << " = "
         << p.fixpoint1 << '\n'
         << "    fixpoint via " << report.reactions[p.r2] << " = "
         << p.fixpoint2 << '\n';
    }
  }
  return os;
}

void write_json(std::ostream& os, const InterferenceReport& report) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  };
  os << "{\"verdict\":\"" << to_string(report.verdict)
     << "\",\"class_count\":" << report.class_count << ",\"reactions\":[";
  for (std::size_t i = 0; i < report.reactions.size(); ++i) {
    if (i) os << ',';
    os << "{\"name\":\"" << escape(report.reactions[i]) << "\",\"class\":"
       << report.class_of[i] << ",\"footprint\":\""
       << escape(report.footprints[i].to_string()) << "\"}";
  }
  // Edge lists by kind, as [from, to] name pairs — feed edges are directed
  // produce->consume, compete edges undirected (emitted r1,r2). The optimizer
  // report and external tools consume this same schema.
  os << "],\"feed_edges\":[";
  bool first_edge = true;
  for (const auto& e : report.typed_edges) {
    for (const auto& [from, to] :
         {std::pair{e.r1, e.r2}, std::pair{e.r2, e.r1}}) {
      if (!(from == e.r1 ? e.feeds_12 : e.feeds_21)) continue;
      if (!first_edge) os << ',';
      first_edge = false;
      os << "[\"" << escape(report.reactions[from]) << "\",\""
         << escape(report.reactions[to]) << "\"]";
    }
  }
  os << "],\"compete_edges\":[";
  first_edge = true;
  for (const auto& e : report.typed_edges) {
    if (!e.compete) continue;
    if (!first_edge) os << ',';
    first_edge = false;
    os << "[\"" << escape(report.reactions[e.r1]) << "\",\""
       << escape(report.reactions[e.r2]) << "\"]";
  }
  os << "],\"pairs\":[";
  for (std::size_t k = 0; k < report.pairs.size(); ++k) {
    const PairFinding& p = report.pairs[k];
    if (k) os << ',';
    os << "{\"r1\":\"" << escape(report.reactions[p.r1]) << "\",\"r2\":\""
       << escape(report.reactions[p.r2]) << "\",\"status\":\""
       << to_string(p.status) << '"';
    if (p.status == PairStatus::Diverges) {
      os << ",\"witness\":\"" << escape(p.witness.to_string())
         << "\",\"fixpoint1\":\"" << escape(p.fixpoint1.to_string())
         << "\",\"fixpoint2\":\"" << escape(p.fixpoint2.to_string()) << '"';
    }
    os << '}';
  }
  os << "]}";
}

InterferenceReport analyze_interference(const Program& program,
                                        const Multiset& initial,
                                        const InterferenceOptions& options) {
  InterferenceReport report;
  std::vector<const Reaction*> reactions;
  std::vector<std::size_t> stage_of;
  for (std::size_t s = 0; s < program.stages().size(); ++s) {
    for (const Reaction& r : program.stages()[s]) {
      reactions.push_back(&r);
      stage_of.push_back(s);
      report.reactions.push_back(r.name());
      report.footprints.push_back(reaction_footprint(r));
    }
  }
  const std::size_t n = reactions.size();

  // Multiplicity context for the self-competition refinement.
  std::map<std::string, std::size_t> initial_counts;
  for (const Element& e : initial) {
    if (e.arity() >= 2 && e.field(1).is_str()) {
      ++initial_counts[e.field(1).as_str()];
    }
  }
  std::set<std::string> produced;
  std::set<std::string> universe;
  bool any_produce_any = false;
  for (const Footprint& f : report.footprints) {
    produced.insert(f.produce_labels.begin(), f.produce_labels.end());
    universe.insert(f.produce_labels.begin(), f.produce_labels.end());
    universe.insert(f.consume_labels.begin(), f.consume_labels.end());
    any_produce_any |= f.produce_any;
  }
  for (const auto& [l, c] : initial_counts) universe.insert(l);

  // Interference graph and conflict classes (per stage: reactions in
  // different sequential stages are never concurrent, so they never share a
  // class even when their labels overlap).
  Dsu dsu(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (stage_of[i] != stage_of[j]) continue;
      if (interferes(report.footprints[i], report.footprints[j])) {
        report.edges.emplace_back(i, j);
        report.typed_edges.push_back(
            {i, j, compete(report.footprints[i], report.footprints[j]),
             feeds(report.footprints[i], report.footprints[j]),
             feeds(report.footprints[j], report.footprints[i])});
        dsu.unite(i, j);
      }
    }
  }
  report.class_of.assign(n, 0);
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> class_ids;
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = std::make_pair(stage_of[i], dsu.find(i));
    auto [it, inserted] = class_ids.emplace(key, class_ids.size());
    report.class_of[i] = it->second;
  }
  report.class_count = class_ids.size();

  // --- commutation probing over reachable states ---
  const bool have_initial = !initial.empty();
  std::vector<std::vector<Multiset>> states_by_stage;
  if (have_initial && options.probe_states > 0) {
    states_by_stage = sample_states(program, initial, options);
  }
  Rng rng(options.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  std::uint64_t probe_counter = options.seed;

  bool any_competition = false;
  bool any_unknown = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (stage_of[i] != stage_of[j]) continue;
      const Footprint& fi = report.footprints[i];
      const Footprint& fj = report.footprints[j];
      const bool competing =
          i == j ? self_competes(*reactions[i], fi, initial_counts, produced,
                                 any_produce_any)
                 : compete(fi, fj);
      if (!competing) {
        if (i != j && (feeds(fi, fj) || feeds(fj, fi))) {
          report.pairs.push_back({i, j, PairStatus::Ordered, {}, {}, {}, {},
                                  {}, 0});
        }
        continue;
      }
      any_competition = true;

      PairFinding finding;
      finding.r1 = i;
      finding.r2 = j;
      finding.status = PairStatus::Unknown;
      const Program continuation = tail_program(program, stage_of[i]);
      bool inconclusive = false;

      std::vector<Multiset> synthesized;
      if (!have_initial && options.probe_states > 0) {
        for (std::size_t t = 0; t < options.probe_states; ++t) {
          synthesized.push_back(
              synthesize_state(*reactions[i], *reactions[j], universe, rng));
        }
      }
      const std::vector<Multiset>& probe_pool =
          have_initial && !states_by_stage.empty()
              ? states_by_stage[stage_of[i]]
              : synthesized;

      for (const Multiset& state : probe_pool) {
        if (finding.status == PairStatus::Diverges) break;
        gamma::Store store(state);
        std::vector<gamma::Match> m1s;
        std::vector<gamma::Match> m2s;
        const std::size_t limit = options.probe_matches;
        runtime::MatchPipeline::enumerate(store, *reactions[i], limit,
                                 [&](const gamma::Match& m) {
                                   m1s.push_back(m);
                                   return true;
                                 });
        if (i == j) {
          m2s = m1s;
        } else {
          runtime::MatchPipeline::enumerate(store, *reactions[j], limit,
                                   [&](const gamma::Match& m) {
                                     m2s.push_back(m);
                                     return true;
                                   });
        }
        for (std::size_t a = 0; a < m1s.size(); ++a) {
          if (finding.status == PairStatus::Diverges) break;
          const std::size_t b0 = (i == j) ? a + 1 : 0;
          for (std::size_t b = b0; b < m2s.size(); ++b) {
            if (!ids_overlap(m1s[a].ids, m2s[b].ids)) continue;
            // Two conflicting enabled firings from a reachable state: run
            // the continuation from both successors. Distinct fixpoints are
            // two complete runs of the program disagreeing — a proof.
            gamma::Store s1(state);
            gamma::Store s2(state);
            // Re-find the same matches in the fresh stores: ids are stable
            // because Store construction inserts in multiset order.
            runtime::MatchPipeline::commit(s1, m1s[a]);
            runtime::MatchPipeline::commit(s2, m2s[b]);
            const Multiset m1 = s1.to_multiset();
            const Multiset m2 = s2.to_multiset();
            const std::uint64_t probe_seed = splitmix64(probe_counter);
            const auto f1 = probe_fixpoint(continuation, m1, probe_seed,
                                           options.probe_max_steps);
            const auto f2 = probe_fixpoint(continuation, m2, probe_seed,
                                           options.probe_max_steps);
            if (!f1 || !f2) {
              inconclusive = true;
              continue;
            }
            if (*f1 != *f2) {
              finding.status = PairStatus::Diverges;
              finding.witness = state;
              finding.witness_m1 = m1;
              finding.witness_m2 = m2;
              finding.fixpoint1 = *f1;
              finding.fixpoint2 = *f2;
              finding.witness_seed = probe_seed;
              break;
            }
          }
        }
      }
      if (finding.status != PairStatus::Diverges) {
        // Commutes only on actual evidence: at least one state probed and no
        // probe left hanging. An empty probe pool (probing disabled, or a
        // stage the sampling run never reached) stays Unknown.
        finding.status = (!probe_pool.empty() && !inconclusive)
                             ? PairStatus::Commutes
                             : PairStatus::Unknown;
      }
      any_unknown |= finding.status == PairStatus::Unknown;
      report.pairs.push_back(std::move(finding));
    }
  }

  if (report.has_divergence()) {
    report.verdict = ConfluenceVerdict::NonConfluent;
  } else if (any_competition || any_unknown) {
    report.verdict = ConfluenceVerdict::LikelyConfluent;
  } else {
    report.verdict = ConfluenceVerdict::Confluent;
  }
  return report;
}

}  // namespace gammaflow::analysis
