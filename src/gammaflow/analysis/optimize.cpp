#include "gammaflow/analysis/optimize.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/expr/simplify.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::analysis {

using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;
using expr::UnOp;
using gamma::Branch;
using gamma::Element;
using gamma::Multiset;
using gamma::Pattern;
using gamma::PatternField;
using gamma::Program;
using gamma::Reaction;

namespace {

// ---------------------------------------------------------------------------
// Generalized producer shape (S2/S5): one branch, one tag-preserving output,
// literal pattern labels — like translate::fuse_reactions' shape, plus an
// optional guard condition carried into the fused consumer.
// ---------------------------------------------------------------------------

struct ProducerShape {
  std::string out_label;
  ExprPtr out_value;
  ExprPtr guard;        // null when unconditional
  std::string tag_var;  // empty when untagged
  std::size_t element_arity = 2;
};

std::optional<ProducerShape> producer_shape(const Reaction& r) {
  if (r.branches().size() != 1) return std::nullopt;
  const Branch& br = r.branches()[0];
  if (br.is_else || br.outputs.size() != 1) return std::nullopt;

  const std::size_t nfields = r.patterns().front().fields().size();
  if (nfields < 2) return std::nullopt;  // unlabeled elements can't be routed
  ProducerShape shape;
  shape.element_arity = nfields;
  shape.guard = br.condition;  // may be null
  for (const Pattern& p : r.patterns()) {
    if (p.fields().size() != nfields) return std::nullopt;
    if (!p.fields()[0].is_binder()) return std::nullopt;
    if (p.fields()[1].is_binder()) return std::nullopt;  // wildcard label
    if (nfields == 3) {
      if (!p.fields()[2].is_binder()) return std::nullopt;
      if (shape.tag_var.empty()) shape.tag_var = p.fields()[2].name();
      if (p.fields()[2].name() != shape.tag_var) return std::nullopt;
    }
  }
  const auto& tuple = br.outputs[0];
  if (tuple.size() != nfields) return std::nullopt;
  if (tuple[1]->kind() != Expr::Kind::Literal || !tuple[1]->literal().is_str()) {
    return std::nullopt;
  }
  if (nfields == 3) {
    if (tuple[2]->kind() != Expr::Kind::Var ||
        tuple[2]->var() != shape.tag_var) {
      return std::nullopt;  // tag must be preserved verbatim
    }
  }
  shape.out_label = tuple[1]->literal().as_str();
  shape.out_value = tuple[0];
  return shape;
}

std::set<std::string> binders_of(const Reaction& r) {
  std::set<std::string> out;
  for (const Pattern& p : r.patterns()) {
    for (const std::string& b : p.binders()) out.insert(b);
  }
  return out;
}

ExprPtr rename_vars(const ExprPtr& e,
                    const std::map<std::string, std::string>& renames) {
  std::vector<std::pair<std::string, ExprPtr>> subst;
  subst.reserve(renames.size());
  for (const auto& [from, to] : renames) {
    subst.emplace_back(from, Expr::var(to));
  }
  return expr::substitute(e, subst);
}

Pattern rename_pattern(const Pattern& p,
                       const std::map<std::string, std::string>& renames) {
  std::vector<PatternField> fields;
  for (const PatternField& f : p.fields()) {
    if (f.is_binder()) {
      auto it = renames.find(f.name());
      fields.push_back(
          PatternField::bind(it == renames.end() ? f.name() : it->second));
    } else {
      fields.push_back(f);
    }
  }
  return Pattern(std::move(fields));
}

/// Fuses producer `prod` into consumer `cons` at pattern `pattern_idx`.
/// With an unconditional producer this matches translate::fuse_reactions'
/// rewrite; a guarded producer additionally conjoins the (renamed) guard
/// into every consumer branch — else branches become explicit
/// `guard and not (earlier conditions)` guards so "no branch fires" is
/// exactly "the producer would not have fired".
Reaction fuse_pair(const Reaction& cons, std::size_t pattern_idx,
                   const Reaction& prod, const ProducerShape& shape,
                   bool do_simplify) {
  std::set<std::string> taken = binders_of(cons);
  std::map<std::string, std::string> renames;
  std::string cons_tag;
  const Pattern& target = cons.patterns()[pattern_idx];
  if (target.fields().size() == 3) cons_tag = target.fields()[2].name();
  taken.insert(cons_tag);

  std::size_t counter = 0;
  for (const std::string& b : binders_of(prod)) {
    if (!shape.tag_var.empty() && b == shape.tag_var && !cons_tag.empty()) {
      renames[b] = cons_tag;
      continue;
    }
    std::string fresh = b;
    while (taken.contains(fresh)) {
      fresh = b + "_" + std::to_string(++counter);
    }
    taken.insert(fresh);
    renames[b] = fresh;
  }

  std::vector<Pattern> patterns;
  for (std::size_t i = 0; i < cons.patterns().size(); ++i) {
    if (i == pattern_idx) {
      for (const Pattern& p : prod.patterns()) {
        patterns.push_back(rename_pattern(p, renames));
      }
    } else {
      patterns.push_back(cons.patterns()[i]);
    }
  }

  const std::string value_var = target.fields()[0].name();
  const ExprPtr replacement = rename_vars(shape.out_value, renames);
  const std::vector<std::pair<std::string, ExprPtr>> subst = {
      {value_var, replacement}};
  const ExprPtr guard =
      shape.guard ? rename_vars(shape.guard, renames) : nullptr;
  const auto maybe_simplify = [&](ExprPtr e) {
    return do_simplify ? expr::simplify(e) : e;
  };

  std::vector<Branch> branches;
  ExprPtr earlier;  // disjunction of earlier (substituted) branch conditions
  bool earlier_unconditional = false;
  for (const Branch& br : cons.branches()) {
    std::vector<std::vector<ExprPtr>> outputs;
    for (const auto& tuple : br.outputs) {
      auto& out = outputs.emplace_back();
      for (const ExprPtr& field : tuple) {
        out.push_back(maybe_simplify(expr::substitute(field, subst)));
      }
    }
    if (!guard) {
      Branch nb;
      nb.is_else = br.is_else;
      if (br.condition) {
        nb.condition = maybe_simplify(expr::substitute(br.condition, subst));
      }
      nb.outputs = std::move(outputs);
      branches.push_back(std::move(nb));
      continue;
    }
    if (br.is_else) {
      // Dead behind an unconditional branch; otherwise fires when the guard
      // holds but no earlier condition did.
      if (earlier_unconditional) continue;
      ExprPtr cond = earlier
                         ? Expr::binary(BinOp::And, guard,
                                        Expr::unary(UnOp::Not, earlier))
                         : guard;
      branches.push_back(Branch::when(maybe_simplify(cond), std::move(outputs)));
      continue;
    }
    if (!br.condition) {
      earlier_unconditional = true;
      branches.push_back(Branch::when(guard, std::move(outputs)));
      continue;
    }
    ExprPtr cond = maybe_simplify(expr::substitute(br.condition, subst));
    earlier = earlier ? Expr::binary(BinOp::Or, earlier, cond) : cond;
    branches.push_back(Branch::when(
        maybe_simplify(Expr::binary(BinOp::And, guard, cond)),
        std::move(outputs)));
  }
  return Reaction(cons.name(), std::move(patterns), std::move(branches));
}

// ---------------------------------------------------------------------------
// Candidate enumeration (S1/S3/S4 + totality), program-wide.
// ---------------------------------------------------------------------------

struct Candidate {
  std::size_t stage = 0;
  std::size_t prod_idx = 0;
  std::size_t cons_idx = 0;
  std::size_t pattern_idx = 0;
  std::string label;
  ProducerShape shape;
};

/// True when some branch of `r` fires on every match (unconditional or else).
bool consumer_total(const Reaction& r) {
  return std::any_of(r.branches().begin(), r.branches().end(),
                     [](const Branch& br) { return br.condition == nullptr; });
}

std::vector<Candidate> enumerate_candidates(
    const std::vector<std::vector<Reaction>>& stages,
    const std::set<std::string>& forbidden) {
  struct Site {
    std::size_t stage;
    std::size_t idx;
  };
  // Footprint-level producer/consumer sets per label, across every stage:
  // a label is only private when NOTHING else in the program can touch it.
  std::vector<std::vector<Footprint>> fps(stages.size());
  std::map<std::string, std::vector<Site>> fp_producers;
  std::map<std::string, std::vector<Site>> fp_consumers;
  bool any_wildcard = false;  // a consume_any/produce_any poisons every label
  for (std::size_t s = 0; s < stages.size(); ++s) {
    for (std::size_t i = 0; i < stages[s].size(); ++i) {
      Footprint fp = reaction_footprint(stages[s][i]);
      any_wildcard |= fp.consume_any || fp.produce_any;
      for (const std::string& l : fp.produce_labels) {
        fp_producers[l].push_back({s, i});
      }
      for (const std::string& l : fp.consume_labels) {
        fp_consumers[l].push_back({s, i});
      }
      fps[s].push_back(std::move(fp));
    }
  }

  std::vector<Candidate> out;
  if (any_wildcard) return out;  // conservative: no label is provably private
  for (std::size_t s = 0; s < stages.size(); ++s) {
    for (std::size_t pi = 0; pi < stages[s].size(); ++pi) {
      auto shape = producer_shape(stages[s][pi]);
      if (!shape) continue;
      const std::string& label = shape->out_label;
      if (forbidden.contains(label)) continue;

      const auto prods = fp_producers.find(label);
      const auto conss = fp_consumers.find(label);
      if (prods == fp_producers.end() || prods->second.size() != 1) continue;
      if (conss == fp_consumers.end() || conss->second.size() != 1) continue;
      const Site cons_site = conss->second[0];
      if (cons_site.stage != s) continue;  // cross-stage: `;` is a barrier
      if (cons_site.idx == pi) continue;   // self-loop label
      const Reaction& cons = stages[s][cons_site.idx];
      if (!consumer_total(cons)) continue;

      // S3: exactly one consuming site, literal label, matching arity, and
      // no binder pattern of the consumer may admit the label.
      std::size_t sites = 0;
      std::size_t pattern_idx = 0;
      bool admits_elsewhere = false;
      for (std::size_t k = 0; k < cons.patterns().size(); ++k) {
        const auto& fields = cons.patterns()[k].fields();
        if (fields.size() < 2) continue;  // arity < 2 can't match labeled
        if (!fields[1].is_binder()) {
          if (fields[1].value().is_str() &&
              fields[1].value().as_str() == label) {
            ++sites;
            pattern_idx = k;
          }
          continue;
        }
        auto admitted = admitted_labels(cons, fields[1].name());
        if (!admitted || admitted->contains(label)) admits_elsewhere = true;
      }
      if (sites != 1 || admits_elsewhere) continue;
      if (cons.patterns()[pattern_idx].fields().size() !=
          shape->element_arity) {
        continue;
      }

      // S4: the consumed value binder binds exactly once.
      const std::string& vvar =
          cons.patterns()[pattern_idx].fields()[0].name();
      std::size_t binds = 0;
      for (const Pattern& p : cons.patterns()) {
        for (const PatternField& f : p.fields()) {
          if (f.is_binder() && f.name() == vvar) ++binds;
        }
      }
      if (binds != 1) continue;

      Candidate c;
      c.stage = s;
      c.prod_idx = pi;
      c.cons_idx = cons_site.idx;
      c.pattern_idx = pattern_idx;
      c.label = label;
      c.shape = *shape;
      out.push_back(std::move(c));
    }
  }
  // Deterministic planning order: by eliminated label, then position.
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return std::tie(a.label, a.stage, a.prod_idx) <
           std::tie(b.label, b.stage, b.prod_idx);
  });
  return out;
}

// ---------------------------------------------------------------------------
// S7: probe verification.
// ---------------------------------------------------------------------------

std::optional<Multiset> probe_fixpoint(const Program& program,
                                       const Multiset& initial,
                                       std::uint64_t seed,
                                       std::uint64_t max_steps) {
  gamma::RunOptions ro;
  ro.seed = seed;
  ro.max_steps = max_steps;
  ro.limit_policy = LimitPolicy::Partial;
  gamma::RunResult r = gamma::IndexedEngine().run(program, initial, ro);
  if (r.outcome != Outcome::Completed) return std::nullopt;
  return std::move(r.final_multiset);
}

/// Three seeded runs each; any disagreement (or budget exhaustion) rejects.
/// Also rejects when the ORIGINAL program's fixpoint varies across seeds —
/// a non-confluent program has no single state identity to preserve.
bool fixpoints_agree(const Program& original, const Program& rewritten,
                     const Multiset& initial, std::uint64_t seed,
                     std::uint64_t max_steps) {
  std::optional<Multiset> reference;
  for (std::uint64_t k = 0; k < 3; ++k) {
    const std::uint64_t s = seed + k * 0x9e3779b97f4a7c15ULL;
    auto fa = probe_fixpoint(original, initial, s, max_steps);
    auto fb = probe_fixpoint(rewritten, initial, s, max_steps);
    if (!fa || !fb || !(*fa == *fb)) return false;
    if (reference && !(*reference == *fa)) return false;
    if (!reference) reference = std::move(fa);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dead-reaction elimination.
// ---------------------------------------------------------------------------

/// True when no branch of `r` can ever fire: every branch carries a
/// condition folding to literal false. An else (or unconditional) branch
/// always fires once the patterns match, so its presence keeps the
/// reaction alive.
bool provably_unsatisfiable(const Reaction& r) {
  for (const Branch& br : r.branches()) {
    if (!br.condition) return false;  // unconditional or else fires
    if (expr::constant_truth(br.condition) != std::optional<bool>{false}) {
      return false;  // unknown or true: may fire
    }
  }
  return true;
}

void eliminate_dead(std::vector<std::vector<Reaction>>& stages,
                    const Multiset& initial, OptimizeReport& report) {
  bool changed = true;
  while (changed) {
    changed = false;
    // (a) unsatisfiable conditions — initial-independent.
    for (auto& stage : stages) {
      for (std::size_t i = 0; i < stage.size();) {
        if (provably_unsatisfiable(stage[i])) {
          report.dead.push_back(
              {Severity::Warning, "unsatisfiable-reaction", stage[i].name(),
               "every branch condition folds to false; removed"});
          ++report.dead_removed;
          stage.erase(stage.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          continue;
        }
        ++i;
      }
    }
    // (b) cardinality-zero pattern labels — only sound against a known
    // initial store (symbolic bounds would mark everything dead).
    if (initial.empty()) continue;
    const BoundednessReport bounds =
        analyze_boundedness(Program::from_stages(stages), initial);
    for (auto& stage : stages) {
      for (std::size_t i = 0; i < stage.size();) {
        std::string dead_label;
        for (const Pattern& p : stage[i].patterns()) {
          const auto& fields = p.fields();
          if (fields.size() < 2 || fields[1].is_binder() ||
              !fields[1].value().is_str()) {
            continue;
          }
          const auto it = bounds.labels.find(fields[1].value().as_str());
          if (it != bounds.labels.end() && !it->second.unbounded() &&
              it->second.bound == 0) {
            dead_label = it->first;
            break;
          }
        }
        if (!dead_label.empty()) {
          report.dead.push_back(
              {Severity::Warning, "unreachable-reaction", stage[i].name(),
               "pattern label '" + dead_label +
                   "' is unreachable from the initial store through the feed "
                   "graph; removed"});
          ++report.dead_removed;
          stage.erase(stage.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          continue;
        }
        ++i;
      }
    }
  }
}

}  // namespace

const char* to_string(RewriteStatus status) noexcept {
  switch (status) {
    case RewriteStatus::Applied: return "applied";
    case RewriteStatus::RejectedByCost: return "rejected-by-cost";
    case RewriteStatus::RejectedByVerify: return "rejected-by-verify";
  }
  return "?";
}

OptimizeResult optimize_program(const Program& program, const Multiset& initial,
                                const OptimizeOptions& options) {
  OptimizeResult out;
  OptimizeReport& report = out.report;
  report.bounds = analyze_boundedness(program, initial);
  report.cost_before =
      estimate_program_cost(program, report.bounds, options.cost);

  InterferenceOptions iopts;
  iopts.probe_states = 0;  // structure only; no commutation probing here
  const InterferenceReport before = analyze_interference(program, initial, iopts);
  report.classes_before = before.class_count;

  std::set<std::string> forbidden(options.preserve_labels.begin(),
                                  options.preserve_labels.end());
  for (const Element& e : initial) {
    if (e.arity() >= 2 && e.field(1).is_str()) {
      forbidden.insert(e.field(1).as_str());
    }
  }

  std::vector<std::vector<Reaction>> stages = program.stages();
  if (options.eliminate_dead) eliminate_dead(stages, initial, report);

  if (options.fuse) {
    std::set<std::string> seen;      // labels already counted as chains
    std::set<std::string> rejected;  // labels not to retry
    std::size_t applied = 0;
    while (options.max_steps == 0 || applied < options.max_steps) {
      bool did = false;
      for (const Candidate& c : enumerate_candidates(stages, forbidden)) {
        if (rejected.contains(c.label)) continue;
        if (seen.insert(c.label).second) ++report.chains_found;

        const Reaction fused =
            fuse_pair(stages[c.stage][c.cons_idx], c.pattern_idx,
                      stages[c.stage][c.prod_idx], c.shape, options.simplify);
        std::vector<Reaction> new_stage;
        new_stage.reserve(stages[c.stage].size() - 1);
        for (std::size_t i = 0; i < stages[c.stage].size(); ++i) {
          if (i == c.prod_idx) continue;
          new_stage.push_back(i == c.cons_idx ? fused : stages[c.stage][i]);
        }

        PlannedRewrite rw;
        rw.producer = stages[c.stage][c.prod_idx].name();
        rw.consumer = stages[c.stage][c.cons_idx].name();
        rw.via_label = c.label;
        rw.conditional_producer = c.shape.guard != nullptr;
        rw.cost_before =
            estimate_stage_cost(stages[c.stage], report.bounds, options.cost)
                .time;
        rw.cost_after =
            estimate_stage_cost(new_stage, report.bounds, options.cost).time;

        if (options.use_cost_model && rw.cost_after > rw.cost_before) {
          rw.status = RewriteStatus::RejectedByCost;
          ++report.rejected_by_cost;
          rejected.insert(c.label);
          report.rewrites.push_back(std::move(rw));
          continue;
        }
        if (options.verify_rewrites && !initial.empty()) {
          auto candidate_stages = stages;
          candidate_stages[c.stage] = new_stage;
          if (!fixpoints_agree(Program::from_stages(stages),
                               Program::from_stages(candidate_stages), initial,
                               options.seed, options.verify_max_steps)) {
            rw.status = RewriteStatus::RejectedByVerify;
            ++report.rejected_by_verify;
            rejected.insert(c.label);
            report.rewrites.push_back(std::move(rw));
            continue;
          }
        }
        stages[c.stage] = std::move(new_stage);
        rw.status = RewriteStatus::Applied;
        ++report.fused;
        ++applied;
        report.rewrites.push_back(std::move(rw));
        did = true;
        break;  // candidate set is stale; re-enumerate
      }
      if (!did) break;
    }
  }

  out.program = Program::from_stages(std::move(stages));
  report.cost_after =
      estimate_program_cost(out.program, report.bounds, options.cost);

  // Post-rewrite re-verification: reactions that were in DIFFERENT conflict
  // classes before must still be separated — fusion only removes labels, so
  // a merge would invalidate the parallelism the cost model priced.
  const InterferenceReport after =
      analyze_interference(out.program, initial, iopts);
  report.classes_after = after.class_count;
  const auto cb = before.engine_classes();
  const auto ca = after.engine_classes();
  for (auto i = ca.begin(); i != ca.end(); ++i) {
    const auto bi = cb.find(i->first);
    if (bi == cb.end()) continue;
    for (auto j = std::next(i); j != ca.end(); ++j) {
      const auto bj = cb.find(j->first);
      if (bj == cb.end()) continue;
      if (bi->second != bj->second && i->second == j->second) {
        report.class_check_ok = false;
      }
    }
  }

  if (options.telemetry != nullptr) {
    auto& stats = options.telemetry->stats();
    stats.count("opt.chains_found", report.chains_found);
    stats.count("opt.fused", report.fused);
    stats.count("opt.rejected_by_cost", report.rejected_by_cost);
    stats.count("opt.rejected_by_verify", report.rejected_by_verify);
    stats.count("opt.dead_removed", report.dead_removed);
  }
  return out;
}

LintReport optimizer_lints(const Program& program, const Multiset& initial) {
  LintReport report;
  const BoundednessReport bounds = analyze_boundedness(program, initial);
  for (const auto& [label, lb] : bounds.labels) {
    if (!lb.unbounded()) continue;
    report.findings.push_back(
        {Severity::Warning, "possibly-unbounded-label", "",
         "label '" + label +
             "' has no finite cardinality bound; a growth cycle may feed it "
             "(and the run) forever"});
  }
  if (bounds.overall == Growth::PossiblyUnbounded && !bounds.any_unbounded()) {
    report.findings.push_back(
        {Severity::Warning, "possibly-unbounded-multiset", "",
         "an unlabeled, non-shrinking reaction has no firing bound; the "
         "multiset may grow (or the run spin) forever"});
  }

  std::set<std::string> produced;
  for (const Reaction* r : program.all_reactions()) {
    const Footprint fp = reaction_footprint(*r);
    produced.insert(fp.produce_labels.begin(), fp.produce_labels.end());
  }
  for (const Reaction* r : program.all_reactions()) {
    if (provably_unsatisfiable(*r)) {
      report.findings.push_back(
          {Severity::Warning, "unsatisfiable-reaction", r->name(),
           "every branch condition folds to false; the reaction can never "
           "fire"});
      continue;
    }
    if (initial.empty()) continue;
    for (const Pattern& p : r->patterns()) {
      const auto& fields = p.fields();
      if (fields.size() < 2 || fields[1].is_binder() ||
          !fields[1].value().is_str()) {
        continue;
      }
      const std::string label = fields[1].value().as_str();
      // The basic dead-reaction lint (Error) already covers labels nobody
      // produces; this one catches producers that exist but can never fire.
      if (!produced.contains(label)) continue;
      const auto it = bounds.labels.find(label);
      if (it != bounds.labels.end() && !it->second.unbounded() &&
          it->second.bound == 0) {
        report.findings.push_back(
            {Severity::Warning, "unreachable-reaction", r->name(),
             "pattern label '" + label +
                 "' is unreachable from the initial store through the feed "
                 "graph"});
        break;
      }
    }
  }
  return report;
}

std::string OptimizeReport::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const OptimizeReport& report) {
  os << "optimize: " << report.fused << " fused, " << report.rejected_by_cost
     << " rejected by cost, " << report.rejected_by_verify
     << " rejected by verify, " << report.dead_removed << " dead removed ("
     << report.chains_found << " chains found)\n"
     << "  program cost estimate: " << report.cost_before << " -> "
     << report.cost_after << '\n'
     << "  conflict classes: " << report.classes_before << " -> "
     << report.classes_after
     << (report.class_check_ok ? " (check ok)" : " (CLASS CHECK FAILED)")
     << '\n';
  for (const PlannedRewrite& rw : report.rewrites) {
    os << "  fuse " << rw.producer << " -> " << rw.consumer << " via '"
       << rw.via_label << "' [" << to_string(rw.status) << "]"
       << (rw.conditional_producer ? " (guarded producer)" : "")
       << " stage cost " << rw.cost_before << " -> " << rw.cost_after << '\n';
  }
  for (const Finding& f : report.dead) {
    os << "  dead " << f.reaction << ": " << f.message << '\n';
  }
  os << "  bounds (" << (report.bounds.initial_known ? "absolute" : "symbolic")
     << ", overall " << to_string(report.bounds.overall) << "):";
  if (report.bounds.labels.empty()) os << " no labels";
  os << '\n';
  for (const auto& [label, lb] : report.bounds.labels) {
    os << "    '" << label << "' " << to_string(lb.growth);
    if (!lb.unbounded()) os << " <= " << lb.bound;
    os << '\n';
  }
  return os;
}

void write_json(std::ostream& os, const OptimizeReport& report) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  };
  os << "{\"chains_found\":" << report.chains_found
     << ",\"fused\":" << report.fused
     << ",\"rejected_by_cost\":" << report.rejected_by_cost
     << ",\"rejected_by_verify\":" << report.rejected_by_verify
     << ",\"dead_removed\":" << report.dead_removed
     << ",\"cost_before\":" << report.cost_before
     << ",\"cost_after\":" << report.cost_after
     << ",\"classes_before\":" << report.classes_before
     << ",\"classes_after\":" << report.classes_after << ",\"class_check_ok\":"
     << (report.class_check_ok ? "true" : "false") << ",\"rewrites\":[";
  for (std::size_t i = 0; i < report.rewrites.size(); ++i) {
    const PlannedRewrite& rw = report.rewrites[i];
    if (i) os << ',';
    os << "{\"producer\":\"" << escape(rw.producer) << "\",\"consumer\":\""
       << escape(rw.consumer) << "\",\"via\":\"" << escape(rw.via_label)
       << "\",\"status\":\"" << to_string(rw.status)
       << "\",\"conditional_producer\":"
       << (rw.conditional_producer ? "true" : "false")
       << ",\"cost_before\":" << rw.cost_before
       << ",\"cost_after\":" << rw.cost_after << '}';
  }
  os << "],\"dead\":[";
  for (std::size_t i = 0; i < report.dead.size(); ++i) {
    const Finding& f = report.dead[i];
    if (i) os << ',';
    os << "{\"check\":\"" << escape(f.check) << "\",\"reaction\":\""
       << escape(f.reaction) << "\",\"message\":\"" << escape(f.message)
       << "\"}";
  }
  os << "],\"bounds\":{\"initial_known\":"
     << (report.bounds.initial_known ? "true" : "false") << ",\"overall\":\""
     << analysis::to_string(report.bounds.overall) << "\",\"labels\":[";
  bool first = true;
  for (const auto& [label, lb] : report.bounds.labels) {
    if (!first) os << ',';
    first = false;
    os << "{\"label\":\"" << escape(label) << "\",\"growth\":\""
       << analysis::to_string(lb.growth) << '"';
    if (!lb.unbounded()) os << ",\"bound\":" << lb.bound;
    os << '}';
  }
  os << "]}}";
}

}  // namespace gammaflow::analysis
