// Visualization: the renderer half of ROADMAP item 5 (`gammaflow viz`).
// Consumes the structures the rest of the system already computes — dataflow
// graphs (dataflow/graph.hpp), interference reports and conflict classes
// (analysis/interference.hpp), shard plans (runtime/sharded_store.hpp), and
// run journals (obs/run_recorder.hpp) — and renders them as:
//
//   * DOT, one writer per graph kind (the dataflow-graph writer stays in
//     dataflow/dot.hpp; this module adds the Gamma-side graphs), and
//   * one SELF-CONTAINED interactive HTML file: embedded JSON, inline CSS
//     and JS, no network dependencies — a pan/zoom node graph colored by
//     conflict class / shard, a per-round & per-fire store-evolution
//     scrubber over the journal, and a provenance view (click a fired
//     reaction, see what it consumed and produced).
//
// Everything here is a pure function of its inputs writing to a stream; the
// CLI (`gammaflow viz`, `gammaflow dot`) owns file handling.
#pragma once

#include <iosfwd>
#include <string>

#include "gammaflow/analysis/interference.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/obs/run_recorder.hpp"

namespace gammaflow::viz {

/// Interference graph: one node per reaction (labelled with its footprint),
/// clustered by conflict class. Edge styles carry the relation kind:
/// compete = solid red, feed-only = dashed blue, both = bold purple.
void write_interference_dot(std::ostream& os, const gamma::Program& program,
                            const analysis::InterferenceReport& report,
                            const std::string& title = "interference");

/// Conflict-class partition: one box per class listing its reactions — the
/// scheduling view (what the indexed/parallel engines treat as independent).
void write_classes_dot(std::ostream& os, const gamma::Program& program,
                       const analysis::InterferenceReport& report,
                       const std::string& title = "classes");

/// Shard plan per stage (runtime::plan_shards over the report's classes):
/// reactions and routed labels grouped by shard, or a note when the stage
/// falls back to the single-store path.
void write_shards_dot(std::ostream& os, const gamma::Program& program,
                      const analysis::InterferenceReport& report,
                      const std::string& title = "shards");

/// Inputs for the HTML renderer; null members simply omit that panel.
/// Exactly one of `graph` (dataflow view) / `program` (Gamma view) should
/// be set — when both are, the dataflow graph is the main panel.
struct HtmlInputs {
  std::string title;
  const dataflow::Graph* graph = nullptr;
  const gamma::Program* program = nullptr;
  const analysis::InterferenceReport* interference = nullptr;
  const obs::Journal* journal = nullptr;
};

/// One self-contained HTML document (no external fetches; see module note).
/// The embedded JSON lives in <script id="gf-data" type="application/json">;
/// the DOM anchors #gf-graph, #gf-scrubber, #gf-store and #gf-provenance are
/// stable (smoke-tested).
void write_html(std::ostream& os, const HtmlInputs& inputs);

}  // namespace gammaflow::viz
