// DOT writers for the Gamma-side graphs (the dataflow-graph writer lives in
// dataflow/dot.cpp). All three render the SAME analysis the engines consume
// — InterferenceReport and plan_shards — so what the picture shows is what
// the scheduler does.
#include <cstddef>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/viz/viz.hpp"

namespace gammaflow::viz {
namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Per-class pastel fills, cycled when class_count exceeds the palette.
constexpr const char* kClassFills[] = {"#e3f2fd", "#e8f5e9", "#fff3e0",
                                       "#f3e5f5", "#e0f7fa", "#fbe9e7",
                                       "#f1f8e9", "#ede7f6"};
constexpr std::size_t kClassFillCount =
    sizeof(kClassFills) / sizeof(kClassFills[0]);

const char* class_fill(std::size_t cls) {
  return kClassFills[cls % kClassFillCount];
}

/// Stage index of each reaction, in report order (program order, all stages).
std::vector<std::size_t> stage_of(const gamma::Program& program) {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < program.stages().size(); ++s) {
    for (std::size_t k = 0; k < program.stages()[s].size(); ++k) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

void write_interference_dot(std::ostream& os, const gamma::Program& program,
                            const analysis::InterferenceReport& report,
                            const std::string& title) {
  const std::vector<std::size_t> stages = stage_of(program);
  os << "digraph \"" << dot_escape(title) << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, style=\"filled,rounded\", fontsize=11];\n";
  for (std::size_t c = 0; c < report.class_count; ++c) {
    os << "  subgraph cluster_class" << c << " {\n"
       << "    label=\"class " << c << "\";\n"
       << "    style=dashed;\n";
    for (std::size_t i = 0; i < report.reactions.size(); ++i) {
      if (report.class_of[i] != c) continue;
      os << "    r" << i << " [label=\"" << dot_escape(report.reactions[i]);
      if (i < stages.size() && program.stage_count() > 1) {
        os << " (stage " << stages[i] << ")";
      }
      os << "\\n" << dot_escape(report.footprints[i].to_string())
         << "\", fillcolor=\"" << class_fill(c) << "\"];\n";
    }
    os << "  }\n";
  }
  for (const auto& e : report.typed_edges) {
    if (e.compete) {
      os << "  r" << e.r1 << " -> r" << e.r2
         << " [dir=none, color=\"#c62828\", penwidth="
         << ((e.feeds_12 || e.feeds_21) ? "2.0" : "1.2")
         << ", label=\"compete\"];\n";
    }
    if (e.feeds_12) {
      os << "  r" << e.r1 << " -> r" << e.r2
         << " [style=dashed, color=\"#1565c0\", label=\"feed\"];\n";
    }
    if (e.feeds_21) {
      os << "  r" << e.r2 << " -> r" << e.r1
         << " [style=dashed, color=\"#1565c0\", label=\"feed\"];\n";
    }
  }
  os << "  label=\"verdict: " << to_string(report.verdict) << "\";\n";
  os << "}\n";
}

void write_classes_dot(std::ostream& os, const gamma::Program& program,
                       const analysis::InterferenceReport& report,
                       const std::string& title) {
  const std::vector<std::size_t> stages = stage_of(program);
  // Labels each class routes (the cluster placement hint), inverted from
  // label -> class.
  std::map<std::size_t, std::set<std::string>> class_labels;
  for (const auto& [label, cls] : report.label_affinity()) {
    class_labels[cls].insert(label);
  }
  os << "digraph \"" << dot_escape(title) << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fontsize=11];\n";
  for (std::size_t c = 0; c < report.class_count; ++c) {
    os << "  subgraph cluster_class" << c << " {\n"
       << "    label=\"class " << c << "\";\n"
       << "    style=filled;\n    fillcolor=\"" << class_fill(c) << "\";\n";
    for (std::size_t i = 0; i < report.reactions.size(); ++i) {
      if (report.class_of[i] != c) continue;
      os << "    r" << i << " [label=\"" << dot_escape(report.reactions[i]);
      if (i < stages.size() && program.stage_count() > 1) {
        os << "\\nstage " << stages[i];
      }
      os << "\", fillcolor=white];\n";
    }
    const auto it = class_labels.find(c);
    if (it != class_labels.end()) {
      os << "    labels" << c << " [shape=note, fillcolor=white, label=\"";
      bool first = true;
      for (const std::string& l : it->second) {
        if (!first) os << "\\n";
        os << dot_escape(l);
        first = false;
      }
      os << "\"];\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

void write_shards_dot(std::ostream& os, const gamma::Program& program,
                      const analysis::InterferenceReport& report,
                      const std::string& title) {
  const std::map<std::string, std::size_t> classes = report.engine_classes();
  os << "digraph \"" << dot_escape(title) << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fillcolor=white, fontsize=11];\n";
  for (std::size_t s = 0; s < program.stages().size(); ++s) {
    const std::vector<gamma::Reaction>& stage = program.stages()[s];
    const runtime::ShardPlan plan = runtime::plan_shards(stage, classes);
    os << "  subgraph cluster_stage" << s << " {\n"
       << "    label=\"stage " << s
       << (plan.sharded ? "" : " (single store)") << "\";\n"
       << "    style=bold;\n";
    if (plan.sharded) {
      for (std::size_t sh = 0; sh < plan.shard_count; ++sh) {
        os << "    subgraph cluster_stage" << s << "_shard" << sh << " {\n"
           << "      label=\"shard " << sh << "\";\n"
           << "      style=filled;\n      fillcolor=\"" << class_fill(sh)
           << "\";\n";
        for (std::size_t k = 0; k < stage.size(); ++k) {
          if (plan.reaction_shard[k] != sh) continue;
          os << "      st" << s << "r" << k << " [label=\""
             << dot_escape(stage[k].name()) << "\"];\n";
        }
        std::set<std::string> labels;  // sorted for stable golden output
        for (const auto& [label, shard] : plan.label_shard) {
          if (shard == sh) labels.insert(label);
        }
        if (!labels.empty()) {
          os << "      st" << s << "sh" << sh
             << "labels [shape=note, label=\"";
          bool first = true;
          for (const std::string& l : labels) {
            if (!first) os << "\\n";
            os << dot_escape(l);
            first = false;
          }
          os << "\"];\n";
        }
        os << "    }\n";
      }
    } else {
      for (std::size_t k = 0; k < stage.size(); ++k) {
        os << "    st" << s << "r" << k << " [label=\""
           << dot_escape(stage[k].name()) << "\"];\n";
      }
    }
    os << "  }\n";
  }
  os << "}\n";
}

}  // namespace gammaflow::viz
