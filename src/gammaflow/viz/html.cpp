// Self-contained interactive HTML renderer. One output file, zero network
// dependencies: the graph/journal data is embedded as JSON in
// <script id="gf-data" type="application/json">, the CSS and JS are inline,
// and the JS is plain DOM + SVG (pan/zoom via the viewBox, a store scrubber
// replaying the journal's per-round deltas, and a provenance panel mapping
// fires back onto graph nodes).
#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/viz/viz.hpp"

namespace gammaflow::viz {
namespace {

void json_str(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

struct VizNode {
  std::string key;    // journal reaction key (provenance -> node mapping)
  std::string label;  // display text
  std::string kind;
  long long cls = -1;
  long long shard = -1;
  long long stage = -1;
  double x = 0.0;
  double y = 0.0;
};

struct VizEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::string label;
  const char* kind = "flow";  // flow | compete | feed
};

std::string df_node_label(const dataflow::Node& n) {
  std::ostringstream os;
  switch (n.kind) {
    case dataflow::NodeKind::Const: os << n.constant; break;
    case dataflow::NodeKind::Arith:
    case dataflow::NodeKind::Cmp:
      os << expr::to_string(n.op);
      if (n.has_immediate) os << n.constant;
      break;
    case dataflow::NodeKind::Steer: os << "steer"; break;
    case dataflow::NodeKind::IncTag: os << "inctag"; break;
    case dataflow::NodeKind::DecTag: os << "dectag"; break;
    case dataflow::NodeKind::Output: os << "out"; break;
  }
  if (!n.name.empty()) os << ' ' << n.name;
  return os.str();
}

/// The dataflow view: BFS layering from the Const roots (min distance), one
/// row per layer. Cycles (loop-back edges) revisit placed nodes and are
/// simply drawn upward.
void build_dataflow_view(const dataflow::Graph& graph,
                         std::vector<VizNode>& nodes,
                         std::vector<VizEdge>& edges) {
  const std::size_t n = graph.node_count();
  std::vector<int> layer(n, -1);
  std::queue<dataflow::NodeId> queue;
  for (const dataflow::NodeId id : graph.roots()) {
    layer[id] = 0;
    queue.push(id);
  }
  while (!queue.empty()) {
    const dataflow::NodeId id = queue.front();
    queue.pop();
    for (const dataflow::Edge& e : graph.edges()) {
      if (e.src != id || layer[e.dst] >= 0) continue;
      layer[e.dst] = layer[id] + 1;
      queue.push(e.dst);
    }
  }
  for (int& l : layer) {
    if (l < 0) l = 0;  // unreachable (e.g. injection-only subgraphs)
  }
  std::vector<int> occupancy;  // next free column per layer
  nodes.resize(n);
  for (dataflow::NodeId id = 0; id < n; ++id) {
    const dataflow::Node& node = graph.node(id);
    VizNode& vn = nodes[id];
    vn.key = node.name.empty()
                 ? std::string(to_string(node.kind)) + "#" + std::to_string(id)
                 : node.name;
    vn.label = df_node_label(node);
    vn.kind = to_string(node.kind);
    const int l = layer[id];
    if (static_cast<std::size_t>(l) >= occupancy.size()) {
      occupancy.resize(static_cast<std::size_t>(l) + 1, 0);
    }
    vn.x = 100.0 + 170.0 * occupancy[static_cast<std::size_t>(l)]++;
    vn.y = 70.0 + 120.0 * l;
  }
  for (const dataflow::Edge& e : graph.edges()) {
    VizEdge ve;
    ve.src = e.src;
    ve.dst = e.dst;
    ve.label = e.label.str();
    edges.push_back(std::move(ve));
  }
}

/// The Gamma view: one node per reaction, one column per conflict class (per
/// stage), interference edges with their kind recomputed from footprints.
void build_gamma_view(const gamma::Program& program,
                      const analysis::InterferenceReport* report,
                      std::vector<VizNode>& nodes,
                      std::vector<VizEdge>& edges) {
  std::map<std::string, std::size_t> classes;
  std::vector<std::size_t> shard_of;  // global reaction index -> shard (-1)
  if (report != nullptr) classes = report->engine_classes();
  {
    for (const std::vector<gamma::Reaction>& stage : program.stages()) {
      const runtime::ShardPlan plan = runtime::plan_shards(stage, classes);
      for (std::size_t k = 0; k < stage.size(); ++k) {
        shard_of.push_back(plan.sharded ? plan.reaction_shard[k]
                                        : static_cast<std::size_t>(-1));
      }
    }
  }
  std::map<long long, int> column_fill;  // class/column -> members placed
  std::size_t i = 0;
  for (std::size_t s = 0; s < program.stages().size(); ++s) {
    for (const gamma::Reaction& r : program.stages()[s]) {
      VizNode vn;
      vn.key = r.name();
      vn.label = r.name();
      vn.kind = "reaction";
      vn.stage = static_cast<long long>(s);
      if (report != nullptr && i < report->class_of.size()) {
        vn.cls = static_cast<long long>(report->class_of[i]);
      }
      if (shard_of[i] != static_cast<std::size_t>(-1)) {
        vn.shard = static_cast<long long>(shard_of[i]);
      }
      const long long col = vn.cls >= 0 ? vn.cls : static_cast<long long>(i);
      vn.x = 120.0 + 220.0 * static_cast<double>(col);
      vn.y = 80.0 + 150.0 * static_cast<double>(s) + 95.0 * column_fill[col]++;
      nodes.push_back(std::move(vn));
      ++i;
    }
  }
  if (report == nullptr) return;
  for (const auto& [a, b] : report->edges) {
    const analysis::Footprint& fa = report->footprints[a];
    const analysis::Footprint& fb = report->footprints[b];
    if (analysis::compete(fa, fb)) {
      edges.push_back(VizEdge{a, b, "", "compete"});
    }
    if (analysis::feeds(fa, fb)) edges.push_back(VizEdge{a, b, "", "feed"});
    if (analysis::feeds(fb, fa)) edges.push_back(VizEdge{b, a, "", "feed"});
  }
}

void write_data_json(std::ostream& os, const HtmlInputs& inputs) {
  std::vector<VizNode> nodes;
  std::vector<VizEdge> edges;
  const bool dataflow_view = inputs.graph != nullptr;
  if (dataflow_view) {
    build_dataflow_view(*inputs.graph, nodes, edges);
  } else if (inputs.program != nullptr) {
    build_gamma_view(*inputs.program, inputs.interference, nodes, edges);
  }
  os << "{\"title\":";
  json_str(os, inputs.title);
  os << ",\"kind\":\"" << (dataflow_view ? "dataflow" : "gamma") << '"';
  os << ",\"classCount\":"
     << (inputs.interference != nullptr ? inputs.interference->class_count : 0);
  if (inputs.interference != nullptr) {
    os << ",\"verdict\":\"" << to_string(inputs.interference->verdict) << '"';
  } else {
    os << ",\"verdict\":null";
  }
  os << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const VizNode& n = nodes[i];
    if (i != 0) os << ',';
    os << "{\"key\":";
    json_str(os, n.key);
    os << ",\"label\":";
    json_str(os, n.label);
    os << ",\"kind\":\"" << n.kind << "\",\"cls\":" << n.cls
       << ",\"shard\":" << n.shard << ",\"stage\":" << n.stage << ",\"x\":"
       << n.x << ",\"y\":" << n.y << '}';
  }
  os << "],\"edges\":[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const VizEdge& e = edges[i];
    if (i != 0) os << ',';
    os << "{\"src\":" << e.src << ",\"dst\":" << e.dst << ",\"label\":";
    json_str(os, e.label);
    os << ",\"kind\":\"" << e.kind << "\"}";
  }
  os << "],\"journal\":";
  if (inputs.journal != nullptr) {
    os << obs::journal_to_string(*inputs.journal);
  } else {
    os << "null";
  }
  os << '}';
}

void html_text(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '&': os << "&amp;"; break;
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      default: os << c;
    }
  }
}

constexpr const char* kCss = R"css(
:root { color-scheme: light; }
* { box-sizing: border-box; }
body { margin: 0; font: 13px/1.45 system-ui, sans-serif; color: #263238;
       background: #fafafa; height: 100vh; display: flex; flex-direction: column; }
header { padding: 8px 14px; background: #263238; color: #eceff1;
         display: flex; gap: 14px; align-items: baseline; flex-wrap: wrap; }
header h1 { font-size: 15px; margin: 0; }
header .meta { color: #b0bec5; font-size: 12px; }
main { flex: 1; display: grid; grid-template-columns: 1fr 380px; min-height: 0; }
#gf-graph { position: relative; overflow: hidden; background:
  repeating-linear-gradient(0deg, #fafafa, #fafafa 24px, #f4f4f4 25px); }
#gf-graph svg { width: 100%; height: 100%; cursor: grab; display: block; }
#gf-graph svg:active { cursor: grabbing; }
aside { border-left: 1px solid #cfd8dc; background: #fff; display: flex;
        flex-direction: column; min-height: 0; }
#gf-controls { padding: 10px 12px; border-bottom: 1px solid #eceff1; }
#gf-controls input[type=range] { width: 100%; }
#gf-round-label { font-size: 12px; color: #546e7a; }
#gf-color { font-size: 12px; margin-left: 8px; }
#gf-store, #gf-provenance { padding: 8px 12px; overflow: auto; flex: 1;
                            border-bottom: 1px solid #eceff1; min-height: 0; }
h3 { font-size: 12px; text-transform: uppercase; letter-spacing: .06em;
     color: #78909c; margin: 4px 0 6px; }
.entry { font-family: ui-monospace, monospace; font-size: 12px; padding: 1px 4px; }
.entry .cnt { color: #90a4ae; display: inline-block; min-width: 3.5em; }
.entry.added { background: #e8f5e9; }
.entry.removed { background: #ffebee; }
.fire { font-family: ui-monospace, monospace; font-size: 12px; padding: 2px 4px;
        cursor: pointer; border-radius: 3px; }
.fire:hover { background: #eceff1; }
.fire.sel { background: #fff9c4; }
.muted { color: #90a4ae; font-style: italic; }
#gf-fire-detail { font-size: 12px; padding: 6px; background: #fafafa;
                  border: 1px solid #eceff1; border-radius: 4px; margin-top: 6px; }
#gf-fire-detail h4 { margin: 0 0 4px; font-family: ui-monospace, monospace; }
#gf-fire-detail .tok { font-family: ui-monospace, monospace; display: block; }
#gf-fire-detail .consumed .tok { color: #c62828; }
#gf-fire-detail .produced .tok { color: #2e7d32; }
.node rect { fill: #fff; stroke: #607d8b; stroke-width: 1.3; }
.node text { font-size: 11px; fill: #263238; pointer-events: none; }
.node { cursor: pointer; }
.node.hl rect { stroke: #f9a825; stroke-width: 3; }
.node.fired rect { filter: drop-shadow(0 0 3px #f9a825); }
#gf-legend { padding: 6px 12px; font-size: 11px; color: #546e7a;
             display: flex; gap: 10px; flex-wrap: wrap; }
#gf-legend .sw { display: inline-block; width: 10px; height: 10px;
                 border-radius: 2px; margin-right: 3px; vertical-align: -1px; }
)css";

constexpr const char* kJs = R"js(
'use strict';
const data = JSON.parse(document.getElementById('gf-data').textContent);
const J = data.journal;
const svgNS = 'http://www.w3.org/2000/svg';
const palette = ['#1f77b4','#ff7f0e','#2ca02c','#d62728','#9467bd',
                 '#8c564b','#e377c2','#7f7f7f','#bcbd22','#17becf'];
function el(ns, tag, attrs, parent) {
  const e = ns ? document.createElementNS(ns, tag) : document.createElement(tag);
  for (const k in (attrs || {})) e.setAttribute(k, attrs[k]);
  if (parent) parent.appendChild(e);
  return e;
}
function esc(s) { return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;'); }

// ---------- header meta ----------
(function () {
  const m = document.getElementById('gf-meta');
  const bits = [data.kind + ' view', data.nodes.length + ' nodes'];
  if (data.verdict) bits.push('verdict: ' + data.verdict);
  if (J) {
    if (J.session) bits.push('session: ' + J.session);
    bits.push(J.engine + '/' + J.kind, 'outcome: ' + J.outcome,
              J.fires_total + ' fires' +
              (J.fires_dropped ? ' (' + J.fires_dropped + ' dropped)' : ''),
              J.rounds_total + ' rounds' +
              (J.rounds_dropped ? ' (' + J.rounds_dropped + ' dropped)' : ''));
  } else {
    bits.push('no journal');
  }
  m.textContent = bits.join(' · ');
})();

// ---------- graph ----------
const graphDiv = document.getElementById('gf-graph');
const svg = el(svgNS, 'svg', {}, graphDiv);
const defs = el(svgNS, 'defs', {}, svg);
const marker = el(svgNS, 'marker', {id: 'arrow', viewBox: '0 0 10 10',
  refX: '9', refY: '5', markerWidth: '7', markerHeight: '7',
  orient: 'auto-start-reverse'}, defs);
el(svgNS, 'path', {d: 'M0,0 L10,5 L0,10 z', fill: '#607d8b'}, marker);
const edgeLayer = el(svgNS, 'g', {}, svg);
const nodeLayer = el(svgNS, 'g', {}, svg);

let vb = (function () {
  let x0 = 1e9, y0 = 1e9, x1 = -1e9, y1 = -1e9;
  for (const n of data.nodes) {
    x0 = Math.min(x0, n.x - 120); y0 = Math.min(y0, n.y - 60);
    x1 = Math.max(x1, n.x + 120); y1 = Math.max(y1, n.y + 60);
  }
  if (!data.nodes.length) { x0 = 0; y0 = 0; x1 = 400; y1 = 300; }
  return [x0, y0, x1 - x0, y1 - y0];
})();
function setVB() { svg.setAttribute('viewBox', vb.join(' ')); }
setVB();

for (const e of data.edges) {
  const a = data.nodes[e.src], b = data.nodes[e.dst];
  let dx = b.x - a.x, dy = b.y - a.y;
  const len = Math.hypot(dx, dy) || 1;
  dx /= len; dy /= len;
  const trim = Math.min(38, len / 2 - 2);
  const line = el(svgNS, 'line', {
    x1: a.x + dx * trim, y1: a.y + dy * trim,
    x2: b.x - dx * trim, y2: b.y - dy * trim,
    stroke: '#90a4ae', 'stroke-width': 1.4}, edgeLayer);
  if (e.kind === 'compete') {
    line.setAttribute('stroke', '#c62828');
    line.setAttribute('stroke-width', 2);
  } else if (e.kind === 'feed') {
    line.setAttribute('stroke', '#1565c0');
    line.setAttribute('stroke-dasharray', '6 4');
    line.setAttribute('marker-end', 'url(#arrow)');
  } else {
    line.setAttribute('marker-end', 'url(#arrow)');
  }
  if (e.label) {
    const t = el(svgNS, 'text', {x: (a.x + b.x) / 2, y: (a.y + b.y) / 2 - 4,
      'font-size': '10', fill: '#78909c', 'text-anchor': 'middle'}, edgeLayer);
    t.textContent = e.label;
  }
}

const nodeByKey = {};
const colorSel = document.getElementById('gf-color');
function fillFor(n) {
  const mode = colorSel.value;
  let idx = -1;
  if (mode === 'class') idx = n.cls;
  else if (mode === 'shard') idx = n.shard;
  if (idx === null || idx < 0) return '#ffffff';
  return palette[idx % palette.length] + '40';
}
function strokeFor(n) {
  const mode = colorSel.value;
  let idx = -1;
  if (mode === 'class') idx = n.cls;
  else if (mode === 'shard') idx = n.shard;
  if (idx === null || idx < 0) return '#607d8b';
  return palette[idx % palette.length];
}
for (const n of data.nodes) {
  const g = el(svgNS, 'g', {'class': 'node'}, nodeLayer);
  const w = Math.max(84, 14 + 7 * n.label.length);
  el(svgNS, 'rect', {x: n.x - w / 2, y: n.y - 18, width: w, height: 36,
                     rx: n.kind === 'reaction' ? 6 : 14}, g);
  const t = el(svgNS, 'text', {x: n.x, y: n.y + 4, 'text-anchor': 'middle'}, g);
  t.textContent = n.label;
  nodeByKey[n.key] = {g: g, n: n};
  g.addEventListener('click', function () { highlightKey(n.key); });
}
function recolor() {
  for (const k in nodeByKey) {
    const rec = nodeByKey[k];
    const r = rec.g.querySelector('rect');
    r.style.fill = fillFor(rec.n);
    r.style.stroke = strokeFor(rec.n);
  }
  renderLegend();
}
function renderLegend() {
  const lg = document.getElementById('gf-legend');
  const mode = colorSel.value;
  const seen = {};
  let html = '';
  for (const n of data.nodes) {
    const idx = mode === 'class' ? n.cls : (mode === 'shard' ? n.shard : -1);
    if (idx === null || idx < 0 || seen[idx]) continue;
    seen[idx] = true;
    html += '<span><span class="sw" style="background:' +
            palette[idx % palette.length] + '"></span>' + mode + ' ' + idx +
            '</span>';
  }
  if (data.kind === 'gamma') {
    html += '<span style="color:#c62828">— compete</span>' +
            '<span style="color:#1565c0">⇢ feed</span>';
  }
  lg.innerHTML = html;
}
function clearHl() {
  for (const k in nodeByKey) nodeByKey[k].g.classList.remove('hl');
}
function highlightKey(key) {
  clearHl();
  if (nodeByKey[key]) nodeByKey[key].g.classList.add('hl');
}
colorSel.addEventListener('change', recolor);
recolor();

svg.addEventListener('wheel', function (ev) {
  ev.preventDefault();
  const s = ev.deltaY > 0 ? 1.15 : 1 / 1.15;
  const r = svg.getBoundingClientRect();
  const px = vb[0] + (ev.clientX - r.left) / r.width * vb[2];
  const py = vb[1] + (ev.clientY - r.top) / r.height * vb[3];
  vb = [px - (px - vb[0]) * s, py - (py - vb[1]) * s, vb[2] * s, vb[3] * s];
  setVB();
}, {passive: false});
let drag = null;
svg.addEventListener('mousedown', function (ev) {
  drag = {x: ev.clientX, y: ev.clientY, vb: vb.slice()};
});
window.addEventListener('mousemove', function (ev) {
  if (!drag) return;
  const r = svg.getBoundingClientRect();
  vb[0] = drag.vb[0] - (ev.clientX - drag.x) / r.width * vb[2];
  vb[1] = drag.vb[1] - (ev.clientY - drag.y) / r.height * vb[3];
  setVB();
});
window.addEventListener('mouseup', function () { drag = null; });

// ---------- journal: scrubber + store + provenance ----------
const scrub = document.getElementById('gf-scrubber');
const storeDiv = document.getElementById('gf-store');
const provDiv = document.getElementById('gf-provenance');
const roundLabel = document.getElementById('gf-round-label');
const states = [];  // states[k] = Map after applying k journal rounds
function stateAt(k) {
  if (!states.length) {
    const m = new Map();
    if (J) for (const e in J.initial) m.set(e, J.initial[e]);
    states.push(m);
  }
  while (states.length <= k) {
    const m = new Map(states[states.length - 1]);
    const r = J.rounds[states.length - 1];
    for (const e in r.add) m.set(e, (m.get(e) || 0) + r.add[e]);
    for (const e in r.del) {
      const v = (m.get(e) || 0) - r.del[e];
      if (v > 0) m.set(e, v); else m.delete(e);
    }
    states.push(m);
  }
  return states[k];
}
function renderStore(k) {
  if (!J) {
    storeDiv.innerHTML = '<h3>store</h3><div class="muted">no journal</div>';
    return;
  }
  const cur = stateAt(k), prev = k > 0 ? stateAt(k - 1) : null;
  const keys = new Set(cur.keys());
  if (prev) for (const e of prev.keys()) keys.add(e);
  let total = 0;
  cur.forEach(function (v) { total += v; });
  let html = '';
  for (const e of Array.from(keys).sort()) {
    const c = cur.get(e) || 0;
    const p = prev ? (prev.get(e) || 0) : c;
    if (c === 0 && p === 0) continue;
    const cls = c > p ? 'added' : (c < p ? 'removed' : '');
    const delta = p !== c ? ' (' + (c > p ? '+' : '') + (c - p) + ')' : '';
    html += '<div class="entry ' + cls + '"><span class="cnt">' + c + delta +
            '</span>' + esc(e) + '</div>';
  }
  storeDiv.innerHTML = '<h3>store (' + total + ' elements)</h3>' +
                       (html || '<div class="muted">empty</div>');
}
let selectedFire = -1;
function renderProv(k) {
  let html = '<h3>provenance</h3>';
  if (!J) {
    provDiv.innerHTML = html + '<div class="muted">no journal</div>';
    return;
  }
  if (k === 0) {
    provDiv.innerHTML = html +
        '<div class="muted">initial store — scrub forward to see fires</div>' +
        '<div id="gf-fire-detail" class="muted">click a fire</div>';
    return;
  }
  const fires = [];
  for (let i = 0; i < J.fires.length; i++) {
    if (J.fires[i].round === k - 1) fires.push(i);
  }
  const cap = 400;
  for (let i = 0; i < Math.min(fires.length, cap); i++) {
    const f = J.fires[fires[i]];
    html += '<div class="fire' + (fires[i] === selectedFire ? ' sel' : '') +
            '" data-fire="' + fires[i] + '">' + esc(f.r) +
            (f.node >= 0 ? ' @node' + f.node : '') +
            (f.shard >= 0 ? ' @shard' + f.shard : '') + '</div>';
  }
  if (fires.length > cap) {
    html += '<div class="muted">… ' + (fires.length - cap) + ' more</div>';
  }
  if (!fires.length) {
    html += '<div class="muted">no fires recorded for this round</div>';
  }
  html += '<div id="gf-fire-detail" class="muted">click a fire</div>';
  provDiv.innerHTML = html;
  provDiv.querySelectorAll('.fire').forEach(function (div) {
    div.addEventListener('click', function () {
      selectFire(parseInt(div.getAttribute('data-fire'), 10));
    });
  });
}
function selectFire(idx) {
  selectedFire = idx;
  const f = J.fires[idx];
  highlightKey(f.r);
  provDiv.querySelectorAll('.fire').forEach(function (d) {
    d.classList.toggle('sel', parseInt(d.getAttribute('data-fire'), 10) === idx);
  });
  const det = document.getElementById('gf-fire-detail');
  let html = '<h4>' + esc(f.r) + '</h4>';
  const meta = [];
  if (f.stage >= 0) meta.push('stage ' + f.stage);
  if (f.shard >= 0) meta.push('shard ' + f.shard);
  if (f.node >= 0) meta.push('node ' + f.node);
  if (meta.length) html += '<div class="muted">' + meta.join(' · ') + '</div>';
  html += '<div class="consumed"><b>consumed</b>' +
          (f.in.length ? f.in.map(function (t) {
            return '<span class="tok">− ' + esc(t) + '</span>';
          }).join('') : ' <span class="muted">nothing</span>') + '</div>';
  html += '<div class="produced"><b>produced</b>' +
          (f.out.length ? f.out.map(function (t) {
            return '<span class="tok">+ ' + esc(t) + '</span>';
          }).join('') : ' <span class="muted">nothing</span>') + '</div>';
  det.classList.remove('muted');
  det.innerHTML = html;
}
function update() {
  const k = +scrub.value;
  roundLabel.textContent = J ? ('round ' + k + ' / ' + J.rounds.length) : '—';
  renderStore(k);
  renderProv(k);
}
if (J) {
  scrub.max = J.rounds.length;
  scrub.value = J.rounds.length;
} else {
  scrub.disabled = true;
}
scrub.addEventListener('input', update);
update();
)js";

}  // namespace

void write_html(std::ostream& os, const HtmlInputs& inputs) {
  std::ostringstream data;
  write_data_json(data, inputs);
  // Escaped solidus defuses any "</script" inside embedded strings while
  // staying valid JSON; structural JSON has no '<' outside strings.
  std::string json = data.str();
  for (std::size_t pos = 0; (pos = json.find("</", pos)) != std::string::npos;
       pos += 3) {
    json.insert(pos + 1, "\\");
  }
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
     << "<title>";
  html_text(os, inputs.title);
  os << "</title>\n<style>" << kCss << "</style>\n</head>\n<body>\n"
     << "<header><h1>";
  html_text(os, inputs.title);
  os << "</h1><span class=\"meta\" id=\"gf-meta\"></span></header>\n"
     << "<main>\n"
     << "  <section id=\"gf-graph\"></section>\n"
     << "  <aside>\n"
     << "    <div id=\"gf-controls\">\n"
     << "      <input id=\"gf-scrubber\" type=\"range\" min=\"0\" max=\"0\" "
        "value=\"0\">\n"
     << "      <span id=\"gf-round-label\"></span>\n"
     << "      <label>color: <select id=\"gf-color\">"
        "<option value=\"class\">conflict class</option>"
        "<option value=\"shard\">shard</option>"
        "<option value=\"none\">none</option></select></label>\n"
     << "    </div>\n"
     << "    <div id=\"gf-legend\"></div>\n"
     << "    <div id=\"gf-store\"></div>\n"
     << "    <div id=\"gf-provenance\"></div>\n"
     << "  </aside>\n"
     << "</main>\n"
     << "<script id=\"gf-data\" type=\"application/json\">" << json
     << "</script>\n"
     << "<script>" << kJs << "</script>\n"
     << "</body>\n</html>\n";
}

}  // namespace gammaflow::viz
