// Graphviz DOT export, drawing the paper's shape conventions: squares for
// roots (Const), circles for operators, triangles for Steer, diamonds
// (lozenges) for IncTag/DecTag, double circles for Output.
#pragma once

#include <iosfwd>
#include <string>

#include "gammaflow/dataflow/graph.hpp"

namespace gammaflow::dataflow {

void write_dot(std::ostream& os, const Graph& graph,
               const std::string& title = "dataflow");
[[nodiscard]] std::string to_dot(const Graph& graph,
                                 const std::string& title = "dataflow");

}  // namespace gammaflow::dataflow
