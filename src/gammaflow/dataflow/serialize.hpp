// Plain-text (de)serialization for dataflow graphs — the exchange format the
// examples and round-trip tests use. Line oriented, key=value fields:
//
//   dataflow v1
//   node kind=const value=5 name='x'
//   node kind=arith op=+ name='R1'
//   edge src=0 sport=0 dst=1 dport=0 label='A1'
//
// Nodes are implicitly numbered in declaration order. parse(print(g)) is a
// structurally identical graph (tested property).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "gammaflow/dataflow/graph.hpp"

namespace gammaflow::dataflow {

void write_text(std::ostream& os, const Graph& graph);
[[nodiscard]] std::string to_text(const Graph& graph);

/// Throws ParseError (with line info) on malformed input and GraphError on
/// structurally invalid graphs.
[[nodiscard]] Graph parse_text(std::string_view text);

}  // namespace gammaflow::dataflow
