#include "gammaflow/dataflow/node.hpp"

namespace gammaflow::dataflow {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Const: return "const";
    case NodeKind::Arith: return "arith";
    case NodeKind::Cmp: return "cmp";
    case NodeKind::Steer: return "steer";
    case NodeKind::IncTag: return "inctag";
    case NodeKind::DecTag: return "dectag";
    case NodeKind::Output: return "output";
  }
  return "?";
}

std::size_t input_arity(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Const: return 0;
    case NodeKind::Arith:
    case NodeKind::Cmp:
    case NodeKind::Steer: return 2;
    case NodeKind::IncTag:
    case NodeKind::DecTag:
    case NodeKind::Output: return 1;
  }
  return 0;
}

std::size_t input_arity(const Node& node) noexcept {
  if (node.has_immediate &&
      (node.kind == NodeKind::Arith || node.kind == NodeKind::Cmp)) {
    return 1;
  }
  return input_arity(node.kind);
}

std::size_t output_arity(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Output: return 0;
    case NodeKind::Steer: return 2;
    default: return 1;
  }
}

}  // namespace gammaflow::dataflow
