#include "gammaflow/dataflow/serialize.hpp"

#include <charconv>
#include <map>
#include <ostream>
#include <sstream>

namespace gammaflow::dataflow {
namespace {

void write_value(std::ostream& os, const Value& v) {
  // Value's stream form is already unambiguous: ints bare, reals with a
  // decimal marker, strings single-quoted, bools true/false, nil.
  os << v;
}

std::string quote(const std::string& s) { return "'" + s + "'"; }

// Splits a line into whitespace-separated key=value fields, honoring single
// quotes in values.
std::map<std::string, std::string> parse_fields(const std::string& line,
                                                int line_no) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  const auto n = line.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= n) break;
    const std::size_t key_start = i;
    while (i < n && line[i] != '=' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= n || line[i] != '=') {
      throw ParseError("expected key=value field", line_no,
                       static_cast<int>(key_start + 1));
    }
    const std::string key = line.substr(key_start, i - key_start);
    ++i;  // '='
    std::string value;
    if (i < n && line[i] == '\'') {
      // Keep the quotes so consumers can distinguish the string '5' from
      // the integer 5; unquote() strips them.
      value += line[i++];
      while (i < n && line[i] != '\'') value += line[i++];
      if (i >= n) {
        throw ParseError("unterminated quoted value", line_no,
                         static_cast<int>(key_start + 1));
      }
      value += line[i++];  // closing quote
    } else {
      while (i < n && !std::isspace(static_cast<unsigned char>(line[i]))) {
        value += line[i++];
      }
    }
    fields[key] = value;
  }
  return fields;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

Value parse_value(const std::string& s, int line_no) {
  if (!s.empty() && s.front() == '\'') return Value(unquote(s));
  if (s == "nil") return {};
  if (s == "true") return Value(true);
  if (s == "false") return Value(false);
  if (!s.empty() && (std::isdigit(static_cast<unsigned char>(s[0])) ||
                     s[0] == '-' || s[0] == '+')) {
    if (s.find('.') != std::string::npos || s.find('e') != std::string::npos ||
        s.find('E') != std::string::npos) {
      return Value(std::stod(s));
    }
    std::int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc{} && ptr == s.data() + s.size()) return Value(v);
  }
  throw ParseError("cannot decode value '" + s + "'", line_no, 1);
}

expr::BinOp parse_op(const std::string& s, int line_no) {
  using expr::BinOp;
  static const std::map<std::string, BinOp> ops = {
      {"+", BinOp::Add}, {"-", BinOp::Sub},  {"*", BinOp::Mul},
      {"/", BinOp::Div}, {"%", BinOp::Mod},  {"<", BinOp::Lt},
      {"<=", BinOp::Le}, {">", BinOp::Gt},   {">=", BinOp::Ge},
      {"==", BinOp::Eq}, {"!=", BinOp::Ne},
  };
  auto it = ops.find(s);
  if (it == ops.end()) throw ParseError("unknown operator '" + s + "'", line_no, 1);
  return it->second;
}

NodeKind parse_kind(const std::string& s, int line_no) {
  static const std::map<std::string, NodeKind> kinds = {
      {"const", NodeKind::Const},   {"arith", NodeKind::Arith},
      {"cmp", NodeKind::Cmp},       {"steer", NodeKind::Steer},
      {"inctag", NodeKind::IncTag}, {"dectag", NodeKind::DecTag},
      {"output", NodeKind::Output},
  };
  auto it = kinds.find(s);
  if (it == kinds.end()) {
    throw ParseError("unknown node kind '" + s + "'", line_no, 1);
  }
  return it->second;
}

template <typename T>
T parse_uint(const std::map<std::string, std::string>& fields,
             const std::string& key, int line_no) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    throw ParseError("missing field '" + key + "'", line_no, 1);
  }
  T v{};
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("bad integer in field '" + key + "'", line_no, 1);
  }
  return v;
}

}  // namespace

void write_text(std::ostream& os, const Graph& graph) {
  os << "dataflow v1\n";
  for (const Node& n : graph.nodes()) {
    os << "node kind=" << to_string(n.kind);
    if (n.kind == NodeKind::Arith || n.kind == NodeKind::Cmp) {
      os << " op=" << expr::to_string(n.op);
      if (n.has_immediate) {
        os << " imm=";
        write_value(os, n.constant);
      }
    }
    if (n.kind == NodeKind::Const) {
      os << " value=";
      write_value(os, n.constant);
    }
    if (!n.name.empty()) os << " name=" << quote(n.name);
    os << '\n';
  }
  for (const Edge& e : graph.edges()) {
    os << "edge src=" << e.src << " sport=" << e.src_port << " dst=" << e.dst
       << " dport=" << e.dst_port << " label=" << quote(e.label.str()) << '\n';
  }
}

std::string to_text(const Graph& graph) {
  std::ostringstream os;
  write_text(os, graph);
  return os.str();
}

Graph parse_text(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  int line_no = 0;
  GraphBuilder builder;
  bool saw_header = false;

  while (std::getline(is, line)) {
    ++line_no;
    // strip comments and blanks
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const auto first =
        line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;

    if (!saw_header) {
      if (line.substr(first, 11) != "dataflow v1") {
        throw ParseError("expected 'dataflow v1' header", line_no, 1);
      }
      saw_header = true;
      continue;
    }

    std::istringstream ls(line);
    std::string word;
    ls >> word;
    std::string rest;
    std::getline(ls, rest);
    const auto fields = parse_fields(rest, line_no);

    if (word == "node") {
      auto kind_it = fields.find("kind");
      if (kind_it == fields.end()) {
        throw ParseError("node line missing kind", line_no, 1);
      }
      Node n;
      n.kind = parse_kind(kind_it->second, line_no);
      if (auto it = fields.find("op"); it != fields.end()) {
        n.op = parse_op(it->second, line_no);
      }
      if (auto it = fields.find("value"); it != fields.end()) {
        n.constant = parse_value(it->second, line_no);
      }
      if (auto it = fields.find("imm"); it != fields.end()) {
        n.constant = parse_value(it->second, line_no);
        n.has_immediate = true;
      }
      if (auto it = fields.find("name"); it != fields.end()) {
        n.name = unquote(it->second);
      }
      builder.add_node(std::move(n));
    } else if (word == "edge") {
      auto label_it = fields.find("label");
      const std::string label =
          label_it == fields.end() ? std::string{} : unquote(label_it->second);
      builder.connect(
          GraphBuilder::Port{parse_uint<NodeId>(fields, "src", line_no),
                             parse_uint<PortId>(fields, "sport", line_no)},
          parse_uint<NodeId>(fields, "dst", line_no),
          parse_uint<PortId>(fields, "dport", line_no), label);
    } else {
      throw ParseError("unknown directive '" + word + "'", line_no, 1);
    }
  }
  if (!saw_header) throw ParseError("empty graph text", 1, 1);
  return std::move(builder).build();
}

}  // namespace gammaflow::dataflow
