// Dataflow node kinds, following the TALM-style dynamic dataflow model the
// paper builds on (Marzulo et al. [5]):
//   Const  — root node (drawn as a square in Figs. 1-2); emits its value
//            once with iteration tag 0.
//   Arith  — binary arithmetic (+ - * / %), 2 inputs, fires on tag match.
//   Cmp    — comparison; emits Int 1/0 (not Bool) exactly like the reactions
//            Algorithm 1 generates ([1,label,tag] / [0,label,tag]), keeping
//            cross-model results structurally identical.
//   Steer  — triangle: input 0 = data, input 1 = boolean control; routes the
//            data token to the TRUE port (0) or FALSE port (1).
//   IncTag — lozenge: forwards its input with iteration tag + 1.
//   DecTag — inverse of IncTag (function-return convention in TALM).
//   Output — sink; records (tag, value) as an observable program result.
#pragma once

#include <cstdint>
#include <string>

#include "gammaflow/common/value.hpp"
#include "gammaflow/expr/ast.hpp"

namespace gammaflow::dataflow {

enum class NodeKind : std::uint8_t {
  Const,
  Arith,
  Cmp,
  Steer,
  IncTag,
  DecTag,
  Output,
};

const char* to_string(NodeKind kind) noexcept;

/// Input/output port conventions per kind.
[[nodiscard]] std::size_t input_arity(NodeKind kind) noexcept;
[[nodiscard]] std::size_t output_arity(NodeKind kind) noexcept;

struct Node;
/// Node-aware input arity: an Arith/Cmp node with an immediate right operand
/// takes a single token input (Fig. 2's R14 "compare with zero" and R18
/// "subtract 1" — a Const node cannot feed a loop body because its token
/// carries tag 0 only).
[[nodiscard]] std::size_t input_arity(const Node& node) noexcept;

/// Steer port indices, for readability at call sites.
inline constexpr std::uint32_t kSteerData = 0;
inline constexpr std::uint32_t kSteerControl = 1;
inline constexpr std::uint32_t kSteerTrue = 0;
inline constexpr std::uint32_t kSteerFalse = 1;

struct Node {
  NodeKind kind = NodeKind::Const;
  /// Arith/Cmp operator (must be arithmetic resp. comparison).
  expr::BinOp op = expr::BinOp::Add;
  /// Const payload; for Arith/Cmp with `has_immediate`, the right operand.
  Value constant;
  /// Arith/Cmp only: computes `input op constant` from a single token input.
  bool has_immediate = false;
  /// Optional human name; Output nodes use it as the result key, and the
  /// translators use it to carry the paper's vertex names (R1, R11, ...).
  std::string name;
};

}  // namespace gammaflow::dataflow
