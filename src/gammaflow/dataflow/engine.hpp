// Dataflow execution: tagged-token firing rule. A node instance (node, tag)
// fires once all its input ports hold an operand with that tag — operands of
// different iterations never meet, which is what lets dynamic dataflow run
// loop iterations concurrently.
//
// Two engines with identical observable results:
//   Interpreter     — single-threaded, FIFO wavefronts; also measures the
//                     graph's intrinsic parallelism profile.
//   ParallelEngine  — PEs (worker threads) own hash-partitioned nodes, route
//                     tokens via MPSC inboxes, and terminate by in-flight
//                     token counting.
// Both are thin policies over runtime::StepLoop / StopFlag / InFlight; the
// deadline/cancel/budget/telemetry scaffolding is shared with the Gamma
// engines and the distributed cluster.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/common/value.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/runtime/options.hpp"

namespace gammaflow::dataflow {

/// Iteration tag (the "instance number" of the paper's §II-A).
using Tag = std::uint64_t;

struct Token {
  Value value;
  Tag tag = 0;
};

struct DfRunOptions : runtime::RunOptions {
  /// Firing budget; exceeded => EngineError (guards divergent loop graphs).
  std::uint64_t max_fires = 50'000'000;
  /// Instruction-level trace reuse (DF-DTM, the paper's ref [3] and one of
  /// the §I benefits the equivalence unlocks for Gamma programs): memoize
  /// (node, operand values) -> result for pure Arith/Cmp nodes and reuse
  /// instead of recomputing. Interpreter only; hit/miss counts land in
  /// DfRunResult. Observable results are unchanged (tested).
  bool memoize = false;
};

/// An operand parked in a matching store with no partner when the machine
/// quiesced. Converted programs leave these exactly where the equivalent
/// Gamma program leaves unreacted elements.
struct PendingOperand {
  NodeId node = 0;
  PortId port = 0;
  Tag tag = 0;
  Value value;
};

struct DfRunResult {
  /// Output-node results keyed by node name, as (tag, value) in arrival
  /// order. output_values("m") gives just the values sorted by tag.
  std::map<std::string, std::vector<std::pair<Tag, Value>>> outputs;
  /// Why the run returned. Anything but Completed means outputs/leftovers
  /// are the valid PARTIAL state at the stop point (tokens still queued at
  /// the stop are reported as leftovers, not lost silently).
  Outcome outcome = Outcome::Completed;
  std::uint64_t fires = 0;
  std::vector<std::uint64_t> fires_by_node;  // indexed by NodeId
  /// Interpreter only: number of simultaneously fireable node instances per
  /// wavefront — the graph's exposed parallelism over time.
  std::vector<std::size_t> wavefronts;
  std::vector<PendingOperand> leftovers;
  std::vector<NodeId> trace;  // only when record_trace
  /// Trace-reuse statistics (only meaningful when options.memoize).
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Trace entries not recorded because of DfRunOptions::trace_limit.
  std::uint64_t trace_dropped = 0;
  /// Engine-internal metrics (firings by opcode, steer branches, queue
  /// depths, ...); empty unless DfRunOptions::telemetry was set.
  MetricsSnapshot metrics;
  double wall_seconds = 0.0;

  /// Values of one output sorted by tag; throws if the name is unknown.
  [[nodiscard]] std::vector<Value> output_values(const std::string& name) const;
  /// The single value of output `name`; throws unless exactly one token
  /// arrived (the common case for expression graphs like Fig. 1).
  [[nodiscard]] Value single_output(const std::string& name) const;
};

class DfEngine {
 public:
  virtual ~DfEngine() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Runs the graph: every Const node emits its value with tag 0, plus any
  /// `extra_tokens` injected on named edges (edge label -> tokens).
  [[nodiscard]] virtual DfRunResult run(
      const Graph& graph, const DfRunOptions& options,
      const std::vector<std::pair<Label, Token>>& extra_tokens) const = 0;

  [[nodiscard]] DfRunResult run(const Graph& graph) const {
    return run(graph, DfRunOptions{}, {});
  }
  [[nodiscard]] DfRunResult run(const Graph& graph,
                                const DfRunOptions& options) const {
    return run(graph, options, {});
  }
};

class Interpreter final : public DfEngine {
 public:
  using DfEngine::run;
  [[nodiscard]] std::string name() const override { return "interpreter"; }
  [[nodiscard]] DfRunResult run(
      const Graph& graph, const DfRunOptions& options,
      const std::vector<std::pair<Label, Token>>& extra_tokens) const override;
};

class ParallelEngine final : public DfEngine {
 public:
  using DfEngine::run;
  [[nodiscard]] std::string name() const override { return "parallel"; }
  [[nodiscard]] DfRunResult run(
      const Graph& graph, const DfRunOptions& options,
      const std::vector<std::pair<Label, Token>>& extra_tokens) const override;
};

/// Computes the token a node emits when firing with `inputs` (tag-matched).
/// Shared by both engines and unit-testable in isolation. For Steer the
/// result is (value, port): port 0=true, 1=false. IncTag/DecTag adjust the
/// tag. Output nodes return no emission.
struct Firing {
  bool emits = false;
  Value value;
  Tag tag = 0;
  PortId port = 0;
};
[[nodiscard]] Firing fire_node(const Node& node, const std::vector<Value>& inputs,
                               Tag tag);

/// Bytecode for a graph's Arith/Cmp nodes, compiled once per run when
/// DfRunOptions::compile is on: node i's operation becomes a two-slot chunk
/// (`a op b`, or `a op <immediate>` embedding the constant in the pool; Cmp
/// chunks end in BoolToInt so they emit Int 1/0 exactly like fire_node).
/// Shared read-only across worker threads; each thread brings its own Vm.
struct GraphCode {
  std::vector<std::optional<expr::Chunk>> per_node;  // indexed by NodeId
  std::size_t compiled_nodes = 0;
  double compile_ms = 0.0;

  [[nodiscard]] const expr::Chunk* chunk(NodeId id) const noexcept {
    return id < per_node.size() && per_node[id] ? &*per_node[id] : nullptr;
  }
};
[[nodiscard]] GraphCode compile_graph(const Graph& graph);

/// fire_node through bytecode: runs `chunk` on `vm` for Arith/Cmp nodes and
/// delegates to the AST path when `chunk` is null (all other node kinds).
[[nodiscard]] Firing fire_node(const Node& node, const std::vector<Value>& inputs,
                               Tag tag, const expr::Chunk* chunk, expr::Vm& vm);

/// Canonical run-journal rendering of a token parked at (dst, port) with
/// `tag`: producers (emissions onto an in-edge) and consumers (firings)
/// render the same token identically, which is what makes journal
/// fire-replay exact. Shared by both engines and the round-trip tests.
[[nodiscard]] std::string journal_token_str(const Graph& graph, NodeId dst,
                                            PortId port, Tag tag,
                                            const Value& value);
/// Journal rendering of a captured output (persists in the final store).
[[nodiscard]] std::string journal_output_str(const std::string& name, Tag tag,
                                             const Value& value);

}  // namespace gammaflow::dataflow
