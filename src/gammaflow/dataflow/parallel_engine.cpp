// ParallelEngine: PEs as worker threads. Nodes are hash-partitioned across
// workers (node id mod W), so a node's matching store is owned by exactly one
// thread and needs no locking; tokens cross PEs through MPSC inboxes. This
// mirrors how dataflow runtimes virtualize PEs on multicores (§II-A of the
// paper: each core runs the firing rule for its nodes).
//
// Termination: an atomic in-flight counter (runtime::InFlight) covers every
// token that is queued or being absorbed. When it reaches zero, no token can
// ever be produced again (all stores are stable), which is the dataflow
// quiescence condition. Stop propagation is a runtime::StopFlag; deadlines,
// the firing budget, and the telemetry tail come from the same runtime core
// the Gamma engines use.
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "gammaflow/common/logging.hpp"
#include "gammaflow/common/mpsc_queue.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::dataflow {
namespace {

/// Sample the inbox depth histogram once per this many absorbed tokens
/// (MpscQueue::size takes the queue lock, so keep sampling sparse).
constexpr std::uint64_t kInboxSampleInterval = 256;

struct Routed {
  NodeId node;
  PortId port;
  Token token;
};

struct Slots {
  std::vector<std::optional<Value>> values;
  std::size_t filled = 0;
};

struct WorkerState {
  MpscQueue<Routed> inbox;
  // Per-PE bytecode evaluator (chunks are shared read-only; register files
  // are not).
  expr::Vm vm;
  // Matching stores for owned nodes.
  std::unordered_map<NodeId, std::unordered_map<Tag, Slots>> waiting;
  // Worker-local results, merged after join.
  std::map<std::string, std::vector<std::pair<Tag, Value>>> outputs;
  std::vector<std::uint64_t> fires_by_node;
  // Worker-local telemetry, flushed into the registry after join.
  std::array<std::uint64_t, 7> fires_by_kind{};
  std::uint64_t steer_true = 0;
  std::uint64_t steer_false = 0;
  std::uint64_t absorbed = 0;
};

class ParallelRun {
 public:
  ParallelRun(const Graph& graph, const DfRunOptions& options)
      : graph_(graph),
        options_(options),
        worker_count_(std::max(1u, options.workers)),
        workers_(worker_count_),
        loop_(options, options.max_fires, "parallel dataflow engine",
              "max_fires"),
        telemetry_(options, "df") {
    for (auto& w : workers_) w.fires_by_node.assign(graph.node_count(), 0);
    if (options.compile) code_ = compile_graph(graph);
    if ((jrec_ = options.record) != nullptr) {
      jrec_->begin("parallel", "dataflow", {});
    }
    if ((tel_ = telemetry_.sink()) != nullptr) {
      inbox_hist_ = &tel_->stats().hist("df.inbox_depth");
      tag_hist_ = &tel_->stats().hist("df.inctag_depth");
    }
  }

  DfRunResult run(const std::vector<std::pair<Label, Token>>& extra_tokens) {
    GF_DEBUG << "dataflow parallel run: " << worker_count_ << " PE(s), "
             << graph_.node_count() << " nodes";

    // Seed: const emissions and injected tokens, routed before workers start.
    for (const NodeId root : graph_.roots()) {
      const Firing f = fire_node(graph_.node(root), {}, 0);
      ++workers_[owner(root)].fires_by_node[root];
      if (tel_ != nullptr) {
        ++workers_[owner(root)].fires_by_kind[static_cast<std::size_t>(
            graph_.node(root).kind)];
      }
      total_fires_.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::string> produced;
      route_emission(root, f, jrec_ != nullptr ? &produced : nullptr);
      if (jrec_ != nullptr) {
        obs::FireRecord fr;
        fr.reaction = node_label(root);
        fr.produced = std::move(produced);
        jrec_->fire(std::move(fr));
      }
    }
    for (const auto& [label, token] : extra_tokens) {
      const auto eid = graph_.find_edge(label);
      if (!eid) throw EngineError("inject on unknown edge '" + label.str() + "'");
      const Edge& e = graph_.edge(*eid);
      if (jrec_ != nullptr) {
        obs::FireRecord fr;
        fr.reaction = "inject:" + label.str();
        fr.produced.push_back(journal_token_str(graph_, e.dst, e.dst_port,
                                                token.tag, token.value));
        jrec_->fire(std::move(fr));
      }
      send(e.dst, e.dst_port, token);
    }

    std::vector<std::thread> threads;
    threads.reserve(worker_count_);
    for (unsigned w = 0; w < worker_count_; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
    for (auto& t : threads) t.join();
    if (error_) std::rethrow_exception(error_);
    if (failed_.load()) {
      // Single-assignment violation; surfaced as the budget error it would
      // become (historical behavior, pinned by the fault suite).
      throw EngineError("parallel dataflow engine exceeded max_fires=" +
                        std::to_string(options_.max_fires));
    }

    DfRunResult result;
    result.outcome = stop_.outcome();
    result.fires = total_fires_.load();
    result.fires_by_node.assign(graph_.node_count(), 0);
    if (tel_ != nullptr) {
      auto& stats = tel_->stats();
      std::array<std::uint64_t, 7> by_kind{};
      std::uint64_t steer_true = 0;
      std::uint64_t steer_false = 0;
      std::uint64_t absorbed = 0;
      for (const WorkerState& w : workers_) {
        for (std::size_t k = 0; k < by_kind.size(); ++k) {
          by_kind[k] += w.fires_by_kind[k];
        }
        steer_true += w.steer_true;
        steer_false += w.steer_false;
        absorbed += w.absorbed;
      }
      for (std::size_t k = 0; k < by_kind.size(); ++k) {
        if (by_kind[k] > 0) {
          stats.count(std::string("df.fires.") +
                          to_string(static_cast<NodeKind>(k)),
                      by_kind[k]);
        }
      }
      stats.count("df.fires", result.fires);
      stats.count("df.steer_true", steer_true);
      stats.count("df.steer_false", steer_false);
      stats.count("df.tokens_absorbed", absorbed);
      if (options_.compile) {
        stats.count("df.compiled_nodes", code_.compiled_nodes);
        stats.hist("expr.compile_ms").observe(code_.compile_ms);
      }
    }
    telemetry_.finish(result.outcome, result.metrics);
    for (WorkerState& w : workers_) {
      for (NodeId n = 0; n < graph_.node_count(); ++n) {
        result.fires_by_node[n] += w.fires_by_node[n];
      }
      // On a cooperative stop, tokens still queued in the inbox are part of
      // the machine state: surface them as leftovers (post-join, so the
      // queue has no concurrent producers anymore).
      while (auto routed = w.inbox.try_pop()) {
        result.leftovers.push_back(PendingOperand{routed->node, routed->port,
                                                  routed->token.tag,
                                                  std::move(routed->token.value)});
      }
      for (const auto& [name, tokens] : w.outputs) {
        auto& dst = result.outputs[name];
        dst.insert(dst.end(), tokens.begin(), tokens.end());
      }
      for (const auto& [node, tags] : w.waiting) {
        for (const auto& [tag, slots] : tags) {
          for (PortId p = 0; p < slots.values.size(); ++p) {
            if (slots.values[p].has_value()) {
              result.leftovers.push_back(
                  PendingOperand{node, p, tag, *slots.values[p]});
            }
          }
        }
      }
    }
    if (jrec_ != nullptr) {
      // The final store: captured outputs plus every parked leftover token
      // (assembled post-join, so no concurrent mutators).
      obs::StoreCounts counts;
      for (const auto& [name, tokens] : result.outputs) {
        for (const auto& [tag, value] : tokens) {
          ++counts[journal_output_str(name, tag, value)];
        }
      }
      for (const PendingOperand& p : result.leftovers) {
        ++counts[journal_token_str(graph_, p.node, p.port, p.tag, p.value)];
      }
      jrec_->finish(to_string(result.outcome), std::move(counts));
    }
    result.wall_seconds = loop_.wall_seconds();
    GF_DEBUG << "dataflow parallel run done: " << result.fires << " firings, "
             << result.wall_seconds << "s";
    return result;
  }

 private:
  [[nodiscard]] unsigned owner(NodeId node) const noexcept {
    return static_cast<unsigned>(node % worker_count_);
  }

  void send(NodeId node, PortId port, Token token) {
    in_flight_.add();
    workers_[owner(node)].inbox.push(Routed{node, port, std::move(token)});
  }

  void route_emission(NodeId node, const Firing& firing,
                      std::vector<std::string>* produced = nullptr) {
    if (!firing.emits) return;
    for (const EdgeId eid : graph_.out_edges(node, firing.port)) {
      const Edge& e = graph_.edge(eid);
      if (produced != nullptr) {
        produced->push_back(journal_token_str(graph_, e.dst, e.dst_port,
                                              firing.tag, firing.value));
      }
      send(e.dst, e.dst_port, Token{firing.value, firing.tag});
    }
  }

  /// Journal label for a node: its name, or "<kind>#<id>" when unnamed.
  [[nodiscard]] std::string node_label(NodeId node) const {
    const Node& n = graph_.node(node);
    return n.name.empty()
               ? std::string(to_string(n.kind)) + "#" + std::to_string(node)
               : n.name;
  }

  void worker_loop(unsigned my_id) {
    WorkerState& me = workers_[my_id];
    RunGovernor governor = loop_.make_governor(options_);
    obs::ThreadRecorder* const rec =
        tel_ != nullptr
            ? &tel_->register_thread("df-worker-" + std::to_string(my_id))
            : nullptr;
    // Busy-period span: opened at the first token after an idle stretch,
    // closed (with the token count as its arg) when the inbox drains — one
    // ring entry per burst instead of one per token.
    std::uint64_t busy_start = 0;
    std::uint64_t busy_tokens = 0;
    bool busy = false;
    const auto close_busy = [&] {
      if (rec == nullptr || !busy) return;
      const std::uint64_t end = tel_->now_us();
      rec->record(obs::TraceEvent{"busy", 'X', busy_start, end - busy_start,
                                  busy_tokens, true});
      busy = false;
    };

    unsigned idle_spins = 0;
    while (true) {
      if (failed_.load(std::memory_order_relaxed) || stop_.stopped()) {
        close_busy();
        return;
      }
      if (governor.should_stop()) {
        // First worker to notice publishes the outcome; peers drain out at
        // the check above, so every thread joins promptly.
        stop_.publish(governor.outcome());
        close_busy();
        return;
      }
      std::optional<Routed> routed = me.inbox.try_pop();
      if (!routed) {
        close_busy();
        if (in_flight_.idle()) return;
        if (++idle_spins > 64) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      idle_spins = 0;
      if (rec != nullptr && !busy) {
        busy = true;
        busy_start = tel_->now_us();
        busy_tokens = 0;
      }
      ++busy_tokens;
      absorb(me, *routed);
      if (tel_ != nullptr && me.absorbed % kInboxSampleInterval == 0) {
        inbox_hist_->observe(static_cast<double>(me.inbox.size()));
      }
      // Absorbed (stored or fired + emissions already counted): this token
      // is no longer in flight.
      in_flight_.sub();
    }
  }

  void absorb(WorkerState& me, Routed& routed) {
    ++me.absorbed;
    const Node& node = graph_.node(routed.node);
    const std::size_t arity = input_arity(node);
    std::vector<Value> inputs;
    if (arity == 1) {
      inputs.push_back(std::move(routed.token.value));
    } else {
      auto& slots = me.waiting[routed.node][routed.token.tag];
      if (slots.values.empty()) slots.values.resize(arity);
      if (slots.values[routed.port].has_value()) {
        failed_.store(true);  // single-assignment violation; surfaced as limit
        return;
      }
      slots.values[routed.port] = std::move(routed.token.value);
      if (++slots.filled < arity) return;  // still waiting for partners
      inputs.reserve(arity);
      for (auto& v : slots.values) inputs.push_back(std::move(*v));
      me.waiting[routed.node].erase(routed.token.tag);
    }

    // Run-wide budget gate: claim a fire slot, give it back on refusal.
    const std::uint64_t n = total_fires_.fetch_add(1, std::memory_order_relaxed);
    bool admitted = false;
    try {
      admitted = runtime::admit_step(options_.limit_policy, n,
                                     options_.max_fires,
                                     "parallel dataflow engine", "max_fires");
    } catch (...) {
      const std::scoped_lock lk(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    if (!admitted) {
      total_fires_.fetch_sub(1, std::memory_order_relaxed);
      stop_.publish(Outcome::BudgetExhausted);
      // Park the assembled-but-unfired operands back in the matching store
      // so the partial result reports them as leftovers. (Harmless on the
      // Throw path: the captured error discards the result after join.)
      Slots& slots = me.waiting[routed.node][routed.token.tag];
      slots.values.clear();
      for (Value& v : inputs) slots.values.emplace_back(std::move(v));
      slots.filled = slots.values.size();
      return;
    }
    ++me.fires_by_node[routed.node];
    if (tel_ != nullptr) {
      ++me.fires_by_kind[static_cast<std::size_t>(node.kind)];
    }
    obs::FireRecord fr;
    if (jrec_ != nullptr) {
      fr.reaction = node_label(routed.node);
      fr.consumed.reserve(inputs.size());
      for (PortId p = 0; p < inputs.size(); ++p) {
        fr.consumed.push_back(journal_token_str(graph_, routed.node, p,
                                                routed.token.tag, inputs[p]));
      }
    }
    if (node.kind == NodeKind::Output) {
      if (jrec_ != nullptr) {
        fr.produced.push_back(
            journal_output_str(node.name, routed.token.tag, inputs[0]));
        jrec_->fire(std::move(fr));
      }
      me.outputs[node.name].emplace_back(routed.token.tag,
                                         std::move(inputs[0]));
      return;
    }
    const Firing firing =
        fire_node(node, inputs, routed.token.tag, code_.chunk(routed.node),
                  me.vm);
    if (tel_ != nullptr) {
      if (node.kind == NodeKind::Steer && firing.emits) {
        ++(firing.port == kSteerData ? me.steer_true : me.steer_false);
      } else if (node.kind == NodeKind::IncTag) {
        tag_hist_->observe(static_cast<double>(firing.tag));
      }
    }
    route_emission(routed.node, firing, jrec_ != nullptr ? &fr.produced : nullptr);
    if (jrec_ != nullptr) jrec_->fire(std::move(fr));
  }

  const Graph& graph_;
  const DfRunOptions& options_;
  unsigned worker_count_;
  std::vector<WorkerState> workers_;
  runtime::StepLoop loop_;
  runtime::EngineTelemetry telemetry_;
  GraphCode code_;  // empty (all-null chunks) when options.compile is off
  runtime::InFlight in_flight_;
  std::atomic<std::uint64_t> total_fires_{0};
  std::atomic<bool> failed_{false};  // single-assignment violation
  runtime::StopFlag stop_;
  std::mutex error_mutex_;
  std::exception_ptr error_;  // budget EngineError under LimitPolicy::Throw

  obs::Telemetry* tel_ = nullptr;
  obs::RunRecorder* jrec_ = nullptr;
  Histogram* inbox_hist_ = nullptr;
  Histogram* tag_hist_ = nullptr;
};

}  // namespace

DfRunResult ParallelEngine::run(
    const Graph& graph, const DfRunOptions& options,
    const std::vector<std::pair<Label, Token>>& extra_tokens) const {
  graph.validate();
  ParallelRun run_state(graph, options);
  return run_state.run(extra_tokens);
}

}  // namespace gammaflow::dataflow
