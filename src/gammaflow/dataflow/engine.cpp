#include "gammaflow/dataflow/engine.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "gammaflow/expr/eval.hpp"

namespace gammaflow::dataflow {

std::vector<Value> DfRunResult::output_values(const std::string& name) const {
  auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw EngineError("unknown output '" + name + "'");
  }
  std::vector<std::pair<Tag, Value>> sorted = it->second;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Value> values;
  values.reserve(sorted.size());
  for (auto& [tag, v] : sorted) values.push_back(std::move(v));
  return values;
}

Value DfRunResult::single_output(const std::string& name) const {
  const auto values = output_values(name);
  if (values.size() != 1) {
    throw EngineError("output '" + name + "' produced " +
                      std::to_string(values.size()) + " tokens, expected 1");
  }
  return values.front();
}

Firing fire_node(const Node& node, const std::vector<Value>& inputs, Tag tag) {
  Firing f;
  switch (node.kind) {
    case NodeKind::Const:
      f.emits = true;
      f.value = node.constant;
      f.tag = tag;
      return f;
    case NodeKind::Arith:
      f.emits = true;
      f.value = expr::apply(node.op, inputs.at(0),
                            node.has_immediate ? node.constant : inputs.at(1));
      f.tag = tag;
      return f;
    case NodeKind::Cmp: {
      // Int 1/0, matching the elements Algorithm 1's comparison reactions
      // produce — keeps dataflow and Gamma results structurally equal.
      const Value b =
          expr::apply(node.op, inputs.at(0),
                      node.has_immediate ? node.constant : inputs.at(1));
      f.emits = true;
      f.value = Value(b.truthy() ? std::int64_t{1} : std::int64_t{0});
      f.tag = tag;
      return f;
    }
    case NodeKind::Steer:
      f.emits = true;
      f.value = inputs.at(kSteerData);
      f.tag = tag;
      f.port = inputs.at(kSteerControl).truthy() ? kSteerTrue : kSteerFalse;
      return f;
    case NodeKind::IncTag:
      f.emits = true;
      f.value = inputs.at(0);
      f.tag = tag + 1;
      return f;
    case NodeKind::DecTag:
      if (tag == 0) throw EngineError("dectag on tag 0");
      f.emits = true;
      f.value = inputs.at(0);
      f.tag = tag - 1;
      return f;
    case NodeKind::Output:
      f.emits = false;
      return f;
  }
  throw EngineError("unknown node kind");
}

GraphCode compile_graph(const Graph& graph) {
  const auto t0 = std::chrono::steady_clock::now();
  static const std::vector<std::string> kUnarySlots = {"a"};
  static const std::vector<std::string> kBinarySlots = {"a", "b"};
  GraphCode gc;
  gc.per_node.resize(graph.node_count());
  for (std::size_t id = 0; id < graph.node_count(); ++id) {
    const Node& n = graph.node(static_cast<NodeId>(id));
    if (n.kind != NodeKind::Arith && n.kind != NodeKind::Cmp) continue;
    expr::ExprPtr rhs =
        n.has_immediate ? expr::lit(n.constant) : expr::var("b");
    expr::ExprPtr e = expr::Expr::binary(n.op, expr::var("a"), std::move(rhs));
    expr::CompileOptions co;
    co.bool_to_int_result = n.kind == NodeKind::Cmp;
    gc.per_node[id] = expr::compile(
        e, n.has_immediate ? kUnarySlots : kBinarySlots, co);
    ++gc.compiled_nodes;
  }
  gc.compile_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return gc;
}

Firing fire_node(const Node& node, const std::vector<Value>& inputs, Tag tag,
                 const expr::Chunk* chunk, expr::Vm& vm) {
  if (chunk == nullptr) return fire_node(node, inputs, tag);
  // Arith/Cmp only: slot 0 = left operand; slot 1 = right operand, absent
  // when the node carries an immediate (the chunk embeds it as a constant).
  const Value* slots[2] = {&inputs.at(0),
                           node.has_immediate ? nullptr : &inputs.at(1)};
  Firing f;
  f.emits = true;
  f.value = vm.run(*chunk, std::span<const Value* const>(
                               slots, node.has_immediate ? 1u : 2u));
  f.tag = tag;
  return f;
}

}  // namespace gammaflow::dataflow
