#include "gammaflow/dataflow/engine.hpp"

#include <algorithm>

#include "gammaflow/expr/eval.hpp"

namespace gammaflow::dataflow {

std::vector<Value> DfRunResult::output_values(const std::string& name) const {
  auto it = outputs.find(name);
  if (it == outputs.end()) {
    throw EngineError("unknown output '" + name + "'");
  }
  std::vector<std::pair<Tag, Value>> sorted = it->second;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Value> values;
  values.reserve(sorted.size());
  for (auto& [tag, v] : sorted) values.push_back(std::move(v));
  return values;
}

Value DfRunResult::single_output(const std::string& name) const {
  const auto values = output_values(name);
  if (values.size() != 1) {
    throw EngineError("output '" + name + "' produced " +
                      std::to_string(values.size()) + " tokens, expected 1");
  }
  return values.front();
}

Firing fire_node(const Node& node, const std::vector<Value>& inputs, Tag tag) {
  Firing f;
  switch (node.kind) {
    case NodeKind::Const:
      f.emits = true;
      f.value = node.constant;
      f.tag = tag;
      return f;
    case NodeKind::Arith:
      f.emits = true;
      f.value = expr::apply(node.op, inputs.at(0),
                            node.has_immediate ? node.constant : inputs.at(1));
      f.tag = tag;
      return f;
    case NodeKind::Cmp: {
      // Int 1/0, matching the elements Algorithm 1's comparison reactions
      // produce — keeps dataflow and Gamma results structurally equal.
      const Value b =
          expr::apply(node.op, inputs.at(0),
                      node.has_immediate ? node.constant : inputs.at(1));
      f.emits = true;
      f.value = Value(b.truthy() ? std::int64_t{1} : std::int64_t{0});
      f.tag = tag;
      return f;
    }
    case NodeKind::Steer:
      f.emits = true;
      f.value = inputs.at(kSteerData);
      f.tag = tag;
      f.port = inputs.at(kSteerControl).truthy() ? kSteerTrue : kSteerFalse;
      return f;
    case NodeKind::IncTag:
      f.emits = true;
      f.value = inputs.at(0);
      f.tag = tag + 1;
      return f;
    case NodeKind::DecTag:
      if (tag == 0) throw EngineError("dectag on tag 0");
      f.emits = true;
      f.value = inputs.at(0);
      f.tag = tag - 1;
      return f;
    case NodeKind::Output:
      f.emits = false;
      return f;
  }
  throw EngineError("unknown node kind");
}

}  // namespace gammaflow::dataflow
