// Graph optimization passes. Observable-preserving: every Output node's
// token stream is unchanged; dead regions (the paper's literal Fig. 2
// discards its whole computation through unconnected FALSE ports!) and
// foldable arithmetic disappear.
//
//   * constant folding — an Arith/Cmp node fed exclusively by Const nodes
//     (or with an immediate) computes one tag-0 value; replace it with a
//     Const. Nodes that would throw (1/0) are left for runtime.
//   * identity bypass — immediate x+0, x-0, x*1, x/1 forward their input.
//   * dead node elimination — nodes with no path to any Output produce
//     tokens nobody can observe; remove them (with their edges).
//
// Passes iterate to a fixed point (folding exposes more folding; bypass
// exposes dead consts).
#pragma once

#include <cstddef>

#include "gammaflow/dataflow/graph.hpp"

namespace gammaflow::dataflow {

struct OptimizeOptions {
  bool fold_constants = true;
  bool bypass_identities = true;
  bool eliminate_dead = true;
  std::size_t max_iterations = 16;
};

struct OptimizeResult {
  Graph graph;
  std::size_t folded = 0;
  std::size_t bypassed = 0;
  std::size_t removed = 0;  // dead nodes eliminated
  std::size_t iterations = 0;
};

/// Optimizes `graph`. The result validates; a graph whose outputs are
/// unreachable (or that has no outputs) legitimately optimizes to only its
/// Output nodes' live cone — possibly the empty graph.
[[nodiscard]] OptimizeResult optimize(const Graph& graph,
                                      const OptimizeOptions& options = {});

}  // namespace gammaflow::dataflow
